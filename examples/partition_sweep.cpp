// Partition sweep: the paper's processor-management methodology as a tool.
// Given a machine profile and a dataset, sweep the number of groups L and
// report the three §3 metrics from the pipeline simulator, the analytic
// model's prediction, and the recommended partitioning for batch-mode
// rendering versus interactive viewing.
//
//   ./partition_sweep [--processors 32] [--steps 128] [--size 256]
//                     [--machine rwcp|o2k] [--dataset jet|vortex|mixing]
#include <cstdio>

#include "core/perfmodel.hpp"
#include "core/pipesim.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  core::PipelineConfig cfg;
  cfg.processors = static_cast<int>(flags.get_int("processors", 32));
  cfg.steps_limit = static_cast<int>(flags.get_int("steps", 128));
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 256));
  const std::string machine = flags.get("machine", "rwcp");
  cfg.costs = machine == "o2k" ? core::StageCosts::o2k_paper()
                               : core::StageCosts::rwcp_paper();
  const std::string dataset = flags.get("dataset", "jet");
  cfg.dataset = dataset == "vortex"   ? field::turbulent_vortex_desc()
                : dataset == "mixing" ? field::shock_mixing_desc()
                                      : field::turbulent_jet_desc();
  cfg.codec = core::CodecProfile::paper(flags.get("codec", "jpeg+lzo"));

  std::printf("partition sweep: %s on %s, P=%d, %d steps, %dx%d\n\n",
              dataset.c_str(), machine.c_str(), cfg.processors,
              cfg.steps_limit, cfg.image_width, cfg.image_height);
  std::printf("%-6s %-14s %-14s %-14s %-12s\n", "L", "overall", "startup",
              "inter-frame", "disk util");

  int best_batch = 1, best_interactive = 1;
  double best_overall = 1e300, best_delay = 1e300;
  for (int l = 1; l <= cfg.processors; l *= 2) {
    cfg.groups = l;
    const auto r = core::simulate_pipeline(cfg);
    std::printf("%-6d %10.1f s %12.2f s %12.2f s %10.0f%%\n", l,
                r.metrics.overall_time, r.metrics.startup_latency,
                r.metrics.inter_frame_delay, 100.0 * r.disk_utilization);
    if (r.metrics.overall_time < best_overall) {
      best_overall = r.metrics.overall_time;
      best_batch = l;
    }
    // Interactive viewing weighs start-up latency and inter-frame delay
    // (§3): score = latency + 10 * delay.
    const double score =
        r.metrics.startup_latency + 10.0 * r.metrics.inter_frame_delay;
    if (score < best_delay) {
      best_delay = score;
      best_interactive = l;
    }
  }

  std::printf("\nrecommended L (batch-mode, min overall time): %d\n",
              best_batch);
  std::printf("recommended L (interactive, latency-weighted): %d\n",
              best_interactive);
  const int model_best = core::optimal_partitions(cfg);
  std::printf("analytic model recommends:                    %d\n",
              model_best);
  return 0;
}
