// Interactive session: demonstrates the §5 user-control path. A scripted
// "user" at the display client steers the running pipeline — rotating the
// view, switching the colormap, changing the compression method — through
// the display daemon's remote-callback channel. Events are buffered by the
// renderer and take effect on subsequent frames only; in-flight rendering
// is never interrupted.
//
//   ./interactive_session [--steps 12] [--size 128] [--outdir steered]
#include <cstdio>
#include <filesystem>

#include "core/session.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_vortex_desc(), 4,
                              static_cast<int>(flags.get_int("steps", 12)));
  cfg.colormap = "dense";
  cfg.processors = static_cast<int>(flags.get_int("processors", 4));
  cfg.groups = 1;  // single group: frames arrive strictly in order
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 128));
  cfg.codec = "jpeg+lzo";
  cfg.keep_frames = true;

  // The scripted user: rotate after frame 2, switch colormap after frame 5,
  // drop to a lossless codec after frame 8 (e.g. to grab exact stills).
  cfg.on_frame = [](int step, const render::Image&) {
    std::vector<net::ControlEvent> events;
    net::ControlEvent e;
    switch (step) {
      case 2:
        e.kind = net::ControlKind::kSetView;
        e.azimuth = 1.9;
        e.elevation = 0.15;
        e.zoom = 1.25;
        events.push_back(e);
        std::printf("  [user] frame %d displayed -> rotate view\n", step);
        break;
      case 5:
        e.kind = net::ControlKind::kSetColorMap;
        e.name = "fire";
        events.push_back(e);
        std::printf("  [user] frame %d displayed -> switch colormap\n", step);
        break;
      case 8:
        e.kind = net::ControlKind::kSetCodec;
        e.name = "lzo";
        events.push_back(e);
        std::printf("  [user] frame %d displayed -> lossless codec\n", step);
        break;
      default:
        break;
    }
    return events;
  };

  std::printf("interactive session: %d steps, P=%d, control events scripted "
              "at frames 2/5/8\n",
              cfg.dataset.steps, cfg.processors);
  const core::SessionResult result = core::run_session(cfg);

  std::printf("\nframes: %zu, control events applied by the renderer: %d\n",
              result.displayed.size(), result.control_events_applied);
  std::printf("inter-frame delay: %.3f s (events added no stalls: rendering "
              "of current frames is never interrupted)\n",
              result.metrics.inter_frame_delay);

  const std::filesystem::path outdir = flags.get("outdir", "steered");
  std::filesystem::create_directories(outdir);
  for (std::size_t i = 0; i < result.displayed.size(); ++i) {
    char name[48];
    std::snprintf(name, sizeof name, "steered_%03zu.ppm", i);
    result.displayed[i].write_ppm(outdir / name);
  }
  std::printf("wrote %zu frames to %s/ (watch the view/colormap change a\n"
              "frame or two after each event — the §5 buffering delay)\n",
              result.displayed.size(), outdir.string().c_str());
  return 0;
}
