// Quickstart: generate one time step of the turbulent-jet dataset, render
// it with the ray caster, compress it the way the remote pipeline would,
// and write the image to disk.
//
//   ./quickstart [--size 256] [--step 75] [--out jet.ppm]
#include <cstdio>

#include "codec/image_codec.hpp"
#include "field/generators.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int size = static_cast<int>(flags.get_int("size", 256));
  const std::string out = flags.get("out", "jet.ppm");

  // 1. The dataset: the paper's 129x129x104, 150-step turbulent jet.
  const field::DatasetDesc jet = field::turbulent_jet_desc();
  const int step = static_cast<int>(
      flags.get_int("step", jet.steps / 2));
  std::printf("dataset: %s, %dx%dx%d, %d steps (%.1f MB/step)\n",
              field::dataset_name(jet.kind), jet.dims.nx, jet.dims.ny,
              jet.dims.nz, jet.steps,
              static_cast<double>(jet.bytes_per_step()) / 1e6);

  util::WallTimer t_gen;
  const field::VolumeF volume = field::generate(jet, step);
  std::printf("generated step %d in %.2f s (coverage above 0.3: %.1f%%)\n",
              step, t_gen.seconds(), 100.0 * volume.coverage(0.3f));

  // 2. Render with the ray caster (Phong-shaded, early termination).
  const render::Camera camera(size, size, /*azimuth=*/0.6, /*elevation=*/0.35);
  const render::TransferFunction tf = render::TransferFunction::fire();
  render::RayCaster caster;
  util::WallTimer t_render;
  const render::Image frame = caster.render_full(volume, camera, tf);
  std::printf("rendered %dx%d in %.2f s (%zu samples)\n", size, size,
              t_render.seconds(), caster.last_sample_count());

  // 3. Compress as the image-output stage would (JPEG + LZO second pass).
  const auto codec = codec::make_image_codec("jpeg+lzo", 75);
  const auto packed = codec->encode(frame);
  const double raw = static_cast<double>(size) * size * 3;
  std::printf("compressed frame: %zu bytes (%.1f%% reduction; decoded PSNR "
              "%.1f dB)\n",
              packed.size(), 100.0 * (1.0 - packed.size() / raw),
              render::psnr(frame, codec->decode(packed)));

  frame.write_ppm(out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
