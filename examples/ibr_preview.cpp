// Image-based remote preview (§7.1, Visapult-style): the server renders a
// ring of views of one time step, ships them as a compressed view set, and
// the "client" explores arbitrary azimuths locally by reconstructing from
// the set — no further server round-trips. Prints the bandwidth trade-off
// (one view set vs streaming individual frames) and the reconstruction
// quality against ground-truth renders.
//
//   ./ibr_preview [--views 12] [--size 128] [--probes 8]
#include <cstdio>

#include "codec/image_codec.hpp"
#include "field/generators.hpp"
#include "render/ibr.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int views = static_cast<int>(flags.get_int("views", 12));
  const int size = static_cast<int>(flags.get_int("size", 128));
  const int probes = static_cast<int>(flags.get_int("probes", 8));

  const auto desc = field::scaled(field::turbulent_jet_desc(), 2, 150);
  const field::VolumeF volume = field::generate(desc, 75);
  const auto tf = render::TransferFunction::fire();

  std::printf("server: rendering a %d-view set at %dx%d...\n", views, size,
              size);
  util::WallTimer t_capture;
  const render::ViewSet set =
      render::ViewSet::capture(volume, tf, views, size);
  std::printf("  captured in %.2f s\n", t_capture.seconds());

  const auto codec = codec::make_image_codec("jpeg+lzo", 75);
  const auto wire = set.serialize(*codec);
  std::printf("  view set on the wire: %zu bytes (%.1f kB per view; one\n"
              "  interactive frame streamed the usual way is ~%zu bytes)\n",
              wire.size(), wire.size() / 1024.0 / views,
              codec->encode(set.view(0)).size());

  std::printf("\nclient: reconstructing %d novel azimuths locally...\n",
              probes);
  const render::ViewSet received = render::ViewSet::deserialize(wire, *codec);
  render::RayCaster caster;
  double worst = 1e300;
  for (int i = 0; i < probes; ++i) {
    // Probe midway between key views: the hardest case for blending.
    const double azimuth =
        received.azimuth_of(i % views) + 3.14159265 / views;
    util::WallTimer t_rec;
    const render::Image approx = received.reconstruct(azimuth);
    const double rec_s = t_rec.seconds();
    const render::Camera camera(size, size, azimuth, received.elevation());
    const render::Image truth = caster.render_full(volume, camera, tf, true);
    const double quality = render::psnr(truth, approx);
    worst = std::min(worst, quality);
    std::printf("  azimuth %5.2f rad: reconstruct %-10s psnr %.1f dB\n",
                azimuth, (std::to_string(static_cast<int>(rec_s * 1e6)) +
                          " us").c_str(),
                quality);
  }
  std::printf("\nworst-case reconstruction: %.1f dB. The client explores any\n"
              "view on this ring for the price of ONE view-set transfer —\n"
              "the §7.1 trade of bandwidth for client-side graphics.\n",
              worst);
  return 0;
}
