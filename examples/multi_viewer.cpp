// Multi-viewer session: one renderer stream fanned out by the hub to
// several display clients over REAL sockets. Demonstrates the pieces the
// single-client daemon cannot do:
//
//   * three viewers attached to one stream — the frame is encoded once,
//     cached, and fanned out by reference;
//   * one slow viewer (it sleeps between receives): its queue overflows
//     and the hub drops its oldest steps while the fast viewers keep
//     every frame;
//   * a disconnect mid-run and a reconnect under the same client id,
//     resumed from the last acknowledged step out of the frame cache.
//
//   ./multi_viewer [--steps 12] [--size 128] [--codec jpeg+lzo]
#include <cstdio>
#include <thread>
#include <vector>

#include "codec/image_codec.hpp"
#include "field/generators.hpp"
#include "hub/tcp_hub.hpp"
#include "net/tcp.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 12));
  const int size = static_cast<int>(flags.get_int("size", 128));
  const std::string codec_name = flags.get("codec", "jpeg+lzo");

  hub::HubConfig hub_cfg;
  hub_cfg.cache_steps = 64;      // wide resume window for the reconnect demo
  hub_cfg.client_queue_frames = 3;  // small bound so the slow viewer drops
  hub::HubTcpServer server(0, hub_cfg);
  std::printf("hub listening on 127.0.0.1:%d\n", server.port());

  // ---- fast viewer: sees every frame --------------------------------------
  std::thread fast_thread([&] {
    hub::HubTcpViewer::Options o;
    o.client_id = "fast";
    hub::HubTcpViewer viewer(server.port(), o);
    const auto codec = codec::make_image_codec(codec_name, 75);
    int frames = 0;
    while (auto msg = viewer.next()) {
      if (msg->type == net::MsgType::kShutdown) break;
      if (msg->type != net::MsgType::kFrame) continue;
      codec->decode(msg->payload);
      viewer.ack(msg->frame_index);
      ++frames;
    }
    std::printf("  [fast  ] displayed %d/%d frames\n", frames, steps);
  });

  // ---- slow viewer: ~10x slower than the stream ---------------------------
  std::thread slow_thread([&] {
    hub::HubTcpViewer::Options o;
    o.client_id = "slow";
    hub::HubTcpViewer viewer(server.port(), o);
    int frames = 0;
    while (auto msg = viewer.next()) {
      if (msg->type == net::MsgType::kShutdown) break;
      if (msg->type != net::MsgType::kFrame) continue;
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      viewer.ack(msg->frame_index);
      ++frames;
    }
    std::printf("  [slow  ] displayed %d/%d frames (the rest were "
                "dropped for it, nobody else stalled)\n",
                frames, steps);
  });

  // ---- flaky viewer: disconnects, then resumes from its last ack ----------
  std::thread flaky_thread([&] {
    int last_acked = -1;
    {
      hub::HubTcpViewer::Options o;
      o.client_id = "flaky";
      hub::HubTcpViewer viewer(server.port(), o);
      for (int n = 0; n < 3; ++n) {
        auto msg = viewer.next();
        if (!msg || msg->type != net::MsgType::kFrame) break;
        viewer.ack(msg->frame_index);
        last_acked = msg->frame_index;
      }
      viewer.close();  // connection drops mid-run
      std::printf("  [flaky ] vanished after acking step %d\n", last_acked);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    hub::HubTcpViewer::Options o;
    o.client_id = "flaky";  // same identity -> resume
    o.last_acked_step = last_acked;
    hub::HubTcpViewer viewer(server.port(), o);
    int resumed = 0;
    while (auto msg = viewer.next()) {
      if (msg->type == net::MsgType::kShutdown) break;
      if (msg->type != net::MsgType::kFrame) continue;
      viewer.ack(msg->frame_index);
      ++resumed;
    }
    std::printf("  [flaky ] reconnected and received %d more frames "
                "(replayed from the cache, no re-encode)\n",
                resumed);
  });

  // ---- the renderer (stand-in: one node) ----------------------------------
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  net::TcpRendererLink renderer(server.port());  // v1 hello, still accepted
  const auto desc = field::scaled(field::turbulent_jet_desc(), 3, steps);
  const auto codec = codec::make_image_codec(codec_name, 75);
  const auto tf = render::TransferFunction::fire();
  render::RayCaster caster;
  for (int s = 0; s < steps; ++s) {
    const auto volume = field::generate(desc, s);
    const render::Camera camera(size, size, 0.6 + 0.05 * s, 0.35, 1.0);
    const render::Image frame = caster.render_full(volume, camera, tf, true);
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = codec_name;
    msg.payload = codec->encode(frame);  // encoded ONCE, fanned out shared
    renderer.send(msg);
  }
  net::NetMessage bye;
  bye.type = net::MsgType::kShutdown;
  renderer.send(bye);

  fast_thread.join();
  slow_thread.join();
  flaky_thread.join();
  server.shutdown();
  for (const auto& c : server.hub().client_stats())
    std::printf("  [hub   ] %-6s delivered=%llu skipped=%llu resumed=%llu "
                "last-ack=%d\n",
                c.id.c_str(),
                static_cast<unsigned long long>(c.messages_delivered),
                static_cast<unsigned long long>(c.steps_skipped),
                static_cast<unsigned long long>(c.messages_resumed),
                c.last_acked_step);
  std::printf("done — one encode per step, three viewers, one resume.\n");
  return 0;
}
