// Run-time tracking (§2.1 / intro): "Visualizing time-varying data probably
// can be done most efficiently while the data are being generated, so that
// users receive immediate feedback on the subject under study." A
// "simulation" thread computes time steps and commits them to the shared
// store (atomic rename); the visualization pipeline tracks it live, waiting
// for each step to land. The lag between step-committed and step-displayed
// is the tracking latency.
//
//   ./coprocess_tracking [--steps 10] [--sim-delay-ms 120] [--size 96]
#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/session.hpp"
#include "field/store.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 10));
  const int sim_delay_ms = static_cast<int>(flags.get_int("sim-delay-ms", 120));

  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 4, steps);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 96));
  cfg.codec = "jpeg+lzo";
  cfg.wait_for_store = true;

  const auto dir = std::filesystem::temp_directory_path() /
                   ("tvviz_coprocess_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  cfg.store_dir = dir;
  field::VolumeStore store(dir);

  std::printf("co-processing demo: simulation computes %d steps (~%d ms "
              "each); the pipeline tracks it live.\n\n",
              steps, sim_delay_ms);

  util::WallTimer clock;
  std::vector<double> committed(static_cast<std::size_t>(steps), 0.0);

  // The "numerical simulation": computes one step, commits it, moves on.
  std::thread simulation([&] {
    for (int s = 0; s < steps; ++s) {
      const auto volume = field::generate(cfg.dataset, s);
      std::this_thread::sleep_for(std::chrono::milliseconds(sim_delay_ms));
      store.write(s, volume);
      committed[static_cast<std::size_t>(s)] = clock.seconds();
      std::printf("  [sim] step %2d committed at t=%.2fs\n", s,
                  committed[static_cast<std::size_t>(s)]);
    }
  });

  const core::SessionResult result = core::run_session(cfg);
  simulation.join();
  std::filesystem::remove_all(dir);

  std::printf("\n  %-6s %-14s %-14s %-12s\n", "step", "committed", "displayed",
              "tracking lag");
  double worst = 0.0;
  std::vector<core::FrameRecord> frames = result.frames;
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) { return a.step < b.step; });
  for (const auto& f : frames) {
    const double lag = f.displayed - committed[static_cast<std::size_t>(f.step)];
    worst = std::max(worst, lag);
    std::printf("  %-6d %10.2f s %12.2f s %10.2f s\n", f.step,
                committed[static_cast<std::size_t>(f.step)], f.displayed, lag);
  }
  std::printf("\nworst tracking lag: %.2f s — the scientist sees each step "
              "this long after\nthe simulation produced it (render + "
              "composite + compress + transport).\n", worst);
  return 0;
}
