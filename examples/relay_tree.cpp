// Relay-tree session: one renderer stream served to distant viewers
// through edge hubs, the paper's WAN deployment shape (caches near the
// viewers rather than every viewer on the renderer's hub). Demonstrates
// what the flat fan-out cannot do:
//
//   * the root serves 2 edges, the 4 viewers hang off the edges — root
//     egress pays per edge, not per viewer;
//   * frames travel upstream as content advertisements (kFrameRef): each
//     edge fetches a payload once, re-serves it from its own cache, and a
//     repeated frame (a paused simulation re-sending the same image) never
//     crosses the root link again;
//   * a viewer joining late is caught up entirely from its edge's cache —
//     zero extra bytes from the root.
//
//   ./relay_tree [--steps 10] [--size 128] [--codec jpeg+lzo]
#include <cstdio>
#include <thread>
#include <vector>

#include "codec/image_codec.hpp"
#include "field/generators.hpp"
#include "hub/tcp_hub.hpp"
#include "relay/relay.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 10));
  const int size = static_cast<int>(flags.get_int("size", 128));
  const std::string codec_name = flags.get("codec", "jpeg+lzo");

  hub::HubConfig hub_cfg;
  hub_cfg.cache_steps = 64;
  hub::HubTcpServer root(0, hub_cfg);
  std::printf("root hub on 127.0.0.1:%d\n", root.port());

  // ---- two edge hubs, as if placed near two viewer sites ------------------
  std::vector<std::unique_ptr<relay::EdgeHub>> edges;
  for (int e = 0; e < 2; ++e) {
    relay::EdgeHubConfig cfg;
    cfg.upstream_port = root.port();
    cfg.hub = hub_cfg;
    cfg.edge_id = "edge-" + std::to_string(e);
    edges.push_back(std::make_unique<relay::EdgeHub>(cfg));
    std::printf("edge-%d serving viewers on 127.0.0.1:%d\n", e,
                edges.back()->port());
  }

  // ---- four viewers, two per edge -----------------------------------------
  auto viewer_main = [&](int e, int k) {
    hub::HubTcpViewer::Options o;
    o.client_id = "v" + std::to_string(e) + std::to_string(k);
    hub::HubTcpViewer viewer(edges[static_cast<std::size_t>(e)]->port(), o);
    const auto codec = codec::make_image_codec(codec_name, 75);
    int frames = 0;
    while (auto msg = viewer.next()) {
      if (msg->type == net::MsgType::kShutdown) break;
      if (msg->type != net::MsgType::kFrame) continue;
      codec->decode(msg->payload);  // display
      viewer.ack(msg->frame_index);
      ++frames;
    }
    std::printf("  [%s] displayed %d frames via edge-%d\n", o.client_id.c_str(),
                frames, e);
  };
  std::vector<std::thread> viewers;
  for (int e = 0; e < 2; ++e)
    for (int k = 0; k < 2; ++k) viewers.emplace_back(viewer_main, e, k);

  // ---- the renderer, attached to the ROOT only ----------------------------
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto renderer = root.hub().connect_renderer();
  const auto desc = field::scaled(field::turbulent_jet_desc(), 3, steps);
  const auto codec = codec::make_image_codec(codec_name, 75);
  const auto tf = render::TransferFunction::fire();
  render::RayCaster caster;
  for (int s = 0; s < steps; ++s) {
    // The last two steps repeat the previous camera — an identical frame,
    // which the edges will recognise by content and never re-fetch.
    const int pose = std::min(s, steps - 2);
    const auto volume = field::generate(desc, pose);
    const render::Camera camera(size, size, 0.6 + 0.05 * pose, 0.35, 1.0);
    const render::Image frame = caster.render_full(volume, camera, tf, true);
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = codec_name;
    msg.payload = codec->encode(frame);
    renderer->send(std::move(msg));
  }
  net::NetMessage bye;
  bye.type = net::MsgType::kShutdown;
  renderer->send(std::move(bye));

  for (auto& v : viewers) v.join();
  std::printf("root served %zu clients (the edges) for %d viewers\n",
              root.hub().client_stats().size(), static_cast<int>(viewers.size()));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto s = edges[e]->stats();
    std::printf("  [edge-%zu] refs %llu (hits %llu) | saved %.1f kB | "
                "upstream %.1f kB\n",
                e, static_cast<unsigned long long>(s.refs_seen),
                static_cast<unsigned long long>(s.ref_hits),
                static_cast<double>(s.fetch_bytes_saved) / 1024.0,
                static_cast<double>(s.upstream_bytes) / 1024.0);
    edges[e]->shutdown();
  }
  root.shutdown();
  std::printf("done — every payload crossed the root link once per edge.\n");
  return 0;
}
