// Remote viewer: the complete paper pipeline running for real — a virtual
// cluster renders a time-varying dataset in L processor groups with
// binary-swap compositing; group leaders compress frames and ship them
// through the display daemon; the display client decodes them and reports
// the three §3 metrics. Frames are written as PPMs for inspection.
//
//   ./remote_viewer [--dataset jet|vortex|mixing] [--processors 6]
//                   [--groups 2] [--steps 8] [--size 128]
//                   [--codec jpeg+lzo] [--parallel-compression]
//                   [--outdir frames] [--trace-out trace.json]
//                   [--counters-json counters.json]
#include <cstdio>
#include <filesystem>

#include "core/session.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/flags.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::string trace_out = flags.get("trace-out", "");
  const std::string counters_out = flags.get("counters-json", "");
  if (!trace_out.empty()) obs::enable_tracing(true);

  core::SessionConfig cfg;
  const std::string dataset = flags.get("dataset", "jet");
  const int scale = static_cast<int>(flags.get_int("scale", 4));
  const int steps = static_cast<int>(flags.get_int("steps", 8));
  if (dataset == "jet") {
    cfg.dataset = field::scaled(field::turbulent_jet_desc(), scale, steps);
    cfg.colormap = "fire";
  } else if (dataset == "vortex") {
    cfg.dataset = field::scaled(field::turbulent_vortex_desc(), scale, steps);
    cfg.colormap = "dense";
  } else if (dataset == "mixing") {
    cfg.dataset = field::scaled(field::shock_mixing_desc(), scale * 2, steps);
    cfg.colormap = "shock";
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 1;
  }
  cfg.processors = static_cast<int>(flags.get_int("processors", 6));
  cfg.groups = static_cast<int>(flags.get_int("groups", 2));
  cfg.image_width = cfg.image_height =
      static_cast<int>(flags.get_int("size", 128));
  cfg.codec = flags.get("codec", "jpeg+lzo");
  cfg.parallel_compression = flags.get_bool("parallel-compression", false);
  cfg.azimuth_per_step = flags.get_double("spin", 0.05);
  cfg.keep_frames = true;

  std::printf("remote viewer: %s (%dx%dx%d x %d steps), P=%d, L=%d, "
              "%dx%d, codec=%s%s\n",
              dataset.c_str(), cfg.dataset.dims.nx, cfg.dataset.dims.ny,
              cfg.dataset.dims.nz, cfg.dataset.steps, cfg.processors,
              cfg.groups, cfg.image_width, cfg.image_height,
              cfg.codec.c_str(),
              cfg.parallel_compression ? " (parallel compression)" : "");

  const core::SessionResult result = core::run_session(cfg);

  std::printf("\nframes delivered: %zu\n", result.frames.size());
  std::printf("start-up latency: %.3f s\n", result.metrics.startup_latency);
  std::printf("overall time:     %.3f s\n", result.metrics.overall_time);
  std::printf("inter-frame:      %.3f s  (%.1f frames/s)\n",
              result.metrics.inter_frame_delay,
              result.metrics.frames_per_second());
  std::printf("wire bytes:       %llu (raw equivalent %llu, %.1fx reduction)\n",
              static_cast<unsigned long long>(result.wire_bytes),
              static_cast<unsigned long long>(result.raw_bytes),
              static_cast<double>(result.raw_bytes) /
                  static_cast<double>(result.wire_bytes));

  const std::filesystem::path outdir = flags.get("outdir", "frames");
  std::filesystem::create_directories(outdir);
  for (std::size_t i = 0; i < result.displayed.size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof name, "%s_%03zu.ppm", dataset.c_str(), i);
    result.displayed[i].write_ppm(outdir / name);
  }
  std::printf("wrote %zu frames to %s/\n", result.displayed.size(),
              outdir.string().c_str());
  if (!trace_out.empty()) {
    if (obs::write_chrome_trace_file(trace_out))
      std::printf("trace written to %s (open in Perfetto)\n",
                  trace_out.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
  }
  if (!counters_out.empty()) {
    if (obs::write_counters_json_file(counters_out))
      std::printf("counters written to %s\n", counters_out.c_str());
    else
      std::fprintf(stderr, "failed to write counters to %s\n",
                   counters_out.c_str());
  }
  return 0;
}
