// Distributed viewer: the §4.1 framework over REAL sockets. A daemon
// server listens on localhost; a renderer endpoint connects and streams
// compressed frames; a display endpoint connects, decodes, and steers the
// view through the control backchannel — three independent actors speaking
// the wire protocol, exactly how a multi-machine deployment would.
//
//   ./distributed_viewer [--steps 10] [--size 128] [--codec jpeg+lzo]
#include <cstdio>
#include <thread>

#include "codec/image_codec.hpp"
#include "field/generators.hpp"
#include "net/tcp.hpp"
#include "render/raycast.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace tvviz;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int steps = static_cast<int>(flags.get_int("steps", 10));
  const int size = static_cast<int>(flags.get_int("size", 128));
  const std::string codec_name = flags.get("codec", "jpeg+lzo");

  net::TcpDaemonServer server;
  std::printf("display daemon listening on 127.0.0.1:%d\n", server.port());

  // ---- the display client -------------------------------------------------
  std::thread display_thread([&] {
    net::TcpDisplayLink display(server.port());
    const auto codec = codec::make_image_codec(codec_name, 75);
    util::WallTimer clock;
    std::size_t bytes = 0;
    for (int received = 0; received < steps; ++received) {
      const auto msg = display.next();
      if (!msg) return;
      bytes += msg->payload.size();
      const render::Image frame = codec->decode(msg->payload);
      std::printf("  [display] frame %2d: %5zu bytes, %dx%d, t=%.2fs\n",
                  msg->frame_index, msg->payload.size(), frame.width(),
                  frame.height(), clock.seconds());
      if (msg->frame_index == 2) {
        net::ControlEvent e;
        e.kind = net::ControlKind::kSetView;
        e.azimuth = 2.2;
        e.elevation = 0.1;
        e.zoom = 1.2;
        display.send_control(e);
        std::printf("  [display] -> control: rotate view\n");
      }
    }
    std::printf("  [display] %d frames, %.1f kB total, %.1f fps\n", steps,
                bytes / 1024.0, steps / clock.seconds());
  });

  // ---- the parallel renderer (stand-in: one node) --------------------------
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  net::TcpRendererLink renderer(server.port());
  const auto desc = field::scaled(field::turbulent_jet_desc(), 3, steps);
  const auto codec = codec::make_image_codec(codec_name, 75);
  const auto tf = render::TransferFunction::fire();
  render::RayCaster caster;
  double azimuth = 0.6, elevation = 0.35, zoom = 1.0;
  for (int s = 0; s < steps; ++s) {
    while (auto event = renderer.poll_control()) {
      if (event->kind == net::ControlKind::kSetView) {
        azimuth = event->azimuth;
        elevation = event->elevation;
        zoom = event->zoom;
        std::printf("  [render ] applied view change before step %d\n", s);
      }
    }
    const auto volume = field::generate(desc, s);
    const render::Camera camera(size, size, azimuth, elevation, zoom);
    const render::Image frame = caster.render_full(volume, camera, tf, true);
    net::NetMessage msg;
    msg.type = net::MsgType::kFrame;
    msg.frame_index = s;
    msg.codec = codec_name;
    msg.payload = codec->encode(frame);
    renderer.send(msg);
  }

  display_thread.join();
  server.shutdown();
  std::printf("done — every byte crossed real TCP sockets.\n");
  return 0;
}
