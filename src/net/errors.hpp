// Error taxonomy of the socket transport. Everything derives from
// std::runtime_error so pre-existing catch sites keep working, but callers
// that care (retry loops, the hub's serve threads, the reconnecting viewer)
// can tell the three failure classes apart:
//
//   SocketError  — the connection itself failed: a syscall error, a refused
//                  connect, a peer reset, or an injected drop. Retrying the
//                  operation on the same socket is pointless; reconnect.
//   WireError    — the byte stream ended or desynchronized mid-frame: a
//                  peer died inside a length prefix or frame body, or a
//                  corrupt header failed validation. The socket may still
//                  be open but the framing is unrecoverable; reconnect.
//   TimeoutError — a per-op I/O deadline expired (poll-based; see
//                  TcpConnection::set_io_timeout_ms) before any byte of the
//                  frame crossed the wire. The peer may merely be slow: this
//                  is the one class worth retrying in place, with backoff,
//                  and the transport guarantees the retry is framing-safe —
//                  a deadline that expires after partial progress is
//                  surfaced as SocketError (send side, connection closed) or
//                  WireError (recv side) instead, because the byte stream is
//                  desynchronized and only a reconnect recovers it.
#pragma once

#include <stdexcept>
#include <string>

namespace tvviz::net {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The SocketError flavor thrown when a *send* deadline expires after
/// partial progress. Recovery-wise it is exactly a SocketError (stream
/// desynchronized, connection closed, reconnect to recover) — but the
/// cause is a peer that stopped reading, which eviction policies want to
/// tell apart from a peer reset (the hub counts both this and TimeoutError
/// as net.hub.stalled_evictions).
class SendDeadlineError : public SocketError {
 public:
  using SocketError::SocketError;
};

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace tvviz::net
