#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/counters.hpp"
#include "util/mutex.hpp"

namespace tvviz::net {

bool accept_should_retry(int errno_value) noexcept {
  switch (errno_value) {
    case EINTR:
    case ECONNABORTED:
    case EPROTO:
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return true;
    default:
      return false;
  }
}

bool accept_error_needs_backoff(int errno_value) noexcept {
  switch (errno_value) {
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return true;
    default:
      return false;
  }
}

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class EpollEventLoop final : public EventLoop {
 public:
  EpollEventLoop() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
      throw std::runtime_error(std::string("event_loop: epoll_create1: ") +
                               std::strerror(errno));
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      ::close(epoll_fd_);
      throw std::runtime_error(std::string("event_loop: eventfd: ") +
                               std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered, not one-shot: never disarmed
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      ::close(wake_fd_);
      ::close(epoll_fd_);
      throw std::runtime_error(std::string("event_loop: epoll_ctl(wake): ") +
                               std::strerror(errno));
    }
  }

  ~EpollEventLoop() override {
    ::close(wake_fd_);
    ::close(epoll_fd_);
  }

  void add(int fd, std::uint32_t interest, Callback cb) override {
    std::uint32_t generation;
    bool replace;
    {
      util::LockGuard lock(mutex_);
      generation = ++next_generation_;
      replace = registrations_.count(fd) > 0;
      registrations_[fd] = Registration{generation, std::move(cb)};
    }
    epoll_event ev{};
    ev.events = to_epoll(interest) | EPOLLONESHOT;
    ev.data.u64 = pack(fd, generation);
    const int op = replace ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0)
      throw std::runtime_error(std::string("event_loop: epoll_ctl(add): ") +
                               std::strerror(errno));
  }

  void rearm(int fd, std::uint32_t interest) override {
    std::uint32_t generation;
    {
      util::LockGuard lock(mutex_);
      auto it = registrations_.find(fd);
      if (it == registrations_.end()) return;  // removed meanwhile: no-op
      generation = it->second.generation;
    }
    epoll_event ev{};
    ev.events = to_epoll(interest) | EPOLLONESHOT;
    ev.data.u64 = pack(fd, generation);
    // ENOENT: removed between the lookup and the ctl — harmless.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void remove(int fd) override {
    {
      util::LockGuard lock(mutex_);
      registrations_.erase(fd);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  void post(std::function<void()> fn) override {
    {
      util::LockGuard lock(mutex_);
      posted_.push_back(std::move(fn));
    }
    wake();
  }

  void post_after(double delay_ms, std::function<void()> fn) override {
    {
      util::LockGuard lock(mutex_);
      timers_.push_back(
          Timer{steady_now_ms() + std::max(0.0, delay_ms), std::move(fn)});
    }
    wake();  // recompute the epoll_wait timeout with the new deadline
  }

  void run() override {
    static obs::Counter& wakeups = obs::counter("net.hub.epoll.wakeups");
    static obs::Counter& dispatched = obs::counter("net.hub.epoll.events");
    static obs::Counter& timers_fired = obs::counter("net.hub.epoll.timers");
    epoll_event events[64];
    while (!stopped_.load()) {
      const int timeout = next_timeout_ms();
      const int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("event_loop: epoll_wait: ") +
                                 std::strerror(errno));
      }
      wakeups.add(1);
      for (int i = 0; i < n; ++i) {
        if (events[i].data.u64 == kWakeTag) {
          std::uint64_t drained;
          while (::read(wake_fd_, &drained, sizeof drained) > 0) {
          }
          continue;
        }
        const int fd = unpack_fd(events[i].data.u64);
        const std::uint32_t generation = unpack_generation(events[i].data.u64);
        Callback cb;
        {
          util::LockGuard lock(mutex_);
          auto it = registrations_.find(fd);
          // A stale generation means the fd was removed (and possibly the
          // number reused by a new connection) after this event was fetched:
          // dispatching it would hand one session's readiness to another.
          if (it == registrations_.end() ||
              it->second.generation != generation)
            continue;
          cb = it->second.callback;
        }
        dispatched.add(1);
        cb(from_epoll(events[i].events));
      }
      // Posted functions and due timers run after the readiness batch, on
      // this same thread — post() is the cross-thread serialization point.
      std::vector<std::function<void()>> run_now;
      {
        util::LockGuard lock(mutex_);
        run_now.swap(posted_);
        const double now = steady_now_ms();
        for (std::size_t i = 0; i < timers_.size();) {
          if (timers_[i].deadline_ms <= now) {
            run_now.push_back(std::move(timers_[i].fn));
            timers_[i] = std::move(timers_.back());
            timers_.pop_back();
            timers_fired.add(1);
          } else {
            ++i;
          }
        }
      }
      for (auto& fn : run_now) fn();
    }
  }

  void stop() override {
    stopped_.store(true);
    wake();
  }

 private:
  struct Registration {
    std::uint32_t generation = 0;
    Callback callback;
  };
  struct Timer {
    double deadline_ms = 0.0;
    std::function<void()> fn;
  };

  static constexpr std::uint64_t kWakeTag = ~0ull;

  static std::uint64_t pack(int fd, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 32) |
           generation;
  }
  static int unpack_fd(std::uint64_t tag) {
    return static_cast<int>(tag >> 32);
  }
  static std::uint32_t unpack_generation(std::uint64_t tag) {
    return static_cast<std::uint32_t>(tag & 0xffffffffu);
  }

  static std::uint32_t to_epoll(std::uint32_t interest) {
    std::uint32_t out = 0;
    if (interest & kEventRead) out |= EPOLLIN;
    if (interest & kEventWrite) out |= EPOLLOUT;
    return out;
  }
  static std::uint32_t from_epoll(std::uint32_t events) {
    std::uint32_t out = 0;
    if (events & EPOLLIN) out |= kEventRead;
    if (events & EPOLLOUT) out |= kEventWrite;
    if (events & (EPOLLERR | EPOLLHUP)) out |= kEventError;
    return out;
  }

  int next_timeout_ms() {
    util::LockGuard lock(mutex_);
    if (!posted_.empty()) return 0;
    if (timers_.empty()) return 500;  // periodic stop_ re-check
    double nearest = timers_[0].deadline_ms;
    for (const auto& t : timers_) nearest = std::min(nearest, t.deadline_ms);
    const double remaining = nearest - steady_now_ms();
    if (remaining <= 0.0) return 0;
    return static_cast<int>(std::ceil(std::min(remaining, 500.0)));
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopped_{false};
  util::Mutex mutex_;
  std::unordered_map<int, Registration> registrations_
      TVVIZ_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> posted_ TVVIZ_GUARDED_BY(mutex_);
  std::vector<Timer> timers_ TVVIZ_GUARDED_BY(mutex_);
  std::uint32_t next_generation_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace

std::unique_ptr<EventLoop> EventLoop::make_epoll() {
  return std::make_unique<EpollEventLoop>();
}

}  // namespace tvviz::net
