// Real TCP transport for the §4.1 framework: the display daemon served
// over sockets, with renderer and display endpoints connecting from other
// processes (or machines). This is what an actual deployment of the
// paper's system uses; the in-process DisplayDaemon remains the transport
// for single-process sessions and tests.
//
// Wire protocol: each frame is [u32 little-endian length][NetMessage body
// per serialize_message]. The first message on every connection must be a
// kHello whose codec field carries the role: "renderer" or "display".
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/daemon.hpp"
#include "net/protocol.hpp"

struct iovec;  // <sys/uio.h>

namespace tvviz::net {

/// Blocking, length-framed message socket (RAII over the fd).
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure.
  static std::unique_ptr<TcpConnection> connect_local(int port);

  /// Send one framed message (full write; throws on error). Scatter-gather:
  /// length prefix, header fields, and the payload view go down in a single
  /// sendmsg() unless the socket buffer forces a short write
  /// (net.tcp.send_syscalls counts the actual syscalls).
  void send_message(const NetMessage& msg);

  /// Receive one framed message. std::nullopt on orderly peer close.
  std::optional<NetMessage> recv_message();

  /// Shut down both directions (unblocks a reader in another thread).
  void shutdown();

  int fd() const noexcept { return fd_; }

 private:
  void write_all(const std::uint8_t* data, std::size_t len);
  void writev_all(iovec* iov, int iov_count);
  bool read_all(std::uint8_t* data, std::size_t len);

  int fd_;
};

/// The display daemon behind a listening socket. Accepts any number of
/// renderer and display connections (§4.1) and bridges them onto an
/// in-process DisplayDaemon.
class TcpDaemonServer {
 public:
  /// Listen on 127.0.0.1:`port` (0 = ephemeral; see port()).
  explicit TcpDaemonServer(int port = 0, std::size_t display_buffer_frames = 8);
  ~TcpDaemonServer();

  int port() const noexcept { return port_; }
  DisplayDaemon& daemon() noexcept { return daemon_; }

  /// Stop accepting, close every connection, join all threads.
  void shutdown();

 private:
  void accept_loop();
  void serve_renderer(std::shared_ptr<TcpConnection> conn);
  void serve_display(std::shared_ptr<TcpConnection> conn);

  DisplayDaemon daemon_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<TcpConnection>> connections_;
};

/// Renderer-side endpoint over TCP: send frames, poll control events.
class TcpRendererLink {
 public:
  explicit TcpRendererLink(int port);

  void send(const NetMessage& msg) { conn_->send_message(msg); }

  /// Non-blocking-ish control poll: events the daemon pushed since the
  /// last call (drained by a background reader thread).
  std::optional<ControlEvent> poll_control();

  void close();
  ~TcpRendererLink();

 private:
  std::unique_ptr<TcpConnection> conn_;
  std::thread reader_;
  std::mutex mutex_;
  std::vector<ControlEvent> pending_;
};

/// Display-side endpoint over TCP.
class TcpDisplayLink {
 public:
  explicit TcpDisplayLink(int port);

  /// Blocking receive; std::nullopt when the daemon closes.
  std::optional<NetMessage> next() { return conn_->recv_message(); }

  void send_control(const ControlEvent& event);

  void close();
  ~TcpDisplayLink();

 private:
  std::unique_ptr<TcpConnection> conn_;
};

}  // namespace tvviz::net
