// Real TCP transport for the §4.1 framework: the display daemon served
// over sockets, with renderer and display endpoints connecting from other
// processes (or machines). This is what an actual deployment of the
// paper's system uses; the in-process DisplayDaemon remains the transport
// for single-process sessions and tests.
//
// Wire protocol: each frame is [u32 little-endian length][NetMessage body
// per serialize_message]. The first message on every connection must be a
// kHello whose codec field carries the role: "renderer" or "display".
//
// Failure behavior (see net/errors.hpp): syscall failures throw
// SocketError, a peer dying mid-frame throws WireError, and an expired
// per-op deadline (set_io_timeout_ms; poll-based) throws TimeoutError.
// Every connection consults the process-wide fault injector
// (fault/fault.hpp) at its syscall choke points, so a seeded FaultPlan can
// drop, delay, corrupt, truncate or refuse deterministically.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/retry.hpp"
#include "net/daemon.hpp"
#include "net/errors.hpp"
#include "net/protocol.hpp"
#include "util/mutex.hpp"

struct iovec;  // <sys/uio.h>

namespace tvviz::fault {
class ConnectionFaults;
}

namespace tvviz::net {

/// Blocking, length-framed message socket (RAII over the fd).
class TcpConnection {
 public:
  explicit TcpConnection(int fd);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to 127.0.0.1:port. Throws SocketError on failure (including a
  /// fault-injected refusal).
  static std::unique_ptr<TcpConnection> connect_local(int port);

  /// connect_local under `policy`: refused attempts back off and retry (the
  /// jitter drawn from `rng`), and the policy's io_timeout_ms is installed
  /// on the resulting connection. Throws the last SocketError once the
  /// attempts are exhausted.
  static std::unique_ptr<TcpConnection> connect_local_retry(
      int port, const fault::RetryPolicy& policy, util::Rng rng);

  /// Send one framed message (full write; throws on error). Scatter-gather:
  /// length prefix, header fields, and the payload view go down in a single
  /// sendmsg() unless the socket buffer forces a short write
  /// (net.tcp.send_syscalls counts the actual syscalls).
  void send_message(const NetMessage& msg);

  /// Receive one framed message. std::nullopt on orderly peer close at a
  /// frame boundary; WireError when the peer dies inside a length prefix
  /// or frame body (a partial frame is never surfaced as a clean EOF).
  std::optional<NetMessage> recv_message();

  /// Per-op deadline for send_message/recv_message, enforced with poll() +
  /// non-blocking syscalls (a blocking send larger than the free socket
  /// buffer would otherwise sleep in the kernel past any deadline). 0
  /// disables (block forever, fd restored to blocking). Expiry with zero
  /// bytes of the frame transferred throws TimeoutError and leaves the
  /// connection open (the op is safely retryable); expiry after partial
  /// progress desynchronizes the framing and is surfaced as SocketError
  /// (send, connection shut down) or WireError (recv) instead.
  void set_io_timeout_ms(double ms) noexcept;

  /// Shut down both directions (unblocks a reader in another thread).
  void shutdown();

  int fd() const noexcept { return fd_; }

 private:
  /// -1 = no deadline; otherwise the op's absolute poll deadline in
  /// steady-clock milliseconds.
  double op_deadline_ms() const noexcept;
  void wait_ready(short events, double deadline_ms);
  void write_all(const std::uint8_t* data, std::size_t len, double deadline_ms);
  void writev_all(iovec* iov, int iov_count, double deadline_ms);
  /// Read exactly `len` bytes unless the stream ends first; returns the
  /// bytes actually read (== len unless the peer closed/reset mid-read).
  std::size_t read_exact(std::uint8_t* data, std::size_t len,
                         double deadline_ms);

  int fd_;
  double io_timeout_ms_ = 0.0;
  std::shared_ptr<fault::ConnectionFaults> faults_;
};

/// The display daemon behind a listening socket. Accepts any number of
/// renderer and display connections (§4.1) and bridges them onto an
/// in-process DisplayDaemon.
class TcpDaemonServer {
 public:
  /// Listen on 127.0.0.1:`port` (0 = ephemeral; see port()).
  explicit TcpDaemonServer(int port = 0, std::size_t display_buffer_frames = 8);
  ~TcpDaemonServer();

  int port() const noexcept { return port_; }
  DisplayDaemon& daemon() noexcept { return daemon_; }

  /// Recovery policy of the renderer->display pump: a display socket too
  /// slow to accept a frame within the policy's io_timeout_ms is retried
  /// with backoff instead of dropped on the first stall (and dropped for
  /// real once the attempts are exhausted). The default policy has no
  /// timeout, i.e. the pre-fault-injection blocking behavior.
  void set_display_retry(const fault::RetryPolicy& policy) {
    display_retry_ = policy;
  }

  /// Stop accepting, close every connection, join all threads. Joins
  /// worker threads, so the lock is taken and released around each wait —
  /// never held while joining.
  void shutdown() TVVIZ_EXCLUDES(threads_mutex_);

 private:
  void accept_loop() TVVIZ_EXCLUDES(threads_mutex_);
  void serve_renderer(std::shared_ptr<TcpConnection> conn);
  void serve_display(std::shared_ptr<TcpConnection> conn);

  DisplayDaemon daemon_;
  int listen_fd_ = -1;
  int port_ = 0;
  fault::RetryPolicy display_retry_{};
  std::atomic<bool> running_{true};
  std::thread accept_thread_;
  util::Mutex threads_mutex_;
  std::vector<std::thread> workers_ TVVIZ_GUARDED_BY(threads_mutex_);
  std::vector<std::shared_ptr<TcpConnection>> connections_
      TVVIZ_GUARDED_BY(threads_mutex_);
};

/// Renderer-side endpoint over TCP: send frames, poll control events.
class TcpRendererLink {
 public:
  explicit TcpRendererLink(int port);

  void send(const NetMessage& msg) { conn_->send_message(msg); }

  /// Non-blocking-ish control poll: events the daemon pushed since the
  /// last call (drained by a background reader thread).
  std::optional<ControlEvent> poll_control() TVVIZ_EXCLUDES(mutex_);

  void close();
  ~TcpRendererLink();

 private:
  std::unique_ptr<TcpConnection> conn_;
  std::thread reader_;
  util::Mutex mutex_;
  std::vector<ControlEvent> pending_ TVVIZ_GUARDED_BY(mutex_);
};

/// Display-side endpoint over TCP.
class TcpDisplayLink {
 public:
  explicit TcpDisplayLink(int port);

  /// Blocking receive; std::nullopt when the daemon closes.
  std::optional<NetMessage> next() { return conn_->recv_message(); }

  void send_control(const ControlEvent& event);

  void close();
  ~TcpDisplayLink();

 private:
  std::unique_ptr<TcpConnection> conn_;
};

}  // namespace tvviz::net
