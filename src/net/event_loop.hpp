// Readiness-based event loop behind the hub's TCP front end. One loop
// thread owns a set of file descriptors and dispatches their readiness
// events to registered callbacks; the callbacks run on the loop thread and
// must never block — blocking work (message parsing, fan-out sends) is
// handed to a worker pool by the caller (see hub/tcp_hub.cpp).
//
// Registrations are one-shot: after a callback fires, the descriptor stays
// registered but disarmed until rearm(), so at most one readiness event per
// descriptor is ever in flight — a worker can finish consuming the socket
// and rearm it without racing a second dispatch for the same bytes.
//
// The interface is deliberately backend-shaped: make_epoll() is the only
// factory today, but the contract (one-shot readiness + post/post_after
// serialization onto the loop thread) is exactly what an io_uring or kqueue
// backend would also provide.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace tvviz::net {

/// Readiness interest / result bits (backend-neutral; mapped to
/// EPOLLIN/EPOLLOUT/EPOLLERR|EPOLLHUP by the epoll backend).
enum : std::uint32_t {
  kEventRead = 1u << 0,
  kEventWrite = 1u << 1,
  /// Reported on error/hangup even when not requested; never requestable.
  kEventError = 1u << 2,
};

class EventLoop {
 public:
  /// Runs on the loop thread with the ready bits. Must not block.
  using Callback = std::function<void(std::uint32_t ready)>;

  virtual ~EventLoop() = default;

  /// Register `fd` for one-shot readiness on `interest`. The callback fires
  /// at most once per arm; call rearm() to listen again. Replaces any
  /// previous registration of the same descriptor.
  virtual void add(int fd, std::uint32_t interest, Callback cb) = 0;

  /// Re-arm a registered descriptor after its one-shot event fired.
  /// Callable from any thread (workers rearm after consuming the socket).
  /// A rearm for a descriptor that was removed in the meantime is a no-op.
  virtual void rearm(int fd, std::uint32_t interest) = 0;

  /// Deregister `fd`. Events already fetched but not yet dispatched are
  /// discarded (stale generations are never delivered), so after remove()
  /// returns no new callback invocation for this registration will start.
  virtual void remove(int fd) = 0;

  /// Run `fn` on the loop thread as soon as possible. Thread-safe.
  virtual void post(std::function<void()> fn) = 0;

  /// Run `fn` on the loop thread once `delay_ms` has elapsed (single-shot
  /// timer; used e.g. to re-arm a listener after an EMFILE backoff).
  virtual void post_after(double delay_ms, std::function<void()> fn) = 0;

  /// Dispatch until stop(). Call from exactly one thread.
  virtual void run() = 0;

  /// Make run() return after the current dispatch batch. Thread-safe.
  virtual void stop() = 0;

  /// The epoll backend (Linux). Counters: net.hub.epoll.wakeups / .events /
  /// .timers (see DESIGN.md §14).
  static std::unique_ptr<EventLoop> make_epoll();
};

/// True when an accept(2) failure is transient — the listener must retry
/// instead of dying (EINTR, ECONNABORTED, EPROTO, EAGAIN, and the
/// descriptor/buffer exhaustion family). False for real listener failures
/// (EBADF/EINVAL after close).
bool accept_should_retry(int errno_value) noexcept;

/// True when the transient accept error is resource exhaustion
/// (EMFILE/ENFILE/ENOBUFS/ENOMEM): retrying immediately would spin, so the
/// caller should back off first.
bool accept_error_needs_backoff(int errno_value) noexcept;

}  // namespace tvviz::net
