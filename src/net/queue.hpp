// Bounded blocking queue used by the display daemon and its endpoints.
// The bound models the daemon's image buffer (§6: "the display daemon uses
// an image buffer to cope with faster rendering rates").
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "util/mutex.hpp"

namespace tvviz::net {

/// Result of a non-blocking pop: distinguishes "nothing right now" from
/// "closed and fully drained" so pollers know when to stop.
enum class TryPopResult {
  kItem,    ///< An item was dequeued.
  kEmpty,   ///< Momentarily empty; more items may still arrive.
  kClosed,  ///< Closed and drained; no item will ever arrive again.
};

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  /// Block until space is available, then enqueue. Returns false if the
  /// queue was closed.
  bool push(T item) TVVIZ_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Bounded-wait push: give up after `timeout` instead of blocking
  /// indefinitely. Returns false if the queue is closed or still full when
  /// the timeout expires. Used by flush paths that must make progress even
  /// when a consumer has vanished.
  bool push_for(T item, std::chrono::milliseconds timeout)
      TVVIZ_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::LockGuard lock(mutex_);
    while (!closed_ && queue_.size() >= capacity_) {
      if (not_full_.wait_until(mutex_, deadline) == std::cv_status::timeout &&
          !closed_ && queue_.size() >= capacity_)
        return false;
    }
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available. std::nullopt once closed and drained.
  std::optional<T> pop() TVVIZ_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    while (!closed_ && queue_.empty()) not_empty_.wait(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Bounded-wait pop: std::nullopt if nothing arrived within `timeout` (or
  /// the queue is closed and drained — check closed() to tell the cases
  /// apart). Lets periodic housekeeping (liveness reaping) share the
  /// consumer thread without a busy poll.
  std::optional<T> pop_for(std::chrono::milliseconds timeout)
      TVVIZ_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::LockGuard lock(mutex_);
    while (!closed_ && queue_.empty()) {
      if (not_empty_.wait_until(mutex_, deadline) == std::cv_status::timeout)
        break;
    }
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop. kItem fills `out`; kEmpty means retry later; kClosed
  /// means the queue was closed and every item has been drained.
  TryPopResult try_pop(T& out) TVVIZ_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    if (queue_.empty())
      return closed_ ? TryPopResult::kClosed : TryPopResult::kEmpty;
    out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return TryPopResult::kItem;
  }

  /// Non-blocking pop, optional form. Cannot distinguish "empty" from
  /// "closed and drained" — pollers that must terminate on close should use
  /// the TryPopResult overload.
  std::optional<T> try_pop() TVVIZ_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Close: pushes fail, pops drain then return nullopt.
  void close() TVVIZ_EXCLUDES(mutex_) {
    {
      util::LockGuard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const TVVIZ_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    return queue_.size();
  }

  bool closed() const TVVIZ_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    return closed_;
  }

 private:
  mutable util::Mutex mutex_;
  util::CondVar not_empty_, not_full_;
  std::deque<T> queue_ TVVIZ_GUARDED_BY(mutex_);
  std::size_t capacity_;
  bool closed_ TVVIZ_GUARDED_BY(mutex_) = false;
};

}  // namespace tvviz::net
