// Bounded blocking queue used by the display daemon and its endpoints.
// The bound models the daemon's image buffer (§6: "the display daemon uses
// an image buffer to cope with faster rendering rates").
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace tvviz::net {

/// Result of a non-blocking pop: distinguishes "nothing right now" from
/// "closed and fully drained" so pollers know when to stop.
enum class TryPopResult {
  kItem,    ///< An item was dequeued.
  kEmpty,   ///< Momentarily empty; more items may still arrive.
  kClosed,  ///< Closed and drained; no item will ever arrive again.
};

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  /// Block until space is available, then enqueue. Returns false if the
  /// queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Bounded-wait push: give up after `timeout` instead of blocking
  /// indefinitely. Returns false if the queue is closed or still full when
  /// the timeout expires. Used by flush paths that must make progress even
  /// when a consumer has vanished.
  bool push_for(T item, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          return closed_ || queue_.size() < capacity_;
        }))
      return false;
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available. std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Bounded-wait pop: std::nullopt if nothing arrived within `timeout` (or
  /// the queue is closed and drained — check closed() to tell the cases
  /// apart). Lets periodic housekeeping (liveness reaping) share the
  /// consumer thread without a busy poll.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop. kItem fills `out`; kEmpty means retry later; kClosed
  /// means the queue was closed and every item has been drained.
  TryPopResult try_pop(T& out) {
    std::lock_guard lock(mutex_);
    if (queue_.empty())
      return closed_ ? TryPopResult::kClosed : TryPopResult::kEmpty;
    out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return TryPopResult::kItem;
  }

  /// Non-blocking pop, optional form. Cannot distinguish "empty" from
  /// "closed and drained" — pollers that must terminate on close should use
  /// the TryPopResult overload.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Close: pushes fail, pops drain then return nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace tvviz::net
