#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tvviz::net {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError("tcp: " + what + ": " + std::strerror(errno));
}

sockaddr_in loopback(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

NetMessage hello(const char* role) {
  NetMessage msg;
  msg.type = MsgType::kHello;
  msg.codec = role;
  return msg;
}

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void fault_sleep_ms(const char* span_name, double ms) {
  obs::Span span(span_name);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}
}  // namespace

// ------------------------------------------------------- TcpConnection ----

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (auto injector = fault::active()) faults_ = injector->attach_connection();
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpConnection> TcpConnection::connect_local(int port) {
  if (auto injector = fault::active(); injector && injector->refuse_connect())
    throw SocketError("tcp: connect to 127.0.0.1:" + std::to_string(port) +
                      " refused (injected fault)");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError("tcp: socket() failed");
  const sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw SocketError("tcp: connect to 127.0.0.1:" + std::to_string(port) +
                      " failed");
  }
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0) {
    ::close(fd);
    throw_errno("setsockopt(TCP_NODELAY)");
  }
  return std::make_unique<TcpConnection>(fd);
}

std::unique_ptr<TcpConnection> TcpConnection::connect_local_retry(
    int port, const fault::RetryPolicy& policy, util::Rng rng) {
  fault::Backoff backoff(policy, rng);
  std::exception_ptr last;
  while (backoff.next()) {
    try {
      auto conn = connect_local(port);
      if (policy.io_timeout_ms > 0.0)
        conn->set_io_timeout_ms(policy.io_timeout_ms);
      return conn;
    } catch (const SocketError&) {
      last = std::current_exception();
    }
  }
  if (last) std::rethrow_exception(last);
  throw SocketError("tcp: connect to 127.0.0.1:" + std::to_string(port) +
                    " never attempted (empty retry policy)");
}

void TcpConnection::set_io_timeout_ms(double ms) noexcept {
  io_timeout_ms_ = ms;
  // Deadlines need a non-blocking fd: poll() only guards *entering* a
  // syscall, and a blocking send/recv whose data exceeds the free socket
  // buffer sleeps in the kernel until the peer drains it — indefinitely for
  // a stalled peer. Non-blocking, the syscall returns its partial progress
  // (or EAGAIN) and the loop re-enters wait_ready, where the deadline fires.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return;  // best effort: poll-only enforcement remains
  const int want = ms > 0.0 ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags) ::fcntl(fd_, F_SETFL, want);
}

double TcpConnection::op_deadline_ms() const noexcept {
  return io_timeout_ms_ > 0.0 ? steady_now_ms() + io_timeout_ms_ : -1.0;
}

void TcpConnection::wait_ready(short events, double deadline_ms) {
  if (deadline_ms < 0.0) return;
  static obs::Counter& timeouts = obs::counter("net.tcp.io_timeouts");
  for (;;) {
    const double remaining = deadline_ms - steady_now_ms();
    if (remaining <= 0.0) {
      timeouts.add(1);
      throw TimeoutError("tcp: I/O deadline of " +
                         std::to_string(io_timeout_ms_) + " ms expired");
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = events;
    const int r = ::poll(&pfd, 1, static_cast<int>(std::ceil(remaining)));
    if (r > 0) return;  // ready (or HUP/ERR: let the syscall surface it)
    if (r == 0) continue;  // deadline re-checked at the top
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void TcpConnection::write_all(const std::uint8_t* data, std::size_t len,
                              double deadline_ms) {
  // Loop over short writes (framed messages routinely exceed the socket
  // buffer); retry interrupted syscalls; surface real errors with errno.
  // Same partial-progress rule as writev_all: a deadline that expires once
  // bytes have gone out is a desynchronized stream, not a retryable timeout.
  std::size_t sent = 0;
  while (len > 0) {
    try {
      wait_ready(POLLOUT, deadline_ms);
    } catch (const TimeoutError&) {
      if (sent == 0) throw;
      static obs::Counter& partial = obs::counter("net.wire.partial_send");
      partial.add(1);
      shutdown();
      throw SendDeadlineError("tcp: I/O deadline expired after " +
                              std::to_string(sent) +
                              " bytes of a frame were sent; stream "
                              "desynchronized");
    }
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("send");
    }
    if (n == 0) throw SocketError("tcp: send made no progress");
    sent += static_cast<std::size_t>(n);
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::size_t TcpConnection::read_exact(std::uint8_t* data, std::size_t len,
                                      double deadline_ms) {
  // Loop over short reads until `len` bytes arrived or the stream ended.
  // An orderly close (recv() == 0) or a peer reset reports how many bytes
  // made it — the caller decides whether a partial read is a clean EOF
  // (zero bytes, frame boundary) or a WireError (mid-frame). Other errors
  // are real failures and throw instead of masquerading as a shutdown.
  // A deadline that expires with bytes already consumed into the (discarded)
  // destination buffer leaves the stream pointing mid-frame; retrying the
  // receive would misparse from there. Only a zero-progress timeout is
  // surfaced as the retryable TimeoutError.
  std::size_t got = 0;
  while (got < len) {
    try {
      wait_ready(POLLIN, deadline_ms);
    } catch (const TimeoutError&) {
      if (got == 0) throw;
      static obs::Counter& desync = obs::counter("net.wire.desync_timeouts");
      desync.add(1);
      throw WireError("tcp: I/O deadline expired after " + std::to_string(got) +
                      " of " + std::to_string(len) +
                      " bytes were consumed; stream desynchronized");
    }
    const ssize_t n = ::recv(fd_, data + got, len - got, 0);
    if (n == 0) return got;  // orderly close
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET) return got;  // peer vanished mid-stream
      throw_errno("recv");
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

void TcpConnection::writev_all(iovec* iov, int iov_count, double deadline_ms) {
  // Scatter-gather send: the whole frame (length prefix + header + payload
  // view) goes down in one sendmsg() in the common case; short writes only
  // happen once the frame exceeds the free socket-buffer space, and then the
  // iovec array is advanced in place and retried.
  static obs::Counter& syscalls = obs::counter("net.tcp.send_syscalls");
  msghdr mh{};
  mh.msg_iov = iov;
  mh.msg_iovlen = static_cast<std::size_t>(iov_count);
  std::size_t sent = 0;
  while (mh.msg_iovlen > 0) {
    try {
      wait_ready(POLLOUT, deadline_ms);
    } catch (const TimeoutError&) {
      if (sent == 0) throw;  // nothing on the wire yet: safe to retry in place
      // Part of the frame is already on the wire; a retried send would start
      // over at the length prefix and permanently desynchronize the
      // receiver's framing. Fail the connection instead of surfacing a
      // retryable timeout.
      static obs::Counter& partial = obs::counter("net.wire.partial_send");
      partial.add(1);
      shutdown();
      throw SendDeadlineError("tcp: I/O deadline expired after " +
                              std::to_string(sent) +
                              " bytes of a frame were sent; stream "
                              "desynchronized");
    }
    const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    syscalls.add(1);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("sendmsg");
    }
    if (n == 0) throw SocketError("tcp: send made no progress");
    sent += static_cast<std::size_t>(n);
    auto advance = static_cast<std::size_t>(n);
    while (mh.msg_iovlen > 0 && advance >= mh.msg_iov[0].iov_len) {
      advance -= mh.msg_iov[0].iov_len;
      ++mh.msg_iov;
      --mh.msg_iovlen;
    }
    if (mh.msg_iovlen > 0) {
      mh.msg_iov[0].iov_base =
          static_cast<std::uint8_t*>(mh.msg_iov[0].iov_base) + advance;
      mh.msg_iov[0].iov_len -= advance;
    }
  }
}

void TcpConnection::send_message(const NetMessage& msg) {
  static obs::Counter& msgs = obs::counter("net.tcp.messages_sent");
  static obs::Counter& bytes = obs::counter("net.tcp.bytes_sent");
  // Scatter-gather: the payload is never copied into a frame buffer; only
  // the small header fields are serialized, and the payload's own bytes are
  // handed to the kernel directly from the (shared, immutable) buffer.
  util::Bytes header_body = serialize_header(msg);
  const auto len =
      static_cast<std::uint32_t>(header_body.size() + msg.payload.size());
  std::uint8_t prefix[4];
  prefix[0] = static_cast<std::uint8_t>(len);
  prefix[1] = static_cast<std::uint8_t>(len >> 8);
  prefix[2] = static_cast<std::uint8_t>(len >> 16);
  prefix[3] = static_cast<std::uint8_t>(len >> 24);
  const double deadline = op_deadline_ms();
  if (faults_) {
    const auto fault = faults_->before_send(4 + header_body.size() +
                                                msg.payload.size(),
                                            4 + header_body.size());
    if (fault.delay_ms > 0.0) fault_sleep_ms("net.fault.delay", fault.delay_ms);
    // Corruption only touches the per-send scratch bytes (prefix + header),
    // never the shared immutable payload buffer.
    for (const auto& [off, mask] : fault.corrupt) {
      if (off < 4)
        prefix[off] ^= mask;
      else if (off - 4 < header_body.size())
        header_body[off - 4] ^= mask;
    }
    if (fault.drop_before) {
      shutdown();
      throw SocketError("tcp: connection dropped (injected fault)");
    }
    if (fault.truncate_to != fault::SendFault::kNoTruncate) {
      const std::uint8_t* regions[3] = {prefix, header_body.data(),
                                        msg.payload.data()};
      const std::size_t sizes[3] = {4, header_body.size(), msg.payload.size()};
      std::size_t remaining = fault.truncate_to;
      try {
        for (int i = 0; i < 3 && remaining > 0; ++i) {
          const std::size_t n = std::min(remaining, sizes[i]);
          if (n > 0) write_all(regions[i], n, deadline);
          remaining -= n;
        }
      } catch (const TimeoutError&) {
        // A stalled peer while injecting the truncation yields the same
        // outcome the fault wanted: a frame cut short and a dead connection.
      }
      shutdown();
      throw SocketError("tcp: frame truncated mid-send (injected fault)");
    }
  }
  msgs.add(1);
  bytes.add(len + 4u);
  iovec iov[3];
  iov[0] = {prefix, sizeof prefix};
  iov[1] = {header_body.data(), header_body.size()};
  int count = 2;
  if (!msg.payload.empty()) {
    iov[2] = {const_cast<std::uint8_t*>(msg.payload.data()),
              msg.payload.size()};
    count = 3;
  }
  writev_all(iov, count, deadline);
}

std::optional<NetMessage> TcpConnection::recv_message() {
  if (faults_) {
    const auto fault = faults_->before_recv();
    if (fault.stall_ms > 0.0) fault_sleep_ms("net.fault.stall", fault.stall_ms);
    if (fault.drop) {
      shutdown();
      throw SocketError("tcp: connection dropped (injected fault)");
    }
  }
  const double deadline = op_deadline_ms();
  std::uint8_t header[4];
  const std::size_t prefix_got = read_exact(header, 4, deadline);
  if (prefix_got == 0) return std::nullopt;  // clean EOF at a frame boundary
  if (prefix_got < 4) {
    // Regression guard: a peer dying inside the 4-byte length prefix used
    // to be folded into "orderly close"; a half-received frame must be a
    // loud, distinct wire error.
    static obs::Counter& partial = obs::counter("net.wire.partial_prefix");
    partial.add(1);
    throw WireError("tcp: peer closed inside the length prefix (got " +
                    std::to_string(prefix_got) + " of 4 bytes)");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > (1u << 30)) throw WireError("tcp: absurd frame length");
  // The body lands in a pooled buffer that becomes the message payload's
  // backing storage (deserialize_frame takes a view) — one read, no copy,
  // and the buffer returns to the pool when the last payload reference drops.
  auto& pool = util::BufferPool::global();
  util::Bytes body = pool.acquire(len);
  std::size_t body_got = 0;
  try {
    body_got = read_exact(body.data(), body.size(), deadline);
  } catch (const TimeoutError&) {
    // Even a zero-progress body timeout is past the point of no return: the
    // 4-byte prefix is consumed, so a retried recv_message would parse body
    // bytes as a fresh prefix. Same desync as a mid-read timeout.
    static obs::Counter& desync = obs::counter("net.wire.desync_timeouts");
    desync.add(1);
    pool.release(std::move(body));
    throw WireError(
        "tcp: I/O deadline expired between length prefix and frame body; "
        "stream desynchronized");
  } catch (...) {
    pool.release(std::move(body));
    throw;
  }
  if (body_got < body.size()) {
    static obs::Counter& partial = obs::counter("net.wire.partial_frame");
    partial.add(1);
    pool.release(std::move(body));
    throw WireError("tcp: peer closed mid-frame (got " +
                    std::to_string(body_got) + " of " + std::to_string(len) +
                    " body bytes)");
  }
  static obs::Counter& msgs = obs::counter("net.tcp.messages_received");
  static obs::Counter& bytes = obs::counter("net.tcp.bytes_received");
  msgs.add(1);
  bytes.add(body.size() + 4);
  return deserialize_frame(util::SharedBytes::adopt_pooled(std::move(body), pool));
}

void TcpConnection::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ------------------------------------------------------ TcpDaemonServer ----

TcpDaemonServer::TcpDaemonServer(int port, std::size_t display_buffer_frames)
    : daemon_(display_buffer_frames) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw SocketError("tcp: socket() failed");
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) !=
      0) {
    ::close(listen_fd_);
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = loopback(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listen_fd_);
    throw SocketError("tcp: bind failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw SocketError("tcp: listen failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpDaemonServer::~TcpDaemonServer() { shutdown(); }

void TcpDaemonServer::shutdown() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  daemon_.shutdown();
  {
    util::LockGuard lock(threads_mutex_);
    for (auto& c : connections_) c->shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  util::LockGuard lock(threads_mutex_);
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

void TcpDaemonServer::accept_loop() {
  double backoff_ms = 1.0;
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      // Only a dead listener (shutdown, EBADF) stops the loop. Transient
      // failures — a connection aborted in the backlog, a signal, or fd
      // exhaustion — are counted and retried, the EMFILE-class ones after a
      // capped backoff so the retry doesn't spin at 100% CPU.
      if (!running_.load() || !accept_should_retry(err)) return;
      static obs::Counter& errors = obs::counter("net.tcp.accept_errors");
      errors.add(1);
      if (accept_error_needs_backoff(err)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2.0, 100.0);
      }
      continue;
    }
    backoff_ms = 1.0;
    auto conn = std::make_shared<TcpConnection>(fd);
    // Role handshake. A malformed first frame now throws; drop the
    // connection rather than the whole accept loop.
    std::optional<NetMessage> first;
    try {
      first = conn->recv_message();
    } catch (const std::exception&) {
      continue;  // drop
    }
    if (!first || first->type != MsgType::kHello) continue;  // drop
    // Version/capability check. An endpoint from the future (or a corrupt
    // hello) is told *why* it is being refused with a kError frame instead
    // of a silent close, so the operator of the newer viewer sees
    // "unsupported protocol version 7" rather than a dead socket.
    static obs::Counter& rejected = obs::counter("net.tcp.hello_rejected");
    const auto refuse = [&](const std::string& reason) {
      rejected.add(1);
      try {
        conn->send_message(make_error(reason));
      } catch (const std::exception&) {
      }
    };
    HelloInfo info;
    try {
      info = parse_hello(*first);
    } catch (const std::exception& e) {
      refuse(std::string("malformed hello: ") + e.what());
      continue;
    }
    if (info.version == 0 || info.version > kProtocolVersion) {
      refuse("unsupported protocol version " + std::to_string(info.version) +
             " (this daemon speaks 1.." + std::to_string(kProtocolVersion) +
             ")");
      continue;
    }
    if (info.role != "renderer" && info.role != "display") {
      refuse("unknown endpoint role '" + info.role +
             "' (expected 'renderer' or 'display')");
      continue;
    }
    util::LockGuard lock(threads_mutex_);
    connections_.push_back(conn);
    if (info.role == "renderer")
      workers_.emplace_back([this, conn] { serve_renderer(conn); });
    else
      workers_.emplace_back([this, conn] { serve_display(conn); });
  }
}

void TcpDaemonServer::serve_renderer(std::shared_ptr<TcpConnection> conn) {
  auto port = daemon_.connect_renderer();
  // Writer: forward buffered control events toward the renderer.
  std::atomic<bool> reading{true};
  std::thread writer([&] {
    while (reading.load() && running_.load()) {
      bool sent = false;
      while (auto event = port->poll_control()) {
        NetMessage msg;
        msg.type = MsgType::kControl;
        msg.payload = event->serialize();
        try {
          conn->send_message(msg);
        } catch (const std::exception&) {
          return;
        }
        sent = true;
      }
      if (!sent)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Reader: frames from the renderer into the daemon. A renderer dying
  // mid-frame (WireError) or a socket failure is a disconnect, not a
  // std::terminate of the whole server.
  while (running_.load()) {
    std::optional<NetMessage> msg;
    try {
      msg = conn->recv_message();
    } catch (const std::exception&) {
      break;
    }
    if (!msg) break;
    port->send(std::move(*msg));
  }
  reading.store(false);
  writer.join();
}

void TcpDaemonServer::serve_display(std::shared_ptr<TcpConnection> conn) {
  auto port = daemon_.connect_display();
  if (display_retry_.io_timeout_ms > 0.0)
    conn->set_io_timeout_ms(display_retry_.io_timeout_ms);
  // Reader: control events from the display client (exceptions = client
  // disconnected; the writer notices the broken socket on its next frame).
  std::thread reader([&] {
    while (running_.load()) {
      std::optional<NetMessage> msg;
      try {
        msg = conn->recv_message();
      } catch (const TimeoutError&) {
        // Control traffic is sparse; idle is not a disconnect. Safe to retry:
        // recv_message only surfaces TimeoutError when zero bytes of the
        // frame were consumed (partial progress is a WireError instead).
        continue;
      } catch (const std::exception&) {
        return;
      }
      if (!msg) return;
      if (msg->type == MsgType::kControl)
        port->send_control(ControlEvent::deserialize(msg->payload));
    }
  });
  // Writer: relay frames to the display client. A stalled client (per-op
  // deadline expired) gets the policy's backoff-and-retry before the frame
  // — and the client — is given up on; a broken socket ends the relay
  // immediately. Retrying the same frame is safe because send_message only
  // surfaces TimeoutError when zero bytes of it reached the wire — a
  // deadline expiring mid-frame closes the connection with a SocketError
  // (the receiver's framing would desynchronize on a resend).
  util::Rng retry_rng(0xd15f1a6ULL ^ static_cast<std::uint64_t>(conn->fd()));
  bool socket_alive = true;
  while (socket_alive && running_.load()) {
    auto msg = port->next();
    if (!msg) break;  // daemon shut down
    fault::Backoff backoff(display_retry_, retry_rng.fork());
    bool sent = false;
    while (!sent && backoff.next()) {
      try {
        conn->send_message(*msg);
        sent = true;
      } catch (const TimeoutError&) {
        static obs::Counter& stalls = obs::counter("net.retry.display_stalls");
        stalls.add(1);
      } catch (const std::exception&) {
        socket_alive = false;
        break;
      }
    }
    if (!sent) break;  // attempts exhausted or socket gone
  }
  conn->shutdown();  // unblock the reader
  reader.join();
}

// ------------------------------------------------------ client endpoints ----

TcpRendererLink::TcpRendererLink(int port)
    : conn_(TcpConnection::connect_local(port)) {
  conn_->send_message(hello("renderer"));
  reader_ = std::thread([this] {
    while (true) {
      std::optional<NetMessage> msg;
      try {
        msg = conn_->recv_message();
      } catch (const std::exception&) {
        return;  // daemon gone or stream desynchronized: stop polling
      }
      if (!msg) return;
      if (msg->type != MsgType::kControl) continue;
      util::LockGuard lock(mutex_);
      pending_.push_back(ControlEvent::deserialize(msg->payload));
    }
  });
}

std::optional<ControlEvent> TcpRendererLink::poll_control() {
  util::LockGuard lock(mutex_);
  if (pending_.empty()) return std::nullopt;
  ControlEvent event = pending_.front();
  pending_.erase(pending_.begin());
  return event;
}

void TcpRendererLink::close() {
  if (conn_) conn_->shutdown();
  if (reader_.joinable()) reader_.join();
}

TcpRendererLink::~TcpRendererLink() { close(); }

TcpDisplayLink::TcpDisplayLink(int port)
    : conn_(TcpConnection::connect_local(port)) {
  conn_->send_message(hello("display"));
}

void TcpDisplayLink::send_control(const ControlEvent& event) {
  NetMessage msg;
  msg.type = MsgType::kControl;
  msg.payload = event.serialize();
  conn_->send_message(msg);
}

void TcpDisplayLink::close() {
  if (conn_) conn_->shutdown();
}

TcpDisplayLink::~TcpDisplayLink() { close(); }

}  // namespace tvviz::net
