#include "net/daemon.hpp"

#include <chrono>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tvviz::net {

namespace {
obs::Gauge& inbox_depth_gauge() {
  static obs::Gauge& g = obs::gauge("net.daemon.inbox_depth");
  return g;
}
}  // namespace

void DisplayDaemon::RendererPort::send(NetMessage msg) {
  daemon_->inbox_.push(Inbound{false, std::move(msg), {}});
  inbox_depth_gauge().update_max(
      static_cast<std::int64_t>(daemon_->inbox_.size()));
}

std::optional<ControlEvent> DisplayDaemon::RendererPort::poll_control() {
  return control_.try_pop();
}

std::optional<NetMessage> DisplayDaemon::DisplayPort::next() {
  return frames_.pop();
}

void DisplayDaemon::DisplayPort::send_control(const ControlEvent& event) {
  daemon_->inbox_.push(Inbound{true, {}, event});
  inbox_depth_gauge().update_max(
      static_cast<std::int64_t>(daemon_->inbox_.size()));
}

DisplayDaemon::DisplayDaemon(std::size_t display_buffer_frames)
    : display_buffer_frames_(display_buffer_frames),
      relay_thread_([this] { relay_loop(); }) {}

DisplayDaemon::~DisplayDaemon() {
  shutdown();
  if (relay_thread_.joinable()) relay_thread_.join();
}

std::shared_ptr<DisplayDaemon::RendererPort> DisplayDaemon::connect_renderer() {
  util::LockGuard lock(ports_mutex_);
  auto port = std::shared_ptr<RendererPort>(new RendererPort(this));
  renderers_.push_back(port);
  return port;
}

std::shared_ptr<DisplayDaemon::DisplayPort> DisplayDaemon::connect_display() {
  util::LockGuard lock(ports_mutex_);
  auto port = std::shared_ptr<DisplayPort>(
      new DisplayPort(this, display_buffer_frames_));
  displays_.push_back(port);
  return port;
}

void DisplayDaemon::set_wan_throttle(LinkModel link, double time_scale) {
  util::LockGuard lock(ports_mutex_);
  throttle_link_ = link;
  throttle_scale_ = time_scale;
}

void DisplayDaemon::shutdown() {
  if (!running_.exchange(false)) return;
  inbox_.close();
  // Flush before closing the ports: the relay thread keeps draining the
  // (closed) inbox, so every frame a renderer already handed over reaches
  // the display buffers. Closing the display queues first raced that drain
  // and silently dropped the tail frames of a run.
  if (relay_thread_.joinable()) relay_thread_.join();
  util::LockGuard lock(ports_mutex_);
  for (auto& d : displays_) d->frames_.close();
  for (auto& r : renderers_) r->control_.close();
}

void DisplayDaemon::broadcast_control(const ControlEvent& event) {
  util::LockGuard lock(ports_mutex_);
  for (auto& r : renderers_) r->control_.push(event);
}

void DisplayDaemon::relay_loop() {
  obs::set_thread_lane("daemon relay");
  static obs::Counter& frames_ctr = obs::counter("net.daemon.frames_relayed");
  static obs::Counter& bytes_ctr = obs::counter("net.daemon.bytes_relayed");
  static obs::Counter& controls_ctr =
      obs::counter("net.daemon.controls_broadcast");
  static obs::Gauge& buffer_depth =
      obs::gauge("net.daemon.display_buffer_depth");
  for (;;) {
    auto item = inbox_.pop();
    if (!item) return;  // shut down
    if (item->is_control) {
      controls_ctr.add(1);
      broadcast_control(item->control);
      continue;
    }
    NetMessage& msg = item->msg;
    const std::size_t wire = msg.wire_size();
    obs::Span relay_span("relay", msg.frame_index);

    double throttle_s = 0.0;
    std::vector<std::shared_ptr<DisplayPort>> displays;
    {
      util::LockGuard lock(ports_mutex_);
      displays = displays_;
      if (throttle_scale_ > 0.0)
        throttle_s = throttle_link_.transfer_seconds(wire) * throttle_scale_;
    }
    if (throttle_s > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(throttle_s));

    const bool whole_frame = msg.type == MsgType::kFrame ||
                             (msg.type == MsgType::kSubImage &&
                              msg.piece == msg.piece_count - 1);
    frames_relayed_.fetch_add(whole_frame ? 1 : 0);
    bytes_relayed_.fetch_add(wire);
    if (whole_frame) frames_ctr.add(1);
    bytes_ctr.add(wire);
    for (auto& d : displays) {
      // Blocking push in bounded slices: normal operation waits for buffer
      // space exactly like a plain push, but once shutdown begins (inbox
      // closed) the drain must terminate even if this display stopped
      // consuming. A slow-but-alive display keeps its tail frames: the
      // frame is only skipped once its buffer has stayed full with no pops
      // for the whole grace period.
      int stalled = 0;
      std::size_t last_depth = d->frames_.size();
      for (;;) {
        if (d->frames_.push_for(msg, std::chrono::milliseconds(50))) break;
        if (d->frames_.closed()) break;
        if (!inbox_.closed()) continue;
        const std::size_t depth = d->frames_.size();
        if (depth < last_depth)
          stalled = 0;  // the consumer is draining; keep flushing
        else if (++stalled >= 4)
          break;  // full and idle for ~200 ms: the display is gone
        last_depth = depth;
      }
      buffer_depth.update_max(static_cast<std::int64_t>(d->frames_.size()));
    }
  }
}

}  // namespace tvviz::net
