// Analytic network link models. The experiments compare transport
// mechanisms over the same wide-area path, so what matters is the
// latency/bandwidth regime, not packet-level fidelity. Presets are
// calibrated to land the paper's measured X-Window numbers (Table 2 /
// Figures 8 and 11) in the right regime for the two testbeds.
#pragma once

#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace tvviz::net {

/// First-order link: per-message latency plus size over bandwidth, with
/// optional fault events (loss and stalls) for chaos experiments.
struct LinkModel {
  std::string name = "link";
  double latency_s = 0.0;           ///< One-way per-message latency.
  double bandwidth_bytes_per_s = 1; ///< Sustained payload bandwidth.

  // WAN fault events. A lost message pays a retransmit (one extra RTT plus
  // the resend of its bytes); a stall freezes the link for stall_s. Both
  // are sampled per message from a caller-supplied PRNG so a seeded run
  // replays identically.
  double loss_rate = 0.0;   ///< P(a message needs a retransmit).
  double stall_rate = 0.0;  ///< P(a message hits a link stall).
  double stall_s = 0.0;     ///< Duration of one stall.

  double transfer_seconds(std::size_t bytes, int messages = 1) const noexcept {
    return latency_s * messages +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }

  /// transfer_seconds plus sampled fault events. With all rates zero this
  /// is exactly transfer_seconds (and draws nothing from `rng`).
  double transfer_seconds_faulty(std::size_t bytes, int messages,
                                 util::Rng& rng) const noexcept;
};

/// Fast local network between mass storage and the parallel renderer
/// (the paper assumes the data is local to the facility, moved over fast
/// LANs — Myrinet on the RWCP cluster, the O2K interconnect at Ames).
LinkModel lan_fast();

/// Wide-area path NASA Ames -> UC Davis (~120 miles), year-2000 Internet.
LinkModel wan_nasa_ucd();

/// Wide-area path RWCP (Japan) -> UC Davis: trans-Pacific, roughly half the
/// throughput and three times the latency of the NASA link (the paper's
/// Figure 11 X-display times are about twice the NASA case).
LinkModel wan_japan_ucd();

/// X-Window remote display cost over `link`: the X protocol moves
/// uncompressed pixels in many PutImage requests with acknowledgement
/// round-trips, so it pays the link latency repeatedly and cannot use the
/// full bandwidth. `chunk_bytes` is the request granularity.
struct XDisplayModel {
  LinkModel link;
  std::size_t chunk_bytes = 64 * 1024;  ///< Request size (scanline batches).
  double rtt_per_chunk_factor = 1.0;    ///< Round trips paid per request.
  double protocol_efficiency = 0.55;    ///< Fraction of raw bandwidth usable.

  /// Seconds to push one raw frame of `bytes` to the remote display.
  double frame_seconds(std::size_t bytes) const noexcept {
    const double chunks =
        static_cast<double>((bytes + chunk_bytes - 1) / chunk_bytes);
    return chunks * link.latency_s * 2.0 * rtt_per_chunk_factor +
           static_cast<double>(bytes) /
               (link.bandwidth_bytes_per_s * protocol_efficiency);
  }
};

/// Display-daemon transport: one streaming connection, latency paid once
/// per frame, full bandwidth available.
struct DaemonTransportModel {
  LinkModel link;

  double frame_seconds(std::size_t compressed_bytes, int pieces = 1) const noexcept {
    return link.transfer_seconds(compressed_bytes, pieces);
  }
};

}  // namespace tvviz::net
