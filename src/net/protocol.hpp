// Wire protocol of the image-transport framework (§4.1): frames and
// sub-images flow renderer -> daemon -> display; control events ("remote
// callbacks") flow display -> daemon -> every renderer interface.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"

namespace tvviz::net {

enum class MsgType : std::uint8_t {
  kHello = 0,        ///< Endpoint registration (payload: role string or HelloInfo).
  kFrame = 1,        ///< Complete compressed frame for one time step.
  kSubImage = 2,     ///< One compressed sub-image piece (parallel compression).
  kControl = 3,      ///< User-control event toward the renderer.
  kShutdown = 4,     ///< Orderly teardown.
  // Protocol v2 (the multi-client frame hub). A v1 endpoint never sends or
  // receives these; v2 servers keep speaking v1 to legacy single-client
  // viewers, so the additions are strictly backward compatible.
  kHelloAck = 5,     ///< Server accepts a hello (payload: HelloInfo echo).
  kHeartbeat = 6,    ///< Client liveness beacon (empty payload).
  kAck = 7,          ///< Client acknowledges display of frame_index.
  kError = 8,        ///< Descriptive failure (payload: UTF-8 message), then close.
  // Protocol v3 (the relay tree). Frames travel by reference between hubs
  // that keep content-addressed caches: the upstream hub advertises a frame
  // with kFrameRef (step + ContentId + size, no payload bytes); the
  // downstream edge answers kFrameFetch only when its cache misses and the
  // payload itself crosses the wire once, as kFrameData. Sent only to peers
  // that announced wants_frame_refs in a v3 hello, so v1/v2 endpoints never
  // see them.
  kFrameRef = 9,     ///< Frame advertisement by content id (FrameRefInfo payload).
  kFrameFetch = 10,  ///< Cache-miss request for a ContentId (8-byte payload).
  kFrameData = 11,   ///< Fetched frame body; header mirrors the original frame.
};

/// Highest MsgType value a well-formed frame may carry (wire validation).
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::kFrameData);

/// Version of the hello/capability handshake this build speaks. v1 is the
/// legacy role-string hello ("renderer"/"display" in the codec field); v2
/// adds the HelloInfo payload (client identity, resume point, heartbeats);
/// v3 adds frame-by-reference transport (wants_frame_refs capability and
/// the kFrameRef/kFrameFetch/kFrameData exchange); v4 adds the depth-plane
/// extension (wants_depth capability and the kFrame depth container) for
/// the image-warping viewer.
inline constexpr std::uint32_t kProtocolVersion = 4;

/// Stable identity of one encoded frame payload: FNV-1a over the codec-name
/// bytes then the payload bytes (see content_id_of). Computed once at cache
/// insert; any peer can recompute it from a received frame, which doubles as
/// an integrity check on fetched bodies.
using ContentId = std::uint64_t;

/// Read one optional trailing capability byte of a hello payload: absent
/// (an older sender stopped writing before it) reads as false, present
/// reads as its boolean value. This is the single sanctioned way to probe
/// trailing hello bytes — every capability added this way negotiates
/// identically, and tvviz-analyzer's hello-trailing-bytes check flags
/// hand-rolled remaining()/u8() probes (DESIGN.md §18).
inline bool read_trailing_capability(util::ByteReader& r) {
  return r.remaining() > 0 && r.u8() != 0;
}

/// Capability payload of a v2 kHello (and the server's kHelloAck echo).
/// A v1 hello has an empty payload; deserialize_hello maps it to version 1
/// with the role taken from the message's codec field, so one parse path
/// serves both generations.
struct HelloInfo {
  std::uint32_t version = kProtocolVersion;
  std::string role;            ///< "renderer" or "display".
  std::string client_id;       ///< Stable viewer identity; empty = assign one.
  std::int32_t last_acked_step = -1;  ///< Resume point; -1 = from live stream.
  std::uint32_t queue_frames = 0;     ///< Requested send-queue bound; 0 = default.
  bool wants_heartbeat = false;       ///< Client will send kHeartbeat beacons.
  /// v3 capability, appended as a trailing byte (v2 parsers ignore trailing
  /// bytes by contract): this display keeps a content-addressed cache and
  /// wants frames advertised as kFrameRef instead of shipped in full.
  bool wants_frame_refs = false;
  /// v4 capability, appended the same way (one more trailing byte): this
  /// display runs a render::Warper and wants 2.5D depth-container frames.
  /// Servers strip the depth plane for peers that did not announce it.
  bool wants_depth = false;

  util::Bytes serialize() const;
  static HelloInfo deserialize(std::span<const std::uint8_t> payload);
};


/// User-control events the display client can send (§5). They are buffered
/// by the renderer and applied to the *next* frame; in-flight rendering is
/// never interrupted.
enum class ControlKind : std::uint8_t {
  kSetView = 0,       ///< New azimuth/elevation (radians) and zoom.
  kSetColorMap = 1,   ///< Switch transfer-function preset by name.
  kSetCodec = 2,      ///< Switch compression method by name.
  kStart = 3,
  kStop = 4,
};

struct ControlEvent {
  ControlKind kind = ControlKind::kStart;
  double azimuth = 0.0, elevation = 0.0, zoom = 1.0;
  std::string name;  ///< Colormap or codec name.

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(kind));
    w.f64(azimuth);
    w.f64(elevation);
    w.f64(zoom);
    w.str(name);
    return w.take();
  }

  static ControlEvent deserialize(std::span<const std::uint8_t> data) {
    util::ByteReader r(data);
    ControlEvent e;
    e.kind = static_cast<ControlKind>(r.u8());
    e.azimuth = r.f64();
    e.elevation = r.f64();
    e.zoom = r.f64();
    e.name = r.str();
    return e;
  }
};

/// Framed daemon message.
struct NetMessage {
  MsgType type = MsgType::kHello;
  std::int32_t frame_index = -1;  ///< Time step for kFrame/kSubImage.
  std::int32_t piece = 0;         ///< Sub-image index within the frame.
  std::int32_t piece_count = 1;   ///< Total sub-images for this frame.
  std::string codec;              ///< Codec name the payload was encoded with.
  /// Refcounted: copying a NetMessage (hub fan-out, cache, resume replay)
  /// shares the payload allocation instead of duplicating it.
  util::SharedBytes payload;

  std::size_t wire_size() const noexcept {
    // Framing overhead: type + indices + codec-name + length prefix.
    return payload.size() + 16 + codec.size();
  }
};

/// Flat wire encoding of a NetMessage (the TCP transport's frame body).
/// Reserved to the exact output size — never reallocates mid-frame.
util::Bytes serialize_message(const NetMessage& msg);

/// Just the header fields — everything before the payload bytes, including
/// the payload-length varint. The scatter-gather send path hands this small
/// buffer plus the payload view to one writev; concatenated they equal
/// serialize_message(msg).
util::Bytes serialize_header(const NetMessage& msg);

/// Exact size of serialize_header's output.
std::size_t header_wire_size(const NetMessage& msg) noexcept;

NetMessage deserialize_message(std::span<const std::uint8_t> data);

/// Zero-copy parse of a whole frame body: the returned message's payload is
/// an aliasing view into `body` (which stays alive as long as the payload).
NetMessage deserialize_frame(util::SharedBytes body);

/// Parse a kHello message of either generation: v2 from the HelloInfo
/// payload, v1 from the legacy role-in-codec form (empty payload, mapped to
/// version 1). Throws std::runtime_error on a malformed v2 payload.
/// Validates nothing about the version itself — callers decide what to
/// reject (and should answer an unsupported version with a kError frame).
HelloInfo parse_hello(const NetMessage& msg);

/// Build a v2 kHello carrying `info` (role mirrored into the codec field so
/// v1 servers still understand the registration).
NetMessage make_hello(const HelloInfo& info);

/// Build a kError frame whose payload is the UTF-8 `message`.
NetMessage make_error(const std::string& message);

/// The payload of a kError frame as a string.
std::string error_text(const NetMessage& msg);

// ------------------------------------------------ frame-by-reference (v3) --

/// The ContentId of a frame message: util::fnv1a over the codec-name bytes,
/// chained over the payload bytes. Including the codec keeps two encodings
/// of the same bitstream distinct; hashing only wire-visible bytes means a
/// receiver can recompute the id from a kFrameData it just parsed.
ContentId content_id_of(const NetMessage& msg) noexcept;

/// Body of a kFrameRef: everything an edge needs to reconstruct the frame
/// once it has (or fetches) the payload. The ref message's header fields
/// (frame_index/piece/piece_count/codec) mirror the original frame's, so
/// step-level drop policies treat refs exactly like the frames they stand
/// for.
struct FrameRefInfo {
  MsgType frame_type = MsgType::kFrame;  ///< kFrame or kSubImage.
  ContentId content = 0;
  std::uint64_t payload_bytes = 0;  ///< Size of the advertised payload.

  util::Bytes serialize() const;
  static FrameRefInfo deserialize(std::span<const std::uint8_t> payload);
};

/// Advertise `frame` by reference: a kFrameRef with `frame`'s header fields
/// and a FrameRefInfo payload (no frame bytes).
NetMessage make_frame_ref(const NetMessage& frame, ContentId content);

/// Parse a kFrameRef body. Throws WireError on a non-ref or malformed
/// message.
FrameRefInfo parse_frame_ref(const NetMessage& msg);

/// Cache-miss request for one ContentId.
NetMessage make_frame_fetch(ContentId content);
ContentId parse_frame_fetch(const NetMessage& msg);

/// Ship a cached frame in answer to a fetch: same header fields and (shared,
/// never copied) payload as `frame`, with the type swapped to kFrameData so
/// the receiver knows to match it against its pending fetches by recomputed
/// ContentId rather than display it directly.
NetMessage make_frame_data(const NetMessage& frame);

// ------------------------------------------------------ depth planes (v4) --
//
// A 2.5D frame travels as an ordinary kFrame whose payload is a container:
//
//   varint(color_len) | color bytes (inner image codec) | depth-plane bytes
//
// and whose codec name is the inner codec's prefixed with kDepthCodecPrefix
// ("zd4+jpeg75", "zd4+raw", ...). Riding *inside* the payload — rather than
// as trailing frame bytes — keeps parse_frame's no-trailing-bytes contract
// intact and lets relays treat the container as an opaque cached body
// (ContentId covers codec + payload as usual). A hub strips the plane for
// any viewer that did not announce wants_depth, so pre-v4 decoders never
// see the container codec name.

/// Codec-name prefix marking a depth-container frame.
inline constexpr const char* kDepthCodecPrefix = "zd4+";

/// True when `msg` is a kFrame (or kFrameData) whose codec carries the
/// depth-container prefix.
bool is_depth_frame(const NetMessage& msg) noexcept;

/// Wrap a color frame and an encoded depth plane (codec/depth_plane.hpp)
/// into a depth-container kFrame. Header fields mirror `color`'s.
NetMessage make_depth_frame(const NetMessage& color,
                            std::span<const std::uint8_t> depth_plane);

/// The color frame inside a depth container, with the inner codec name
/// restored and the payload an aliasing view (no copy) of `msg`'s. Throws
/// WireError if `msg` is not a well-formed depth container.
NetMessage strip_depth(const NetMessage& msg);

/// Both halves of a depth container: the color frame (as strip_depth) plus
/// an aliasing view of the encoded depth-plane bytes.
struct DepthFrameParts {
  NetMessage color;
  util::SharedBytes depth_plane;
};
DepthFrameParts split_depth_frame(const NetMessage& msg);

}  // namespace tvviz::net
