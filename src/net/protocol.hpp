// Wire protocol of the image-transport framework (§4.1): frames and
// sub-images flow renderer -> daemon -> display; control events ("remote
// callbacks") flow display -> daemon -> every renderer interface.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace tvviz::net {

enum class MsgType : std::uint8_t {
  kHello = 0,        ///< Endpoint registration (payload: role string).
  kFrame = 1,        ///< Complete compressed frame for one time step.
  kSubImage = 2,     ///< One compressed sub-image piece (parallel compression).
  kControl = 3,      ///< User-control event toward the renderer.
  kShutdown = 4,     ///< Orderly teardown.
};

/// User-control events the display client can send (§5). They are buffered
/// by the renderer and applied to the *next* frame; in-flight rendering is
/// never interrupted.
enum class ControlKind : std::uint8_t {
  kSetView = 0,       ///< New azimuth/elevation (radians) and zoom.
  kSetColorMap = 1,   ///< Switch transfer-function preset by name.
  kSetCodec = 2,      ///< Switch compression method by name.
  kStart = 3,
  kStop = 4,
};

struct ControlEvent {
  ControlKind kind = ControlKind::kStart;
  double azimuth = 0.0, elevation = 0.0, zoom = 1.0;
  std::string name;  ///< Colormap or codec name.

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(kind));
    w.f64(azimuth);
    w.f64(elevation);
    w.f64(zoom);
    w.str(name);
    return w.take();
  }

  static ControlEvent deserialize(std::span<const std::uint8_t> data) {
    util::ByteReader r(data);
    ControlEvent e;
    e.kind = static_cast<ControlKind>(r.u8());
    e.azimuth = r.f64();
    e.elevation = r.f64();
    e.zoom = r.f64();
    e.name = r.str();
    return e;
  }
};

/// Framed daemon message.
struct NetMessage {
  MsgType type = MsgType::kHello;
  std::int32_t frame_index = -1;  ///< Time step for kFrame/kSubImage.
  std::int32_t piece = 0;         ///< Sub-image index within the frame.
  std::int32_t piece_count = 1;   ///< Total sub-images for this frame.
  std::string codec;              ///< Codec name the payload was encoded with.
  util::Bytes payload;

  std::size_t wire_size() const noexcept {
    // Framing overhead: type + indices + codec-name + length prefix.
    return payload.size() + 16 + codec.size();
  }
};

/// Flat wire encoding of a NetMessage (the TCP transport's frame body).
util::Bytes serialize_message(const NetMessage& msg);
NetMessage deserialize_message(std::span<const std::uint8_t> data);

}  // namespace tvviz::net
