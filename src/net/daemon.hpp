// The display daemon and its two interfaces (§4.1). The daemon decouples the
// parallel renderer from the display: it accepts any number of renderer and
// display connections, relays (compressed) frames forward, and carries user
// control events ("remote callbacks") back to every renderer interface.
//
// This is an in-process implementation: connections are queue pairs and the
// daemon is a relay thread. The WAN hop daemon -> display can optionally be
// throttled against a LinkModel so interactive examples feel the network.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/link.hpp"
#include "net/protocol.hpp"
#include "net/queue.hpp"
#include "util/mutex.hpp"

namespace tvviz::net {

class DisplayDaemon {
 public:
  /// Renderer-side connection: the renderer interface of §4.1.
  class RendererPort {
   public:
    /// Ship a frame or sub-image toward the display(s).
    void send(NetMessage msg);

    /// Buffered user-control events, oldest first (applied between frames).
    std::optional<ControlEvent> poll_control();

   private:
    friend class DisplayDaemon;
    explicit RendererPort(DisplayDaemon* daemon) : daemon_(daemon) {}
    DisplayDaemon* daemon_;
    BlockingQueue<ControlEvent> control_{1024};
  };

  /// Display-side connection: the display interface of §4.1.
  class DisplayPort {
   public:
    /// Next relayed message; blocks. std::nullopt after daemon shutdown.
    std::optional<NetMessage> next();

    /// Non-blocking variant. kItem fills `out`; kEmpty means no frame is
    /// buffered yet; kClosed means the daemon shut down and the buffer is
    /// drained — stop polling.
    TryPopResult try_next(NetMessage& out) { return frames_.try_pop(out); }

    /// Non-blocking variant, optional form. nullopt for *both* "no frame
    /// yet" and "shut down"; check closed() (or use the TryPopResult
    /// overload) so polling loops terminate after DisplayDaemon::shutdown().
    std::optional<NetMessage> try_next() { return frames_.try_pop(); }

    /// True once the daemon has shut down. Buffered frames may remain —
    /// keep draining with try_next until it reports kClosed.
    bool closed() const { return frames_.closed(); }

    /// Send a user-control event toward every renderer interface.
    void send_control(const ControlEvent& event);

    std::size_t buffered() const { return frames_.size(); }

   private:
    friend class DisplayDaemon;
    DisplayPort(DisplayDaemon* daemon, std::size_t buffer_frames)
        : daemon_(daemon), frames_(buffer_frames) {}
    DisplayDaemon* daemon_;
    BlockingQueue<NetMessage> frames_;
  };

  /// `display_buffer_frames` bounds each display port's image buffer (§6).
  explicit DisplayDaemon(std::size_t display_buffer_frames = 8);
  ~DisplayDaemon();

  DisplayDaemon(const DisplayDaemon&) = delete;
  DisplayDaemon& operator=(const DisplayDaemon&) = delete;

  std::shared_ptr<RendererPort> connect_renderer()
      TVVIZ_EXCLUDES(ports_mutex_);
  std::shared_ptr<DisplayPort> connect_display() TVVIZ_EXCLUDES(ports_mutex_);

  /// Throttle daemon->display forwarding against `link`, with virtual time
  /// scaled by `time_scale` (0 disables; 0.1 = 10x faster than real).
  void set_wan_throttle(LinkModel link, double time_scale)
      TVVIZ_EXCLUDES(ports_mutex_);

  /// Orderly shutdown: stop relaying, wake all blocked endpoints.
  void shutdown() TVVIZ_EXCLUDES(ports_mutex_);

  std::uint64_t frames_relayed() const noexcept { return frames_relayed_.load(); }
  std::uint64_t bytes_relayed() const noexcept { return bytes_relayed_.load(); }

 private:
  /// May sleep (WAN throttle) and block on display buffers: never called
  /// with ports_mutex_ held.
  void relay_loop() TVVIZ_EXCLUDES(ports_mutex_);
  void broadcast_control(const ControlEvent& event)
      TVVIZ_EXCLUDES(ports_mutex_);

  struct Inbound {
    bool is_control = false;
    NetMessage msg;
    ControlEvent control;
  };

  BlockingQueue<Inbound> inbox_{4096};
  util::Mutex ports_mutex_;
  std::vector<std::shared_ptr<RendererPort>> renderers_
      TVVIZ_GUARDED_BY(ports_mutex_);
  std::vector<std::shared_ptr<DisplayPort>> displays_
      TVVIZ_GUARDED_BY(ports_mutex_);
  std::size_t display_buffer_frames_;
  LinkModel throttle_link_ TVVIZ_GUARDED_BY(ports_mutex_){};
  double throttle_scale_ TVVIZ_GUARDED_BY(ports_mutex_) = 0.0;
  std::atomic<std::uint64_t> frames_relayed_{0};
  std::atomic<std::uint64_t> bytes_relayed_{0};
  std::atomic<bool> running_{true};
  std::thread relay_thread_;
};

}  // namespace tvviz::net
