#include "net/protocol.hpp"

#include <stdexcept>

namespace tvviz::net {

util::Bytes serialize_message(const NetMessage& msg) {
  util::ByteWriter w(msg.payload.size() + msg.codec.size() + 24);
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u32(static_cast<std::uint32_t>(msg.frame_index));
  w.u32(static_cast<std::uint32_t>(msg.piece));
  w.u32(static_cast<std::uint32_t>(msg.piece_count));
  w.str(msg.codec);
  w.varint(msg.payload.size());
  w.raw(msg.payload);
  return w.take();
}

NetMessage deserialize_message(std::span<const std::uint8_t> data) {
  // A corrupt or truncated WAN frame must fail loudly and descriptively, not
  // produce an out-of-range enum or trigger an over-long read. Every length
  // is validated against the bytes actually present before it is trusted.
  try {
    util::ByteReader r(data);
    NetMessage msg;
    const std::uint8_t raw_type = r.u8();
    if (raw_type > static_cast<std::uint8_t>(MsgType::kShutdown))
      throw std::runtime_error("net: invalid message type " +
                               std::to_string(raw_type));
    msg.type = static_cast<MsgType>(raw_type);
    msg.frame_index = static_cast<std::int32_t>(r.u32());
    msg.piece = static_cast<std::int32_t>(r.u32());
    msg.piece_count = static_cast<std::int32_t>(r.u32());
    const std::size_t codec_len = r.varint();
    if (codec_len > r.remaining())
      throw std::runtime_error(
          "net: codec name length " + std::to_string(codec_len) +
          " exceeds the " + std::to_string(r.remaining()) +
          " bytes remaining in the frame");
    const auto codec_bytes = r.raw(codec_len);
    msg.codec.assign(codec_bytes.begin(), codec_bytes.end());
    const std::size_t len = r.varint();
    if (len > r.remaining())
      throw std::runtime_error(
          "net: payload length " + std::to_string(len) + " exceeds the " +
          std::to_string(r.remaining()) + " bytes remaining in the frame");
    const auto s = r.raw(len);
    msg.payload.assign(s.begin(), s.end());
    if (!r.done())
      throw std::runtime_error("net: " + std::to_string(r.remaining()) +
                               " trailing bytes after message payload");
    return msg;
  } catch (const std::out_of_range& e) {
    throw std::runtime_error(std::string("net: truncated message frame (") +
                             e.what() + ")");
  }
}

}  // namespace tvviz::net
