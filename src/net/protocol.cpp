#include "net/protocol.hpp"

namespace tvviz::net {

util::Bytes serialize_message(const NetMessage& msg) {
  util::ByteWriter w(msg.payload.size() + msg.codec.size() + 24);
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u32(static_cast<std::uint32_t>(msg.frame_index));
  w.u32(static_cast<std::uint32_t>(msg.piece));
  w.u32(static_cast<std::uint32_t>(msg.piece_count));
  w.str(msg.codec);
  w.varint(msg.payload.size());
  w.raw(msg.payload);
  return w.take();
}

NetMessage deserialize_message(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  NetMessage msg;
  msg.type = static_cast<MsgType>(r.u8());
  msg.frame_index = static_cast<std::int32_t>(r.u32());
  msg.piece = static_cast<std::int32_t>(r.u32());
  msg.piece_count = static_cast<std::int32_t>(r.u32());
  msg.codec = r.str();
  const std::size_t len = r.varint();
  const auto s = r.raw(len);
  msg.payload.assign(s.begin(), s.end());
  return msg;
}

}  // namespace tvviz::net
