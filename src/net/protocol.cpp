#include "net/protocol.hpp"

#include <stdexcept>

namespace tvviz::net {

util::Bytes HelloInfo::serialize() const {
  util::ByteWriter w;
  w.u32(version);
  w.str(role);
  w.str(client_id);
  w.u32(static_cast<std::uint32_t>(last_acked_step));
  w.u32(queue_frames);
  w.u8(wants_heartbeat ? 1 : 0);
  return w.take();
}

HelloInfo HelloInfo::deserialize(std::span<const std::uint8_t> payload) {
  try {
    util::ByteReader r(payload);
    HelloInfo info;
    info.version = r.u32();
    info.role = r.str();
    info.client_id = r.str();
    info.last_acked_step = static_cast<std::int32_t>(r.u32());
    info.queue_frames = r.u32();
    info.wants_heartbeat = r.u8() != 0;
    // Ignore trailing bytes: a *newer* client may append capabilities this
    // build does not know; the version field governs compatibility.
    return info;
  } catch (const std::out_of_range&) {
    throw std::runtime_error("net: truncated hello capability payload");
  }
}

HelloInfo parse_hello(const NetMessage& msg) {
  if (msg.type != MsgType::kHello)
    throw std::runtime_error("net: parse_hello on a non-hello message");
  if (msg.payload.empty()) {
    // Legacy v1 hello: the role travels in the codec field.
    HelloInfo info;
    info.version = 1;
    info.role = msg.codec;
    return info;
  }
  return HelloInfo::deserialize(msg.payload);
}

NetMessage make_hello(const HelloInfo& info) {
  NetMessage msg;
  msg.type = MsgType::kHello;
  msg.codec = info.role;
  msg.payload = info.serialize();
  return msg;
}

NetMessage make_error(const std::string& message) {
  NetMessage msg;
  msg.type = MsgType::kError;
  msg.payload.assign(message.begin(), message.end());
  return msg;
}

std::string error_text(const NetMessage& msg) {
  return std::string(msg.payload.begin(), msg.payload.end());
}

util::Bytes serialize_message(const NetMessage& msg) {
  util::ByteWriter w(msg.payload.size() + msg.codec.size() + 24);
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u32(static_cast<std::uint32_t>(msg.frame_index));
  w.u32(static_cast<std::uint32_t>(msg.piece));
  w.u32(static_cast<std::uint32_t>(msg.piece_count));
  w.str(msg.codec);
  w.varint(msg.payload.size());
  w.raw(msg.payload);
  return w.take();
}

NetMessage deserialize_message(std::span<const std::uint8_t> data) {
  // A corrupt or truncated WAN frame must fail loudly and descriptively, not
  // produce an out-of-range enum or trigger an over-long read. Every length
  // is validated against the bytes actually present before it is trusted.
  try {
    util::ByteReader r(data);
    NetMessage msg;
    const std::uint8_t raw_type = r.u8();
    if (raw_type > kMaxMsgType)
      throw std::runtime_error("net: invalid message type " +
                               std::to_string(raw_type));
    msg.type = static_cast<MsgType>(raw_type);
    msg.frame_index = static_cast<std::int32_t>(r.u32());
    msg.piece = static_cast<std::int32_t>(r.u32());
    msg.piece_count = static_cast<std::int32_t>(r.u32());
    const std::size_t codec_len = r.varint();
    if (codec_len > r.remaining())
      throw std::runtime_error(
          "net: codec name length " + std::to_string(codec_len) +
          " exceeds the " + std::to_string(r.remaining()) +
          " bytes remaining in the frame");
    const auto codec_bytes = r.raw(codec_len);
    msg.codec.assign(codec_bytes.begin(), codec_bytes.end());
    const std::size_t len = r.varint();
    if (len > r.remaining())
      throw std::runtime_error(
          "net: payload length " + std::to_string(len) + " exceeds the " +
          std::to_string(r.remaining()) + " bytes remaining in the frame");
    const auto s = r.raw(len);
    msg.payload.assign(s.begin(), s.end());
    if (!r.done())
      throw std::runtime_error("net: " + std::to_string(r.remaining()) +
                               " trailing bytes after message payload");
    return msg;
  } catch (const std::out_of_range& e) {
    throw std::runtime_error(std::string("net: truncated message frame (") +
                             e.what() + ")");
  }
}

}  // namespace tvviz::net
