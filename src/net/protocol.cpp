#include "net/protocol.hpp"

#include "net/errors.hpp"
#include "util/hash.hpp"

#include <stdexcept>
#include <utility>

namespace tvviz::net {

util::Bytes HelloInfo::serialize() const {
  util::ByteWriter w(4 + util::varint_size(role.size()) + role.size() +
                     util::varint_size(client_id.size()) + client_id.size() +
                     4 + 4 + 1 + 1 + 1);
  w.u32(version);
  w.str(role);
  w.str(client_id);
  w.u32(static_cast<std::uint32_t>(last_acked_step));
  w.u32(queue_frames);
  w.u8(wants_heartbeat ? 1 : 0);
  // v3 capability, strictly appended: v2 parsers ignore trailing bytes.
  w.u8(wants_frame_refs ? 1 : 0);
  // v4 capability, one more trailing byte; v3 parsers ignore it.
  w.u8(wants_depth ? 1 : 0);
  return w.take();
}

HelloInfo HelloInfo::deserialize(std::span<const std::uint8_t> payload) {
  try {
    util::ByteReader r(payload);
    HelloInfo info;
    info.version = r.u32();
    info.role = r.str();
    info.client_id = r.str();
    info.last_acked_step = static_cast<std::int32_t>(r.u32());
    info.queue_frames = r.u32();
    info.wants_heartbeat = r.u8() != 0;
    // Appended v3 capability; absent from a v2 sender's payload.
    info.wants_frame_refs = read_trailing_capability(r);
    // Appended v4 capability; absent from a v2/v3 sender's payload.
    info.wants_depth = read_trailing_capability(r);
    // Ignore trailing bytes: a *newer* client may append capabilities this
    // build does not know; the version field governs compatibility.
    return info;
  } catch (const std::out_of_range&) {
    throw WireError("net: truncated hello capability payload");
  }
}

HelloInfo parse_hello(const NetMessage& msg) {
  if (msg.type != MsgType::kHello)
    throw WireError("net: parse_hello on a non-hello message");
  if (msg.payload.empty()) {
    // Legacy v1 hello: the role travels in the codec field.
    HelloInfo info;
    info.version = 1;
    info.role = msg.codec;
    return info;
  }
  return HelloInfo::deserialize(msg.payload);
}

NetMessage make_hello(const HelloInfo& info) {
  NetMessage msg;
  msg.type = MsgType::kHello;
  msg.codec = info.role;
  msg.payload = info.serialize();
  return msg;
}

NetMessage make_error(const std::string& message) {
  NetMessage msg;
  msg.type = MsgType::kError;
  msg.payload = util::SharedBytes::copy_of(
      {reinterpret_cast<const std::uint8_t*>(message.data()), message.size()});
  return msg;
}

std::string error_text(const NetMessage& msg) {
  return std::string(msg.payload.begin(), msg.payload.end());
}

std::size_t header_wire_size(const NetMessage& msg) noexcept {
  return 1 + 4 + 4 + 4 + util::varint_size(msg.codec.size()) +
         msg.codec.size() + util::varint_size(msg.payload.size());
}

namespace {

void write_header(util::ByteWriter& w, const NetMessage& msg) {
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u32(static_cast<std::uint32_t>(msg.frame_index));
  w.u32(static_cast<std::uint32_t>(msg.piece));
  w.u32(static_cast<std::uint32_t>(msg.piece_count));
  w.str(msg.codec);
  w.varint(msg.payload.size());
}

/// Shared validating parse: fills every header field of `msg` and returns
/// the payload's [offset, length) within `data`. Copying vs. viewing the
/// payload slice is the caller's choice.
std::pair<std::size_t, std::size_t> parse_frame(
    std::span<const std::uint8_t> data, NetMessage& msg) {
  // A corrupt or truncated WAN frame must fail loudly and descriptively, not
  // produce an out-of-range enum or trigger an over-long read. Every length
  // is validated against the bytes actually present before it is trusted.
  try {
    util::ByteReader r(data);
    const std::uint8_t raw_type = r.u8();
    if (raw_type > kMaxMsgType)
      throw WireError("net: invalid message type " +
                               std::to_string(raw_type));
    msg.type = static_cast<MsgType>(raw_type);
    msg.frame_index = static_cast<std::int32_t>(r.u32());
    msg.piece = static_cast<std::int32_t>(r.u32());
    msg.piece_count = static_cast<std::int32_t>(r.u32());
    const std::size_t codec_len = r.varint();
    if (codec_len > r.remaining())
      throw WireError(
          "net: codec name length " + std::to_string(codec_len) +
          " exceeds the " + std::to_string(r.remaining()) +
          " bytes remaining in the frame");
    const auto codec_bytes = r.raw(codec_len);
    msg.codec.assign(codec_bytes.begin(), codec_bytes.end());
    const std::size_t len = r.varint();
    if (len > r.remaining())
      throw WireError(
          "net: payload length " + std::to_string(len) + " exceeds the " +
          std::to_string(r.remaining()) + " bytes remaining in the frame");
    const auto s = r.raw(len);
    if (!r.done())
      throw WireError("net: " + std::to_string(r.remaining()) +
                               " trailing bytes after message payload");
    return {static_cast<std::size_t>(s.data() - data.data()), len};
  } catch (const std::out_of_range& e) {
    throw WireError(std::string("net: truncated message frame (") +
                             e.what() + ")");
  }
}

}  // namespace

util::Bytes serialize_header(const NetMessage& msg) {
  util::ByteWriter w(header_wire_size(msg));
  write_header(w, msg);
  return w.take();
}

util::Bytes serialize_message(const NetMessage& msg) {
  util::ByteWriter w(header_wire_size(msg) + msg.payload.size());
  write_header(w, msg);
  w.raw(msg.payload);
  return w.take();
}

NetMessage deserialize_message(std::span<const std::uint8_t> data) {
  NetMessage msg;
  const auto [offset, len] = parse_frame(data, msg);
  msg.payload = util::SharedBytes::copy_of(data.subspan(offset, len));
  return msg;
}

NetMessage deserialize_frame(util::SharedBytes body) {
  NetMessage msg;
  const auto [offset, len] = parse_frame(body, msg);
  msg.payload = body.view(offset, len);
  return msg;
}

// ------------------------------------------------ frame-by-reference (v3) --

ContentId content_id_of(const NetMessage& msg) noexcept {
  return util::fnv1a(msg.payload, util::fnv1a(msg.codec));
}

util::Bytes FrameRefInfo::serialize() const {
  util::ByteWriter w(1 + 8 + util::varint_size(payload_bytes));
  w.u8(static_cast<std::uint8_t>(frame_type));
  w.u64(content);
  w.varint(payload_bytes);
  return w.take();
}

FrameRefInfo FrameRefInfo::deserialize(std::span<const std::uint8_t> payload) {
  try {
    util::ByteReader r(payload);
    FrameRefInfo info;
    const std::uint8_t raw_type = r.u8();
    if (raw_type != static_cast<std::uint8_t>(MsgType::kFrame) &&
        raw_type != static_cast<std::uint8_t>(MsgType::kSubImage))
      throw WireError("net: frame ref advertises non-image type " +
                      std::to_string(raw_type));
    info.frame_type = static_cast<MsgType>(raw_type);
    info.content = r.u64();
    info.payload_bytes = r.varint();
    return info;
  } catch (const std::out_of_range&) {
    throw WireError("net: truncated frame-ref payload");
  }
}

NetMessage make_frame_ref(const NetMessage& frame, ContentId content) {
  FrameRefInfo info;
  info.frame_type = frame.type;
  info.content = content;
  info.payload_bytes = frame.payload.size();
  NetMessage ref;
  ref.type = MsgType::kFrameRef;
  ref.frame_index = frame.frame_index;
  ref.piece = frame.piece;
  ref.piece_count = frame.piece_count;
  ref.codec = frame.codec;
  ref.payload = info.serialize();
  return ref;
}

FrameRefInfo parse_frame_ref(const NetMessage& msg) {
  if (msg.type != MsgType::kFrameRef)
    throw WireError("net: parse_frame_ref on a non-ref message");
  return FrameRefInfo::deserialize(msg.payload);
}

NetMessage make_frame_fetch(ContentId content) {
  util::ByteWriter w(8);
  w.u64(content);
  NetMessage msg;
  msg.type = MsgType::kFrameFetch;
  msg.payload = w.take();
  return msg;
}

ContentId parse_frame_fetch(const NetMessage& msg) {
  if (msg.type != MsgType::kFrameFetch)
    throw WireError("net: parse_frame_fetch on a non-fetch message");
  try {
    util::ByteReader r(msg.payload);
    return r.u64();
  } catch (const std::out_of_range&) {
    throw WireError("net: truncated frame-fetch payload");
  }
}

NetMessage make_frame_data(const NetMessage& frame) {
  NetMessage data = frame;  // payload is refcounted, never copied
  data.type = MsgType::kFrameData;
  return data;
}

// ------------------------------------------------------ depth planes (v4) --

namespace {

const std::string kDepthPrefixStr = kDepthCodecPrefix;

/// Parse a depth container's payload: returns {color_offset, color_len}.
/// Depth bytes are everything after the color slice.
std::pair<std::size_t, std::size_t> parse_depth_container(
    const NetMessage& msg) {
  if (!is_depth_frame(msg))
    throw WireError("net: not a depth-container frame (codec '" + msg.codec +
                    "')");
  try {
    util::ByteReader r(msg.payload);
    const std::size_t color_len = r.varint();
    if (color_len > r.remaining())
      throw WireError("net: depth container advertises " +
                      std::to_string(color_len) + " color bytes but only " +
                      std::to_string(r.remaining()) + " remain");
    const auto s = r.raw(color_len);
    return {static_cast<std::size_t>(s.data() - msg.payload.data()),
            color_len};
  } catch (const std::out_of_range&) {
    throw WireError("net: truncated depth-container payload");
  }
}

}  // namespace

bool is_depth_frame(const NetMessage& msg) noexcept {
  return (msg.type == MsgType::kFrame || msg.type == MsgType::kFrameData) &&
         msg.codec.compare(0, kDepthPrefixStr.size(), kDepthPrefixStr) == 0;
}

NetMessage make_depth_frame(const NetMessage& color,
                            std::span<const std::uint8_t> depth_plane) {
  util::ByteWriter w(util::varint_size(color.payload.size()) +
                     color.payload.size() + depth_plane.size());
  w.varint(color.payload.size());
  w.raw(color.payload);
  w.raw(depth_plane);
  NetMessage msg = color;
  msg.codec = kDepthPrefixStr + color.codec;
  msg.payload = w.take();
  return msg;
}

NetMessage strip_depth(const NetMessage& msg) {
  const auto [offset, len] = parse_depth_container(msg);
  NetMessage color = msg;
  color.codec = msg.codec.substr(kDepthPrefixStr.size());
  color.payload = msg.payload.view(offset, len);
  return color;
}

DepthFrameParts split_depth_frame(const NetMessage& msg) {
  const auto [offset, len] = parse_depth_container(msg);
  DepthFrameParts parts;
  parts.color = msg;
  parts.color.codec = msg.codec.substr(kDepthPrefixStr.size());
  parts.color.payload = msg.payload.view(offset, len);
  parts.depth_plane =
      msg.payload.view(offset + len, msg.payload.size() - offset - len);
  return parts;
}

}  // namespace tvviz::net
