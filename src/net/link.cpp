#include "net/link.hpp"

namespace tvviz::net {

double LinkModel::transfer_seconds_faulty(std::size_t bytes, int messages,
                                          util::Rng& rng) const noexcept {
  double total = transfer_seconds(bytes, messages);
  if (loss_rate <= 0.0 && stall_rate <= 0.0) return total;
  // Per-message events: a loss costs a detection round-trip plus the
  // retransmit of that message's share of the bytes; a stall freezes the
  // link for stall_s. Fixed draw order (loss, then stall) keeps a seeded
  // replay aligned.
  const double per_message_bytes =
      messages > 0 ? static_cast<double>(bytes) / messages : 0.0;
  for (int m = 0; m < messages; ++m) {
    if (loss_rate > 0.0 && rng.uniform() < loss_rate)
      total += 2.0 * latency_s + per_message_bytes / bandwidth_bytes_per_s;
    if (stall_rate > 0.0 && rng.uniform() < stall_rate) total += stall_s;
  }
  return total;
}

LinkModel lan_fast() {
  // Myrinet / machine-internal interconnect class.
  return LinkModel{"lan-fast", 50e-6, 100e6};
}

LinkModel wan_nasa_ucd() {
  // ~120 miles over year-2000 research Internet: tens of ms RTT, about a
  // megabyte per second of sustained TCP throughput.
  return LinkModel{"wan-nasa-ucd", 0.050, 1.0e6};
}

LinkModel wan_japan_ucd() {
  // Trans-Pacific: ~3x the latency, well under half the throughput.
  return LinkModel{"wan-japan-ucd", 0.150, 0.4e6};
}

}  // namespace tvviz::net
