#include "net/link.hpp"

namespace tvviz::net {

LinkModel lan_fast() {
  // Myrinet / machine-internal interconnect class.
  return LinkModel{"lan-fast", 50e-6, 100e6};
}

LinkModel wan_nasa_ucd() {
  // ~120 miles over year-2000 research Internet: tens of ms RTT, about a
  // megabyte per second of sustained TCP throughput.
  return LinkModel{"wan-nasa-ucd", 0.050, 1.0e6};
}

LinkModel wan_japan_ucd() {
  // Trans-Pacific: ~3x the latency, well under half the throughput.
  return LinkModel{"wan-japan-ucd", 0.150, 0.4e6};
}

}  // namespace tvviz::net
