// Stage cost models for the pipeline simulator. Constants are calibrated
// from the paper's own measurements (§6: 10-20 s per 256^2 frame on one
// processor; JPEG+LZO compression 6 ms at 128^2 to ~500 ms at 1024^2;
// decompression 12-600 ms on the weak client) and from Table 1's compressed
// sizes. `measure_local()` recalibrates the compute-side constants against
// the real kernels on the host machine.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "field/store.hpp"
#include "net/link.hpp"

namespace tvviz::core {

/// Compressed-size and codec-speed profile. Sizes follow the power law
/// bytes = size_coeff * pixels^size_exponent, fitted per codec against
/// Table 1 (and validated against our real codecs by the Table 1 bench).
struct CodecProfile {
  std::string name;
  double size_coeff = 3.0;
  double size_exponent = 1.0;
  double compress_s_per_pixel = 0.0;    ///< On a render/assembly node.
  double decompress_s_per_pixel = 0.0;  ///< On the (weaker) display client.

  double compressed_bytes(std::size_t pixels) const noexcept;
  double compress_seconds(std::size_t pixels) const noexcept {
    return compress_s_per_pixel * static_cast<double>(pixels);
  }
  double decompress_seconds(std::size_t pixels) const noexcept {
    return decompress_s_per_pixel * static_cast<double>(pixels);
  }

  /// Profile by codec name ("raw", "lzo", "bzip", "jpeg", "jpeg+lzo",
  /// "jpeg+bzip"), constants fitted to Table 1 and the §6 cost quotes.
  static CodecProfile paper(const std::string& name);
};

/// Per-stage constants of one parallel machine + network environment.
struct StageCosts {
  // -- data input (shared, sequential: "no parallel I/O support") ----------
  field::DiskModel disk;
  double distribute_bandwidth_Bps = 100e6;  ///< Volume scatter over fast LAN.
  /// Extra seconds of head movement per volume per additional concurrent
  /// input stream: L interleaved sequential streams through one storage
  /// channel defeat its sequential-readahead behaviour.
  double input_stream_thrash_s = 0.065;

  // -- local rendering ------------------------------------------------------
  /// Single-processor seconds to render the reference workload: one
  /// 129x129x104 volume to a 256^2 image (paper: 10-20 s).
  double render_base_seconds = 15.0;
  std::size_t render_base_voxels = 129ull * 129 * 104;
  std::size_t render_base_pixels = 256 * 256;
  /// Parallelization overhead: render time on g procs is
  /// (T1 / g) * (1 + imbalance * log2(g)) — load imbalance and per-node
  /// fixed costs grow with the decomposition depth.
  double render_imbalance = 0.35;
  /// Memory pressure (§3: pure inter-volume parallelism "is limited by each
  /// processor's main memory space"): a node's working set is roughly
  /// working_set_factor * subvolume bytes; exceeding node memory costs a
  /// swap-thrash multiplier of 1 + swap_slope * (excess / memory).
  double node_memory_bytes = 32e6;
  double working_set_factor = 5.0;
  double swap_slope = 20.0;

  // -- compositing (binary-swap within the group) ---------------------------
  double composite_stage_latency_s = 1.5e-3;
  double composite_bytes_per_pixel = 16.0;  ///< float RGBA exchange payload.
  double composite_blend_s_per_pixel = 3.0e-8;

  // -- image output ---------------------------------------------------------
  net::LinkModel wan = net::wan_nasa_ucd();
  net::XDisplayModel x_display{net::wan_nasa_ucd()};
  double client_display_s_per_pixel = 4.0e-8;  ///< Blit cost on the client.
  /// Fixed display-path cost per frame (daemon relay, image assembly,
  /// client event loop) — paid by both transports.
  double display_path_overhead_s = 0.04;

  /// Seconds of single-processor rendering for a volume of `voxels` voxels
  /// at `pixels` output pixels.
  double render_seconds_single(std::size_t voxels, std::size_t pixels) const;

  /// Group render time: T1/g with the imbalance and memory-pressure factors
  /// applied. `volume_bytes` drives the working-set model.
  double render_seconds_group(std::size_t voxels, std::size_t pixels,
                              int group_size, std::size_t volume_bytes) const;

  /// Binary-swap compositing time for a group of g over `pixels` pixels.
  double composite_seconds(std::size_t pixels, int group_size) const;

  /// Reading one time step of `bytes` from shared storage with
  /// `concurrent_streams` groups pulling interleaved step files.
  /// `io_servers` > 1 models §7.1 parallel I/O: each volume is striped
  /// across that many independent servers (MPI-2-style collective read),
  /// dividing both the transfer time and the per-stream head contention.
  double input_seconds(std::size_t bytes, int concurrent_streams = 1,
                       int io_servers = 1) const {
    const double servers = std::max(1, io_servers);
    return disk.seek_seconds +
           static_cast<double>(bytes) /
               (disk.bandwidth_bytes_per_s * servers) +
           input_stream_thrash_s * std::max(0, concurrent_streams - 1) /
               servers;
  }

  /// Scattering a time step to the group over the shared fast LAN.
  double distribute_seconds(std::size_t bytes) const {
    return static_cast<double>(bytes) / distribute_bandwidth_Bps;
  }

  // -- presets ---------------------------------------------------------------
  /// SGI Origin 2000 at NASA Ames, display at UC Davis (Figures 8-10).
  static StageCosts o2k_paper();
  /// RWCP Pentium Pro / Myrinet cluster in Japan, display at UC Davis
  /// (Figures 6, 7, 11).
  static StageCosts rwcp_paper();
};

/// Measure the real local kernels (ray caster + codecs) and return a
/// StageCosts with compute constants matching this machine. Network and
/// disk stay at the paper-era preset values of `base`.
StageCosts measure_local(const StageCosts& base);

/// Measured codec profile on this machine for the named codec (renders a
/// small frame, times encode/decode, fits the size coefficient).
CodecProfile measure_codec_local(const std::string& name);

}  // namespace tvviz::core
