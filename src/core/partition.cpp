#include "core/partition.hpp"

#include <stdexcept>

namespace tvviz::core {

Partition::Partition(int processors, int groups) : processors_(processors) {
  if (processors <= 0)
    throw std::invalid_argument("Partition: processors must be > 0");
  if (groups < 1 || groups > processors)
    throw std::invalid_argument("Partition: need 1 <= groups <= processors");

  members_.resize(static_cast<std::size_t>(groups));
  rank_to_group_.resize(static_cast<std::size_t>(processors));
  const int base = processors / groups;
  const int extra = processors % groups;
  int rank = 0;
  for (int g = 0; g < groups; ++g) {
    const int size = base + (g < extra ? 1 : 0);
    auto& m = members_[static_cast<std::size_t>(g)];
    m.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      m.push_back(rank);
      rank_to_group_[static_cast<std::size_t>(rank)] = g;
      ++rank;
    }
  }
}

const std::vector<int>& Partition::group_members(int g) const {
  return members_.at(static_cast<std::size_t>(g));
}

int Partition::group_of_rank(int rank) const {
  return rank_to_group_.at(static_cast<std::size_t>(rank));
}

std::vector<int> Partition::steps_for_group(int g, int total_steps) const {
  std::vector<int> steps;
  for (int s = g; s < total_steps; s += groups()) steps.push_back(s);
  return steps;
}

int Partition::step_count_for_group(int g, int total_steps) const {
  if (g >= total_steps) return 0;
  return (total_steps - 1 - g) / groups() + 1;
}

}  // namespace tvviz::core
