// Closed-form performance model of the partitioned pipeline, in the spirit
// of the paper's reference [15] ("Processors Management for Rendering
// Time-varying Volume Data Sets"). The discrete-event simulator is the
// ground truth; this model explains the U-shape and predicts the optimal
// partition count cheaply.
#pragma once

#include "core/pipesim.hpp"

namespace tvviz::core {

struct ModelPrediction {
  double startup_latency = 0.0;
  double inter_frame_delay = 0.0;
  double overall_time = 0.0;
  bool input_bound = false;  ///< Shared input is the pipeline bottleneck.
};

/// Predict the three §3 metrics for `config` without simulating.
ModelPrediction predict_pipeline(const PipelineConfig& config);

/// Partition count L in [1, P] minimizing predicted overall time.
int optimal_partitions(PipelineConfig config);

}  // namespace tvviz::core
