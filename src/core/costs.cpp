#include "core/costs.hpp"

#include <cmath>
#include <stdexcept>

#include "codec/image_codec.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "util/timer.hpp"

namespace tvviz::core {

double CodecProfile::compressed_bytes(std::size_t pixels) const noexcept {
  return size_coeff * std::pow(static_cast<double>(pixels), size_exponent);
}

CodecProfile CodecProfile::paper(const std::string& name) {
  // Size power laws fitted to Table 1 (turbulent-jet frames); codec speeds
  // from §6 (JPEG+LZO: ~6 ms at 128^2, ~500 ms at 1024^2 to compress;
  // 12-600 ms to decompress on the SGI O2 client) with the lossless-only
  // codecs scaled by their relative work.
  if (name == "raw") return {name, 3.0, 1.0, 0.0, 2.0e-8};
  if (name == "rle") return {name, 1.9, 0.96, 6.0e-8, 3.0e-8};
  if (name == "lzo") return {name, 1.74, 0.945, 2.5e-7, 8.0e-8};
  if (name == "bzip") return {name, 2.64, 0.874, 2.2e-6, 9.0e-7};
  if (name == "jpeg") return {name, 1.55, 0.709, 4.3e-7, 5.5e-7};
  if (name == "jpeg+lzo") return {name, 2.52, 0.642, 4.7e-7, 6.0e-7};
  if (name == "jpeg+bzip") return {name, 5.96, 0.579, 5.5e-7, 7.0e-7};
  throw std::invalid_argument("CodecProfile: unknown codec " + name);
}

double StageCosts::render_seconds_single(std::size_t voxels,
                                         std::size_t pixels) const {
  // Ray-casting cost scales with the number of samples taken: proportional
  // to ray count (pixels) and to per-ray depth, which scales with volume
  // extent ~ voxels^(1/3). Anchored at the paper's reference workload.
  const double depth_scale =
      std::cbrt(static_cast<double>(voxels) /
                static_cast<double>(render_base_voxels));
  const double pixel_scale = static_cast<double>(pixels) /
                             static_cast<double>(render_base_pixels);
  return render_base_seconds * pixel_scale * depth_scale;
}

double StageCosts::render_seconds_group(std::size_t voxels, std::size_t pixels,
                                        int group_size,
                                        std::size_t volume_bytes) const {
  const double t1 = render_seconds_single(voxels, pixels);
  const double g = static_cast<double>(group_size);
  const double parallel_overhead =
      1.0 + render_imbalance * std::log2(std::max(1.0, g));
  // Memory pressure: small groups hold large per-node working sets.
  const double working_set =
      working_set_factor * static_cast<double>(volume_bytes) / g;
  double swap_factor = 1.0;
  if (working_set > node_memory_bytes)
    swap_factor +=
        swap_slope * (working_set - node_memory_bytes) / node_memory_bytes;
  return t1 / g * parallel_overhead * swap_factor;
}

double StageCosts::composite_seconds(std::size_t pixels, int group_size) const {
  if (group_size <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(group_size)));
  // Binary-swap: per stage one half-image exchange; total exchanged pixels
  // approach pixels * (1 - 1/g).
  const double exchanged =
      static_cast<double>(pixels) * (1.0 - 1.0 / group_size);
  return stages * composite_stage_latency_s +
         exchanged * composite_bytes_per_pixel / distribute_bandwidth_Bps +
         exchanged * composite_blend_s_per_pixel;
}

StageCosts StageCosts::o2k_paper() {
  StageCosts c;
  c.render_base_seconds = 15.0;
  c.disk = field::DiskModel{0.012, 10e6};  // mass storage over NFS-class path
  c.distribute_bandwidth_Bps = 120e6;      // O2K interconnect
  c.node_memory_bytes = 64e6;              // shared-memory node budget
  c.wan = net::wan_nasa_ucd();
  c.x_display = net::XDisplayModel{net::wan_nasa_ucd(), 32 * 1024, 1.0, 0.25};
  return c;
}

StageCosts StageCosts::rwcp_paper() {
  StageCosts c;
  c.render_base_seconds = 17.0;  // 200 MHz Pentium Pro, same 10-20 s band
  c.disk = field::DiskModel{0.015, 10e6};
  c.distribute_bandwidth_Bps = 80e6;  // Myrinet, shared
  c.node_memory_bytes = 32e6;         // per-node memory budget
  c.wan = net::wan_japan_ucd();
  c.x_display = net::XDisplayModel{net::wan_japan_ucd(), 32 * 1024, 1.0, 0.25};
  return c;
}

StageCosts measure_local(const StageCosts& base) {
  StageCosts c = base;
  // Render a small reference frame for real and extrapolate.
  const auto desc = field::scaled(field::turbulent_jet_desc(), 2, 1);
  const field::VolumeF vol = field::generate(desc, 0);
  const render::Camera camera(128, 128);
  const render::TransferFunction tf = render::TransferFunction::fire();
  render::RayCaster caster;
  util::WallTimer timer;
  (void)caster.render_full(vol, camera, tf);
  const double t = timer.seconds();
  // Scale to the reference workload (256^2 image, full-size jet volume).
  const double depth_scale =
      std::cbrt(static_cast<double>(c.render_base_voxels) /
                static_cast<double>(vol.voxels()));
  const double pixel_scale = static_cast<double>(c.render_base_pixels) /
                             static_cast<double>(128 * 128);
  c.render_base_seconds = t * pixel_scale * depth_scale;
  return c;
}

CodecProfile measure_codec_local(const std::string& name) {
  CodecProfile profile = CodecProfile::paper(name);
  const auto desc = field::scaled(field::turbulent_jet_desc(), 2, 1);
  const field::VolumeF vol = field::generate(desc, 0);
  constexpr int kSize = 256;
  const render::Camera camera(kSize, kSize);
  render::RayCaster caster;
  const render::Image frame =
      caster.render_full(vol, camera, render::TransferFunction::fire());

  const auto codec = codec::make_image_codec(name);
  util::WallTimer timer;
  const auto encoded = codec->encode(frame);
  const double t_enc = timer.seconds();
  timer.reset();
  (void)codec->decode(encoded);
  const double t_dec = timer.seconds();

  const double pixels = static_cast<double>(kSize) * kSize;
  profile.compress_s_per_pixel = t_enc / pixels;
  profile.decompress_s_per_pixel = t_dec / pixels;
  // Re-anchor the size law at the measured point, keeping the exponent.
  profile.size_coeff = static_cast<double>(encoded.size()) /
                       std::pow(pixels, profile.size_exponent);
  return profile;
}

}  // namespace tvviz::core
