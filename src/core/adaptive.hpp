// Adaptive compression control (§4.1: "The communication path can instruct
// the system to change the compression method"). A display-side controller
// watches the per-frame display-path budget and issues kSetCodec control
// events: if frames arrive too slowly it escalates to stronger compression;
// if there is ample headroom it relaxes toward cheaper / lossless codecs.
#pragma once

#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace tvviz::core {

class AdaptiveCodecController {
 public:
  /// `target_frame_seconds`: the display-path budget per frame.
  /// `ladder`: codec names ordered from cheapest/largest to strongest
  /// compression. The controller starts at `initial` (index into ladder).
  AdaptiveCodecController(double target_frame_seconds,
                          std::vector<std::string> ladder = {"raw", "lzo",
                                                             "jpeg",
                                                             "jpeg+lzo"},
                          std::size_t initial = 1);

  /// Report one displayed frame: the observed display-path time and the
  /// frame's wire size. Returns the control events to send (empty if the
  /// current codec should stay).
  std::vector<net::ControlEvent> on_frame(double display_seconds);

  const std::string& current() const { return ladder_[index_]; }
  int switches() const noexcept { return switches_; }

 private:
  double target_;
  std::vector<std::string> ladder_;
  std::size_t index_;
  int switches_ = 0;
  int over_budget_streak_ = 0;
  int under_budget_streak_ = 0;
};

}  // namespace tvviz::core
