// The three performance metrics of §3 for a time-varying rendering run:
// start-up latency, overall execution time, and inter-frame delay, computed
// from per-frame display timestamps.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tvviz::core {

/// Timeline of one rendered time step (seconds; simulator or wall clock).
struct FrameRecord {
  int step = 0;
  int group = 0;
  double input_start = 0.0;
  double input_done = 0.0;
  double render_done = 0.0;
  double composite_done = 0.0;
  double sent = 0.0;       ///< Compressed frame fully on the wire.
  double displayed = 0.0;  ///< Visible at the remote client.
};

struct Metrics {
  double startup_latency = 0.0;    ///< First frame displayed, from run start.
  double overall_time = 0.0;       ///< Last frame displayed, from run start.
  double inter_frame_delay = 0.0;  ///< Mean gap between consecutive displays.
  std::size_t frames = 0;

  /// Aggregate (in display order sorted by time). Frames must be non-empty.
  /// startup_latency and overall_time are durations measured from the run's
  /// time origin — the earliest input_start across the records — so records
  /// carrying absolute (wall-clock) timestamps aggregate correctly. Records
  /// whose time origin is 0 (simulator runs, session-relative clocks) are
  /// unaffected. input_start values < 0 mean "not recorded" and are ignored
  /// when locating the origin.
  static Metrics from_records(std::vector<FrameRecord> records) {
    if (records.empty()) throw std::invalid_argument("Metrics: no frames");
    std::sort(records.begin(), records.end(),
              [](const FrameRecord& a, const FrameRecord& b) {
                return a.displayed < b.displayed;
              });
    double origin = 0.0;
    bool have_origin = false;
    for (const FrameRecord& r : records) {
      if (r.input_start < 0.0) continue;
      if (!have_origin || r.input_start < origin) origin = r.input_start;
      have_origin = true;
    }
    Metrics m;
    m.frames = records.size();
    m.startup_latency = records.front().displayed - origin;
    m.overall_time = records.back().displayed - origin;
    if (records.size() > 1) {
      double sum = 0.0;
      for (std::size_t i = 1; i < records.size(); ++i)
        sum += records[i].displayed - records[i - 1].displayed;
      m.inter_frame_delay = sum / static_cast<double>(records.size() - 1);
    }
    return m;
  }

  double frames_per_second() const noexcept {
    return inter_frame_delay > 0.0 ? 1.0 / inter_frame_delay
           : overall_time > 0.0
               ? static_cast<double>(frames) / overall_time
               : 0.0;
  }
};

}  // namespace tvviz::core
