// RemoteVizSession: the real end-to-end system (not the simulator). A vmp
// cluster renders the time series in L processor groups with binary-swap
// compositing; group leaders compress frames and ship them through the
// display daemon; a display client decompresses, records timing, and feeds
// user-control events back (§5: events are buffered and affect only later
// frames).
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "field/generators.hpp"
#include "hub/hub.hpp"
#include "net/protocol.hpp"
#include "render/image.hpp"
#include "render/raycast.hpp"

namespace tvviz::core {

struct SessionConfig {
  field::DatasetDesc dataset = field::scaled(field::turbulent_jet_desc(), 4, 8);
  int processors = 4;
  int groups = 2;
  int image_width = 128;
  int image_height = 128;
  std::string codec = "jpeg+lzo";
  int jpeg_quality = 75;
  /// How the image-output stage compresses frames (§4.1/§6):
  ///  * kAssembled — the group leader gathers the frame and compresses it
  ///    whole (the paper's default path).
  ///  * kParallelPieces — every node compresses its own binary-swap slice
  ///    independently and ships it as a sub-image (fast, worse ratio).
  ///  * kCollective — nodes share Huffman statistics via allreduce and
  ///    entropy-code their slices with common whole-frame tables (§4.1's
  ///    "collectively compress" variant; JPEG-based, `codec` is ignored).
  enum class Compression { kAssembled, kParallelPieces, kCollective };
  Compression compression = Compression::kAssembled;
  /// Back-compat alias for kParallelPieces.
  bool parallel_compression = false;
  /// Build a per-subvolume min-max block structure each step and leap over
  /// transparent blocks (§7.1 preprocessing; identical images, less work).
  bool space_leaping = true;
  /// Load-balanced slab decomposition: per step, probe the dataset's
  /// visible-work distribution along z and size each node's slab for equal
  /// work instead of equal planes. Generator-backed input only (falls back
  /// to even slabs when reading from a store).
  bool load_balanced = false;
  render::RenderOptions render_options{};
  std::string colormap = "fire";  ///< "fire", "dense", or "shock".
  double camera_azimuth = 0.6;
  double camera_elevation = 0.35;
  double camera_zoom = 1.0;
  /// View rotation per time step (animation when nonzero).
  double azimuth_per_step = 0.0;
  /// If set, steps are read from a VolumeStore at this directory (must have
  /// been materialized); otherwise subvolumes are generated in place.
  std::optional<std::filesystem::path> store_dir;
  /// With store_dir: > 0 reads through a StripedVolumeStore with this many
  /// stripes (§7.1 parallel I/O); 0 uses the plain sequential store.
  int io_stripes = 0;
  /// Run-time tracking (§2.1): wait for a step's file to appear in the
  /// store instead of failing — the simulation is still computing it.
  bool wait_for_store = false;
  /// Give up after this long waiting for one step (wait_for_store).
  double input_wait_timeout_s = 30.0;
  /// Preview mode (§7.1): when non-empty, only these dataset steps are
  /// rendered, in order (see field::TemporalSummary for planners). Every
  /// entry must lie in [0, dataset.steps).
  std::vector<int> step_map;

  int effective_steps() const noexcept {
    return step_map.empty() ? dataset.steps
                            : static_cast<int>(step_map.size());
  }
  /// Keep decoded frames in the result (memory permitting).
  bool keep_frames = false;
  /// Invoked by the client after each displayed frame; may push control
  /// events (returns events to send toward the renderer).
  std::function<std::vector<net::ControlEvent>(int step, const render::Image&)>
      on_frame;
  /// Route every frame and control event through a real TCP daemon on
  /// localhost instead of the in-process relay — the deployable transport.
  bool use_tcp = false;
  /// Serve the stream through the multi-client FrameHub instead of the
  /// single-client daemon. With use_tcp the hub runs behind a HubTcpServer
  /// on localhost; otherwise in process. The primary client (decodes,
  /// records metrics, runs on_frame, acks steps) is joined by
  /// `hub_clients - 1` auxiliary viewers that drain and count frames.
  bool use_hub = false;
  int hub_clients = 1;
  std::size_t hub_cache_steps = 32;   ///< Frame-cache ring (resume window).
  std::size_t hub_queue_frames = 8;   ///< Per-client send-queue bound.
  double hub_heartbeat_timeout_s = 0.0;  ///< Reap idle clients; 0 = never.
  /// When > 0, the last auxiliary viewer is throttled by the NASA->UCD WAN
  /// link model scaled by this factor (in-process hub only) — the slow
  /// client of the fan-out experiments.
  double hub_slow_client_scale = 0.0;
  /// When > 0, the primary client runs an AdaptiveCodecController with this
  /// per-frame display budget and feeds its codec switches back to the
  /// renderers (per-client quality downgrade under backpressure).
  double adaptive_target_frame_s = 0.0;
  /// When != 0, install fault::FaultPlan::latency_chaos(fault_seed) for the
  /// whole session: every TCP connection suffers seeded, replayable send
  /// delays and receive stalls (latency only — no frame is ever lost, so
  /// results stay correct; timings shift). The chaos-testing knob behind
  /// `tvviz --fault-seed`.
  std::uint64_t fault_seed = 0;
  /// Latency-hiding viewer (protocol v4): leaders ship depth-container
  /// frames (color + the ray-caster's opacity-weighted termination depth)
  /// and the primary client runs a render::Warper — each arriving frame is
  /// first predicted by forward-reprojecting the previous 2.5D frame to the
  /// new step's camera, and the warp's hole ratio and PSNR against the real
  /// decode are recorded in the result. Requires use_hub and kAssembled
  /// compression (the depth plane only exists for whole gathered frames).
  bool use_warp = false;
};

/// The trans-Pacific interactive-orbit scenario (bench/ablation_warp): a
/// hub-served session with the warping viewer on and the camera orbiting
/// azimuth_per_step per time step — the regime where frames arrive ~150 ms
/// stale and the warper must hide the round trip. Small enough to run in a
/// test; callers scale dataset/image up for real measurements.
SessionConfig trans_pacific_orbit_preset();

struct SessionResult {
  Metrics metrics;  ///< Wall-clock, relative to session start.
  std::vector<FrameRecord> frames;
  std::vector<render::Image> displayed;  ///< If keep_frames; step-ordered.
  std::uint64_t wire_bytes = 0;          ///< Compressed bytes shipped.
  std::uint64_t raw_bytes = 0;           ///< Uncompressed RGB equivalent.
  int control_events_applied = 0;
  /// Per-client delivery/drop/resume stats when use_hub (empty otherwise).
  std::vector<hub::ClientStats> hub_client_stats;
  int adaptive_codec_switches = 0;  ///< When adaptive_target_frame_s > 0.
  // Warp-quality accounting of the primary viewer (use_warp; see
  // render/warp.hpp). PSNR terms are clamped to 99 dB so an identity warp
  // (infinite PSNR) keeps the mean finite.
  int warp_frames = 0;               ///< Frames predicted by reprojection.
  double warp_mean_hole_ratio = 0.0; ///< Mean reprojection-hole ratio.
  double warp_mean_psnr = 0.0;       ///< Mean warped-vs-decoded PSNR (dB).
};

/// Run the full pipeline to completion. Throws on configuration errors or
/// rank failures.
SessionResult run_session(const SessionConfig& config);

}  // namespace tvviz::core
