// Processor management for time-varying rendering (§3): P processors are
// split into L groups; group g renders time steps g, g+L, g+2L, ...
// L = 1 is pure intra-volume parallelism (approach one), L = P is pure
// inter-volume parallelism (approach two), 1 < L < P is the hybrid.
#pragma once

#include <vector>

namespace tvviz::core {

class Partition {
 public:
  /// Split `processors` into `groups` contiguous groups with sizes
  /// differing by at most one. Throws std::invalid_argument unless
  /// 1 <= groups <= processors.
  Partition(int processors, int groups);

  int processors() const noexcept { return processors_; }
  int groups() const noexcept { return static_cast<int>(members_.size()); }

  /// Ranks of group g (contiguous, ascending).
  const std::vector<int>& group_members(int g) const;

  int group_size(int g) const {
    return static_cast<int>(group_members(g).size());
  }

  /// Group that rank belongs to.
  int group_of_rank(int rank) const;

  /// Group responsible for time step `step` (round robin).
  int group_for_step(int step) const noexcept {
    return step % groups();
  }

  /// Time steps of a `total_steps`-step dataset assigned to group g.
  std::vector<int> steps_for_group(int g, int total_steps) const;

  /// Number of steps assigned to group g.
  int step_count_for_group(int g, int total_steps) const;

 private:
  int processors_;
  std::vector<std::vector<int>> members_;
  std::vector<int> rank_to_group_;
};

}  // namespace tvviz::core
