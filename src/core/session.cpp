#include "core/session.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <thread>

#include "codec/depth_plane.hpp"
#include "codec/image_codec.hpp"
#include "compositing/binary_swap.hpp"
#include "compositing/collective_compress.hpp"
#include "core/adaptive.hpp"
#include "core/partition.hpp"
#include "field/decompose.hpp"
#include "field/store.hpp"
#include "field/preview.hpp"
#include "fault/fault.hpp"
#include "field/striped.hpp"
#include "hub/hub.hpp"
#include "hub/tcp_hub.hpp"
#include "net/daemon.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "obs/trace.hpp"
#include "render/warp.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"
#include "vmp/communicator.hpp"

namespace tvviz::core {

namespace {

render::TransferFunction colormap_by_name(const std::string& name) {
  if (name == "fire") return render::TransferFunction::fire();
  if (name == "dense") return render::TransferFunction::dense_cool_warm();
  if (name == "shock") return render::TransferFunction::shock();
  throw std::invalid_argument("session: unknown colormap " + name);
}

/// Mutable view/codec state, updated by buffered control events between
/// frames (§5) — never mid-frame.
struct ViewState {
  double azimuth, elevation, zoom;
  std::string colormap;
  std::string codec;
  bool stopped = false;

  void apply(const net::ControlEvent& e) {
    switch (e.kind) {
      case net::ControlKind::kSetView:
        azimuth = e.azimuth;
        elevation = e.elevation;
        zoom = e.zoom;
        break;
      case net::ControlKind::kSetColorMap:
        colormap = e.name;
        break;
      case net::ControlKind::kSetCodec:
        codec = e.name;
        break;
      case net::ControlKind::kStop:
        stopped = true;
        break;
      case net::ControlKind::kStart:
        break;
    }
  }

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.f64(azimuth);
    w.f64(elevation);
    w.f64(zoom);
    w.str(colormap);
    w.str(codec);
    w.u8(stopped ? 1 : 0);
    return w.take();
  }

  static ViewState deserialize(std::span<const std::uint8_t> data) {
    util::ByteReader r(data);
    ViewState v{r.f64(), r.f64(), r.f64(), "", "", false};
    v.colormap = r.str();
    v.codec = r.str();
    v.stopped = r.u8() != 0;
    return v;
  }
};

/// Encode a binary-swap slice as a framed sub-image piece.
util::Bytes pack_piece(int y0, const util::Bytes& encoded) {
  util::ByteWriter w(encoded.size() + 8);
  w.u32(static_cast<std::uint32_t>(y0));
  w.varint(encoded.size());
  w.raw(encoded);
  return w.take();
}

}  // namespace

SessionResult run_session(const SessionConfig& cfg) {
  if (cfg.processors < 1 || cfg.groups < 1 || cfg.groups > cfg.processors)
    throw std::invalid_argument("session: bad processors/groups");
  for (int mapped : cfg.step_map)
    if (mapped < 0 || mapped >= cfg.dataset.steps)
      throw std::invalid_argument("session: step_map entry out of range");
  if (cfg.use_warp) {
    if (!cfg.use_hub)
      throw std::invalid_argument("session: use_warp requires use_hub");
    if (cfg.parallel_compression ||
        cfg.compression != SessionConfig::Compression::kAssembled)
      throw std::invalid_argument(
          "session: use_warp requires assembled compression (the depth "
          "plane exists only for whole gathered frames)");
  }
  const Partition partition(cfg.processors, cfg.groups);
  const int steps = cfg.effective_steps();
  // Session-scoped chaos: latency-only faults (seeded delays and stalls on
  // every TCP connection), so the run is perturbed but never lossy.
  std::optional<fault::ScopedFaultPlan> chaos;
  if (cfg.fault_seed != 0)
    chaos.emplace(fault::FaultPlan::latency_chaos(cfg.fault_seed));
  const std::size_t pixels =
      static_cast<std::size_t>(cfg.image_width) * cfg.image_height;

  // Transport: the in-process relay by default, or a real TCP daemon on
  // localhost (`use_tcp`) — same wire semantics either way, behind two
  // minimal adapter interfaces.
  struct RendererPortIface {
    virtual ~RendererPortIface() = default;
    virtual void send(net::NetMessage msg) = 0;
    virtual std::optional<net::ControlEvent> poll_control() = 0;
  };
  struct DisplayPortIface {
    virtual ~DisplayPortIface() = default;
    virtual std::optional<net::NetMessage> next() = 0;
    virtual void send_control(const net::ControlEvent& event) = 0;
    /// Acknowledge a displayed step (hub transports: the resume point).
    virtual void ack(int /*step*/) {}
  };
  struct LocalRendererPort final : RendererPortIface {
    std::shared_ptr<net::DisplayDaemon::RendererPort> port;
    void send(net::NetMessage msg) override { port->send(std::move(msg)); }
    std::optional<net::ControlEvent> poll_control() override {
      return port->poll_control();
    }
  };
  struct LocalDisplayPort final : DisplayPortIface {
    std::shared_ptr<net::DisplayDaemon::DisplayPort> port;
    std::optional<net::NetMessage> next() override { return port->next(); }
    void send_control(const net::ControlEvent& event) override {
      port->send_control(event);
    }
  };
  struct TcpRendererPort final : RendererPortIface {
    std::unique_ptr<net::TcpRendererLink> link;
    void send(net::NetMessage msg) override { link->send(msg); }
    std::optional<net::ControlEvent> poll_control() override {
      return link->poll_control();
    }
  };
  struct TcpDisplayPort final : DisplayPortIface {
    std::unique_ptr<net::TcpDisplayLink> link;
    std::optional<net::NetMessage> next() override { return link->next(); }
    void send_control(const net::ControlEvent& event) override {
      link->send_control(event);
    }
  };
  struct HubRendererPort final : RendererPortIface {
    std::shared_ptr<hub::FrameHub::RendererPort> port;
    void send(net::NetMessage msg) override { port->send(std::move(msg)); }
    std::optional<net::ControlEvent> poll_control() override {
      return port->poll_control();
    }
  };
  struct HubDisplayPort final : DisplayPortIface {
    std::shared_ptr<hub::FrameHub::ClientPort> port;
    std::optional<net::NetMessage> next() override {
      hub::FramePtr msg = port->next();
      if (!msg) return std::nullopt;
      return *msg;  // the decode path owns a mutable copy
    }
    void send_control(const net::ControlEvent& event) override {
      port->send_control(event);
    }
    void ack(int step) override { port->ack(step); }
  };
  struct HubTcpDisplayPort final : DisplayPortIface {
    std::unique_ptr<hub::HubTcpViewer> viewer;
    std::optional<net::NetMessage> next() override { return viewer->next(); }
    void send_control(const net::ControlEvent& event) override {
      viewer->send_control(event);
    }
    void ack(int step) override { viewer->ack(step); }
  };

  std::optional<net::DisplayDaemon> local_daemon;
  std::unique_ptr<net::TcpDaemonServer> tcp_daemon;
  std::unique_ptr<hub::FrameHub> local_hub;
  std::unique_ptr<hub::HubTcpServer> hub_server;
  std::vector<std::unique_ptr<RendererPortIface>> ports;
  std::unique_ptr<DisplayPortIface> display;
  // Auxiliary hub viewers: drain-and-count clients alongside the primary
  // (fan-out; the last one optionally throttled as the slow client).
  std::vector<std::thread> aux_threads;
  if (cfg.use_hub) {
    hub::HubConfig hub_cfg;
    hub_cfg.cache_steps = cfg.hub_cache_steps;
    hub_cfg.client_queue_frames = cfg.hub_queue_frames;
    hub_cfg.heartbeat_timeout_s = cfg.hub_heartbeat_timeout_s;
    const int aux_clients = std::max(0, cfg.hub_clients - 1);
    if (cfg.use_tcp) {
      hub_server = std::make_unique<hub::HubTcpServer>(0, hub_cfg);
      for (int g = 0; g < cfg.groups; ++g) {
        // Renderers speak the v1 hello; the hub accepts both versions.
        auto port = std::make_unique<TcpRendererPort>();
        port->link =
            std::make_unique<net::TcpRendererLink>(hub_server->port());
        ports.push_back(std::move(port));
      }
      auto dp = std::make_unique<HubTcpDisplayPort>();
      hub::HubTcpViewer::Options vo;
      vo.client_id = "primary";
      // v4 capability: without it the hub strips depth containers down to
      // their color half before they reach this viewer.
      vo.wants_depth = cfg.use_warp;
      dp->viewer =
          std::make_unique<hub::HubTcpViewer>(hub_server->port(), vo);
      display = std::move(dp);
      for (int k = 0; k < aux_clients; ++k) {
        hub::HubTcpViewer::Options ao;
        ao.client_id = "viewer-" + std::to_string(k);
        auto viewer =
            std::make_shared<hub::HubTcpViewer>(hub_server->port(), ao);
        aux_threads.emplace_back([viewer, groups = cfg.groups] {
          int shutdowns = 0;
          while (auto msg = viewer->next()) {
            if (msg->type == net::MsgType::kShutdown) {
              if (++shutdowns >= groups) break;
            } else if (msg->type == net::MsgType::kFrame ||
                       (msg->type == net::MsgType::kSubImage &&
                        msg->piece == msg->piece_count - 1)) {
              viewer->ack(msg->frame_index);
            }
          }
          viewer->close();
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    } else {
      local_hub = std::make_unique<hub::FrameHub>(hub_cfg);
      for (int g = 0; g < cfg.groups; ++g) {
        auto port = std::make_unique<HubRendererPort>();
        port->port = local_hub->connect_renderer();
        ports.push_back(std::move(port));
      }
      auto dp = std::make_unique<HubDisplayPort>();
      hub::ClientOptions po;
      po.id = "primary";
      dp->port = local_hub->connect_client(po);
      display = std::move(dp);
      for (int k = 0; k < aux_clients; ++k) {
        hub::ClientOptions ao;
        ao.id = "viewer-" + std::to_string(k);
        if (cfg.hub_slow_client_scale > 0.0 && k == aux_clients - 1) {
          ao.link = net::wan_nasa_ucd();
          ao.link_time_scale = cfg.hub_slow_client_scale;
        }
        auto port = local_hub->connect_client(ao);
        aux_threads.emplace_back([port, groups = cfg.groups] {
          int shutdowns = 0;
          while (auto msg = port->next()) {
            if (msg->type == net::MsgType::kShutdown) {
              if (++shutdowns >= groups) break;
            } else if (msg->type == net::MsgType::kFrame ||
                       (msg->type == net::MsgType::kSubImage &&
                        msg->piece == msg->piece_count - 1)) {
              port->ack(msg->frame_index);
            }
          }
        });
      }
    }
  } else if (cfg.use_tcp) {
    tcp_daemon = std::make_unique<net::TcpDaemonServer>();
    for (int g = 0; g < cfg.groups; ++g) {
      auto port = std::make_unique<TcpRendererPort>();
      port->link =
          std::make_unique<net::TcpRendererLink>(tcp_daemon->port());
      ports.push_back(std::move(port));
    }
    auto dp = std::make_unique<TcpDisplayPort>();
    dp->link = std::make_unique<net::TcpDisplayLink>(tcp_daemon->port());
    display = std::move(dp);
    // Let the server register every connection before frames flow.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  } else {
    local_daemon.emplace();
    for (int g = 0; g < cfg.groups; ++g) {
      auto port = std::make_unique<LocalRendererPort>();
      port->port = local_daemon->connect_renderer();
      ports.push_back(std::move(port));
    }
    auto dp = std::make_unique<LocalDisplayPort>();
    dp->port = local_daemon->connect_display();
    display = std::move(dp);
  }

  util::WallTimer clock;
  util::Mutex records_mutex;
  std::map<int, FrameRecord> records;  // keyed by step
  std::atomic<int> adaptive_switches{0};

  SessionResult result;

  // ---- display client ------------------------------------------------------
  // Frames can arrive out of step order (groups finish independently);
  // keep them keyed by step so SessionResult::displayed is step-ordered.
  std::map<int, render::Image> kept_frames;
  // Warp state and accounting: written only by the client thread, read
  // after its join.
  std::optional<render::Warper> warper;
  if (cfg.use_warp) warper.emplace(cfg.dataset.dims);
  int warp_frames = 0;
  double warp_hole_sum = 0.0, warp_psnr_sum = 0.0;
  // The camera the renderers used for a given step (the warp target; §5
  // control events are assumed quiet in warp mode).
  const auto camera_of_step = [&cfg](int step) {
    const int dataset_step =
        cfg.step_map.empty() ? step
                             : cfg.step_map[static_cast<std::size_t>(step)];
    return render::Camera(
        cfg.image_width, cfg.image_height,
        cfg.camera_azimuth + cfg.azimuth_per_step * dataset_step,
        cfg.camera_elevation, cfg.camera_zoom);
  };
  std::thread client([&] {
    obs::set_thread_lane("display");
    // Sub-image reassembly state per step.
    struct Pending {
      render::Image frame;
      int received = 0;
      int expected = 0;
    };
    std::map<int, Pending> pending;
    int frames_done = 0;
    int shutdowns_seen = 0;
    const int total_frames = steps;
    // §4.1 adaptive quality: watch the display-path budget and feed codec
    // switches back toward the renderers as control events.
    std::optional<AdaptiveCodecController> adaptive;
    if (cfg.adaptive_target_frame_s > 0.0)
      adaptive.emplace(cfg.adaptive_target_frame_s);
    double last_display_s = clock.seconds();
    while (frames_done < total_frames) {
      auto msg = display->next();
      if (!msg) break;  // daemon shut down
      if (msg->type == net::MsgType::kShutdown) {
        // One shutdown arrives per renderer port. Frames from port g are
        // relayed in order ahead of port g's shutdown, so only once every
        // port has said goodbye can no more frames be in flight.
        if (++shutdowns_seen >= cfg.groups) break;
        continue;
      }
      obs::Span display_span("display", msg->frame_index);

      render::Image* completed = nullptr;
      if (msg->type == net::MsgType::kFrame) {
        auto& slot = pending[msg->frame_index];
        if (net::is_depth_frame(*msg)) {
          // 2.5D frame: predict it first by warping the previous frame to
          // this step's camera (what a live viewer would have shown while
          // this frame was in flight), then decode the truth and measure
          // how good the guess was.
          const auto parts = net::split_depth_frame(*msg);
          const auto codec =
              codec::make_image_codec(parts.color.codec, cfg.jpeg_quality);
          slot.frame = codec->decode(parts.color.payload);
          if (warper) {
            const render::Camera now = camera_of_step(msg->frame_index);
            if (warper->has_frame()) {
              const render::WarpResult wr = warper->warp(now);
              ++warp_frames;
              warp_hole_sum += wr.hole_ratio;
              warp_psnr_sum += std::min(render::psnr(wr.image, slot.frame),
                                        99.0);
            }
            render::DepthFrame df;
            df.color = slot.frame;
            df.depth = codec::decode_depth_plane(parts.depth_plane);
            df.camera = now;
            df.step = msg->frame_index;
            warper->set_frame(std::move(df));
          }
        } else if (msg->codec == "collective-jpeg") {
          slot.frame = compositing::collective_jpeg_decode(msg->payload);
        } else {
          const auto codec =
              codec::make_image_codec(msg->codec, cfg.jpeg_quality);
          slot.frame = codec->decode(msg->payload);
        }
        completed = &slot.frame;
      } else if (msg->type == net::MsgType::kSubImage) {
        const auto codec =
            codec::make_image_codec(msg->codec, cfg.jpeg_quality);
        auto& slot = pending[msg->frame_index];
        if (slot.expected == 0) {
          slot.expected = msg->piece_count;
          slot.frame = render::Image(cfg.image_width, cfg.image_height);
        }
        util::ByteReader r(msg->payload);
        const int y0 = static_cast<int>(r.u32());
        const std::size_t len = r.varint();
        const render::Image piece = codec->decode(r.raw(len));
        for (int y = 0; y < piece.height(); ++y) {
          const int fy = y0 + y;
          if (fy < 0 || fy >= slot.frame.height()) continue;
          for (int x = 0; x < piece.width() && x < slot.frame.width(); ++x) {
            const auto* p = piece.pixel(x, y);
            slot.frame.set(x, fy, p[0], p[1], p[2], p[3]);
          }
        }
        if (++slot.received < slot.expected) continue;
        completed = &slot.frame;
      } else {
        continue;
      }

      const double now = clock.seconds();
      {
        util::LockGuard lock(records_mutex);
        records[msg->frame_index].displayed = now;
        records[msg->frame_index].step = msg->frame_index;
      }
      display->ack(msg->frame_index);
      if (adaptive) {
        for (const auto& event : adaptive->on_frame(now - last_display_s))
          display->send_control(event);
      }
      last_display_s = now;
      if (cfg.on_frame) {
        for (const auto& event : cfg.on_frame(msg->frame_index, *completed))
          display->send_control(event);
      }
      if (cfg.keep_frames)
        kept_frames[msg->frame_index] = std::move(*completed);
      pending.erase(msg->frame_index);
      ++frames_done;
    }
    if (adaptive) adaptive_switches.store(adaptive->switches());
  });

  // ---- parallel renderer ----------------------------------------------------
  std::atomic<int> control_events{0};
  std::atomic<std::uint64_t> wire_bytes{0};
  // If a rank fails, the client thread must still be unblocked and joined
  // before the exception leaves this frame.
  std::exception_ptr renderer_error;
  const auto run_ranks = [&](const vmp::Cluster::RankFn& fn) {
    try {
      vmp::Cluster::run(cfg.processors, fn);
    } catch (...) {
      renderer_error = std::current_exception();
    }
  };
  run_ranks([&](vmp::Communicator& world) {
    obs::set_thread_lane("rank " + std::to_string(world.rank()));
    const int g = partition.group_of_rank(world.rank());
    vmp::Communicator group = world.split(g);
    const bool leader = group.rank() == 0;

    ViewState view{cfg.camera_azimuth, cfg.camera_elevation, cfg.camera_zoom,
                   cfg.colormap, cfg.codec, false};

    // Slab decomposition keeps subvolume depths monotone in rank, which the
    // binary-swap compositor requires for exact visibility ordering.
    const auto even_boxes =
        field::decompose_slabs(cfg.dataset.dims, group.size(), /*axis=*/2);

    std::optional<field::VolumeStore> store;
    std::optional<field::StripedVolumeStore> striped;
    if (cfg.store_dir) {
      if (cfg.io_stripes > 0)
        striped.emplace(*cfg.store_dir, cfg.io_stripes);
      else
        store.emplace(*cfg.store_dir);
    }

    render::RayCaster caster(cfg.render_options);

    const auto my_steps = partition.steps_for_group(g, steps);
    for (std::size_t idx = 0; idx < my_steps.size(); ++idx) {
      const int step = my_steps[idx];
      // Preview mode renders a planned subset of the dataset's steps.
      const int dataset_step =
          cfg.step_map.empty() ? step
                               : cfg.step_map[static_cast<std::size_t>(step)];

      // Leader drains buffered control events and broadcasts the resulting
      // state so every node of the group renders consistently (§5).
      if (leader) {
        while (auto event = ports[static_cast<std::size_t>(g)]->poll_control()) {
          view.apply(*event);
          control_events.fetch_add(1);
        }
      }
      view = ViewState::deserialize(group.bcast(0, view.serialize()));
      if (view.stopped) break;
      const render::TransferFunction tf = colormap_by_name(view.colormap);

      // This node's slab: even planes, or work-balanced boundaries from a
      // deterministic probe of the step's visible-work distribution (every
      // rank computes the identical weights, so no exchange is needed).
      field::Box my_box = even_boxes[static_cast<std::size_t>(group.rank())];
      if (cfg.load_balanced && !store && !striped &&
          group.size() <= cfg.dataset.dims.nz) {
        const auto weights = field::estimate_plane_weights(
            cfg.dataset, dataset_step, /*axis=*/2,
            [&tf](float v) { return tf.sample(v).alpha > 0.0; });
        const auto balanced = field::decompose_slabs_weighted(
            cfg.dataset.dims, group.size(), /*axis=*/2, weights);
        my_box = balanced[static_cast<std::size_t>(group.rank())];
      }

      const double input_start = clock.seconds();
      obs::Span input_span("input", step, g);
      // Data input: read (or generate) this node's subvolume with a ghost
      // layer for seamless interpolation across node boundaries.
      const field::Box ghost_box =
          field::with_ghost(my_box, cfg.dataset.dims, 1);
      // Run-time tracking (§2.1): the simulation may still be computing
      // this step; poll the store until the (atomically renamed) file lands.
      if (cfg.wait_for_store && (striped || store)) {
        util::WallTimer waited;
        const auto available = [&] {
          return striped ? striped->has(dataset_step)
                         : store->has(dataset_step);
        };
        while (!available()) {
          if (waited.seconds() > cfg.input_wait_timeout_s)
            throw std::runtime_error(
                "session: timed out waiting for step " +
                std::to_string(dataset_step));
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      render::Subvolume sub;
      if (striped) {
        sub.data = striped->read_box(dataset_step, ghost_box);
      } else if (store) {
        sub.data = store->read_box(dataset_step, ghost_box);
      } else {
        sub.data = field::generate_box(cfg.dataset, dataset_step, ghost_box);
      }
      sub.storage_box = ghost_box;
      sub.render_box = my_box;
      input_span.end();
      const double input_done = clock.seconds();

      // Local rendering.
      obs::Span render_span("render", step, g);
      render::Camera camera(cfg.image_width, cfg.image_height,
                            view.azimuth + cfg.azimuth_per_step * dataset_step,
                            view.elevation, view.zoom);
      if (cfg.space_leaping) sub.attach_skipper(tf);
      const render::PartialImage partial =
          caster.render(sub, cfg.dataset.dims, camera, tf);
      render_span.end();
      const double render_done = clock.seconds();

      // Global compositing (binary-swap) leaves each node a frame slice.
      obs::Span composite_span("composite", step, g);
      const compositing::FrameSlice slice = compositing::binary_swap(
          group, partial, cfg.image_width, cfg.image_height);
      composite_span.end();
      const double composite_done = clock.seconds();

      const auto mode = cfg.parallel_compression
                            ? SessionConfig::Compression::kParallelPieces
                            : cfg.compression;
      if (mode == SessionConfig::Compression::kCollective) {
        // §4.1 collective compression: slices are transformed and entropy
        // coded in place with Huffman tables fitted to the whole frame.
        obs::Span compress_span("compress", step, g);
        render::Image own(cfg.image_width, std::max(0, slice.image.height()));
        for (int y = 0; y < slice.image.height(); ++y)
          for (int x = 0; x < cfg.image_width; ++x) {
            const auto& px = slice.image.at(x, y);
            const auto q = [](double v) {
              return static_cast<std::uint8_t>(util::clamp01(v) * 255.0 + 0.5);
            };
            own.set(x, y, q(px.r), q(px.g), q(px.b), 255);
          }
        util::SharedBytes encoded = compositing::collective_jpeg_encode_shared(
            group, own, slice.row0, cfg.image_width, cfg.image_height,
            cfg.jpeg_quality, util::BufferPool::global());
        compress_span.end();
        if (leader) {
          obs::Span send_span("send", step, g);
          net::NetMessage msg;
          msg.type = net::MsgType::kFrame;
          msg.frame_index = step;
          msg.codec = "collective-jpeg";
          msg.payload = std::move(encoded);
          wire_bytes.fetch_add(msg.payload.size());
          ports[static_cast<std::size_t>(g)]->send(std::move(msg));
        }
      } else if (mode == SessionConfig::Compression::kParallelPieces) {
        const auto image_codec =
            codec::make_image_codec(view.codec, cfg.jpeg_quality);
        // Each node compresses its own slice; the leader relays the
        // non-empty pieces in rank order as separate sub-image messages.
        obs::Span compress_span("compress", step, g);
        util::Bytes piece;
        if (slice.image.height() > 0) {
          // Convert the slice to a stand-alone image of its own rows.
          render::Image own(cfg.image_width, slice.image.height());
          for (int y = 0; y < slice.image.height(); ++y)
            for (int x = 0; x < cfg.image_width; ++x) {
              const auto& px = slice.image.at(x, y);
              const auto q = [](double v) {
                return static_cast<std::uint8_t>(util::clamp01(v) * 255.0 + 0.5);
              };
              own.set(x, y, q(px.r), q(px.g), q(px.b), 255);
            }
          piece = pack_piece(slice.row0, image_codec->encode(own));
        }
        compress_span.end();
        obs::Span send_span("send", step, g);
        const auto gathered = group.gather(0, std::move(piece));
        if (leader) {
          std::vector<const util::SharedBytes*> nonempty;
          for (const auto& p : gathered)
            if (!p.empty()) nonempty.push_back(&p);
          for (std::size_t i = 0; i < nonempty.size(); ++i) {
            net::NetMessage msg;
            msg.type = net::MsgType::kSubImage;
            msg.frame_index = step;
            msg.piece = static_cast<int>(i);
            msg.piece_count = static_cast<int>(nonempty.size());
            msg.codec = view.codec;
            msg.payload = *nonempty[i];  // refcount bump, not a byte copy
            wire_bytes.fetch_add(msg.payload.size());
            ports[static_cast<std::size_t>(g)]->send(std::move(msg));
          }
        }
      } else if (cfg.use_warp) {
        // 2.5D path: gather at full float precision (the z channel dies in
        // the 8-bit splat), encode color through the normal image codec and
        // the depth plane through the SIMD row-delta codec, and ship both
        // as one v4 depth-container frame.
        const render::PartialImage full = compositing::gather_frame_float(
            group, slice, cfg.image_width, cfg.image_height);
        if (leader) {
          obs::Span compress_span("compress", step, g);
          render::Image frame(cfg.image_width, cfg.image_height);
          full.splat_to(frame);
          const auto image_codec =
              codec::make_image_codec(view.codec, cfg.jpeg_quality);
          net::NetMessage color;
          color.type = net::MsgType::kFrame;
          color.frame_index = step;
          color.codec = view.codec;
          color.payload =
              image_codec->encode_shared(frame, util::BufferPool::global());
          const util::Bytes depth_plane =
              codec::encode_depth_plane(render::extract_depth(full));
          net::NetMessage msg = net::make_depth_frame(color, depth_plane);
          compress_span.end();
          obs::Span send_span("send", step, g);
          wire_bytes.fetch_add(msg.payload.size());
          ports[static_cast<std::size_t>(g)]->send(std::move(msg));
        }
      } else {
        const render::Image frame = compositing::gather_frame(
            group, slice, cfg.image_width, cfg.image_height);
        if (leader) {
          obs::Span compress_span("compress", step, g);
          const auto image_codec =
              codec::make_image_codec(view.codec, cfg.jpeg_quality);
          net::NetMessage msg;
          msg.type = net::MsgType::kFrame;
          msg.frame_index = step;
          msg.codec = view.codec;
          msg.payload =
              image_codec->encode_shared(frame, util::BufferPool::global());
          compress_span.end();
          obs::Span send_span("send", step, g);
          wire_bytes.fetch_add(msg.payload.size());
          ports[static_cast<std::size_t>(g)]->send(std::move(msg));
        }
      }

      if (leader) {
        const double sent = clock.seconds();
        util::LockGuard lock(records_mutex);
        auto& rec = records[step];
        rec.step = step;
        rec.group = g;
        rec.input_start = input_start;
        rec.input_done = input_done;
        rec.render_done = render_done;
        rec.composite_done = composite_done;
        rec.sent = sent;
      }
    }
  });

  // Renderers are done; tell the client in case it is short of frames
  // (e.g. a kStop control event ended the run early). Every port gets a
  // shutdown: over TCP each renderer port is its own connection, and a
  // frame from one connection can still be in flight when another
  // connection's shutdown reaches the daemon — the client must hear from
  // all of them before concluding the stream is over.
  for (auto& port : ports) {
    net::NetMessage bye;
    bye.type = net::MsgType::kShutdown;
    port->send(std::move(bye));
  }
  client.join();
  for (auto& t : aux_threads)
    if (t.joinable()) t.join();
  if (local_daemon) local_daemon->shutdown();
  if (tcp_daemon) tcp_daemon->shutdown();
  if (local_hub) {
    local_hub->shutdown();
    result.hub_client_stats = local_hub->client_stats();
  }
  if (hub_server) {
    hub_server->shutdown();
    result.hub_client_stats = hub_server->hub().client_stats();
  }
  if (renderer_error) std::rethrow_exception(renderer_error);
  result.adaptive_codec_switches = adaptive_switches.load();
  result.warp_frames = warp_frames;
  if (warp_frames > 0) {
    result.warp_mean_hole_ratio = warp_hole_sum / warp_frames;
    result.warp_mean_psnr = warp_psnr_sum / warp_frames;
  }

  result.wire_bytes = wire_bytes.load();
  for (auto& [step, image] : kept_frames)
    result.displayed.push_back(std::move(image));
  result.control_events_applied = control_events.load();
  result.raw_bytes = static_cast<std::uint64_t>(pixels) * 3 *
                     static_cast<std::uint64_t>(steps);
  // Keep only frames that actually reached the display.
  for (auto& [step, rec] : records)
    if (rec.displayed > 0.0) result.frames.push_back(rec);
  if (result.frames.empty())
    for (auto& [step, rec] : records) result.frames.push_back(rec);
  result.metrics = Metrics::from_records(result.frames);
  return result;
}

SessionConfig trans_pacific_orbit_preset() {
  SessionConfig cfg;
  cfg.use_hub = true;
  cfg.use_tcp = true;
  cfg.use_warp = true;
  // An interactive orbit: ~2.9 degrees of azimuth per time step, about what
  // a user dragging the view covers in one 150 ms trans-Pacific round trip
  // at a 20 Hz display tick. Each arriving frame is therefore one orbit
  // step stale — exactly the staleness the warper has to hide.
  cfg.azimuth_per_step = 0.05;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 4, 4);
  cfg.dataset.steps = 6;
  cfg.image_width = 96;
  cfg.image_height = 96;
  cfg.processors = 4;
  cfg.groups = 2;
  return cfg;
}

}  // namespace tvviz::core
