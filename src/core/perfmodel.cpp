#include "core/perfmodel.hpp"

#include "core/partition.hpp"

#include <algorithm>
#include <cmath>

namespace tvviz::core {

ModelPrediction predict_pipeline(const PipelineConfig& config) {
  const int p = config.processors;
  const int l = config.groups;
  const int steps = config.steps();
  const std::size_t pixels = config.pixels();
  const std::size_t voxels = config.dataset.dims.voxels();
  const std::size_t vol_bytes = config.dataset.bytes_per_step();
  const StageCosts& c = config.costs;

  // Group size: use the actual partition, and only the groups that receive
  // work (with steps < L the round-robin assignment touches just the first
  // `steps` groups, which are the larger ones). The smallest working group
  // is the bottleneck.
  const Partition partition(p, l);
  const int working_groups = std::min(l, steps);
  int gi = p;
  for (int gidx = 0; gidx < working_groups; ++gidx)
    gi = std::min(gi, partition.group_size(gidx));
  gi = std::max(1, gi);

  // Per-volume stage times.
  const double t_input =
      c.input_seconds(vol_bytes, l, config.io_servers) +
      c.distribute_seconds(vol_bytes);
  const double t_render =
      c.render_seconds_group(voxels, pixels, gi, vol_bytes);
  const double t_composite = c.composite_seconds(pixels, gi);
  double t_compress = 0.0, t_transfer = 0.0, t_client = 0.0;
  if (config.output == OutputMode::kDaemonCompressed) {
    t_compress = config.codec.compress_seconds(pixels);
    if (config.parallel_compression) t_compress /= gi;
    const auto bytes =
        static_cast<std::size_t>(config.codec.compressed_bytes(pixels));
    t_transfer = c.wan.transfer_seconds(bytes);
    t_client = config.codec.decompress_seconds(pixels) +
               static_cast<double>(pixels) * c.client_display_s_per_pixel +
               c.display_path_overhead_s;
  } else {
    t_transfer = c.x_display.frame_seconds(pixels * 3);
    t_client = static_cast<double>(pixels) * c.client_display_s_per_pixel +
               c.display_path_overhead_s;
  }

  // Group engine cycle; under X the transfer synchronously occupies the
  // engine as well (Figure 9, top).
  double cycle = t_render + t_composite + t_compress;
  if (config.output == OutputMode::kXWindow) cycle += t_transfer;

  // Steady-state system inter-frame interval: the slowest shared stage.
  const double compute_rate_interval =
      cycle / working_groups;  // working groups run in parallel
  const double input_interval = t_input;            // sequential input
  const double output_interval =
      config.output == OutputMode::kXWindow ? t_transfer : t_transfer;
  const double client_interval = t_client;
  const double interval =
      std::max({compute_rate_interval, input_interval, output_interval,
                client_interval});

  ModelPrediction out;
  out.input_bound = input_interval >= compute_rate_interval;
  out.inter_frame_delay = interval;
  out.startup_latency = t_input + cycle + t_transfer + t_client;
  out.overall_time =
      out.startup_latency + interval * std::max(0, steps - 1);
  return out;
}

int optimal_partitions(PipelineConfig config) {
  int best_l = 1;
  double best_t = -1.0;
  for (int l = 1; l <= config.processors; ++l) {
    config.groups = l;
    const double t = predict_pipeline(config).overall_time;
    if (best_t < 0.0 || t < best_t) {
      best_t = t;
      best_l = l;
    }
  }
  return best_l;
}

}  // namespace tvviz::core
