#include "core/pipesim.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "sevt/resource.hpp"
#include "sevt/simulator.hpp"

namespace tvviz::core {

namespace {

/// One simulation run. Groups pull their assigned steps in order; input is
/// serialized on the shared disk + LAN; render/composite/compress occupy
/// the group's engine; output occupies the WAN and then the client.
class PipelineSim {
 public:
  explicit PipelineSim(const PipelineConfig& config)
      : cfg_(config),
        partition_(config.processors, config.groups),
        disk_(sim_, 1, "disk"),
        lan_(sim_, 1, "lan"),
        wan_(sim_, 1, "wan"),
        client_(sim_, 1, "client") {
    if (cfg_.steps() <= 0) throw std::invalid_argument("pipesim: no steps");
    groups_.reserve(static_cast<std::size_t>(cfg_.groups));
    for (int g = 0; g < cfg_.groups; ++g) {
      groups_.push_back(std::make_unique<GroupState>(GroupState{
          std::make_unique<sevt::Resource>(sim_, 1, "group"), {}, 0, 0}));
      auto& st = *groups_.back();
      st.steps = partition_.steps_for_group(g, cfg_.steps());
    }
    // Trace lanes, resolved once: one per renderer group plus the WAN and
    // client hops. Simulator spans carry virtual times, so they go through
    // record_span rather than the wall-clock RAII Span.
    if (obs::tracing_enabled()) {
      for (int g = 0; g < cfg_.groups; ++g)
        group_lanes_.push_back(obs::lane_id("sim group " + std::to_string(g)));
      wan_lane_ = obs::lane_id("sim wan");
      client_lane_ = obs::lane_id("sim client");
    }
  }

  PipelineResult run() {
    for (int g = 0; g < cfg_.groups; ++g) {
      // Fill the input pipeline up to the prefetch bound.
      const int want = std::min<int>(cfg_.prefetch_depth + 1,
                                     static_cast<int>(groups_[static_cast<std::size_t>(g)]->steps.size()));
      for (int i = 0; i < want; ++i) request_input(g);
    }
    sim_.run();

    PipelineResult result;
    result.frames = std::move(records_);
    result.metrics = Metrics::from_records(result.frames);
    const double horizon = result.metrics.overall_time;
    result.disk_utilization = disk_.utilization(horizon);
    result.wan_utilization = wan_.utilization(horizon);
    const auto n = static_cast<double>(result.frames.size());
    result.breakdown.input = total_input_ / n;
    result.breakdown.render = total_render_ / n;
    result.breakdown.composite = total_composite_ / n;
    result.breakdown.compress = total_compress_ / n;
    result.breakdown.transfer = total_transfer_ / n;
    result.breakdown.client = total_client_ / n;
    result.compressed_bytes_per_frame = total_bytes_ / n;
    return result;
  }

 private:
  struct GroupState {
    std::unique_ptr<sevt::Resource> engine;
    std::vector<int> steps;
    int next_input = 0;   ///< Index into `steps` of the next input to issue.
    int next_render = 0;  ///< Index into `steps` of the next frame to render.
  };

  int group_size(int g) const { return partition_.group_size(g); }

  /// Issue the data-input chain for the next not-yet-read step of group g.
  void request_input(int g) {
    auto& st = *groups_[static_cast<std::size_t>(g)];
    if (st.next_input >= static_cast<int>(st.steps.size())) return;
    const int step = st.steps[static_cast<std::size_t>(st.next_input)];
    ++st.next_input;

    const std::size_t vol_bytes = cfg_.dataset.bytes_per_step();
    const double t_read =
        cfg_.costs.input_seconds(vol_bytes, cfg_.groups, cfg_.io_servers);
    const double t_dist = cfg_.costs.distribute_seconds(vol_bytes);

    // Disk (shared, FIFO) then LAN distribution (shared).
    const double requested = sim_.now();
    disk_.use(t_read, [this, g, step, t_dist, requested, t_read] {
      const double read_done = sim_.now();
      lan_.use(t_dist, [this, g, step, requested, t_read, t_dist, read_done] {
        FrameRecord rec;
        rec.step = step;
        rec.group = g;
        rec.input_start = requested;
        rec.input_done = sim_.now();
        total_input_ += t_read + t_dist;
        (void)read_done;
        if (!group_lanes_.empty())
          obs::record_span(group_lanes_[static_cast<std::size_t>(g)], "input",
                           rec.input_start, rec.input_done, step, g);
        on_input_ready(g, rec);
      });
    });
  }

  /// A volume is resident in the group's memory: render when the engine
  /// frees up. Frames of a group are rendered in input order because the
  /// engine resource is FIFO.
  void on_input_ready(int g, FrameRecord rec) {
    auto& st = *groups_[static_cast<std::size_t>(g)];
    const int gsz = group_size(g);
    const std::size_t pixels = cfg_.pixels();
    const std::size_t voxels = cfg_.dataset.dims.voxels();

    const double t_render = cfg_.costs.render_seconds_group(
        voxels, pixels, gsz, cfg_.dataset.bytes_per_step());
    const double t_composite = cfg_.costs.composite_seconds(pixels, gsz);
    // Compression: collective (each node does its slice) or by the
    // assembling node alone. X-Window output ships raw, no compression.
    double t_compress = 0.0;
    if (cfg_.output == OutputMode::kDaemonCompressed) {
      t_compress = cfg_.codec.compress_seconds(pixels);
      if (cfg_.parallel_compression) t_compress /= gsz;
    }

    const double engine_time = t_render + t_composite + t_compress;
    st.engine->use(engine_time, [this, g, rec, t_render, t_composite,
                                 t_compress, pixels]() mutable {
      rec.render_done = sim_.now() - t_composite - t_compress;
      rec.composite_done = sim_.now() - t_compress;
      total_render_ += t_render;
      total_composite_ += t_composite;
      total_compress_ += t_compress;
      if (!group_lanes_.empty()) {
        const int lane = group_lanes_[static_cast<std::size_t>(g)];
        obs::record_span(lane, "render", rec.render_done - t_render,
                         rec.render_done, rec.step, g);
        obs::record_span(lane, "composite", rec.render_done,
                         rec.composite_done, rec.step, g);
        if (t_compress > 0.0)
          obs::record_span(lane, "compress", rec.composite_done, sim_.now(),
                           rec.step, g);
      }

      // Buffer slot freed: pull the next volume from disk.
      request_input(g);
      on_frame_ready(g, rec, pixels);
    });
  }

  /// Image output: WAN transfer, then client decompress + display.
  void on_frame_ready(int g, FrameRecord rec, std::size_t pixels) {
    double t_transfer = 0.0;
    double t_client = 0.0;
    double bytes = 0.0;
    if (cfg_.output == OutputMode::kXWindow) {
      bytes = static_cast<double>(pixels) * 3.0;
      t_transfer = cfg_.costs.x_display.frame_seconds(
          static_cast<std::size_t>(bytes));
      t_client = static_cast<double>(pixels) *
                     cfg_.costs.client_display_s_per_pixel +
                 cfg_.costs.display_path_overhead_s;
      // Remote X is synchronous: the sending node (and with it the group's
      // engine) is held for the duration of the transfer (Figure 9, top).
      auto& st = *groups_[static_cast<std::size_t>(g)];
      st.engine->use(t_transfer, [] {});
    } else {
      const int pieces = cfg_.parallel_compression ? group_size(g) : 1;
      bytes = cfg_.codec.compressed_bytes(pixels);
      t_transfer = cfg_.costs.wan.transfer_seconds(
          static_cast<std::size_t>(bytes), pieces);
      t_client = cfg_.codec.decompress_seconds(pixels) +
                 static_cast<double>(pixels) *
                     cfg_.costs.client_display_s_per_pixel +
                 cfg_.costs.display_path_overhead_s;
    }
    total_bytes_ += bytes;

    wan_.use(t_transfer, [this, rec, t_transfer, t_client]() mutable {
      rec.sent = sim_.now();
      total_transfer_ += t_transfer;
      if (wan_lane_ >= 0)
        obs::record_span(wan_lane_, "send", rec.sent - t_transfer, rec.sent,
                         rec.step, rec.group);
      client_.use(t_client, [this, rec, t_client]() mutable {
        rec.displayed = sim_.now();
        total_client_ += t_client;
        if (client_lane_ >= 0)
          obs::record_span(client_lane_, "display", rec.displayed - t_client,
                           rec.displayed, rec.step, rec.group);
        records_.push_back(rec);
      });
    });
  }

  PipelineConfig cfg_;
  Partition partition_;
  sevt::Simulator sim_;
  sevt::Resource disk_, lan_, wan_, client_;
  std::vector<std::unique_ptr<GroupState>> groups_;
  std::vector<FrameRecord> records_;
  std::vector<int> group_lanes_;  ///< Empty when tracing is disabled.
  int wan_lane_ = -1;
  int client_lane_ = -1;
  double total_input_ = 0.0, total_render_ = 0.0, total_composite_ = 0.0,
         total_compress_ = 0.0, total_transfer_ = 0.0, total_client_ = 0.0,
         total_bytes_ = 0.0;
};

}  // namespace

PipelineResult simulate_pipeline(const PipelineConfig& config) {
  PipelineSim sim(config);
  return sim.run();
}

}  // namespace tvviz::core
