#include "core/adaptive.hpp"

#include <stdexcept>

namespace tvviz::core {

AdaptiveCodecController::AdaptiveCodecController(double target_frame_seconds,
                                                 std::vector<std::string> ladder,
                                                 std::size_t initial)
    : target_(target_frame_seconds), ladder_(std::move(ladder)), index_(initial) {
  if (ladder_.empty())
    throw std::invalid_argument("AdaptiveCodecController: empty ladder");
  if (index_ >= ladder_.size())
    throw std::invalid_argument("AdaptiveCodecController: bad initial index");
  if (target_ <= 0.0)
    throw std::invalid_argument("AdaptiveCodecController: bad target");
}

std::vector<net::ControlEvent> AdaptiveCodecController::on_frame(
    double display_seconds) {
  // Hysteresis: escalate after two consecutive over-budget frames; relax
  // only after four comfortably-under-budget frames (half the budget), so
  // the codec does not flap around the threshold.
  std::vector<net::ControlEvent> events;
  if (display_seconds > target_) {
    ++over_budget_streak_;
    under_budget_streak_ = 0;
    if (over_budget_streak_ >= 2 && index_ + 1 < ladder_.size()) {
      ++index_;
      ++switches_;
      over_budget_streak_ = 0;
      net::ControlEvent e;
      e.kind = net::ControlKind::kSetCodec;
      e.name = ladder_[index_];
      events.push_back(e);
    }
  } else if (display_seconds < 0.5 * target_) {
    ++under_budget_streak_;
    over_budget_streak_ = 0;
    if (under_budget_streak_ >= 4 && index_ > 0) {
      --index_;
      ++switches_;
      under_budget_streak_ = 0;
      net::ControlEvent e;
      e.kind = net::ControlKind::kSetCodec;
      e.name = ladder_[index_];
      events.push_back(e);
    }
  } else {
    over_budget_streak_ = 0;
    under_budget_streak_ = 0;
  }
  return events;
}

}  // namespace tvviz::core
