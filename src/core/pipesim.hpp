// Discrete-event simulator of the complete remote rendering pipeline
// (Figure 1 + Figure 2): shared sequential data input, L render groups,
// binary-swap compositing, compression, wide-area image output, client
// decompression/display. Stage durations come from StageCosts; this is how
// the partition sweeps (Figures 6/7) and the transport comparisons
// (Figures 8/9/11, Table 2) run at paper scale on one host.
#pragma once

#include <string>
#include <vector>

#include "core/costs.hpp"
#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "field/generators.hpp"

namespace tvviz::core {

/// How rendered frames reach the remote display.
enum class OutputMode {
  kXWindow,           ///< Raw frames through remote X (synchronous).
  kDaemonCompressed,  ///< Compressed frames through the display daemon.
};

struct PipelineConfig {
  int processors = 32;
  int groups = 4;
  field::DatasetDesc dataset = field::turbulent_jet_desc();
  int steps_limit = -1;  ///< Cap on time steps (-1 = all).
  int image_width = 256;
  int image_height = 256;
  OutputMode output = OutputMode::kDaemonCompressed;
  CodecProfile codec = CodecProfile::paper("jpeg+lzo");
  StageCosts costs = StageCosts::rwcp_paper();
  /// Parallel compression (§6): each of the group's nodes compresses and
  /// ships its own sub-image; skips assembly but multiplies WAN messages
  /// and client decompression overhead.
  bool parallel_compression = false;
  /// Volumes a group may buffer ahead of rendering (pipelined input).
  int prefetch_depth = 1;
  /// §7.1 parallel I/O: number of independent I/O servers each volume is
  /// striped across (1 = the paper's sequential-input environment).
  int io_servers = 1;

  int steps() const noexcept {
    return steps_limit > 0 && steps_limit < dataset.steps ? steps_limit
                                                          : dataset.steps;
  }
  std::size_t pixels() const noexcept {
    return static_cast<std::size_t>(image_width) * image_height;
  }
};

/// Per-frame mean stage durations (seconds) for breakdown reporting.
struct StageBreakdown {
  double input = 0.0;
  double render = 0.0;
  double composite = 0.0;
  double compress = 0.0;
  double transfer = 0.0;
  double client = 0.0;  ///< Decompression + display at the client.
};

struct PipelineResult {
  Metrics metrics;
  std::vector<FrameRecord> frames;
  StageBreakdown breakdown;
  double disk_utilization = 0.0;
  double wan_utilization = 0.0;
  double compressed_bytes_per_frame = 0.0;
};

/// Run the pipeline simulation to completion.
PipelineResult simulate_pipeline(const PipelineConfig& config);

}  // namespace tvviz::core
