#include "fault/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tvviz::fault {

double RetryPolicy::backoff_ms(int attempt, util::Rng& rng) const noexcept {
  if (attempt <= 1) return 0.0;
  double delay = base_delay_ms;
  for (int i = 2; i < attempt && delay < max_delay_ms; ++i) delay *= 2.0;
  delay = std::min(delay, max_delay_ms);
  if (jitter > 0.0)
    delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  return std::max(0.0, delay);
}

bool Backoff::next() {
  static obs::Counter& attempts = obs::counter("net.retry.attempts");
  static obs::Counter& waited = obs::counter("net.retry.backoff_wait_ms");
  static obs::Counter& giveups = obs::counter("net.retry.giveups");
  if (attempt_ >= policy_.max_attempts) {
    giveups.add(1);
    return false;
  }
  ++attempt_;
  const double delay = policy_.backoff_ms(attempt_, rng_);
  if (delay > 0.0) {
    obs::Span span("net.retry.backoff");
    waited.add(static_cast<std::uint64_t>(delay));
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
  }
  attempts.add(1);
  return true;
}

}  // namespace tvviz::fault
