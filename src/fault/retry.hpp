// Recovery policies for the wide-area transport: capped exponential backoff
// with deterministic jitter, and the attempt-counting helper the retry call
// sites (TcpConnection::connect_local_retry, the daemon's display pump,
// HubTcpViewer's reconnect loop) share. Every wait and every give-up is
// visible in the `net.retry.*` counters, and the jitter comes from a caller
// -supplied util::Rng so a seeded run replays bit-identically.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace tvviz::fault {

/// How an operation recovers from transient failure. The defaults are
/// deliberately mild (a few attempts, sub-second waits); `io_timeout_ms`
/// is carried here so one policy object configures both the per-op
/// deadline and the backoff that follows it.
struct RetryPolicy {
  int max_attempts = 5;        ///< Total tries, including the first.
  double base_delay_ms = 5.0;  ///< Backoff before the 2nd attempt.
  double max_delay_ms = 500.0; ///< Cap on the exponential growth.
  double jitter = 0.5;         ///< Delay scaled by [1-jitter, 1+jitter).
  double io_timeout_ms = 0.0;  ///< Per-op socket deadline; 0 = block forever.

  /// Backoff before attempt `attempt` (attempts count from 1; the first
  /// attempt has no backoff). min(max_delay, base * 2^(attempt-2)), jittered
  /// from `rng`. Deterministic for a given rng state.
  double backoff_ms(int attempt, util::Rng& rng) const noexcept;
};

/// Attempt loop helper:
///
///   fault::Backoff backoff(policy, rng);
///   while (backoff.next()) {            // sleeps the backoff from try 2 on
///     try { op(); break; }
///     catch (const net::TimeoutError&) {}  // loop retries
///   }
///
/// next() returns false once the policy's attempts are exhausted (counted
/// as net.retry.giveups). Each granted retry counts net.retry.attempts and
/// adds its wait to net.retry.backoff_wait_ms.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, util::Rng rng) noexcept
      : policy_(policy), rng_(rng) {}

  /// Grant the next attempt, sleeping the backoff first (no sleep before
  /// the first). False once max_attempts have been granted.
  bool next();

  /// Attempts granted so far.
  int attempts() const noexcept { return attempt_; }

  /// Forget the failure history (call after a success so a later failure
  /// starts from the base delay again).
  void reset() noexcept { attempt_ = 0; }

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  int attempt_ = 0;
};

}  // namespace tvviz::fault
