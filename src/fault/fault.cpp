#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/counters.hpp"

namespace tvviz::fault {

namespace {

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

obs::Counter& kind_counter(FaultKind kind) {
  // Resolved once per kind; the registry reference is stable for the
  // process lifetime.
  static obs::Counter& refused = obs::counter("net.fault.refused_connects");
  static obs::Counter& drops = obs::counter("net.fault.drops");
  static obs::Counter& delays = obs::counter("net.fault.delays");
  static obs::Counter& truncations = obs::counter("net.fault.truncations");
  static obs::Counter& corruptions = obs::counter("net.fault.corruptions");
  static obs::Counter& stalls = obs::counter("net.fault.stalls");
  switch (kind) {
    case FaultKind::kRefuseConnect: return refused;
    case FaultKind::kDropAfterBytes: return drops;
    case FaultKind::kDelaySend: return delays;
    case FaultKind::kTruncateFrame: return truncations;
    case FaultKind::kCorruptFrame: return corruptions;
    case FaultKind::kStallRecv: return stalls;
  }
  return delays;
}

util::Mutex g_injector_mutex;
std::shared_ptr<FaultInjector> g_injector TVVIZ_GUARDED_BY(g_injector_mutex);

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kRefuseConnect: return "refuse_connect";
    case FaultKind::kDropAfterBytes: return "drop_after_bytes";
    case FaultKind::kDelaySend: return "delay_send";
    case FaultKind::kTruncateFrame: return "truncate_frame";
    case FaultKind::kCorruptFrame: return "corrupt_frame";
    case FaultKind::kStallRecv: return "stall_recv";
  }
  return "unknown";
}

// ------------------------------------------------------------ FaultPlan ----

FaultPlan& FaultPlan::refuse_connects(int n) {
  FaultSpec spec;
  spec.kind = FaultKind::kRefuseConnect;
  spec.count = n;
  specs.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::drop_after_bytes(std::size_t bytes, int conn) {
  FaultSpec spec;
  spec.kind = FaultKind::kDropAfterBytes;
  spec.after_bytes = bytes;
  spec.conn = conn;
  specs.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::delay_send_ms(double ms, int frame, int conn) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelaySend;
  spec.delay_ms = ms;
  spec.frame = frame;
  spec.conn = conn;
  specs.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::truncate_frame(int frame, int conn) {
  FaultSpec spec;
  spec.kind = FaultKind::kTruncateFrame;
  spec.frame = frame;
  spec.conn = conn;
  specs.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::corrupt_frame(int frame, int conn) {
  FaultSpec spec;
  spec.kind = FaultKind::kCorruptFrame;
  spec.frame = frame;
  spec.conn = conn;
  specs.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::stall_recv_ms(double ms, int frame, int conn) {
  FaultSpec spec;
  spec.kind = FaultKind::kStallRecv;
  spec.delay_ms = ms;
  spec.frame = frame;
  spec.conn = conn;
  specs.push_back(spec);
  return *this;
}

FaultPlan FaultPlan::latency_chaos(std::uint64_t seed, double rate,
                                   double max_ms) {
  FaultPlan plan;
  plan.seed = seed;
  plan.send_delay_rate = rate;
  plan.send_delay_max_ms = max_ms;
  plan.recv_stall_rate = rate * 0.5;
  plan.recv_stall_max_ms = max_ms;
  return plan;
}

// -------------------------------------------------------- InjectedEvent ----

std::string InjectedEvent::to_string() const {
  std::string line = fault_kind_name(kind);
  line += " conn=" + std::to_string(conn);
  line += " seq=" + std::to_string(seq);
  line += " op=" + std::to_string(op);
  if (!detail.empty()) {
    line += ' ';
    line += detail;
  }
  return line;
}

// ----------------------------------------------------- ConnectionFaults ----

bool ConnectionFaults::matches(const FaultSpec& spec, int op) const noexcept {
  return (spec.conn < 0 || spec.conn == index_) &&
         (spec.frame < 0 || spec.frame == op);
}

void ConnectionFaults::record(FaultKind kind, int op, std::string detail) {
  InjectedEvent event;
  event.kind = kind;
  event.conn = index_;
  event.seq = seq_++;
  event.op = op;
  event.detail = std::move(detail);
  owner_->record(std::move(event));
}

SendFault ConnectionFaults::before_send(std::size_t frame_bytes,
                                        std::size_t mutable_prefix) {
  util::LockGuard lock(mutex_);
  const int op = sends_++;
  SendFault fault;
  const auto corrupt_one = [&] {
    // Flip one bit somewhere in the prefix+header scratch region. Offset
    // and mask come from the forked stream, so they replay identically.
    const std::size_t off = rng_.below(std::max<std::size_t>(1, mutable_prefix));
    const auto mask = static_cast<std::uint8_t>(1u << rng_.below(8));
    fault.corrupt.emplace_back(off, mask);
    record(FaultKind::kCorruptFrame, op,
           "off=" + std::to_string(off) + " mask=" + std::to_string(mask));
  };
  for (const auto& spec : owner_->plan().specs) {
    if (!matches(spec, op)) continue;
    switch (spec.kind) {
      case FaultKind::kDelaySend:
        fault.delay_ms += spec.delay_ms;
        record(spec.kind, op, "delay_ms=" + fmt_ms(spec.delay_ms));
        break;
      case FaultKind::kCorruptFrame:
        corrupt_one();
        break;
      case FaultKind::kTruncateFrame: {
        // Cut somewhere strictly inside the frame: a partial length prefix
        // when the draw lands under 4 bytes, a partial body otherwise.
        const std::size_t keep =
            1 + rng_.below(std::max<std::size_t>(1, frame_bytes - 1));
        fault.truncate_to = std::min(fault.truncate_to, keep);
        record(spec.kind, op, "sent=" + std::to_string(keep) + "/" +
                                  std::to_string(frame_bytes));
        break;
      }
      case FaultKind::kDropAfterBytes:
        if (!byte_drop_fired_ &&
            sent_bytes_ + frame_bytes > spec.after_bytes) {
          byte_drop_fired_ = true;
          if (sent_bytes_ >= spec.after_bytes) {
            fault.drop_before = true;
          } else {
            fault.truncate_to =
                std::min(fault.truncate_to, spec.after_bytes - sent_bytes_);
          }
          record(spec.kind, op,
                 "after=" + std::to_string(spec.after_bytes) +
                     " sent=" + std::to_string(sent_bytes_));
        }
        break;
      default:
        break;
    }
  }
  // Probabilistic chaos, in a fixed draw order so replays stay aligned.
  const auto& p = owner_->plan();
  if (p.send_drop_rate > 0.0 && rng_.uniform() < p.send_drop_rate) {
    fault.drop_before = true;
    record(FaultKind::kDropAfterBytes, op, "rate_drop");
  }
  if (p.send_corrupt_rate > 0.0 && rng_.uniform() < p.send_corrupt_rate)
    corrupt_one();
  if (p.send_delay_rate > 0.0 && rng_.uniform() < p.send_delay_rate) {
    const double ms = rng_.uniform(0.0, p.send_delay_max_ms);
    fault.delay_ms += ms;
    record(FaultKind::kDelaySend, op, "delay_ms=" + fmt_ms(ms));
  }
  if (fault.drop_before) {
    // Nothing goes out.
  } else if (fault.truncate_to != SendFault::kNoTruncate) {
    sent_bytes_ += std::min(frame_bytes, fault.truncate_to);
  } else {
    sent_bytes_ += frame_bytes;
  }
  return fault;
}

RecvFault ConnectionFaults::before_recv() {
  util::LockGuard lock(mutex_);
  const int op = recvs_++;
  RecvFault fault;
  for (const auto& spec : owner_->plan().specs) {
    if (spec.kind != FaultKind::kStallRecv || !matches(spec, op)) continue;
    fault.stall_ms += spec.delay_ms;
    record(spec.kind, op, "stall_ms=" + fmt_ms(spec.delay_ms));
  }
  const auto& p = owner_->plan();
  if (p.recv_stall_rate > 0.0 && rng_.uniform() < p.recv_stall_rate) {
    const double ms = rng_.uniform(0.0, p.recv_stall_max_ms);
    fault.stall_ms += ms;
    record(FaultKind::kStallRecv, op, "stall_ms=" + fmt_ms(ms));
  }
  return fault;
}

// --------------------------------------------------------- FaultInjector ----

std::shared_ptr<ConnectionFaults> FaultInjector::attach_connection() {
  int index;
  {
    util::LockGuard lock(mutex_);
    index = next_conn_++;
  }
  // Fork a per-connection stream: seed mixed with the index through
  // splitmix64, so streams are independent and replay by index.
  std::uint64_t mix = plan_.seed + 0x9e3779b97f4a7c15ULL *
                                       (static_cast<std::uint64_t>(index) + 1);
  const util::Rng rng(util::splitmix64(mix));
  return std::shared_ptr<ConnectionFaults>(
      new ConnectionFaults(shared_from_this(), index, rng));
}

bool FaultInjector::refuse_connect() {
  int attempt;
  int total = 0;
  {
    util::LockGuard lock(mutex_);
    attempt = connect_attempts_++;
    for (const auto& spec : plan_.specs)
      if (spec.kind == FaultKind::kRefuseConnect) total += spec.count;
    if (refusals_done_ >= total) return false;
    ++refusals_done_;
  }
  InjectedEvent event;
  event.kind = FaultKind::kRefuseConnect;
  event.conn = -1;
  event.seq = attempt;
  event.op = attempt;
  record(std::move(event));
  return true;
}

void FaultInjector::record(InjectedEvent event) {
  static obs::Counter& injected = obs::counter("net.fault.injected");
  injected.add(1);
  kind_counter(event.kind).add(1);
  util::LockGuard lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<InjectedEvent> FaultInjector::events() const {
  std::vector<InjectedEvent> out;
  {
    util::LockGuard lock(mutex_);
    out = events_;
  }
  // Canonical order: by connection then per-connection sequence, so the log
  // does not depend on how threads of different connections interleaved.
  std::stable_sort(out.begin(), out.end(),
                   [](const InjectedEvent& a, const InjectedEvent& b) {
                     if (a.conn != b.conn) return a.conn < b.conn;
                     return a.seq < b.seq;
                   });
  return out;
}

std::string FaultInjector::event_log() const {
  std::string log;
  for (const auto& event : events()) {
    log += event.to_string();
    log += '\n';
  }
  return log;
}

// -------------------------------------------------------- global install ----

std::shared_ptr<FaultInjector> install(FaultPlan plan) {
  auto injector = std::make_shared<FaultInjector>(std::move(plan));
  util::LockGuard lock(g_injector_mutex);
  g_injector = injector;
  return injector;
}

void uninstall() {
  util::LockGuard lock(g_injector_mutex);
  g_injector.reset();
}

std::shared_ptr<FaultInjector> active() {
  util::LockGuard lock(g_injector_mutex);
  return g_injector;
}

}  // namespace tvviz::fault
