// Deterministic fault injection for the socket transport. A FaultPlan is a
// seeded PRNG plus a declarative schedule — refuse the next N connects, drop
// a connection after B bytes, delay or corrupt or truncate the K-th frame,
// stall a receive — installed process-wide and consulted by every
// TcpConnection (src/net/tcp.cpp) at its syscall choke points. The same
// plan with the same seed replays bit-identically: every random draw comes
// from a stream forked from (seed, connection index), never from wall
// clock, and the injector keeps a canonical log of what it did so two runs
// can be compared event-for-event (tests/fault_test.cpp does exactly that).
//
// Connections are addressed by their creation index since install (0, 1,
// ...), which is deterministic whenever the scenario itself is (one client
// connecting at a time: client conn, then the server's accepted conn).
// Corruption only ever touches the frame's length prefix and header bytes —
// the per-send scratch region — never the shared immutable payload buffer,
// so an injected corrupt frame cannot poison the sender's frame cache.
//
// Injected faults count under net.fault.* and surface as spans on the
// injecting thread's lane, so a chaos run's trace shows every fault next to
// the recovery it provoked (net.retry.* — see fault/retry.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace tvviz::fault {

enum class FaultKind : std::uint8_t {
  kRefuseConnect = 0,  ///< Fail a connect() attempt outright.
  kDropAfterBytes,     ///< Kill the connection after B sent bytes (mid-frame).
  kDelaySend,          ///< Sleep before a send (WAN latency spike).
  kTruncateFrame,      ///< Send a prefix of the frame, then kill the socket.
  kCorruptFrame,       ///< Flip header bits of one frame (stream desync).
  kStallRecv,          ///< Sleep before a receive (stalled link).
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// One declarative entry of a plan's schedule. `conn` and `frame` select
/// where it fires: the connection's creation index and the per-connection
/// send index (receive index for kStallRecv), -1 meaning "every".
struct FaultSpec {
  FaultKind kind = FaultKind::kDelaySend;
  int conn = -1;
  int frame = -1;
  std::size_t after_bytes = 0;  ///< kDropAfterBytes threshold.
  double delay_ms = 0.0;        ///< kDelaySend / kStallRecv.
  int count = 1;                ///< kRefuseConnect: attempts to refuse.
};

/// A seeded PRNG plus the schedule. Probabilistic chaos rates ride along
/// for soak-style tests: each send/recv draws against them from the
/// connection's forked stream, so they too replay bit-identically.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;

  double send_delay_rate = 0.0;   ///< P(send is delayed).
  double send_delay_max_ms = 0.0; ///< Delay drawn uniform in (0, max].
  double recv_stall_rate = 0.0;   ///< P(recv is stalled).
  double recv_stall_max_ms = 0.0;
  double send_drop_rate = 0.0;    ///< P(send kills the connection instead).
  double send_corrupt_rate = 0.0; ///< P(send's header is corrupted).

  FaultPlan& refuse_connects(int n);
  FaultPlan& drop_after_bytes(std::size_t bytes, int conn = -1);
  FaultPlan& delay_send_ms(double ms, int frame = -1, int conn = -1);
  FaultPlan& truncate_frame(int frame, int conn = -1);
  FaultPlan& corrupt_frame(int frame, int conn = -1);
  FaultPlan& stall_recv_ms(double ms, int frame = -1, int conn = -1);

  /// Latency-only chaos (delays and stalls, never a lost byte): safe to
  /// install under a whole session (tvviz --fault-seed) because every
  /// frame still arrives — just not on time.
  static FaultPlan latency_chaos(std::uint64_t seed, double rate = 0.2,
                                 double max_ms = 3.0);
};

/// One injected fault, as recorded in the injector's log. Contains no wall
/// -clock data: two runs of the same plan over the same scenario produce
/// byte-identical logs.
struct InjectedEvent {
  FaultKind kind = FaultKind::kDelaySend;
  int conn = -1;  ///< Connection index; -1 for connect-time faults.
  int seq = 0;    ///< Per-connection injection sequence number.
  int op = 0;     ///< Send/recv/connect-attempt index the fault hit.
  std::string detail;  ///< Deterministic parameters ("delay_ms=1.25", ...).

  std::string to_string() const;
};

/// What the transport should do to the frame it is about to send.
struct SendFault {
  static constexpr std::size_t kNoTruncate =
      std::numeric_limits<std::size_t>::max();
  double delay_ms = 0.0;
  bool drop_before = false;          ///< Kill the socket; send nothing.
  std::size_t truncate_to = kNoTruncate;  ///< Send this many bytes, then kill.
  /// XOR masks at wire offsets, all within the mutable prefix+header bytes.
  std::vector<std::pair<std::size_t, std::uint8_t>> corrupt;
};

struct RecvFault {
  double stall_ms = 0.0;
  bool drop = false;  ///< Kill the socket instead of receiving.
};

class FaultInjector;

/// A connection's private view of the plan: its forked PRNG, its send/recv
/// indices, its byte count. Thread-safe (a connection's send and recv run
/// on different threads).
class ConnectionFaults {
 public:
  /// Decide the fate of the next send. `frame_bytes` is the full wire size,
  /// `mutable_prefix` the number of leading bytes corruption may touch.
  SendFault before_send(std::size_t frame_bytes, std::size_t mutable_prefix)
      TVVIZ_EXCLUDES(mutex_);

  /// Decide the fate of the next receive.
  RecvFault before_recv() TVVIZ_EXCLUDES(mutex_);

  int index() const noexcept { return index_; }

 private:
  friend class FaultInjector;
  ConnectionFaults(std::shared_ptr<FaultInjector> owner, int index,
                   util::Rng rng)
      : owner_(std::move(owner)), index_(index), rng_(rng) {}

  bool matches(const FaultSpec& spec, int op) const noexcept;
  /// Appends to the injector's log; caller holds mutex_ (for seq_). Lock
  /// order: ConnectionFaults::mutex_, then FaultInjector::mutex_.
  void record(FaultKind kind, int op, std::string detail)
      TVVIZ_REQUIRES(mutex_);

  std::shared_ptr<FaultInjector> owner_;
  int index_;
  util::Rng rng_ TVVIZ_GUARDED_BY(mutex_);
  util::Mutex mutex_;
  int sends_ TVVIZ_GUARDED_BY(mutex_) = 0;
  int recvs_ TVVIZ_GUARDED_BY(mutex_) = 0;
  int seq_ TVVIZ_GUARDED_BY(mutex_) = 0;
  std::size_t sent_bytes_ TVVIZ_GUARDED_BY(mutex_) = 0;
  bool byte_drop_fired_ TVVIZ_GUARDED_BY(mutex_) = false;
};

/// The process-wide engine consuming one plan. Owns the canonical event
/// log; hands a ConnectionFaults to every TcpConnection created while
/// installed.
class FaultInjector : public std::enable_shared_from_this<FaultInjector> {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Called by the transport for each new connection.
  std::shared_ptr<ConnectionFaults> attach_connection() TVVIZ_EXCLUDES(mutex_);

  /// Called by the transport before a real connect(). True = refuse this
  /// attempt (the caller throws net::SocketError).
  bool refuse_connect() TVVIZ_EXCLUDES(mutex_);

  /// Every injected event so far, in canonical (conn, seq) order —
  /// independent of cross-connection thread interleaving.
  std::vector<InjectedEvent> events() const TVVIZ_EXCLUDES(mutex_);

  /// events(), one line each: the replay-comparison form.
  std::string event_log() const;

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  friend class ConnectionFaults;
  void record(InjectedEvent event) TVVIZ_EXCLUDES(mutex_);

  FaultPlan plan_;
  mutable util::Mutex mutex_;
  std::vector<InjectedEvent> events_ TVVIZ_GUARDED_BY(mutex_);
  int next_conn_ TVVIZ_GUARDED_BY(mutex_) = 0;
  int connect_attempts_ TVVIZ_GUARDED_BY(mutex_) = 0;
  int refusals_done_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

/// Install `plan` as the process-wide injector (replacing any previous
/// one). Connections created from now on feel it.
std::shared_ptr<FaultInjector> install(FaultPlan plan);

/// Remove the process-wide injector. Live connections keep their attached
/// ConnectionFaults (shared ownership) until they close.
void uninstall();

/// The installed injector, or nullptr.
std::shared_ptr<FaultInjector> active();

/// RAII install/uninstall, for tests and scoped chaos runs.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) : injector_(install(std::move(plan))) {}
  ~ScopedFaultPlan() { uninstall(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  FaultInjector& injector() noexcept { return *injector_; }

 private:
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace tvviz::fault
