// Parallel sort-last image compositing over the vmp runtime:
//   * direct-send — every node ships its whole partial image to a collector
//   * binary-swap — log2(P) pairwise half-image exchanges (Ma et al. 1994),
//     leaving each node with 1/P of the final frame; the paper's renderer
//     composites this way before the image-output stage.
#pragma once

#include "render/image.hpp"
#include "vmp/communicator.hpp"

namespace tvviz::compositing {

/// A node's share of the final frame after binary-swap: full frame width,
/// rows [row0, row0 + height).
struct FrameSlice {
  int row0 = 0;
  render::PartialImage image;  ///< x0 = 0, y0 = row0, width = frame width.
};

/// Direct-send compositing: every rank sends its partial image to `root`,
/// which depth-sorts and composites. Returns the frame at root, an empty
/// image elsewhere. Collective over `comm`.
render::Image direct_send(const vmp::Communicator& comm,
                          const render::PartialImage& mine, int width,
                          int height, int root = 0);

/// Binary-swap compositing. Collective over `comm` (any size; with a
/// non-power-of-two count, adjacent rank pairs pre-composite in a fold
/// round). Each rank returns its slice of the fully composited frame.
///
/// Requires partial-image depths monotone in rank (ascending or
/// descending) — what a slab decomposition yields under an orthographic
/// camera. Use direct_send for arbitrary depth orders.
FrameSlice binary_swap(const vmp::Communicator& comm,
                       const render::PartialImage& mine, int width,
                       int height);

/// Assemble binary-swap slices into the full frame at `root` (collective).
render::Image gather_frame(const vmp::Communicator& comm,
                           const FrameSlice& slice, int width, int height,
                           int root = 0);

/// Like gather_frame, but keeps the full-precision float pixels: the root
/// gets a full-frame PartialImage (x0 = y0 = 0) instead of an 8-bit splat.
/// The depth-warping path needs this — the per-pixel z channel is only
/// recoverable before quantization. Collective over `comm`.
render::PartialImage gather_frame_float(const vmp::Communicator& comm,
                                        const FrameSlice& slice, int width,
                                        int height, int root = 0);

/// Binary-tree compositing: pairs merge and forward up log2(P) levels until
/// rank 0 holds the frame. The classic middle ground between direct-send
/// (flat, collector-bound) and binary-swap (fully balanced): communication
/// halves per level but the upper levels concentrate whole-frame traffic.
/// Same depth-monotone-in-rank requirement as binary_swap.
render::Image tree_composite(const vmp::Communicator& comm,
                             const render::PartialImage& mine, int width,
                             int height);

}  // namespace tvviz::compositing
