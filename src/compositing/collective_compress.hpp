// Collective parallel compression (§4.1): "The other [way] is to have all
// the processors collectively compress an image which would require
// inter-processor communication. The latter would give the best
// compression results in terms of both quality and efficiency."
//
// The paper only experimented with independent per-node compression; this
// implements the collective variant for the JPEG-style codec: every rank
// transforms and tokenizes its own binary-swap strip, the Huffman symbol
// statistics are combined with an allreduce, every rank entropy-codes its
// strip with the identical optimal tables, and the root assembles ONE
// stream whose tables were fitted to the WHOLE frame. Ratio matches the
// assembled-frame encoder (same statistics) while the transform/entropy
// work stays distributed.
#pragma once

#include "render/image.hpp"
#include "vmp/communicator.hpp"

namespace tvviz::compositing {

/// Collectively encode a frame of (width x height) split into full-width
/// strips: each rank passes its strip (may be empty: height 0) and the
/// strip's top row `y0`. Returns the full encoded frame at rank 0 and {}
/// elsewhere. Collective over `comm`.
util::Bytes collective_jpeg_encode(const vmp::Communicator& comm,
                                   const render::Image& my_strip, int y0,
                                   int width, int height, int quality = 75);

/// Same collective encode, but the root assembles the frame in a buffer
/// drawn from `pool` and returns it as an immutable SharedBytes that every
/// downstream hop (daemon, hub, viewers) shares without copying; the buffer
/// recycles when the last reference drops. Non-roots return {}.
util::SharedBytes collective_jpeg_encode_shared(const vmp::Communicator& comm,
                                                const render::Image& my_strip,
                                                int y0, int width, int height,
                                                int quality,
                                                util::BufferPool& pool);

/// Decode a collectively-encoded frame (stand-alone; the display client
/// needs no communicator).
render::Image collective_jpeg_decode(std::span<const std::uint8_t> data);

}  // namespace tvviz::compositing
