#include "compositing/over.hpp"

#include <algorithm>

namespace tvviz::compositing {

render::PartialImage composite_reference_f(
    std::vector<render::PartialImage> partials, int width, int height) {
  std::sort(partials.begin(), partials.end(),
            [](const render::PartialImage& a, const render::PartialImage& b) {
              return a.depth() < b.depth();
            });
  render::PartialImage frame(0, 0, width, height);
  frame.set_depth(partials.empty() ? 0.0 : partials.front().depth());
  for (const auto& part : partials) {
    for (int y = 0; y < part.height(); ++y) {
      const int fy = part.y0() + y;
      if (fy < 0 || fy >= height) continue;
      for (int x = 0; x < part.width(); ++x) {
        const int fx = part.x0() + x;
        if (fx < 0 || fx >= width) continue;
        // `frame` accumulates the nearer content, so it stays in front.
        frame.at(fx, fy) = frame.at(fx, fy).over(part.at(x, y));
      }
    }
  }
  return frame;
}

render::Image composite_reference(std::vector<render::PartialImage> partials,
                                  int width, int height) {
  const render::PartialImage frame =
      composite_reference_f(std::move(partials), width, height);
  render::Image out(width, height);
  frame.splat_to(out);
  return out;
}

}  // namespace tvviz::compositing
