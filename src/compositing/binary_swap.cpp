#include "compositing/binary_swap.hpp"

#include <algorithm>
#include <stdexcept>

#include "compositing/over.hpp"

namespace tvviz::compositing {

namespace {
constexpr int kFoldTag = 100;
constexpr int kSwapTag = 101;
constexpr int kGatherTag = 102;

/// Composite two buffers covering the same frame region, nearer-first.
render::PartialImage composite_pair(const render::PartialImage& a,
                                    const render::PartialImage& b) {
  const render::PartialImage& front = a.depth() <= b.depth() ? a : b;
  const render::PartialImage& back = a.depth() <= b.depth() ? b : a;
  render::PartialImage out(front.x0(), front.y0(), front.width(),
                           front.height());
  out.set_depth(front.depth());
  for (int y = 0; y < out.height(); ++y)
    for (int x = 0; x < out.width(); ++x)
      out.at(x, y) = front.at(x, y).over(back.at(x, y));
  return out;
}

/// Expand a partial image into a full-frame float buffer (region [0, h)).
render::PartialImage to_full_frame(const render::PartialImage& part, int width,
                                   int height) {
  render::PartialImage frame(0, 0, width, height);
  frame.set_depth(part.depth());
  for (int y = 0; y < part.height(); ++y) {
    const int fy = part.y0() + y;
    if (fy < 0 || fy >= height) continue;
    for (int x = 0; x < part.width(); ++x) {
      const int fx = part.x0() + x;
      if (fx < 0 || fx >= width) continue;
      frame.at(fx, fy) = part.at(x, y);
    }
  }
  return frame;
}
}  // namespace

render::Image direct_send(const vmp::Communicator& comm,
                          const render::PartialImage& mine, int width,
                          int height, int root) {
  auto gathered = comm.gather(root, mine.serialize());
  if (comm.rank() != root) return {};
  std::vector<render::PartialImage> partials;
  partials.reserve(gathered.size());
  for (const auto& bytes : gathered)
    partials.push_back(render::PartialImage::deserialize(bytes));
  return composite_reference(std::move(partials), width, height);
}

FrameSlice binary_swap(const vmp::Communicator& comm,
                       const render::PartialImage& mine, int width,
                       int height) {
  // Correctness contract: partial-image depths must be monotone in rank
  // (ascending or descending), as a slab decomposition guarantees under an
  // orthographic view. Pairwise merges then always combine depth-contiguous
  // runs, and compositing by the runs' minimum depth reproduces the global
  // order exactly (`over` is associative).
  const int p = comm.size();
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int extras = p - p2;  // folded in a pre-round

  // Fold phase: the first 2*extras ranks composite pairwise (adjacent ranks
  // = adjacent depths, preserving run contiguity); odd members then hold an
  // empty slice. Participants get virtual labels 0..p2-1 in rank order.
  render::PartialImage buf;
  if (comm.rank() < 2 * extras && (comm.rank() & 1) == 1) {
    comm.send(comm.rank() - 1, kFoldTag, mine.serialize());
    return FrameSlice{0, render::PartialImage(0, 0, 0, 0)};
  }
  buf = to_full_frame(mine, width, height);
  if (comm.rank() < 2 * extras) {
    const auto msg = comm.recv(comm.rank() + 1, kFoldTag);
    const auto other =
        to_full_frame(render::PartialImage::deserialize(msg.payload), width,
                      height);
    buf = composite_pair(buf, other);
  }
  const int vlabel =
      comm.rank() < 2 * extras ? comm.rank() / 2 : comm.rank() - extras;
  const auto physical = [&](int label) {
    return label < extras ? 2 * label : label + extras;
  };

  // Swap phase among the p2 participants: each stage halves the rows this
  // rank is responsible for and exchanges the other half with its peer.
  int row0 = 0, row1 = height;
  for (int bit = 1; bit < p2; bit <<= 1) {
    const int peer = physical(vlabel ^ bit);
    const int mid = row0 + (row1 - row0) / 2;
    const bool keep_low = (vlabel & bit) == 0;
    const int keep0 = keep_low ? row0 : mid;
    const int keep1 = keep_low ? mid : row1;
    const int send0 = keep_low ? mid : row0;
    const int send1 = keep_low ? row1 : mid;

    // Rows are relative to buf (whose y0 == row0).
    const render::PartialImage outgoing =
        buf.crop_rows(send0 - row0, send1 - row0);
    const auto reply = comm.sendrecv(peer, kSwapTag, outgoing.serialize());
    const render::PartialImage incoming =
        render::PartialImage::deserialize(reply.payload);

    render::PartialImage kept = buf.crop_rows(keep0 - row0, keep1 - row0);
    if (incoming.width() != kept.width() || incoming.height() != kept.height())
      throw std::runtime_error("binary_swap: region mismatch");
    buf = composite_pair(kept, incoming);
    row0 = keep0;
    row1 = keep1;
  }
  return FrameSlice{row0, std::move(buf)};
}

render::Image gather_frame(const vmp::Communicator& comm,
                           const FrameSlice& slice, int width, int height,
                           int root) {
  auto gathered = comm.gather(root, slice.image.serialize());
  if (comm.rank() != root) return {};
  render::Image frame(width, height);
  for (const auto& bytes : gathered) {
    const auto part = render::PartialImage::deserialize(bytes);
    part.splat_to(frame);
  }
  return frame;
}

render::PartialImage gather_frame_float(const vmp::Communicator& comm,
                                        const FrameSlice& slice, int width,
                                        int height, int root) {
  auto gathered = comm.gather(root, slice.image.serialize());
  if (comm.rank() != root) return {};
  render::PartialImage frame(0, 0, width, height);
  for (const auto& bytes : gathered) {
    const auto part = render::PartialImage::deserialize(bytes);
    // Slices are disjoint row bands of the frame; copy, don't composite.
    for (int y = 0; y < part.height(); ++y) {
      const int fy = part.y0() + y;
      if (fy < 0 || fy >= height) continue;
      for (int x = 0; x < part.width(); ++x) {
        const int fx = part.x0() + x;
        if (fx < 0 || fx >= width) continue;
        frame.at(fx, fy) = part.at(x, y);
      }
    }
  }
  return frame;
}

render::Image tree_composite(const vmp::Communicator& comm,
                             const render::PartialImage& mine, int width,
                             int height) {
  // Level k: ranks with bit k set send their accumulated buffer to the
  // partner with that bit clear, which merges (order by run depth). Merged
  // runs are rank-contiguous, so the monotone-depth contract keeps the
  // global over-ordering exact.
  render::PartialImage buf = to_full_frame(mine, width, height);
  const int p = comm.size();
  for (int bit = 1; bit < p; bit <<= 1) {
    if ((comm.rank() & bit) != 0) {
      comm.send(comm.rank() & ~bit, kGatherTag, buf.serialize());
      render::Image empty;
      return empty;  // this rank is done
    }
    const int partner = comm.rank() | bit;
    if (partner < p) {
      const auto msg = comm.recv(partner, kGatherTag);
      buf = composite_pair(buf,
                           render::PartialImage::deserialize(msg.payload));
    }
  }
  render::Image frame(width, height);
  buf.splat_to(frame);
  return frame;
}

}  // namespace tvviz::compositing
