#include "compositing/collective_compress.hpp"

#include <stdexcept>

#include "codec/huffman.hpp"
#include "codec/jpeg_detail.hpp"

namespace tvviz::compositing {

namespace {
constexpr std::uint32_t kMagic = 0x54504a43;  // "CJPT"
constexpr bool kSubsample = true;

std::vector<std::uint64_t> to_counts(const std::vector<double>& reduced) {
  std::vector<std::uint64_t> counts(reduced.size());
  for (std::size_t i = 0; i < reduced.size(); ++i)
    counts[i] = static_cast<std::uint64_t>(reduced[i] + 0.5);
  return counts;
}

/// Phases 1..4; `pool` selects where the root's assembly buffer comes from
/// (nullptr = plain heap vector). Returns the encoded frame at rank 0, {}
/// elsewhere.
util::Bytes encode_impl(const vmp::Communicator& comm,
                        const render::Image& my_strip, int y0, int width,
                        int height, int quality, util::BufferPool* pool) {
  namespace jd = codec::detail;
  const jd::QuantTables& tables = jd::quant_tables_for(quality);

  // Phase 1: local transform + tokenization (on the SIMD float kernels,
  // block rows fanned out on the TilePool), local symbol statistics.
  jd::SymbolStream streams[3];
  std::vector<std::uint64_t> dc_freq(16, 0), ac_freq(256, 0);
  const bool has_strip = my_strip.height() > 0 && my_strip.width() > 0;
  if (has_strip) {
    const jd::Planes planes = jd::to_planes(my_strip, kSubsample);
    const jd::Plane* plane_ptrs[3] = {&planes.y, &planes.cb, &planes.cr};
    const float* quants[3] = {tables.luma_nat, tables.chroma_nat,
                              tables.chroma_nat};
    for (int c = 0; c < 3; ++c) {
      const auto blocks = jd::quantize_plane_fast(*plane_ptrs[c], quants[c]);
      streams[c] = jd::tokenize(blocks);
      jd::accumulate_frequencies(streams[c], dc_freq, ac_freq);
    }
  }

  // Phase 2: combine statistics across the group (the collective part).
  std::vector<double> combined(16 + 256, 0.0);
  for (int i = 0; i < 16; ++i) combined[static_cast<std::size_t>(i)] =
      static_cast<double>(dc_freq[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 256; ++i)
    combined[static_cast<std::size_t>(16 + i)] =
        static_cast<double>(ac_freq[static_cast<std::size_t>(i)]);
  combined = comm.allreduce(std::move(combined), vmp::ReduceOp::kSum);
  std::vector<std::uint64_t> dc_all =
      to_counts({combined.begin(), combined.begin() + 16});
  std::vector<std::uint64_t> ac_all =
      to_counts({combined.begin() + 16, combined.end()});
  // Degenerate all-empty frame: give the EOB symbols a token count so the
  // tables are still constructible, deterministically on every rank.
  if (std::all_of(dc_all.begin(), dc_all.end(), [](auto v) { return v == 0; }))
    dc_all[0] = 1;
  if (std::all_of(ac_all.begin(), ac_all.end(), [](auto v) { return v == 0; }))
    ac_all[0] = 1;
  const codec::HuffmanCode dc_code = codec::HuffmanCode::from_frequencies(dc_all);
  const codec::HuffmanCode ac_code = codec::HuffmanCode::from_frequencies(ac_all);

  // Phase 3: every rank entropy-codes its strip with the shared tables.
  util::Bytes strip_payload;
  if (has_strip) {
    util::BitWriter bits;
    for (const auto& stream : streams)
      jd::emit_stream(bits, stream, dc_code, ac_code);
    strip_payload = bits.finish();
  }
  util::ByteWriter strip_out(8 + util::varint_size(strip_payload.size()) +
                             strip_payload.size());
  strip_out.u32(static_cast<std::uint32_t>(y0));
  strip_out.u32(static_cast<std::uint32_t>(has_strip ? my_strip.height() : 0));
  strip_out.varint(strip_payload.size());
  strip_out.raw(strip_payload);

  // Phase 4: assemble at the root.
  auto gathered = comm.gather(0, strip_out.take());
  if (comm.rank() != 0) return {};

  // Header + quant tables + Huffman lengths are bounded; the strips
  // dominate. A slight over-estimate only costs pool-bucket rounding.
  std::size_t estimate = 1024;
  for (const auto& g : gathered) estimate += g.size();
  util::ByteWriter out = pool != nullptr
                             ? util::ByteWriter(pool->acquire(estimate))
                             : util::ByteWriter(estimate);
  out.u32(kMagic);
  out.u32(static_cast<std::uint32_t>(width));
  out.u32(static_cast<std::uint32_t>(height));
  out.u8(static_cast<std::uint8_t>(quality));
  out.u8(kSubsample ? 1 : 0);
  for (int i = 0; i < 64; ++i) out.u16(tables.luma_zz[i]);
  for (int i = 0; i < 64; ++i) out.u16(tables.chroma_zz[i]);
  dc_code.write_lengths(out);
  ac_code.write_lengths(out);
  // Count non-empty strips.
  std::uint32_t strips = 0;
  for (const auto& g : gathered) {
    util::ByteReader r(g);
    (void)r.u32();
    if (r.u32() > 0) ++strips;
  }
  out.u32(strips);
  for (const auto& g : gathered) {
    util::ByteReader r(g);
    const std::uint32_t sy0 = r.u32();
    const std::uint32_t sh = r.u32();
    if (sh == 0) continue;
    const std::size_t len = r.varint();
    const auto payload = r.raw(len);
    out.u32(sy0);
    out.u32(sh);
    out.varint(len);
    out.raw(payload);
  }
  return out.take();
}

}  // namespace

util::Bytes collective_jpeg_encode(const vmp::Communicator& comm,
                                   const render::Image& my_strip, int y0,
                                   int width, int height, int quality) {
  return encode_impl(comm, my_strip, y0, width, height, quality, nullptr);
}

util::SharedBytes collective_jpeg_encode_shared(const vmp::Communicator& comm,
                                                const render::Image& my_strip,
                                                int y0, int width, int height,
                                                int quality,
                                                util::BufferPool& pool) {
  util::Bytes out =
      encode_impl(comm, my_strip, y0, width, height, quality, &pool);
  // Non-roots never drew a buffer; only the root's result is pool-backed.
  if (comm.rank() != 0) return {};
  return util::SharedBytes::adopt_pooled(std::move(out), pool);
}

render::Image collective_jpeg_decode(std::span<const std::uint8_t> data) {
  namespace jd = codec::detail;
  util::ByteReader in(data);
  if (in.u32() != kMagic)
    throw std::runtime_error("collective-jpeg: bad magic");
  const int width = static_cast<int>(in.u32());
  const int height = static_cast<int>(in.u32());
  (void)in.u8();  // quality
  const bool subsample = in.u8() != 0;
  std::uint16_t luma_q[64], chroma_q[64];
  for (auto& q : luma_q) q = in.u16();
  for (auto& q : chroma_q) q = in.u16();
  const auto dc_code = codec::HuffmanCode::read_lengths(in);
  const auto ac_code = codec::HuffmanCode::read_lengths(in);
  const std::uint32_t strips = in.u32();

  render::Image frame(width, height);
  for (std::uint32_t s = 0; s < strips; ++s) {
    const int y0 = static_cast<int>(in.u32());
    const int sh = static_cast<int>(in.u32());
    const std::size_t len = in.varint();
    util::BitReader bits(in.raw(len));

    const int cw = subsample ? (width + 1) / 2 : width;
    const int ch = subsample ? (sh + 1) / 2 : sh;
    const int plane_w[3] = {width, cw, cw};
    const int plane_h[3] = {sh, ch, ch};
    const std::uint16_t* quants[3] = {luma_q, chroma_q, chroma_q};
    jd::Planes planes;
    jd::Plane* outs[3] = {&planes.y, &planes.cb, &planes.cr};
    for (int c = 0; c < 3; ++c) {
      const auto blocks = jd::decode_blocks(
          bits, jd::block_count(plane_w[c], plane_h[c]), dc_code, ac_code);
      *outs[c] =
          jd::dequantize_plane(blocks, plane_w[c], plane_h[c], quants[c]);
    }
    const render::Image strip = jd::from_planes(planes, subsample);
    for (int y = 0; y < strip.height(); ++y) {
      const int fy = y0 + y;
      if (fy < 0 || fy >= height) continue;
      for (int x = 0; x < strip.width() && x < width; ++x) {
        const auto* p = strip.pixel(x, y);
        frame.set(x, fy, p[0], p[1], p[2], p[3]);
      }
    }
  }
  return frame;
}

}  // namespace tvviz::compositing
