// Sequential reference compositor: the ground truth parallel schemes must
// match. Partial images are merged front-to-back by their view depth.
#pragma once

#include <vector>

#include "render/image.hpp"

namespace tvviz::compositing {

/// Composite `partials` (any order; sorted internally by depth, nearest
/// first) into a full frame of size (width, height) over a black background.
render::Image composite_reference(std::vector<render::PartialImage> partials,
                                  int width, int height);

/// Same, but keep the float/premultiplied result for further compositing.
render::PartialImage composite_reference_f(
    std::vector<render::PartialImage> partials, int width, int height);

}  // namespace tvviz::compositing
