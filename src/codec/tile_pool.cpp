#include "codec/tile_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/counters.hpp"

namespace tvviz::codec {

namespace {

int auto_workers() {
  if (const char* env = std::getenv("TVVIZ_CODEC_WORKERS")) {
    const int v = std::atoi(env);
    if (v >= 1) return std::min(v, 64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 64u));
}

}  // namespace

/// One parallel invocation: a job cursor the claiming side races on and a
/// completion count + first-error slot the waiting side sleeps on.
struct TilePool::Batch {
  std::size_t jobs = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};

  util::Mutex mutex;
  util::CondVar done_cv;
  std::size_t done TVVIZ_GUARDED_BY(mutex) = 0;
  std::exception_ptr error TVVIZ_GUARDED_BY(mutex);
};

TilePool::TilePool(int workers)
    : workers_(workers > 0 ? std::min(workers, 64) : auto_workers()) {
  obs::gauge("codec.pool.workers").update_max(workers_);
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

TilePool::~TilePool() {
  queue_.close();
  for (auto& t : threads_) t.join();
}

void TilePool::worker_loop() {
  while (auto batch = queue_.pop()) work_on(**batch);
}

void TilePool::work_on(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.jobs) return;
    std::exception_ptr err;
    try {
      (*batch.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    util::LockGuard lock(batch.mutex);
    if (err && !batch.error) batch.error = err;
    if (++batch.done == batch.jobs) batch.done_cv.notify_all();
  }
}

void TilePool::run(std::size_t jobs,
                   const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  static obs::Counter& batches = obs::counter("codec.pool.batches");
  static obs::Counter& job_count = obs::counter("codec.pool.jobs");
  batches.add(1);
  job_count.add(jobs);
  if (workers_ <= 1 || jobs == 1) {
    static obs::Counter& inline_batches =
        obs::counter("codec.pool.inline_batches");
    inline_batches.add(1);
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->jobs = jobs;
  batch->fn = &fn;
  const std::size_t helpers = std::min(threads_.size(), jobs - 1);
  for (std::size_t i = 0; i < helpers; ++i) queue_.push(batch);

  work_on(*batch);  // the caller is a worker too

  std::exception_ptr err;
  {
    util::LockGuard lock(batch->mutex);
    while (batch->done < jobs) batch->done_cv.wait(batch->mutex);
    err = batch->error;
  }
  if (err) std::rethrow_exception(err);
}

TilePool& TilePool::global() {
  // Intentionally leaked: codec encodes may still be in flight on other
  // threads during static destruction, and the pointer stays reachable.
  static TilePool* pool = new TilePool(0);
  return *pool;
}

}  // namespace tvviz::codec
