// BZIP-style block-sorting compressor: Burrows-Wheeler transform + move-to-
// front + zero-run coding + Huffman. Better ratios than LZ at higher CPU
// cost — the placement the paper reports for BZIP.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/byte_codec.hpp"

namespace tvviz::codec {

/// Burrows-Wheeler transform of `block` (cyclic-rotation sort). Returns the
/// last column; `primary_index` receives the row holding the original block.
util::Bytes bwt_forward(std::span<const std::uint8_t> block,
                        std::uint32_t& primary_index);

/// Inverse BWT.
util::Bytes bwt_inverse(std::span<const std::uint8_t> last_column,
                        std::uint32_t primary_index);

/// Move-to-front transform and its inverse (byte alphabet).
std::vector<std::uint8_t> mtf_forward(std::span<const std::uint8_t> data);
std::vector<std::uint8_t> mtf_inverse(std::span<const std::uint8_t> data);

class BwtCodec final : public ByteCodec {
 public:
  explicit BwtCodec(std::size_t block_size = 64 * 1024);

  std::string name() const override { return "bzip"; }
  std::size_t block_size() const noexcept { return block_size_; }

  util::Bytes encode(std::span<const std::uint8_t> input) const override;
  util::Bytes decode(std::span<const std::uint8_t> input) const override;

 private:
  std::size_t block_size_;
};

}  // namespace tvviz::codec
