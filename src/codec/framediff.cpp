#include "codec/framediff.hpp"

#include <stdexcept>

#include "util/simd.hpp"

namespace tvviz::codec {

namespace {
constexpr std::uint8_t kKeyFrame = 0;
constexpr std::uint8_t kDeltaFrame = 1;

util::Bytes rgb_of(const render::Image& img) {
  util::Bytes rgb;
  rgb.reserve(static_cast<std::size_t>(img.width()) * img.height() * 3);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      const auto* p = img.pixel(x, y);
      rgb.push_back(p[0]);
      rgb.push_back(p[1]);
      rgb.push_back(p[2]);
    }
  return rgb;
}

render::Image image_of(int w, int h, std::span<const std::uint8_t> rgb) {
  render::Image img(w, h);
  std::size_t i = 0;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      img.set(x, y, rgb[i], rgb[i + 1], rgb[i + 2], 255);
      i += 3;
    }
  return img;
}
}  // namespace

FrameDiffEncoder::FrameDiffEncoder(std::shared_ptr<const ByteCodec> inner)
    : inner_(std::move(inner)) {}

util::Bytes FrameDiffEncoder::encode_frame(const render::Image& frame) {
  const bool key = !previous_ || previous_->width() != frame.width() ||
                   previous_->height() != frame.height();
  util::Bytes payload = rgb_of(frame);
  if (!key) {
    const util::Bytes prev = rgb_of(*previous_);
    util::simd::sub_u8(payload.data(), payload.data(), prev.data(),
                       payload.size());
  }
  const util::Bytes packed = inner_->encode(payload);

  util::ByteWriter out(packed.size() + 16);
  out.u8(key ? kKeyFrame : kDeltaFrame);
  out.u32(static_cast<std::uint32_t>(frame.width()));
  out.u32(static_cast<std::uint32_t>(frame.height()));
  out.varint(packed.size());
  out.raw(packed);
  previous_ = frame;
  return out.take();
}

FrameDiffDecoder::FrameDiffDecoder(std::shared_ptr<const ByteCodec> inner)
    : inner_(std::move(inner)) {}

render::Image FrameDiffDecoder::decode_frame(std::span<const std::uint8_t> data) {
  util::ByteReader in(data);
  const std::uint8_t kind = in.u8();
  const int w = static_cast<int>(in.u32());
  const int h = static_cast<int>(in.u32());
  const std::size_t packed_len = in.varint();
  util::Bytes payload = inner_->decode(in.raw(packed_len));
  if (payload.size() != static_cast<std::size_t>(w) * h * 3)
    throw std::runtime_error("framediff: payload size mismatch");

  if (kind == kDeltaFrame) {
    if (!previous_ || previous_->width() != w || previous_->height() != h)
      throw std::runtime_error("framediff: delta without matching key frame");
    const util::Bytes prev = rgb_of(*previous_);
    util::simd::add_u8(payload.data(), payload.data(), prev.data(),
                       payload.size());
  } else if (kind != kKeyFrame) {
    throw std::runtime_error("framediff: unknown frame kind");
  }
  render::Image img = image_of(w, h, payload);
  previous_ = img;
  return img;
}

}  // namespace tvviz::codec
