#include "codec/lz.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "codec/tile_pool.hpp"
#include "util/simd.hpp"

namespace tvviz::codec {

namespace {
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;
/// Blocks below this gain nothing from a private dictionary; auto block
/// selection never splits finer.
constexpr std::size_t kMinBlock = 128 * 1024;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Emit a literal run [begin, end).
void emit_literals(util::Bytes& out, const std::uint8_t* begin,
                   const std::uint8_t* end) {
  while (begin < end) {
    std::size_t n = static_cast<std::size_t>(end - begin);
    if (n < 127) {
      out.push_back(static_cast<std::uint8_t>(n));
    } else {
      out.push_back(127);
      std::size_t extra = n - 127;
      while (extra >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(extra) | 0x80);
        extra >>= 7;
      }
      out.push_back(static_cast<std::uint8_t>(extra));
    }
    out.insert(out.end(), begin, begin + n);
    begin += n;
  }
}

void emit_match(util::Bytes& out, std::size_t length, std::size_t offset) {
  const std::size_t coded = length - kMinMatch;
  if (coded < 127) {
    out.push_back(static_cast<std::uint8_t>(coded) | 0x80);
  } else {
    out.push_back(0x80 | 127);
    std::size_t extra = coded - 127;
    while (extra >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(extra) | 0x80);
      extra >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(extra));
  }
  out.push_back(static_cast<std::uint8_t>(offset & 0xff));
  out.push_back(static_cast<std::uint8_t>(offset >> 8));
}

/// Compress one independent block into an op stream. Matches only reach
/// back within the block, so concatenated block streams decode as one
/// ordinary stream (every offset lands in already-produced output).
util::Bytes encode_block(std::span<const std::uint8_t> input, int level,
                         int max_chain) {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);
  if (input.empty()) return out;

  // head[h]: most recent position with hash h; prev[i & mask]: previous
  // position in the chain for position i (window-limited).
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(
      std::min<std::size_t>(input.size(), kMaxOffset + 1));
  const std::size_t prev_mask = prev.size();

  const std::uint8_t* base = input.data();
  const std::size_t n = input.size();
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  const auto insert_pos = [&](std::size_t p) {
    if (p + 4 > n) return;
    const std::uint32_t h = hash4(base + p);
    prev[p % prev_mask] = head[h];
    head[h] = static_cast<std::int64_t>(p);
  };

  while (pos + kMinMatch <= n) {
    // Search the hash chain for the longest match.
    std::size_t best_len = 0, best_off = 0;
    const std::uint32_t h = hash4(base + pos);
    std::int64_t cand = head[h];
    int chain = max_chain;
    while (cand >= 0 && chain-- > 0) {
      const std::size_t cpos = static_cast<std::size_t>(cand);
      if (pos - cpos > kMaxOffset) break;
      const std::size_t limit = n - pos;
      const std::size_t len =
          util::simd::match_length(base + cpos, base + pos, limit);
      if (len > best_len) {
        best_len = len;
        best_off = pos - cpos;
        if (len >= limit) break;
      }
      cand = prev[cpos % prev_mask];
    }

    if (best_len >= kMinMatch) {
      emit_literals(out, base + literal_start, base + pos);
      emit_match(out, best_len, best_off);
      // Index the positions the match covers (sparsely for speed at low
      // levels, densely at high levels).
      const std::size_t stride = level >= 7 ? 1 : (level >= 4 ? 2 : 4);
      for (std::size_t p = pos; p < pos + best_len; p += stride) insert_pos(p);
      pos += best_len;
      literal_start = pos;
    } else {
      insert_pos(pos);
      ++pos;
    }
  }
  emit_literals(out, base + literal_start, base + n);
  return out;
}
}  // namespace

LzCodec::LzCodec(int level, int blocks) : level_(level), blocks_(blocks) {
  if (level < 1 || level > 9)
    throw std::invalid_argument("LzCodec: level must be 1..9");
  if (blocks < 0) throw std::invalid_argument("LzCodec: negative blocks");
  max_chain_ = 1 << (level - 1);  // 1 .. 256 probes
}

util::Bytes LzCodec::encode(std::span<const std::uint8_t> input) const {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);
  {
    util::ByteWriter header;
    header.varint(input.size());
    const auto h = header.take();
    out.insert(out.end(), h.begin(), h.end());
  }
  if (input.empty()) return out;

  const std::size_t n = input.size();
  std::size_t want = blocks_ > 0
                         ? static_cast<std::size_t>(blocks_)
                         : static_cast<std::size_t>(TilePool::global().workers());
  want = std::clamp<std::size_t>(want, 1, std::max<std::size_t>(n / kMinBlock, 1));

  if (want == 1) {
    const util::Bytes ops = encode_block(input, level_, max_chain_);
    out.insert(out.end(), ops.begin(), ops.end());
    return out;
  }

  const std::size_t base_len = n / want, extra = n % want;
  std::vector<util::Bytes> parts(want);
  std::vector<std::size_t> starts(want);
  std::size_t off = 0;
  for (std::size_t b = 0; b < want; ++b) {
    starts[b] = off;
    off += base_len + (b < extra ? 1 : 0);
  }
  TilePool::global().run(want, [&](std::size_t b) {
    const std::size_t end = b + 1 < want ? starts[b + 1] : n;
    parts[b] =
        encode_block(input.subspan(starts[b], end - starts[b]), level_,
                     max_chain_);
  });
  std::size_t total = out.size();
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

util::Bytes LzCodec::decode(std::span<const std::uint8_t> input) const {
  util::ByteReader header(input);
  const std::size_t expected = header.varint();
  // A valid LZ stream expands at most ~(64k+4)/3 per match op; corrupted
  // headers claiming more would otherwise drive a huge allocation.
  if (expected > input.size() * 32768 + 4096)
    throw std::runtime_error("lz: implausible decoded size");
  std::size_t i = input.size() - header.remaining();

  util::Bytes out;
  out.reserve(expected);
  const auto read_varint = [&]() {
    std::size_t v = 0;
    int shift = 0;
    for (;;) {
      if (i >= input.size()) throw std::runtime_error("lz: truncated varint");
      const std::uint8_t b = input[i++];
      v |= static_cast<std::size_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
      if (shift > 56) throw std::runtime_error("lz: varint overflow");
    }
  };

  while (i < input.size()) {
    const std::uint8_t op = input[i++];
    if ((op & 0x80) == 0) {
      // Literal run.
      std::size_t len = op;
      if (op == 127) len += read_varint();
      if (len == 0) throw std::runtime_error("lz: zero literal run");
      if (i + len > input.size()) throw std::runtime_error("lz: truncated literals");
      if (out.size() + len > expected)
        throw std::runtime_error("lz: output exceeds declared size");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                 input.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else {
      std::size_t len = op & 0x7f;
      if ((op & 0x7f) == 127) len += read_varint();
      len += kMinMatch;
      if (i + 2 > input.size()) throw std::runtime_error("lz: truncated offset");
      const std::size_t offset =
          static_cast<std::size_t>(input[i]) |
          (static_cast<std::size_t>(input[i + 1]) << 8);
      i += 2;
      if (offset == 0 || offset > out.size())
        throw std::runtime_error("lz: bad match offset");
      if (out.size() + len > expected)
        throw std::runtime_error("lz: output exceeds declared size");
      const std::size_t src = out.size() - offset;
      const std::size_t dst = out.size();
      out.resize(dst + len);
      if (offset >= len) {
        // Non-overlapping: one bulk copy (the common case — long matches
        // with distant sources dominate image payloads).
        std::memcpy(out.data() + dst, out.data() + src, len);
      } else {
        // Overlapping run replication must copy byte-wise, in order.
        std::uint8_t* d = out.data() + dst;
        const std::uint8_t* s = out.data() + src;
        for (std::size_t k = 0; k < len; ++k) d[k] = s[k];
      }
    }
  }
  if (out.size() != expected)
    throw std::runtime_error("lz: size mismatch after decode");
  return out;
}

}  // namespace tvviz::codec
