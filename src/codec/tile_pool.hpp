// Shared worker pool for tile-parallel encoding. Every parallel codec stage
// (JPEG MCU strips, LZ blocks, BWT blocks, motion search rows) funnels
// through one process-wide pool so concurrent encodes time-share a bounded
// worker set instead of oversubscribing the host.
//
// run(jobs, fn) executes fn(0..jobs-1) with the caller participating: job
// indices are claimed from a shared atomic cursor, so a batch makes progress
// even with zero pool threads and callers never deadlock on a busy pool.
// Job order within a batch is unspecified; callers must make jobs
// independent and deterministic by index (the parity suite relies on the
// output being a pure function of the inputs, not of the schedule).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tvviz::codec {

class TilePool {
 public:
  /// `workers` is the total parallelism including the calling thread;
  /// 0 = auto (TVVIZ_CODEC_WORKERS env, else hardware_concurrency).
  explicit TilePool(int workers = 0);
  ~TilePool();

  TilePool(const TilePool&) = delete;
  TilePool& operator=(const TilePool&) = delete;

  int workers() const noexcept { return workers_; }

  /// Run fn(i) for i in [0, jobs). Blocks until every job finished; the
  /// first exception thrown by any job is rethrown here after the batch
  /// drains (remaining jobs still run — partial batches never leak).
  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized by TVVIZ_CODEC_WORKERS (else the hardware
  /// thread count, capped at 64). Created on first use, never destroyed.
  static TilePool& global();

 private:
  struct Batch;

  void worker_loop();
  static void work_on(Batch& batch);

  int workers_;
  std::vector<std::thread> threads_;
  net::BlockingQueue<std::shared_ptr<Batch>> queue_;
};

}  // namespace tvviz::codec
