// Lossless byte-stream codecs. The paper evaluates LZO (fast LZ77) and BZIP
// (Burrows-Wheeler) both directly on raw images and as a second pass over
// JPEG output; all implementations here are from scratch.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace tvviz::codec {

class ByteCodec {
 public:
  virtual ~ByteCodec() = default;

  virtual std::string name() const = 0;

  /// Compress `input`; the result decodes back to exactly `input`.
  virtual util::Bytes encode(std::span<const std::uint8_t> input) const = 0;

  /// Decompress. Throws std::runtime_error / std::out_of_range on corrupt
  /// streams.
  virtual util::Bytes decode(std::span<const std::uint8_t> input) const = 0;
};

/// Identity codec (the "Raw" row of Table 1).
class RawCodec final : public ByteCodec {
 public:
  std::string name() const override { return "raw"; }
  util::Bytes encode(std::span<const std::uint8_t> input) const override {
    return util::Bytes(input.begin(), input.end());
  }
  util::Bytes decode(std::span<const std::uint8_t> input) const override {
    return util::Bytes(input.begin(), input.end());
  }
};

/// PackBits-style run-length encoding: the "simple lossless scheme" renderer
/// implementations traditionally used (§4).
class RleCodec final : public ByteCodec {
 public:
  std::string name() const override { return "rle"; }
  util::Bytes encode(std::span<const std::uint8_t> input) const override;
  util::Bytes decode(std::span<const std::uint8_t> input) const override;
};

}  // namespace tvviz::codec
