// Temporal frame differencing (Crockett-style, §7.1): frames after the
// first are encoded as byte-wise deltas against the previous frame, then
// run through a lossless byte codec. Animation sequences with coherent
// backgrounds compress far better than independent frames.
//
// Encoder and decoder are stateful and must see the same frame sequence.
#pragma once

#include <memory>
#include <optional>

#include "codec/byte_codec.hpp"
#include "render/image.hpp"

namespace tvviz::codec {

class FrameDiffEncoder {
 public:
  explicit FrameDiffEncoder(std::shared_ptr<const ByteCodec> inner);

  /// Encode the next frame of the sequence. Emits a key frame for the first
  /// frame and whenever the image size changes.
  util::Bytes encode_frame(const render::Image& frame);

  /// Force the next frame to be a key frame (e.g. after a lost packet).
  void reset() noexcept { previous_.reset(); }

  std::string name() const { return "framediff+" + inner_->name(); }

 private:
  std::shared_ptr<const ByteCodec> inner_;
  std::optional<render::Image> previous_;
};

class FrameDiffDecoder {
 public:
  explicit FrameDiffDecoder(std::shared_ptr<const ByteCodec> inner);

  /// Decode the next frame. Throws std::runtime_error if a delta frame
  /// arrives without a preceding key frame.
  render::Image decode_frame(std::span<const std::uint8_t> data);

  void reset() noexcept { previous_.reset(); }

 private:
  std::shared_ptr<const ByteCodec> inner_;
  std::optional<render::Image> previous_;
};

}  // namespace tvviz::codec
