// Internal building blocks of the JPEG-style codec, exposed so the
// collective parallel-compression stage (§4.1) can share Huffman statistics
// across ranks while each rank transforms and emits only its own strip.
// Not a stable public API; prefer JpegCodec unless you are implementing a
// new compression stage.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "codec/huffman.hpp"
#include "render/image.hpp"

namespace tvviz::codec::detail {

/// Level-shifted (value - 128 for luma) sample plane.
struct Plane {
  int w = 0, h = 0;
  std::vector<float> data;

  float at(int x, int y) const;
};

struct Planes {
  Plane y, cb, cr;
};

/// RGB -> YCbCr (optionally 4:2:0-subsampled chroma) and back.
Planes to_planes(const render::Image& img, bool subsample);
render::Image from_planes(const Planes& planes, bool subsample);

/// libjpeg-style quality scaling of the Annex K tables (zigzag order).
void build_quant_tables(int quality, std::uint16_t luma[64],
                        std::uint16_t chroma[64]);

/// Quality-scaled quantization tables in both layouts the engine needs:
/// zigzag u16 (the wire format) and natural-order float (the SIMD kernel's
/// divisors). Built once per quality and cached — quantize loops must never
/// rebuild tables per call.
struct QuantTables {
  std::uint16_t luma_zz[64];
  std::uint16_t chroma_zz[64];
  float luma_nat[64];
  float chroma_nat[64];
};

/// Cached per-quality tables (quality 1..100; throws otherwise).
const QuantTables& quant_tables_for(int quality);

/// Forward path: 8x8 DCT + quantization -> zigzag coefficient blocks.
/// Double-precision matrix-DCT reference implementation — the committed
/// scalar baseline the SIMD ablation measures against. New code should use
/// quantize_plane_fast.
std::vector<std::array<int, 64>> quantize_plane(const Plane& plane,
                                                const std::uint16_t quant[64]);

/// Forward path on the dispatched float kernels (util/simd.hpp): separable
/// float DCT + vectorized quantize, block rows fanned out on the TilePool.
/// `quant_nat` is QuantTables::{luma,chroma}_nat. Output decodes
/// bit-identically under every ISA tier.
std::vector<std::array<int, 64>> quantize_plane_fast(const Plane& plane,
                                                     const float quant_nat[64]);

/// Inverse path.
Plane dequantize_plane(const std::vector<std::array<int, 64>>& blocks, int w,
                       int h, const std::uint16_t quant[64]);

/// Entropy symbols of a plane's blocks: differential DC (size, bits) and
/// run/size AC pairs. AC tokens are stored flat (one allocation per plane,
/// not per block); block b's tokens are ac[ac_start[b] .. ac_start[b+1]).
struct SymbolStream {
  struct DcSym {
    int size;
    std::uint32_t bits;
  };
  struct AcSym {
    int symbol;  ///< run * 16 + size; 0x00 = EOB, 0xF0 = ZRL.
    int size;
    std::uint32_t bits;
  };
  std::vector<DcSym> dc;
  std::vector<AcSym> ac;                ///< All blocks, concatenated.
  std::vector<std::uint32_t> ac_start;  ///< dc.size() + 1 offsets into ac.
};

SymbolStream tokenize(const std::vector<std::array<int, 64>>& blocks);

/// Histogram the stream's symbols into dc (16 entries) / ac (256 entries).
void accumulate_frequencies(const SymbolStream& stream,
                            std::vector<std::uint64_t>& dc_freq,
                            std::vector<std::uint64_t>& ac_freq);

/// Entropy-code a stream with the given canonical tables.
void emit_stream(util::BitWriter& bits, const SymbolStream& stream,
                 const HuffmanCode& dc, const HuffmanCode& ac);

/// Entropy-decode `block_count` blocks back to coefficients.
std::vector<std::array<int, 64>> decode_blocks(util::BitReader& bits,
                                               std::size_t block_count,
                                               const HuffmanCode& dc,
                                               const HuffmanCode& ac);

/// Blocks per plane for a plane of w x h samples.
inline std::size_t block_count(int w, int h) {
  return static_cast<std::size_t>((w + 7) / 8) *
         static_cast<std::size_t>((h + 7) / 8);
}

}  // namespace tvviz::codec::detail
