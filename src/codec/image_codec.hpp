// Image codecs: what the image-output stage runs on each rendered frame
// before it crosses the wide-area network. Images travel as 24-bit RGB
// (Table 1's "Raw" sizes are width*height*3), alpha is display-side.
#pragma once

#include <memory>
#include <string>

#include "codec/byte_codec.hpp"
#include "render/image.hpp"
#include "util/shared_bytes.hpp"

namespace tvviz::codec {

class ImageCodec {
 public:
  virtual ~ImageCodec() = default;

  virtual std::string name() const = 0;
  virtual bool lossless() const = 0;

  virtual util::Bytes encode(const render::Image& image) const = 0;
  virtual render::Image decode(std::span<const std::uint8_t> data) const = 0;

  /// Encode straight into an immutable shared buffer — the frame path's
  /// entry point. The base implementation adopts encode()'s vector (no
  /// extra copy); codecs that know their exact output size up front
  /// (e.g. raw RGB) override it to fill a pool-drawn buffer so
  /// steady-state streaming allocates nothing.
  virtual util::SharedBytes encode_shared(const render::Image& image,
                                          util::BufferPool& pool) const;
};

/// Uncompressed RGB frames — the X-Window baseline's payload.
class RawImageCodec final : public ImageCodec {
 public:
  std::string name() const override { return "raw"; }
  bool lossless() const override { return true; }
  util::Bytes encode(const render::Image& image) const override;
  render::Image decode(std::span<const std::uint8_t> data) const override;
  util::SharedBytes encode_shared(const render::Image& image,
                                  util::BufferPool& pool) const override;
};

/// Run a lossless byte codec (LZO, BZIP, RLE) over the raw RGB payload.
class ByteImageCodec final : public ImageCodec {
 public:
  explicit ByteImageCodec(std::shared_ptr<const ByteCodec> bytes)
      : bytes_(std::move(bytes)) {}

  std::string name() const override { return bytes_->name(); }
  bool lossless() const override { return true; }
  util::Bytes encode(const render::Image& image) const override;
  render::Image decode(std::span<const std::uint8_t> data) const override;

 private:
  std::shared_ptr<const ByteCodec> bytes_;
};

/// Two-phase compression (§6): an image codec (JPEG) followed by a lossless
/// byte codec (LZO/BZIP) over its output — "JPEG+LZO" / "JPEG+BZIP".
class ChainImageCodec final : public ImageCodec {
 public:
  ChainImageCodec(std::shared_ptr<const ImageCodec> image,
                  std::shared_ptr<const ByteCodec> bytes)
      : image_(std::move(image)), bytes_(std::move(bytes)) {}

  std::string name() const override {
    return image_->name() + "+" + bytes_->name();
  }
  bool lossless() const override { return image_->lossless(); }
  util::Bytes encode(const render::Image& image) const override {
    const auto inner = image_->encode(image);
    return bytes_->encode(inner);
  }
  render::Image decode(std::span<const std::uint8_t> data) const override {
    const auto inner = bytes_->decode(data);
    return image_->decode(inner);
  }

 private:
  std::shared_ptr<const ImageCodec> image_;
  std::shared_ptr<const ByteCodec> bytes_;
};

/// Build a codec by name: "raw", "rle", "lzo", "bzip", "jpeg", "jpeg+lzo",
/// "jpeg+bzip". `quality` applies to JPEG-based codecs (1..100).
/// Throws std::invalid_argument for unknown names.
std::shared_ptr<const ImageCodec> make_image_codec(const std::string& name,
                                                   int quality = 75);

/// All codec names Table 1 compares, in the paper's row order.
const std::vector<std::string>& table1_codec_names();

}  // namespace tvviz::codec
