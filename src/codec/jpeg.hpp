// Baseline-JPEG-style lossy transform codec, written from scratch:
// RGB -> YCbCr, 4:2:0 chroma subsampling, 8x8 DCT, quality-scaled
// quantization, zigzag ordering, differential DC + run/size AC symbols,
// canonical Huffman entropy coding (tables optimized per image).
//
// Not the interchange format (no marker segments), but the identical
// algorithmic structure — so compression ratios, quality behaviour and the
// encode/decode cost profile land where libjpeg's would (§4.2).
//
// The encode engine splits the frame into row-aligned MCU strips (16 luma
// rows each, so 4:2:0 chroma blocks never straddle a strip) encoded in
// parallel on the shared codec::TilePool with the util/simd.hpp kernels.
// Huffman statistics are merged across strips so one table pair covers the
// frame; DC prediction restarts per strip, which is what makes the strips
// independent. Different strip counts frame the container differently but
// decode to the bit-identical image, and so do different SIMD tiers — the
// scalar path stays selectable (TVVIZ_SIMD=scalar) for ablation and parity
// testing.
#pragma once

#include "codec/image_codec.hpp"

namespace tvviz::codec {

namespace detail {
struct QuantTables;
}

class JpegCodec final : public ImageCodec {
 public:
  /// `quality` 1..100 scales the quantization tables exactly as libjpeg
  /// does (50 = the Annex K tables, 100 = near-lossless). `strips` pins the
  /// tile-strip count; 0 = auto (one strip per pool worker, capped by the
  /// image height in 16-row units).
  explicit JpegCodec(int quality = 75, bool subsample_chroma = true,
                     int strips = 0);

  std::string name() const override { return "jpeg"; }
  bool lossless() const override { return false; }
  int quality() const noexcept { return quality_; }
  int strips() const noexcept { return strips_; }

  util::Bytes encode(const render::Image& image) const override;
  util::SharedBytes encode_shared(const render::Image& image,
                                  util::BufferPool& pool) const override;
  render::Image decode(std::span<const std::uint8_t> data) const override;

  /// The pre-SIMD encoder: double-precision matrix fDCT and color
  /// conversion, single strip, single thread — kept selectable as the
  /// committed scalar baseline for bench/ablation_codec_simd. Emits the
  /// same container; decode() reads both interchangeably.
  util::Bytes encode_reference(const render::Image& image) const;

  /// §4.2: "the decoder can also trade off decoding speed against image
  /// quality, by using fast but inaccurate approximations ... Remarkable
  /// speedups". `scale` in {1, 2, 4, 8}: reconstruct at 1/scale resolution
  /// using only the (8/scale)^2 lowest-frequency coefficients per block
  /// (scale 8 = DC only). The returned image is (w+scale-1)/scale by
  /// (h+scale-1)/scale; upscale with render::upscale for display.
  render::Image decode_fast(std::span<const std::uint8_t> data,
                            int scale) const;

 private:
  util::Bytes encode_impl(const render::Image& image,
                          util::BufferPool* pool) const;

  int quality_;
  bool subsample_;
  int strips_;
  const detail::QuantTables* tables_;  ///< Borrowed from the per-quality cache.
};

}  // namespace tvviz::codec
