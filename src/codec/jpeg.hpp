// Baseline-JPEG-style lossy transform codec, written from scratch:
// RGB -> YCbCr, 4:2:0 chroma subsampling, 8x8 DCT, quality-scaled
// quantization, zigzag ordering, differential DC + run/size AC symbols,
// canonical Huffman entropy coding (tables optimized per image).
//
// Not the interchange format (no marker segments), but the identical
// algorithmic structure — so compression ratios, quality behaviour and the
// encode/decode cost profile land where libjpeg's would (§4.2).
#pragma once

#include "codec/image_codec.hpp"

namespace tvviz::codec {

class JpegCodec final : public ImageCodec {
 public:
  /// `quality` 1..100 scales the quantization tables exactly as libjpeg
  /// does (50 = the Annex K tables, 100 = near-lossless).
  explicit JpegCodec(int quality = 75, bool subsample_chroma = true);

  std::string name() const override { return "jpeg"; }
  bool lossless() const override { return false; }
  int quality() const noexcept { return quality_; }

  util::Bytes encode(const render::Image& image) const override;
  render::Image decode(std::span<const std::uint8_t> data) const override;

  /// §4.2: "the decoder can also trade off decoding speed against image
  /// quality, by using fast but inaccurate approximations ... Remarkable
  /// speedups". `scale` in {1, 2, 4, 8}: reconstruct at 1/scale resolution
  /// using only the (8/scale)^2 lowest-frequency coefficients per block
  /// (scale 8 = DC only). The returned image is (w+scale-1)/scale by
  /// (h+scale-1)/scale; upscale with render::upscale for display.
  render::Image decode_fast(std::span<const std::uint8_t> data,
                            int scale) const;

 private:
  int quality_;
  bool subsample_;
  std::uint16_t luma_quant_[64];
  std::uint16_t chroma_quant_[64];
};

}  // namespace tvviz::codec
