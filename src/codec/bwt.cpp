#include "codec/bwt.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "codec/huffman.hpp"
#include "codec/tile_pool.hpp"

namespace tvviz::codec {

util::Bytes bwt_forward(std::span<const std::uint8_t> block,
                        std::uint32_t& primary_index) {
  const std::size_t n = block.size();
  if (n == 0) {
    primary_index = 0;
    return {};
  }
  // Sort cyclic rotations by prefix-doubling: after round k, `rank` orders
  // rotations by their first 2^k characters.
  std::vector<std::int32_t> sa(n), rank(n), next_rank(n);
  std::iota(sa.begin(), sa.end(), 0);
  for (std::size_t i = 0; i < n; ++i) rank[i] = block[i];

  for (std::size_t k = 1;; k <<= 1) {
    const auto key = [&](std::int32_t i) {
      return std::pair<std::int32_t, std::int32_t>(
          rank[static_cast<std::size_t>(i)],
          rank[(static_cast<std::size_t>(i) + k) % n]);
    };
    std::sort(sa.begin(), sa.end(),
              [&](std::int32_t a, std::int32_t b) { return key(a) < key(b); });
    next_rank[static_cast<std::size_t>(sa[0])] = 0;
    bool all_distinct = true;
    for (std::size_t i = 1; i < n; ++i) {
      const bool equal = key(sa[i]) == key(sa[i - 1]);
      next_rank[static_cast<std::size_t>(sa[i])] =
          next_rank[static_cast<std::size_t>(sa[i - 1])] + (equal ? 0 : 1);
      all_distinct &= !equal;
    }
    rank.swap(next_rank);
    if (all_distinct || k >= n) break;
  }

  util::Bytes last(n);
  primary_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto start = static_cast<std::size_t>(sa[i]);
    last[i] = block[(start + n - 1) % n];
    if (start == 0) primary_index = static_cast<std::uint32_t>(i);
  }
  return last;
}

util::Bytes bwt_inverse(std::span<const std::uint8_t> last_column,
                        std::uint32_t primary_index) {
  const std::size_t n = last_column.size();
  if (n == 0) return {};
  if (primary_index >= n) throw std::runtime_error("bwt: bad primary index");

  // LF mapping: row i's predecessor rotation is row
  // C[L[i]] + occ(L[i], i), where C is the cumulative character count.
  std::array<std::size_t, 256> counts{};
  for (std::uint8_t c : last_column) ++counts[c];
  std::array<std::size_t, 256> cumulative{};
  std::size_t acc = 0;
  for (int c = 0; c < 256; ++c) {
    cumulative[static_cast<std::size_t>(c)] = acc;
    acc += counts[static_cast<std::size_t>(c)];
  }
  std::vector<std::size_t> lf(n);
  std::array<std::size_t, 256> seen{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t c = last_column[i];
    lf[i] = cumulative[c] + seen[c]++;
  }

  util::Bytes out(n);
  std::size_t row = primary_index;
  for (std::size_t j = n; j-- > 0;) {
    out[j] = last_column[row];
    row = lf[row];
  }
  return out;
}

std::vector<std::uint8_t> mtf_forward(std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 256> table;
  for (int i = 0; i < 256; ++i) table[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t c = data[i];
    std::uint8_t pos = 0;
    while (table[pos] != c) ++pos;
    out[i] = pos;
    // Move to front.
    for (std::uint8_t j = pos; j > 0; --j) table[j] = table[j - 1];
    table[0] = c;
  }
  return out;
}

std::vector<std::uint8_t> mtf_inverse(std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 256> table;
  for (int i = 0; i < 256; ++i) table[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t pos = data[i];
    const std::uint8_t c = table[pos];
    out[i] = c;
    for (std::uint8_t j = pos; j > 0; --j) table[j] = table[j - 1];
    table[0] = c;
  }
  return out;
}

namespace {
// Alphabet for the entropy stage (bzip2-style):
//   0 = RUNA, 1 = RUNB (bijective base-2 zero-run digits)
//   2..256 = MTF symbol value (1..255) + 1
//   257 = end of block
constexpr int kRunA = 0;
constexpr int kRunB = 1;
constexpr int kEob = 257;
constexpr int kAlphabet = 258;

std::vector<std::uint16_t> zle_encode(std::span<const std::uint8_t> mtf) {
  std::vector<std::uint16_t> out;
  out.reserve(mtf.size() / 2 + 8);
  std::size_t i = 0;
  while (i < mtf.size()) {
    if (mtf[i] == 0) {
      std::size_t run = 0;
      while (i < mtf.size() && mtf[i] == 0) {
        ++run;
        ++i;
      }
      // Bijective base 2: run = sum over digits d_k in {1(RUNA), 2(RUNB)}
      // of d_k * 2^k.
      while (run > 0) {
        if (run & 1) {
          out.push_back(kRunA);
          run = (run - 1) / 2;
        } else {
          out.push_back(kRunB);
          run = (run - 2) / 2;
        }
      }
    } else {
      out.push_back(static_cast<std::uint16_t>(mtf[i] + 1));
      ++i;
    }
  }
  out.push_back(kEob);
  return out;
}

std::vector<std::uint8_t> zle_decode(const std::vector<std::uint16_t>& symbols,
                                     std::size_t max_output) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < symbols.size() && symbols[i] != kEob) {
    if (symbols[i] == kRunA || symbols[i] == kRunB) {
      std::size_t run = 0, weight = 1;
      while (i < symbols.size() &&
             (symbols[i] == kRunA || symbols[i] == kRunB)) {
        run += (symbols[i] == kRunA ? 1u : 2u) * weight;
        weight *= 2;
        ++i;
        // Corrupted streams can claim astronomically long zero runs;
        // anything past the block length is invalid either way.
        if (run > max_output)
          throw std::runtime_error("bwt: zero run exceeds block length");
      }
      if (out.size() + run > max_output)
        throw std::runtime_error("bwt: zle output exceeds block length");
      out.insert(out.end(), run, 0);
    } else {
      const int v = symbols[i] - 1;
      if (v < 1 || v > 255) throw std::runtime_error("bwt: bad zle symbol");
      if (out.size() >= max_output)
        throw std::runtime_error("bwt: zle output exceeds block length");
      out.push_back(static_cast<std::uint8_t>(v));
      ++i;
    }
  }
  return out;
}
}  // namespace

BwtCodec::BwtCodec(std::size_t block_size) : block_size_(block_size) {
  if (block_size_ < 16)
    throw std::invalid_argument("BwtCodec: block size too small");
}

util::Bytes BwtCodec::encode(std::span<const std::uint8_t> input) const {
  // Every block's section (header + entropy payload) is self-contained, so
  // blocks compress independently on the TilePool and concatenate in block
  // order — byte-identical to the old serial loop.
  const std::size_t blocks =
      input.empty() ? 0 : (input.size() + block_size_ - 1) / block_size_;
  std::vector<util::Bytes> sections(blocks);
  TilePool::global().run(blocks, [&](std::size_t b) {
    const std::size_t offset = b * block_size_;
    const std::size_t len = std::min(block_size_, input.size() - offset);
    const auto block = input.subspan(offset, len);

    std::uint32_t primary = 0;
    const util::Bytes last = bwt_forward(block, primary);
    const auto mtf = mtf_forward(last);
    const auto symbols = zle_encode(mtf);

    std::vector<std::uint64_t> freqs(kAlphabet, 0);
    for (std::uint16_t s : symbols) ++freqs[s];
    const HuffmanCode code = HuffmanCode::from_frequencies(freqs);

    util::BitWriter bits;
    for (std::uint16_t s : symbols) code.encode(bits, s);
    const util::Bytes payload = bits.finish();

    util::ByteWriter section(payload.size() + 96);
    section.varint(len);
    section.u32(primary);
    code.write_lengths(section);
    section.varint(symbols.size());
    section.varint(payload.size());
    section.raw(payload);
    sections[b] = section.take();
  });

  std::size_t total = util::varint_size(input.size());
  for (const auto& s : sections) total += s.size();
  util::ByteWriter out(total);
  out.varint(input.size());
  for (const auto& s : sections) out.raw(s);
  return out.take();
}

util::Bytes BwtCodec::decode(std::span<const std::uint8_t> input) const {
  util::ByteReader in(input);
  const std::size_t total = in.varint();
  // Corrupted headers can claim absurd sizes. A valid stream expands by at
  // most ~block_size / log2(block_size) (a block of identical bytes costs
  // ~17 run symbols), so a 64Ki-fold bound is safely above any real ratio.
  if (total > input.size() * 65536 + 65536)
    throw std::runtime_error("bwt: implausible decoded size");
  util::Bytes out;
  out.reserve(total);
  while (out.size() < total) {
    const std::size_t block_len = in.varint();
    if (block_len > total)
      throw std::runtime_error("bwt: block exceeds stream size");
    const std::uint32_t primary = in.u32();
    const HuffmanCode code = HuffmanCode::read_lengths(in);
    const std::size_t symbol_count = in.varint();
    const std::size_t payload_len = in.varint();
    const auto payload = in.raw(payload_len);

    if (symbol_count > 2 * block_len + 64)
      throw std::runtime_error("bwt: implausible symbol count");
    util::BitReader bits(payload);
    std::vector<std::uint16_t> symbols(symbol_count);
    for (auto& s : symbols) s = static_cast<std::uint16_t>(code.decode(bits));

    const auto mtf = zle_decode(symbols, block_len);
    if (mtf.size() != block_len)
      throw std::runtime_error("bwt: block length mismatch");
    const auto last = mtf_inverse(mtf);
    const auto block = bwt_inverse(last, primary);
    out.insert(out.end(), block.begin(), block.end());
  }
  if (out.size() != total) throw std::runtime_error("bwt: size mismatch");
  return out;
}

}  // namespace tvviz::codec
