#include "codec/jpeg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "codec/jpeg_detail.hpp"

namespace tvviz::codec {

namespace {

constexpr std::uint32_t kMagic = 0x54504a31;  // "1JPT"

// ITU-T T.81 Annex K quantization tables (quality 50 reference).
constexpr int kLumaBase[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr int kChromaBase[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

// Zigzag scan order: index -> (row * 8 + col).
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

/// Orthonormal 8-point DCT basis: A[u][x]; 2D DCT = A * g * A^T. This
/// normalization coincides with the JPEG fDCT definition.
struct DctBasis {
  double a[8][8];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const double alpha = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x)
        a[u][x] = alpha * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0);
    }
  }
};
const DctBasis kDct;

void fdct8x8(const double in[64], double out[64]) {
  double tmp[64];
  for (int u = 0; u < 8; ++u)
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) acc += kDct.a[u][x] * in[x * 8 + y];
      tmp[u * 8 + y] = acc;
    }
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += tmp[u * 8 + y] * kDct.a[v][y];
      out[u * 8 + v] = acc;
    }
}

void idct8x8(const double in[64], double out[64]) {
  double tmp[64];
  for (int x = 0; x < 8; ++x)
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) acc += kDct.a[u][x] * in[u * 8 + v];
      tmp[x * 8 + v] = acc;
    }
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) acc += tmp[x * 8 + v] * kDct.a[v][y];
      out[x * 8 + y] = acc;
    }
}

/// Magnitude category (bit size) of a coefficient value.
int category(int v) noexcept {
  int a = v < 0 ? -v : v;
  int s = 0;
  while (a) {
    ++s;
    a >>= 1;
  }
  return s;
}

std::uint32_t magnitude_bits(int v, int size) noexcept {
  return v >= 0 ? static_cast<std::uint32_t>(v)
                : static_cast<std::uint32_t>(v + (1 << size) - 1);
}

int magnitude_value(std::uint32_t bits, int size) noexcept {
  if (size == 0) return 0;
  const std::uint32_t half = 1u << (size - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - (1 << size) + 1;
}

}  // namespace

// ---------------------------------------------------------------- detail ----

namespace detail {

float Plane::at(int x, int y) const {
  x = std::clamp(x, 0, w - 1);
  y = std::clamp(y, 0, h - 1);
  return data[static_cast<std::size_t>(y) * w + x];
}

Planes to_planes(const render::Image& img, bool subsample) {
  Planes p;
  p.y.w = img.width();
  p.y.h = img.height();
  p.y.data.resize(static_cast<std::size_t>(p.y.w) * p.y.h);
  std::vector<float> cb(p.y.data.size()), cr(p.y.data.size());
  for (int yy = 0; yy < img.height(); ++yy)
    for (int xx = 0; xx < img.width(); ++xx) {
      const auto* px = img.pixel(xx, yy);
      const double r = px[0], g = px[1], b = px[2];
      const std::size_t i = static_cast<std::size_t>(yy) * p.y.w + xx;
      p.y.data[i] = static_cast<float>(0.299 * r + 0.587 * g + 0.114 * b - 128.0);
      cb[i] = static_cast<float>(-0.168736 * r - 0.331264 * g + 0.5 * b);
      cr[i] = static_cast<float>(0.5 * r - 0.418688 * g - 0.081312 * b);
    }
  if (subsample) {
    p.cb.w = (img.width() + 1) / 2;
    p.cb.h = (img.height() + 1) / 2;
    p.cr.w = p.cb.w;
    p.cr.h = p.cb.h;
    p.cb.data.resize(static_cast<std::size_t>(p.cb.w) * p.cb.h);
    p.cr.data.resize(p.cb.data.size());
    for (int yy = 0; yy < p.cb.h; ++yy)
      for (int xx = 0; xx < p.cb.w; ++xx) {
        double scb = 0.0, scr = 0.0;
        int n = 0;
        for (int dy = 0; dy < 2; ++dy)
          for (int dx = 0; dx < 2; ++dx) {
            const int sx = 2 * xx + dx, sy = 2 * yy + dy;
            if (sx >= img.width() || sy >= img.height()) continue;
            const std::size_t i = static_cast<std::size_t>(sy) * p.y.w + sx;
            scb += cb[i];
            scr += cr[i];
            ++n;
          }
        const std::size_t o = static_cast<std::size_t>(yy) * p.cb.w + xx;
        p.cb.data[o] = static_cast<float>(scb / n);
        p.cr.data[o] = static_cast<float>(scr / n);
      }
  } else {
    p.cb.w = p.cr.w = p.y.w;
    p.cb.h = p.cr.h = p.y.h;
    p.cb.data = std::move(cb);
    p.cr.data = std::move(cr);
  }
  return p;
}

render::Image from_planes(const Planes& p, bool subsample) {
  render::Image img(p.y.w, p.y.h);
  for (int yy = 0; yy < p.y.h; ++yy)
    for (int xx = 0; xx < p.y.w; ++xx) {
      const double lum = p.y.at(xx, yy) + 128.0;
      const int cx = subsample ? xx / 2 : xx;
      const int cy = subsample ? yy / 2 : yy;
      const double cb = p.cb.at(cx, cy);
      const double cr = p.cr.at(cx, cy);
      const auto q = [](double v) {
        return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
      };
      img.set(xx, yy, q(lum + 1.402 * cr),
              q(lum - 0.344136 * cb - 0.714136 * cr), q(lum + 1.772 * cb),
              255);
    }
  return img;
}

void build_quant_tables(int quality, std::uint16_t luma[64],
                        std::uint16_t chroma[64]) {
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  for (int i = 0; i < 64; ++i) {
    luma[i] = static_cast<std::uint16_t>(
        std::clamp((kLumaBase[kZigzag[i]] * scale + 50) / 100, 1, 255));
    chroma[i] = static_cast<std::uint16_t>(
        std::clamp((kChromaBase[kZigzag[i]] * scale + 50) / 100, 1, 255));
  }
}

std::vector<std::array<int, 64>> quantize_plane(const Plane& plane,
                                                const std::uint16_t quant[64]) {
  const int bw = (plane.w + 7) / 8, bh = (plane.h + 7) / 8;
  std::vector<std::array<int, 64>> blocks;
  blocks.reserve(static_cast<std::size_t>(bw) * bh);
  double raw[64], freq[64];
  for (int by = 0; by < bh; ++by)
    for (int bx = 0; bx < bw; ++bx) {
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          raw[y * 8 + x] = plane.at(bx * 8 + x, by * 8 + y);
      fdct8x8(raw, freq);
      std::array<int, 64> zz;
      for (int i = 0; i < 64; ++i) {
        const double q = freq[kZigzag[i]] / quant[i];
        zz[static_cast<std::size_t>(i)] =
            static_cast<int>(q >= 0 ? q + 0.5 : q - 0.5);
      }
      blocks.push_back(zz);
    }
  return blocks;
}

Plane dequantize_plane(const std::vector<std::array<int, 64>>& blocks, int w,
                       int h, const std::uint16_t quant[64]) {
  Plane plane;
  plane.w = w;
  plane.h = h;
  plane.data.assign(static_cast<std::size_t>(w) * h, 0.0f);
  const int bw = (w + 7) / 8;
  double freq[64], raw[64];
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const int bx = static_cast<int>(b) % bw;
    const int by = static_cast<int>(b) / bw;
    std::fill(std::begin(freq), std::end(freq), 0.0);
    for (int i = 0; i < 64; ++i)
      freq[kZigzag[i]] =
          static_cast<double>(blocks[b][static_cast<std::size_t>(i)]) * quant[i];
    idct8x8(freq, raw);
    for (int y = 0; y < 8; ++y) {
      const int py = by * 8 + y;
      if (py >= h) continue;
      for (int x = 0; x < 8; ++x) {
        const int px = bx * 8 + x;
        if (px >= w) continue;
        plane.data[static_cast<std::size_t>(py) * w + px] =
            static_cast<float>(raw[y * 8 + x]);
      }
    }
  }
  return plane;
}

SymbolStream tokenize(const std::vector<std::array<int, 64>>& blocks) {
  SymbolStream s;
  s.dc.reserve(blocks.size());
  s.ac.reserve(blocks.size());
  int prev_dc = 0;
  for (const auto& zz : blocks) {
    const int diff = zz[0] - prev_dc;
    prev_dc = zz[0];
    const int dsize = category(diff);
    s.dc.push_back({dsize, magnitude_bits(diff, dsize)});

    std::vector<SymbolStream::AcSym> ac;
    int run = 0;
    for (int i = 1; i < 64; ++i) {
      const int v = zz[static_cast<std::size_t>(i)];
      if (v == 0) {
        ++run;
        continue;
      }
      while (run >= 16) {
        ac.push_back({0xF0, 0, 0});
        run -= 16;
      }
      const int size = category(v);
      ac.push_back({run * 16 + size, size, magnitude_bits(v, size)});
      run = 0;
    }
    if (run > 0) ac.push_back({0x00, 0, 0});  // EOB
    s.ac.push_back(std::move(ac));
  }
  return s;
}

void accumulate_frequencies(const SymbolStream& stream,
                            std::vector<std::uint64_t>& dc_freq,
                            std::vector<std::uint64_t>& ac_freq) {
  dc_freq.resize(16, 0);
  ac_freq.resize(256, 0);
  for (const auto& d : stream.dc) ++dc_freq[static_cast<std::size_t>(d.size)];
  for (const auto& per_block : stream.ac)
    for (const auto& a : per_block) ++ac_freq[static_cast<std::size_t>(a.symbol)];
}

void emit_stream(util::BitWriter& bits, const SymbolStream& stream,
                 const HuffmanCode& dc, const HuffmanCode& ac) {
  for (std::size_t b = 0; b < stream.dc.size(); ++b) {
    const auto& d = stream.dc[b];
    dc.encode(bits, d.size);
    if (d.size > 0) bits.bits(d.bits, d.size);
    for (const auto& a : stream.ac[b]) {
      ac.encode(bits, a.symbol);
      if (a.size > 0) bits.bits(a.bits, a.size);
    }
  }
}

std::vector<std::array<int, 64>> decode_blocks(util::BitReader& bits,
                                               std::size_t count,
                                               const HuffmanCode& dc,
                                               const HuffmanCode& ac) {
  std::vector<std::array<int, 64>> blocks(count);
  int prev_dc = 0;
  for (auto& zz : blocks) {
    zz.fill(0);
    const int dsize = dc.decode(bits);
    const int diff = dsize > 0 ? magnitude_value(bits.bits(dsize), dsize) : 0;
    prev_dc += diff;
    zz[0] = prev_dc;
    int i = 1;
    while (i < 64) {
      const int sym = ac.decode(bits);
      if (sym == 0x00) break;  // EOB
      if (sym == 0xF0) {       // ZRL
        i += 16;
        continue;
      }
      const int run = sym >> 4;
      const int size = sym & 0xF;
      i += run;
      if (i >= 64) throw std::runtime_error("jpeg: AC index overflow");
      zz[static_cast<std::size_t>(i)] = magnitude_value(bits.bits(size), size);
      ++i;
    }
  }
  return blocks;
}

}  // namespace detail

// ----------------------------------------------------------- JpegCodec ----

using detail::Plane;
using detail::Planes;
using detail::SymbolStream;

JpegCodec::JpegCodec(int quality, bool subsample_chroma)
    : quality_(quality), subsample_(subsample_chroma) {
  if (quality < 1 || quality > 100)
    throw std::invalid_argument("JpegCodec: quality must be 1..100");
  detail::build_quant_tables(quality, luma_quant_, chroma_quant_);
}

util::Bytes JpegCodec::encode(const render::Image& image) const {
  const Planes planes = detail::to_planes(image, subsample_);
  const Plane* plane_ptrs[3] = {&planes.y, &planes.cb, &planes.cr};
  const std::uint16_t* quants[3] = {luma_quant_, chroma_quant_, chroma_quant_};

  // Pass 1: quantize + tokenize, gathering Huffman statistics.
  SymbolStream streams[3];
  std::vector<std::uint64_t> dc_freq, ac_freq;
  for (int c = 0; c < 3; ++c) {
    const auto blocks = detail::quantize_plane(*plane_ptrs[c], quants[c]);
    streams[c] = detail::tokenize(blocks);
    detail::accumulate_frequencies(streams[c], dc_freq, ac_freq);
  }
  const HuffmanCode dc_code = HuffmanCode::from_frequencies(dc_freq);
  const HuffmanCode ac_code = HuffmanCode::from_frequencies(ac_freq);

  // Pass 2: emit.
  util::BitWriter bits;
  for (const auto& stream : streams)
    detail::emit_stream(bits, stream, dc_code, ac_code);
  const util::Bytes payload = bits.finish();

  util::ByteWriter out(payload.size() + 256);
  out.u32(kMagic);
  out.u32(static_cast<std::uint32_t>(image.width()));
  out.u32(static_cast<std::uint32_t>(image.height()));
  out.u8(static_cast<std::uint8_t>(quality_));
  out.u8(subsample_ ? 1 : 0);
  for (int i = 0; i < 64; ++i) out.u16(luma_quant_[i]);
  for (int i = 0; i < 64; ++i) out.u16(chroma_quant_[i]);
  dc_code.write_lengths(out);
  ac_code.write_lengths(out);
  out.varint(payload.size());
  out.raw(payload);
  return out.take();
}

namespace {
/// Entropy-decoded stream: quantized zigzag blocks of every plane plus the
/// header metadata, shared by full and fast reconstruction.
struct ParsedStream {
  int w = 0, h = 0;
  bool subsample = false;
  std::uint16_t luma_q[64], chroma_q[64];
  std::vector<std::array<int, 64>> blocks[3];
  int plane_w[3], plane_h[3];
};

ParsedStream parse_stream(std::span<const std::uint8_t> data) {
  ParsedStream s;
  util::ByteReader in(data);
  if (in.u32() != kMagic) throw std::runtime_error("jpeg: bad magic");
  s.w = static_cast<int>(in.u32());
  s.h = static_cast<int>(in.u32());
  (void)in.u8();  // quality (informational; tables are explicit)
  s.subsample = in.u8() != 0;
  for (auto& q : s.luma_q) q = in.u16();
  for (auto& q : s.chroma_q) q = in.u16();
  const HuffmanCode dc_code = HuffmanCode::read_lengths(in);
  const HuffmanCode ac_code = HuffmanCode::read_lengths(in);
  const std::size_t payload_len = in.varint();
  util::BitReader bits(in.raw(payload_len));

  const int cw = s.subsample ? (s.w + 1) / 2 : s.w;
  const int ch = s.subsample ? (s.h + 1) / 2 : s.h;
  s.plane_w[0] = s.w;
  s.plane_h[0] = s.h;
  s.plane_w[1] = s.plane_w[2] = cw;
  s.plane_h[1] = s.plane_h[2] = ch;

  for (int c = 0; c < 3; ++c)
    s.blocks[c] = detail::decode_blocks(
        bits, detail::block_count(s.plane_w[c], s.plane_h[c]), dc_code,
        ac_code);
  return s;
}

/// Orthonormal m-point DCT basis for the reduced-resolution inverse.
struct SmallBasis {
  double a[8][8] = {};
  explicit SmallBasis(int m) {
    for (int u = 0; u < m; ++u) {
      const double alpha = u == 0 ? std::sqrt(1.0 / m) : std::sqrt(2.0 / m);
      for (int x = 0; x < m; ++x)
        a[u][x] = alpha *
                  std::cos((2 * x + 1) * u * 3.14159265358979323846 / (2 * m));
    }
  }
};

/// Reconstruct a plane at 1/scale resolution from the (8/scale)^2
/// lowest-frequency coefficients of each block (libjpeg's scaled IDCT).
Plane dequantize_plane_scaled(const std::vector<std::array<int, 64>>& blocks,
                              int w, int h, const std::uint16_t quant[64],
                              int scale) {
  const int m = 8 / scale;
  const SmallBasis basis(m);
  const int pw = (w + scale - 1) / scale;
  const int ph = (h + scale - 1) / scale;
  Plane plane;
  plane.w = pw;
  plane.h = ph;
  plane.data.assign(static_cast<std::size_t>(pw) * ph, 0.0f);
  const int bw = (w + 7) / 8;

  double freq[64], tmp[64], raw[64];
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const int bx = static_cast<int>(b) % bw;
    const int by = static_cast<int>(b) / bw;
    std::fill(std::begin(freq), std::end(freq), 0.0);
    const double rescale = static_cast<double>(m) / 8.0;
    for (int i = 0; i < 64; ++i) {
      const int r = kZigzag[i] / 8, c = kZigzag[i] % 8;
      if (r < m && c < m)
        freq[r * 8 + c] =
            static_cast<double>(blocks[b][static_cast<std::size_t>(i)]) *
            quant[i] * rescale;
    }
    for (int x = 0; x < m; ++x)
      for (int v = 0; v < m; ++v) {
        double acc = 0.0;
        for (int u = 0; u < m; ++u) acc += basis.a[u][x] * freq[u * 8 + v];
        tmp[x * 8 + v] = acc;
      }
    for (int x = 0; x < m; ++x)
      for (int y = 0; y < m; ++y) {
        double acc = 0.0;
        for (int v = 0; v < m; ++v) acc += tmp[x * 8 + v] * basis.a[v][y];
        raw[x * 8 + y] = acc;
      }
    for (int y = 0; y < m; ++y) {
      const int py = by * m + y;
      if (py >= ph) continue;
      for (int x = 0; x < m; ++x) {
        const int px = bx * m + x;
        if (px >= pw) continue;
        plane.data[static_cast<std::size_t>(py) * pw + px] =
            static_cast<float>(raw[y * 8 + x]);
      }
    }
  }
  return plane;
}
}  // namespace

render::Image JpegCodec::decode(std::span<const std::uint8_t> data) const {
  ParsedStream s = parse_stream(data);
  const std::uint16_t* quants[3] = {s.luma_q, s.chroma_q, s.chroma_q};
  Planes planes;
  Plane* outs[3] = {&planes.y, &planes.cb, &planes.cr};
  for (int c = 0; c < 3; ++c)
    *outs[c] = detail::dequantize_plane(s.blocks[c], s.plane_w[c],
                                        s.plane_h[c], quants[c]);
  return detail::from_planes(planes, s.subsample);
}

render::Image JpegCodec::decode_fast(std::span<const std::uint8_t> data,
                                     int scale) const {
  if (scale == 1) return decode(data);
  if (scale != 2 && scale != 4 && scale != 8)
    throw std::invalid_argument("jpeg: decode_fast scale must be 1/2/4/8");
  ParsedStream s = parse_stream(data);
  const std::uint16_t* quants[3] = {s.luma_q, s.chroma_q, s.chroma_q};
  Planes planes;
  Plane* outs[3] = {&planes.y, &planes.cb, &planes.cr};
  for (int c = 0; c < 3; ++c)
    *outs[c] = dequantize_plane_scaled(s.blocks[c], s.plane_w[c],
                                       s.plane_h[c], quants[c], scale);
  return detail::from_planes(planes, s.subsample);
}

}  // namespace tvviz::codec
