#include "codec/jpeg.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "codec/jpeg_detail.hpp"
#include "codec/tile_pool.hpp"
#include "util/simd.hpp"

namespace tvviz::codec {

namespace {

constexpr std::uint32_t kMagic = 0x54504a32;  // "2JPT": strip-framed container

/// Strips are multiples of 16 luma rows (except the last), so a 4:2:0
/// chroma block row (8 chroma rows = 16 luma rows) never straddles strips
/// and strip-count choice cannot change any decoded sample.
constexpr int kStripAlign = 16;

// ITU-T T.81 Annex K quantization tables (quality 50 reference).
constexpr int kLumaBase[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr int kChromaBase[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

// Zigzag scan order: index -> (row * 8 + col).
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

/// Inverse map: natural (row * 8 + col) index -> zigzag position.
constexpr std::array<int, 64> kZigzagPos = [] {
  std::array<int, 64> pos{};
  for (int i = 0; i < 64; ++i) pos[static_cast<std::size_t>(kZigzag[i])] = i;
  return pos;
}();

/// Orthonormal 8-point DCT basis: A[u][x]; 2D DCT = A * g * A^T. This
/// normalization coincides with the JPEG fDCT definition. Double precision:
/// the decode-side IDCT and the reference encoder still use it.
struct DctBasis {
  double a[8][8];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const double alpha = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x)
        a[u][x] = alpha * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0);
    }
  }
};
const DctBasis kDct;

void fdct8x8_ref(const double in[64], double out[64]) {
  double tmp[64];
  for (int u = 0; u < 8; ++u)
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) acc += kDct.a[u][x] * in[x * 8 + y];
      tmp[u * 8 + y] = acc;
    }
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += tmp[u * 8 + y] * kDct.a[v][y];
      out[u * 8 + v] = acc;
    }
}

void idct8x8(const double in[64], double out[64]) {
  double tmp[64];
  for (int x = 0; x < 8; ++x)
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) acc += kDct.a[u][x] * in[u * 8 + v];
      tmp[x * 8 + v] = acc;
    }
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) acc += tmp[x * 8 + v] * kDct.a[v][y];
      out[x * 8 + y] = acc;
    }
}

/// Magnitude category (bit size) of a coefficient value.
int category(int v) noexcept {
  int a = v < 0 ? -v : v;
  int s = 0;
  while (a) {
    ++s;
    a >>= 1;
  }
  return s;
}

std::uint32_t magnitude_bits(int v, int size) noexcept {
  return v >= 0 ? static_cast<std::uint32_t>(v)
                : static_cast<std::uint32_t>(v + (1 << size) - 1);
}

int magnitude_value(std::uint32_t bits, int size) noexcept {
  if (size == 0) return 0;
  const std::uint32_t half = 1u << (size - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - (1 << size) + 1;
}

}  // namespace

// ---------------------------------------------------------------- detail ----

namespace detail {

float Plane::at(int x, int y) const {
  x = std::clamp(x, 0, w - 1);
  y = std::clamp(y, 0, h - 1);
  return data[static_cast<std::size_t>(y) * w + x];
}

namespace {

/// Color-convert image rows [y0, y0+rows) into strip-local planes using the
/// dispatched float kernels. The 2x2 chroma average stays shared scalar
/// code (float accumulation, fixed order) so every ISA tier agrees; with
/// 16-row-aligned strips the cells never straddle strips, so the result is
/// also independent of the strip layout.
/// Scalar 2x2 average for cells clipped by the right/bottom edge. The
/// interior takes the simd::avg2x2 kernel; n == 4 cells agree with it
/// because /4 and *0.25f are the same exact scale.
void avg_cell_edge(const std::vector<float>& src, int w, int rows, int cx,
                   int cy, float* out) {
  float sum = 0.0f;
  int n = 0;
  for (int dy = 0; dy < 2; ++dy)
    for (int dx = 0; dx < 2; ++dx) {
      const int sx = 2 * cx + dx, sy = 2 * cy + dy;
      if (sx >= w || sy >= rows) continue;
      sum += src[static_cast<std::size_t>(sy) * w + sx];
      ++n;
    }
  *out = sum / static_cast<float>(n);
}

/// Color-convert image rows [y0, y0+rows) into strip-local planes using the
/// dispatched float kernels, reusing the caller's buffers across calls so a
/// streaming encoder touches only cache-resident memory. The 2x2 chroma
/// average is the fixed-order avg2x2 kernel (scalar fallback at ragged
/// edges); with 16-row-aligned strips the cells never straddle strips, so
/// the result is also independent of the strip layout.
void convert_rows_into(const render::Image& img, bool subsample, int y0,
                       int rows, Planes& p, std::vector<float>& cb,
                       std::vector<float>& cr) {
  const int w = img.width();
  p.y.w = w;
  p.y.h = rows;
  p.y.data.resize(static_cast<std::size_t>(w) * rows);
  cb.resize(p.y.data.size());
  cr.resize(p.y.data.size());
  if (w > 0)
    for (int r = 0; r < rows; ++r)
      util::simd::rgb_to_ycbcr(img.pixel(0, y0 + r),
                               static_cast<std::size_t>(w),
                               &p.y.data[static_cast<std::size_t>(r) * w],
                               &cb[static_cast<std::size_t>(r) * w],
                               &cr[static_cast<std::size_t>(r) * w]);
  if (subsample) {
    p.cb.w = (w + 1) / 2;
    p.cb.h = (rows + 1) / 2;
    p.cr.w = p.cb.w;
    p.cr.h = p.cb.h;
    p.cb.data.resize(static_cast<std::size_t>(p.cb.w) * p.cb.h);
    p.cr.data.resize(p.cb.data.size());
    const std::size_t full = static_cast<std::size_t>(w / 2);  // complete cells
    for (int cy = 0; cy < p.cb.h; ++cy) {
      const int sy0 = 2 * cy, sy1 = 2 * cy + 1;
      const std::size_t o = static_cast<std::size_t>(cy) * p.cb.w;
      if (sy1 < rows) {
        const float* cb0 = &cb[static_cast<std::size_t>(sy0) * w];
        const float* cb1 = &cb[static_cast<std::size_t>(sy1) * w];
        const float* cr0 = &cr[static_cast<std::size_t>(sy0) * w];
        const float* cr1 = &cr[static_cast<std::size_t>(sy1) * w];
        util::simd::avg2x2(cb0, cb1, full, &p.cb.data[o]);
        util::simd::avg2x2(cr0, cr1, full, &p.cr.data[o]);
        for (int cx = static_cast<int>(full); cx < p.cb.w; ++cx) {
          avg_cell_edge(cb, w, rows, cx, cy, &p.cb.data[o + cx]);
          avg_cell_edge(cr, w, rows, cx, cy, &p.cr.data[o + cx]);
        }
      } else {
        for (int cx = 0; cx < p.cb.w; ++cx) {
          avg_cell_edge(cb, w, rows, cx, cy, &p.cb.data[o + cx]);
          avg_cell_edge(cr, w, rows, cx, cy, &p.cr.data[o + cx]);
        }
      }
    }
  } else {
    p.cb.w = p.cr.w = w;
    p.cb.h = p.cr.h = rows;
    p.cb.data.assign(cb.begin(), cb.end());
    p.cr.data.assign(cr.begin(), cr.end());
  }
}

Planes convert_rows(const render::Image& img, bool subsample, int y0,
                    int rows) {
  Planes p;
  std::vector<float> cb, cr;
  convert_rows_into(img, subsample, y0, rows, p, cb, cr);
  return p;
}

/// Gather one 8x8 block, replicating edge samples like Plane::at; interior
/// blocks take the contiguous memcpy path.
void extract_block(const Plane& p, int bx, int by, float out[64]) {
  const int x0 = bx * 8, y0 = by * 8;
  if (x0 + 8 <= p.w && y0 + 8 <= p.h) {
    for (int y = 0; y < 8; ++y)
      std::memcpy(out + y * 8,
                  &p.data[static_cast<std::size_t>(y0 + y) * p.w + x0],
                  8 * sizeof(float));
  } else {
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x) out[y * 8 + x] = p.at(x0 + x, y0 + y);
  }
}

/// Serial float-kernel forward transform of block rows [by0, by1) into
/// `out` (indexed by*bw + bx over the whole plane).
void quantize_block_rows(const Plane& plane, const float quant_nat[64],
                         int by0, int by1, std::array<int, 64>* out) {
  const int bw = (plane.w + 7) / 8;
  float raw[64], freq[64];
  std::int32_t q[64];
  for (int by = by0; by < by1; ++by)
    for (int bx = 0; bx < bw; ++bx) {
      extract_block(plane, bx, by, raw);
      util::simd::fdct8x8(raw, freq);
      util::simd::quantize64(freq, quant_nat, q);
      auto& zz = out[static_cast<std::size_t>(by) * bw + bx];
      for (int i = 0; i < 64; ++i)
        zz[static_cast<std::size_t>(i)] = q[kZigzag[i]];
    }
}

}  // namespace

Planes to_planes(const render::Image& img, bool subsample) {
  return convert_rows(img, subsample, 0, img.height());
}

render::Image from_planes(const Planes& p, bool subsample) {
  render::Image img(p.y.w, p.y.h);
  for (int yy = 0; yy < p.y.h; ++yy)
    for (int xx = 0; xx < p.y.w; ++xx) {
      const double lum = p.y.at(xx, yy) + 128.0;
      const int cx = subsample ? xx / 2 : xx;
      const int cy = subsample ? yy / 2 : yy;
      const double cb = p.cb.at(cx, cy);
      const double cr = p.cr.at(cx, cy);
      const auto q = [](double v) {
        return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
      };
      img.set(xx, yy, q(lum + 1.402 * cr),
              q(lum - 0.344136 * cb - 0.714136 * cr), q(lum + 1.772 * cb),
              255);
    }
  return img;
}

void build_quant_tables(int quality, std::uint16_t luma[64],
                        std::uint16_t chroma[64]) {
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  for (int i = 0; i < 64; ++i) {
    luma[i] = static_cast<std::uint16_t>(
        std::clamp((kLumaBase[kZigzag[i]] * scale + 50) / 100, 1, 255));
    chroma[i] = static_cast<std::uint16_t>(
        std::clamp((kChromaBase[kZigzag[i]] * scale + 50) / 100, 1, 255));
  }
}

const QuantTables& quant_tables_for(int quality) {
  if (quality < 1 || quality > 100)
    throw std::invalid_argument("jpeg: quality must be 1..100");
  // All 100 entries cost ~50KB built once; per-encode table rebuilds (the
  // old per-call build_quant_tables pattern) disappear entirely.
  static const auto* cache = [] {
    auto* c = new std::array<QuantTables, 100>();
    for (int q = 1; q <= 100; ++q) {
      QuantTables& t = (*c)[static_cast<std::size_t>(q - 1)];
      build_quant_tables(q, t.luma_zz, t.chroma_zz);
      for (int i = 0; i < 64; ++i) {
        t.luma_nat[kZigzag[i]] = static_cast<float>(t.luma_zz[i]);
        t.chroma_nat[kZigzag[i]] = static_cast<float>(t.chroma_zz[i]);
      }
    }
    return c;
  }();
  return (*cache)[static_cast<std::size_t>(quality - 1)];
}

std::vector<std::array<int, 64>> quantize_plane(const Plane& plane,
                                                const std::uint16_t quant[64]) {
  const int bw = (plane.w + 7) / 8, bh = (plane.h + 7) / 8;
  std::vector<std::array<int, 64>> blocks;
  blocks.reserve(static_cast<std::size_t>(bw) * bh);
  double raw[64], freq[64];
  for (int by = 0; by < bh; ++by)
    for (int bx = 0; bx < bw; ++bx) {
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          raw[y * 8 + x] = plane.at(bx * 8 + x, by * 8 + y);
      fdct8x8_ref(raw, freq);
      std::array<int, 64> zz;
      for (int i = 0; i < 64; ++i) {
        const double q = freq[kZigzag[i]] / quant[i];
        zz[static_cast<std::size_t>(i)] =
            static_cast<int>(q >= 0 ? q + 0.5 : q - 0.5);
      }
      blocks.push_back(zz);
    }
  return blocks;
}

std::vector<std::array<int, 64>> quantize_plane_fast(
    const Plane& plane, const float quant_nat[64]) {
  const int bw = (plane.w + 7) / 8, bh = (plane.h + 7) / 8;
  std::vector<std::array<int, 64>> blocks(static_cast<std::size_t>(bw) * bh);
  if (blocks.empty()) return blocks;
  TilePool::global().run(static_cast<std::size_t>(bh), [&](std::size_t by) {
    quantize_block_rows(plane, quant_nat, static_cast<int>(by),
                        static_cast<int>(by) + 1, blocks.data());
  });
  return blocks;
}

Plane dequantize_plane(const std::vector<std::array<int, 64>>& blocks, int w,
                       int h, const std::uint16_t quant[64]) {
  Plane plane;
  plane.w = w;
  plane.h = h;
  plane.data.assign(static_cast<std::size_t>(w) * h, 0.0f);
  const int bw = (w + 7) / 8;
  double freq[64], raw[64];
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const int bx = static_cast<int>(b) % bw;
    const int by = static_cast<int>(b) / bw;
    std::fill(std::begin(freq), std::end(freq), 0.0);
    for (int i = 0; i < 64; ++i)
      freq[kZigzag[i]] =
          static_cast<double>(blocks[b][static_cast<std::size_t>(i)]) * quant[i];
    idct8x8(freq, raw);
    for (int y = 0; y < 8; ++y) {
      const int py = by * 8 + y;
      if (py >= h) continue;
      for (int x = 0; x < 8; ++x) {
        const int px = bx * 8 + x;
        if (px >= w) continue;
        plane.data[static_cast<std::size_t>(py) * w + px] =
            static_cast<float>(raw[y * 8 + x]);
      }
    }
  }
  return plane;
}

namespace {

/// Ensure the stream has a leading ac_start sentinel before the first block.
inline void seed_stream(SymbolStream& s) {
  if (s.ac_start.empty()) s.ac_start.push_back(0);
}

/// Tokenize one zigzag-ordered coefficient block into `s`, threading the
/// plane's DC predictor.
void append_block_tokens_zz(const int* zz, int& prev_dc, SymbolStream& s) {
  const int diff = zz[0] - prev_dc;
  prev_dc = zz[0];
  const int dsize = category(diff);
  s.dc.push_back({dsize, magnitude_bits(diff, dsize)});
  int run = 0;
  for (int i = 1; i < 64; ++i) {
    const int v = zz[i];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      s.ac.push_back({0xF0, 0, 0});
      run -= 16;
    }
    const int size = category(v);
    s.ac.push_back({run * 16 + size, size, magnitude_bits(v, size)});
    run = 0;
  }
  if (run > 0) s.ac.push_back({0x00, 0, 0});  // EOB
  s.ac_start.push_back(static_cast<std::uint32_t>(s.ac.size()));
}

}  // namespace

SymbolStream tokenize(const std::vector<std::array<int, 64>>& blocks) {
  SymbolStream s;
  s.dc.reserve(blocks.size());
  s.ac.reserve(blocks.size() * 4);
  s.ac_start.reserve(blocks.size() + 1);
  seed_stream(s);
  int prev_dc = 0;
  for (const auto& zz : blocks) append_block_tokens_zz(zz.data(), prev_dc, s);
  return s;
}

void accumulate_frequencies(const SymbolStream& stream,
                            std::vector<std::uint64_t>& dc_freq,
                            std::vector<std::uint64_t>& ac_freq) {
  dc_freq.resize(16, 0);
  ac_freq.resize(256, 0);
  for (const auto& d : stream.dc) ++dc_freq[static_cast<std::size_t>(d.size)];
  for (const auto& a : stream.ac) ++ac_freq[static_cast<std::size_t>(a.symbol)];
}

void emit_stream(util::BitWriter& bits, const SymbolStream& stream,
                 const HuffmanCode& dc, const HuffmanCode& ac) {
  for (std::size_t b = 0; b < stream.dc.size(); ++b) {
    const auto& d = stream.dc[b];
    dc.encode(bits, d.size);
    if (d.size > 0) bits.bits(d.bits, d.size);
    for (std::uint32_t i = stream.ac_start[b]; i < stream.ac_start[b + 1];
         ++i) {
      const auto& a = stream.ac[i];
      ac.encode(bits, a.symbol);
      if (a.size > 0) bits.bits(a.bits, a.size);
    }
  }
}

namespace {

/// Tokenize one NATURAL-order quantized block (the simd::quantize64 output)
/// without materializing the zigzag array: a nonzero bitmask bounds the
/// zigzag scan at the last nonzero coefficient, so smooth blocks cost a
/// handful of iterations instead of 63. Token-for-token identical to
/// append_block_tokens_zz on the zigzag-scattered copy.
void append_block_tokens_nat(const std::int32_t q[64], int& prev_dc,
                             SymbolStream& s) {
  const int diff = q[0] - prev_dc;
  prev_dc = q[0];
  const int dsize = category(diff);
  s.dc.push_back({dsize, magnitude_bits(diff, dsize)});

  int last = 0;  // highest zigzag position holding a nonzero AC
  for (std::uint64_t m = util::simd::nonzero_mask64(q) & ~std::uint64_t{1};
       m != 0; m &= m - 1)
    last = std::max(last,
                    kZigzagPos[static_cast<std::size_t>(__builtin_ctzll(m))]);
  int run = 0;
  for (int i = 1; i <= last; ++i) {
    const int v = q[kZigzag[i]];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      s.ac.push_back({0xF0, 0, 0});
      run -= 16;
    }
    const int size = category(v);
    s.ac.push_back({run * 16 + size, size, magnitude_bits(v, size)});
    run = 0;
  }
  if (last < 63) s.ac.push_back({0x00, 0, 0});  // EOB
  s.ac_start.push_back(static_cast<std::uint32_t>(s.ac.size()));
}

}  // namespace

void transform_append(const Plane& plane, const float quant_nat[64],
                      int& prev_dc, SymbolStream& s) {
  const int bw = (plane.w + 7) / 8, bh = (plane.h + 7) / 8;
  s.dc.reserve(s.dc.size() + static_cast<std::size_t>(bw) * bh);
  s.ac_start.reserve(s.ac_start.size() + static_cast<std::size_t>(bw) * bh);
  seed_stream(s);
  float raw[64], freq[64];
  std::int32_t q[64];
  for (int by = 0; by < bh; ++by)
    for (int bx = 0; bx < bw; ++bx) {
      extract_block(plane, bx, by, raw);
      util::simd::fdct8x8(raw, freq);
      util::simd::quantize64(freq, quant_nat, q);
      append_block_tokens_nat(q, prev_dc, s);
    }
}

std::vector<std::array<int, 64>> decode_blocks(util::BitReader& bits,
                                               std::size_t count,
                                               const HuffmanCode& dc,
                                               const HuffmanCode& ac) {
  std::vector<std::array<int, 64>> blocks(count);
  int prev_dc = 0;
  for (auto& zz : blocks) {
    zz.fill(0);
    const int dsize = dc.decode(bits);
    const int diff = dsize > 0 ? magnitude_value(bits.bits(dsize), dsize) : 0;
    prev_dc += diff;
    zz[0] = prev_dc;
    int i = 1;
    while (i < 64) {
      const int sym = ac.decode(bits);
      if (sym == 0x00) break;  // EOB
      if (sym == 0xF0) {       // ZRL
        i += 16;
        continue;
      }
      const int run = sym >> 4;
      const int size = sym & 0xF;
      i += run;
      if (i >= 64) throw std::runtime_error("jpeg: AC index overflow");
      zz[static_cast<std::size_t>(i)] = magnitude_value(bits.bits(size), size);
      ++i;
    }
  }
  return blocks;
}

}  // namespace detail

// ----------------------------------------------------------- JpegCodec ----

using detail::Plane;
using detail::Planes;
using detail::SymbolStream;

namespace {

struct StripLayout {
  int y0, h;
};

/// Split `h` rows into up to `strips` spans, every boundary a multiple of
/// kStripAlign. The layout is a pure function of (h, strips).
std::vector<StripLayout> strip_layout(int h, int strips) {
  const int groups = (h + kStripAlign - 1) / kStripAlign;
  if (groups <= 0) return {{0, 0}};
  const int n = std::clamp(strips, 1, groups);
  std::vector<StripLayout> out;
  out.reserve(static_cast<std::size_t>(n));
  const int base = groups / n, extra = groups % n;
  int y = 0;
  for (int i = 0; i < n; ++i) {
    const int g = base + (i < extra ? 1 : 0);
    const int y1 = std::min(h, y + g * kStripAlign);
    out.push_back({y, y1 - y});
    y = y1;
  }
  return out;
}

/// Strip-local chroma height matching the encoder's convert_rows output.
int chroma_rows(int luma_rows, bool subsample) {
  return subsample ? (luma_rows + 1) / 2 : luma_rows;
}

/// One strip's pass-1 products and pass-2 payload.
struct StripJob {
  int y0 = 0, h = 0;
  SymbolStream streams[3];
  std::vector<std::uint64_t> dc_freq, ac_freq;
  util::Bytes payload;
};

util::Bytes assemble_container(int w, int h, int quality, bool subsample,
                               const detail::QuantTables& qt,
                               const HuffmanCode& dc_code,
                               const HuffmanCode& ac_code,
                               const std::vector<StripJob>& jobs,
                               util::BufferPool* pool) {
  util::ByteWriter head(640);
  head.u32(kMagic);
  head.u32(static_cast<std::uint32_t>(w));
  head.u32(static_cast<std::uint32_t>(h));
  head.u8(static_cast<std::uint8_t>(quality));
  head.u8(subsample ? 1 : 0);
  for (int i = 0; i < 64; ++i) head.u16(qt.luma_zz[i]);
  for (int i = 0; i < 64; ++i) head.u16(qt.chroma_zz[i]);
  dc_code.write_lengths(head);
  ac_code.write_lengths(head);
  head.u32(static_cast<std::uint32_t>(jobs.size()));
  const util::Bytes head_bytes = head.take();

  std::size_t total = head_bytes.size();
  for (const StripJob& j : jobs)
    total += 8 + util::varint_size(j.payload.size()) + j.payload.size();

  util::Bytes backing;
  if (pool)
    backing = pool->acquire(total);
  else
    backing.reserve(total);
  util::ByteWriter out(std::move(backing));
  out.raw(head_bytes);
  for (const StripJob& j : jobs) {
    out.u32(static_cast<std::uint32_t>(j.y0));
    out.u32(static_cast<std::uint32_t>(j.h));
    out.varint(j.payload.size());
    out.raw(j.payload);
  }
  return out.take();
}

}  // namespace

JpegCodec::JpegCodec(int quality, bool subsample_chroma, int strips)
    : quality_(quality),
      subsample_(subsample_chroma),
      strips_(strips),
      tables_(&detail::quant_tables_for(quality)) {
  if (strips < 0) throw std::invalid_argument("JpegCodec: negative strips");
}

util::Bytes JpegCodec::encode_impl(const render::Image& image,
                                   util::BufferPool* pool) const {
  TilePool& tiles = TilePool::global();
  const int want = strips_ > 0 ? strips_ : tiles.workers();
  const std::vector<StripLayout> layout = strip_layout(image.height(), want);

  std::vector<StripJob> jobs(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    jobs[i].y0 = layout[i].y0;
    jobs[i].h = layout[i].h;
  }

  const float* quants[3] = {tables_->luma_nat, tables_->chroma_nat,
                            tables_->chroma_nat};

  // Pass 1 (parallel per strip): stream 16-row groups through
  // convert -> DCT -> quantize -> tokenize so every intermediate stays
  // cache-resident — no full-strip planes, no materialized coefficient
  // arrays. Group boundaries are block-aligned (16 luma = 2 block rows,
  // 8 chroma = 1), so the token sequence is identical to a whole-strip
  // transform; the DC predictors thread across groups per plane.
  tiles.run(jobs.size(), [&](std::size_t s) {
    StripJob& j = jobs[s];
    detail::Planes p;
    std::vector<float> cb_tmp, cr_tmp;
    int prev_dc[3] = {0, 0, 0};
    for (int r0 = 0; r0 < j.h; r0 += kStripAlign) {
      const int rows = std::min(kStripAlign, j.h - r0);
      detail::convert_rows_into(image, subsample_, j.y0 + r0, rows, p, cb_tmp,
                                cr_tmp);
      const Plane* planes[3] = {&p.y, &p.cb, &p.cr};
      for (int c = 0; c < 3; ++c)
        detail::transform_append(*planes[c], quants[c], prev_dc[c],
                                 j.streams[c]);
    }
    for (int c = 0; c < 3; ++c)
      detail::accumulate_frequencies(j.streams[c], j.dc_freq, j.ac_freq);
  });

  // Merge statistics in strip order so the tables cover the whole frame and
  // are independent of the execution schedule.
  std::vector<std::uint64_t> dc_freq(16, 0), ac_freq(256, 0);
  for (const StripJob& j : jobs) {
    for (std::size_t i = 0; i < dc_freq.size(); ++i) dc_freq[i] += j.dc_freq[i];
    for (std::size_t i = 0; i < ac_freq.size(); ++i) ac_freq[i] += j.ac_freq[i];
  }
  const HuffmanCode dc_code = HuffmanCode::from_frequencies(dc_freq);
  const HuffmanCode ac_code = HuffmanCode::from_frequencies(ac_freq);

  // Pass 2 (parallel per strip): entropy-code each strip's tokens with the
  // shared tables into its own byte-aligned payload.
  tiles.run(jobs.size(), [&](std::size_t s) {
    util::BitWriter bits;
    for (const auto& stream : jobs[s].streams)
      detail::emit_stream(bits, stream, dc_code, ac_code);
    jobs[s].payload = bits.finish();
  });

  // Single stitch pass: sizes are exact, so the output (pooled or not) is
  // written once with no reallocation.
  return assemble_container(image.width(), image.height(), quality_,
                            subsample_, *tables_, dc_code, ac_code, jobs,
                            pool);
}

util::Bytes JpegCodec::encode(const render::Image& image) const {
  return encode_impl(image, nullptr);
}

util::SharedBytes JpegCodec::encode_shared(const render::Image& image,
                                           util::BufferPool& pool) const {
  return util::SharedBytes::adopt_pooled(encode_impl(image, &pool), pool);
}

namespace {

/// Legacy double-precision RGB->YCbCr, kept verbatim as the reference
/// encoder's conversion stage.
Planes to_planes_reference(const render::Image& img, bool subsample) {
  Planes p;
  p.y.w = img.width();
  p.y.h = img.height();
  p.y.data.resize(static_cast<std::size_t>(p.y.w) * p.y.h);
  std::vector<float> cb(p.y.data.size()), cr(p.y.data.size());
  for (int yy = 0; yy < img.height(); ++yy)
    for (int xx = 0; xx < img.width(); ++xx) {
      const auto* px = img.pixel(xx, yy);
      const double r = px[0], g = px[1], b = px[2];
      const std::size_t i = static_cast<std::size_t>(yy) * p.y.w + xx;
      p.y.data[i] = static_cast<float>(0.299 * r + 0.587 * g + 0.114 * b - 128.0);
      cb[i] = static_cast<float>(-0.168736 * r - 0.331264 * g + 0.5 * b);
      cr[i] = static_cast<float>(0.5 * r - 0.418688 * g - 0.081312 * b);
    }
  if (subsample) {
    p.cb.w = (img.width() + 1) / 2;
    p.cb.h = (img.height() + 1) / 2;
    p.cr.w = p.cb.w;
    p.cr.h = p.cb.h;
    p.cb.data.resize(static_cast<std::size_t>(p.cb.w) * p.cb.h);
    p.cr.data.resize(p.cb.data.size());
    for (int yy = 0; yy < p.cb.h; ++yy)
      for (int xx = 0; xx < p.cb.w; ++xx) {
        double scb = 0.0, scr = 0.0;
        int n = 0;
        for (int dy = 0; dy < 2; ++dy)
          for (int dx = 0; dx < 2; ++dx) {
            const int sx = 2 * xx + dx, sy = 2 * yy + dy;
            if (sx >= img.width() || sy >= img.height()) continue;
            const std::size_t i = static_cast<std::size_t>(sy) * p.y.w + sx;
            scb += cb[i];
            scr += cr[i];
            ++n;
          }
        const std::size_t o = static_cast<std::size_t>(yy) * p.cb.w + xx;
        p.cb.data[o] = static_cast<float>(scb / n);
        p.cr.data[o] = static_cast<float>(scr / n);
      }
  } else {
    p.cb.w = p.cr.w = p.y.w;
    p.cb.h = p.cr.h = p.y.h;
    p.cb.data = std::move(cb);
    p.cr.data = std::move(cr);
  }
  return p;
}

}  // namespace

util::Bytes JpegCodec::encode_reference(const render::Image& image) const {
  const Planes planes = to_planes_reference(image, subsample_);
  const Plane* plane_ptrs[3] = {&planes.y, &planes.cb, &planes.cr};
  const std::uint16_t* quants[3] = {tables_->luma_zz, tables_->chroma_zz,
                                    tables_->chroma_zz};

  std::vector<StripJob> jobs(1);
  jobs[0].y0 = 0;
  jobs[0].h = image.height();
  std::vector<std::uint64_t> dc_freq, ac_freq;
  for (int c = 0; c < 3; ++c) {
    const auto blocks = detail::quantize_plane(*plane_ptrs[c], quants[c]);
    jobs[0].streams[c] = detail::tokenize(blocks);
    detail::accumulate_frequencies(jobs[0].streams[c], dc_freq, ac_freq);
  }
  const HuffmanCode dc_code = HuffmanCode::from_frequencies(dc_freq);
  const HuffmanCode ac_code = HuffmanCode::from_frequencies(ac_freq);

  util::BitWriter bits;
  for (const auto& stream : jobs[0].streams)
    detail::emit_stream(bits, stream, dc_code, ac_code);
  jobs[0].payload = bits.finish();

  return assemble_container(image.width(), image.height(), quality_,
                            subsample_, *tables_, dc_code, ac_code, jobs,
                            nullptr);
}

namespace {

/// Parsed strip-framed container: header metadata plus per-strip payload
/// views into the caller's buffer.
struct ParsedStream {
  ParsedStream(HuffmanCode dc, HuffmanCode ac)
      : dc_code(std::move(dc)), ac_code(std::move(ac)) {}

  int w = 0, h = 0;
  bool subsample = false;
  std::uint16_t luma_q[64], chroma_q[64];
  HuffmanCode dc_code, ac_code;
  struct Strip {
    int y0, h;
    std::span<const std::uint8_t> payload;
  };
  std::vector<Strip> strips;
  int plane_w[3], plane_h[3];
};

ParsedStream parse_stream(std::span<const std::uint8_t> data) {
  util::ByteReader in(data);
  if (in.u32() != kMagic) throw std::runtime_error("jpeg: bad magic");
  const int w = static_cast<int>(in.u32());
  const int h = static_cast<int>(in.u32());
  // The decoder allocates full planes before reading a single coefficient,
  // so dimensions must be sane first — corrupted headers would otherwise
  // drive multi-terabyte zero-fills instead of a clean throw.
  if (w < 0 || h < 0 || w > (1 << 16) || h > (1 << 16) ||
      static_cast<std::int64_t>(w) * h > (std::int64_t{1} << 26))
    throw std::runtime_error("jpeg: implausible dimensions");
  (void)in.u8();  // quality (informational; tables are explicit)
  const bool subsample = in.u8() != 0;
  std::uint16_t luma_q[64], chroma_q[64];
  for (auto& q : luma_q) q = in.u16();
  for (auto& q : chroma_q) q = in.u16();
  HuffmanCode dc_code = HuffmanCode::read_lengths(in);
  HuffmanCode ac_code = HuffmanCode::read_lengths(in);
  ParsedStream s(std::move(dc_code), std::move(ac_code));
  s.w = w;
  s.h = h;
  s.subsample = subsample;
  std::copy(std::begin(luma_q), std::end(luma_q), std::begin(s.luma_q));
  std::copy(std::begin(chroma_q), std::end(chroma_q), std::begin(s.chroma_q));

  const std::uint32_t strip_count = in.u32();
  const int max_strips =
      s.h <= 0 ? 1 : (s.h + kStripAlign - 1) / kStripAlign;
  if (strip_count == 0 || strip_count > static_cast<std::uint32_t>(max_strips))
    throw std::runtime_error("jpeg: implausible strip count");

  int next_y = 0;
  s.strips.reserve(strip_count);
  for (std::uint32_t i = 0; i < strip_count; ++i) {
    ParsedStream::Strip strip;
    strip.y0 = static_cast<int>(in.u32());
    strip.h = static_cast<int>(in.u32());
    const std::size_t payload_len = in.varint();
    strip.payload = in.raw(payload_len);
    if (strip.y0 != next_y || strip.h < 0 || strip.y0 + strip.h > s.h ||
        (strip.h == 0 && s.h != 0))
      throw std::runtime_error("jpeg: bad strip layout");
    if (i + 1 < strip_count && strip.h % kStripAlign != 0)
      throw std::runtime_error("jpeg: unaligned interior strip");
    next_y += strip.h;
    s.strips.push_back(strip);
  }
  if (next_y != s.h) throw std::runtime_error("jpeg: strip layout short");

  const int cw = s.subsample ? (s.w + 1) / 2 : s.w;
  const int ch = s.subsample ? (s.h + 1) / 2 : s.h;
  s.plane_w[0] = s.w;
  s.plane_h[0] = s.h;
  s.plane_w[1] = s.plane_w[2] = cw;
  s.plane_h[1] = s.plane_h[2] = ch;
  return s;
}

Plane dequantize_plane_scaled(const std::vector<std::array<int, 64>>& blocks,
                              int w, int h, const std::uint16_t quant[64],
                              int scale);

/// Entropy-decode and dequantize one strip into the full-frame planes
/// (disjoint row spans per strip, so strips decode in parallel).
template <typename Dequant>
void decode_strip_into(const ParsedStream& s, const ParsedStream::Strip& strip,
                       Plane* outs[3], const std::uint16_t* quants[3],
                       int scale, const Dequant& dequant) {
  util::BitReader bits(strip.payload);
  for (int c = 0; c < 3; ++c) {
    const int pw = s.plane_w[c];
    const int rows = c == 0 ? strip.h : chroma_rows(strip.h, s.subsample);
    const int row0 = c == 0 ? strip.y0
                            : (s.subsample ? strip.y0 / 2 : strip.y0);
    const auto blocks = detail::decode_blocks(
        bits, detail::block_count(pw, rows), s.dc_code, s.ac_code);
    const Plane sp = dequant(blocks, pw, rows, quants[c]);
    // sp covers this strip's rows at 1/scale resolution; splice them in.
    const int dst_row0 = row0 / scale;
    for (int r = 0; r < sp.h; ++r)
      std::copy(sp.data.begin() + static_cast<std::ptrdiff_t>(r) * sp.w,
                sp.data.begin() + static_cast<std::ptrdiff_t>(r + 1) * sp.w,
                outs[c]->data.begin() +
                    static_cast<std::ptrdiff_t>(dst_row0 + r) * sp.w);
  }
}

render::Image decode_common(std::span<const std::uint8_t> data, int scale) {
  const ParsedStream s = parse_stream(data);
  const std::uint16_t* quants[3] = {s.luma_q, s.chroma_q, s.chroma_q};
  Planes planes;
  Plane* outs[3] = {&planes.y, &planes.cb, &planes.cr};
  for (int c = 0; c < 3; ++c) {
    outs[c]->w = (s.plane_w[c] + scale - 1) / scale;
    outs[c]->h = (s.plane_h[c] + scale - 1) / scale;
    outs[c]->data.assign(
        static_cast<std::size_t>(outs[c]->w) * outs[c]->h, 0.0f);
  }
  TilePool::global().run(s.strips.size(), [&](std::size_t i) {
    if (scale == 1)
      decode_strip_into(s, s.strips[i], outs, quants, 1,
                        [](const auto& blocks, int w, int h,
                           const std::uint16_t* q) {
                          return detail::dequantize_plane(blocks, w, h, q);
                        });
    else
      decode_strip_into(s, s.strips[i], outs, quants, scale,
                        [scale](const auto& blocks, int w, int h,
                                const std::uint16_t* q) {
                          return dequantize_plane_scaled(blocks, w, h, q,
                                                         scale);
                        });
  });
  return detail::from_planes(planes, s.subsample);
}

/// Orthonormal m-point DCT basis for the reduced-resolution inverse.
struct SmallBasis {
  double a[8][8] = {};
  explicit SmallBasis(int m) {
    for (int u = 0; u < m; ++u) {
      const double alpha = u == 0 ? std::sqrt(1.0 / m) : std::sqrt(2.0 / m);
      for (int x = 0; x < m; ++x)
        a[u][x] = alpha *
                  std::cos((2 * x + 1) * u * 3.14159265358979323846 / (2 * m));
    }
  }
};

/// Reconstruct a plane at 1/scale resolution from the (8/scale)^2
/// lowest-frequency coefficients of each block (libjpeg's scaled IDCT).
Plane dequantize_plane_scaled(const std::vector<std::array<int, 64>>& blocks,
                              int w, int h, const std::uint16_t quant[64],
                              int scale) {
  const int m = 8 / scale;
  const SmallBasis basis(m);
  const int pw = (w + scale - 1) / scale;
  const int ph = (h + scale - 1) / scale;
  Plane plane;
  plane.w = pw;
  plane.h = ph;
  plane.data.assign(static_cast<std::size_t>(pw) * ph, 0.0f);
  const int bw = (w + 7) / 8;

  double freq[64], tmp[64], raw[64];
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const int bx = static_cast<int>(b) % bw;
    const int by = static_cast<int>(b) / bw;
    std::fill(std::begin(freq), std::end(freq), 0.0);
    const double rescale = static_cast<double>(m) / 8.0;
    for (int i = 0; i < 64; ++i) {
      const int r = kZigzag[i] / 8, c = kZigzag[i] % 8;
      if (r < m && c < m)
        freq[r * 8 + c] =
            static_cast<double>(blocks[b][static_cast<std::size_t>(i)]) *
            quant[i] * rescale;
    }
    for (int x = 0; x < m; ++x)
      for (int v = 0; v < m; ++v) {
        double acc = 0.0;
        for (int u = 0; u < m; ++u) acc += basis.a[u][x] * freq[u * 8 + v];
        tmp[x * 8 + v] = acc;
      }
    for (int x = 0; x < m; ++x)
      for (int y = 0; y < m; ++y) {
        double acc = 0.0;
        for (int v = 0; v < m; ++v) acc += tmp[x * 8 + v] * basis.a[v][y];
        raw[x * 8 + y] = acc;
      }
    for (int y = 0; y < m; ++y) {
      const int py = by * m + y;
      if (py >= ph) continue;
      for (int x = 0; x < m; ++x) {
        const int px = bx * m + x;
        if (px >= pw) continue;
        plane.data[static_cast<std::size_t>(py) * pw + px] =
            static_cast<float>(raw[y * 8 + x]);
      }
    }
  }
  return plane;
}
}  // namespace

render::Image JpegCodec::decode(std::span<const std::uint8_t> data) const {
  return decode_common(data, 1);
}

render::Image JpegCodec::decode_fast(std::span<const std::uint8_t> data,
                                     int scale) const {
  if (scale == 1) return decode(data);
  if (scale != 2 && scale != 4 && scale != 8)
    throw std::invalid_argument("jpeg: decode_fast scale must be 1/2/4/8");
  return decode_common(data, scale);
}

}  // namespace tvviz::codec
