// Wire codec for the protocol-v4 depth plane (render/warp.hpp): the
// per-pixel view depths that turn a color frame into a warpable 2.5D frame.
//
// Layout: depths are quantized to u16 against the frame's own [near, far]
// range (background keeps a reserved sentinel), the little-endian u16 plane
// is row-delta filtered — each row minus the previous, through the
// dispatched simd::sub_u8 kernel, the same residual trick the frame-diff
// codec uses temporally — and the residual plane is LZ-packed. Depth varies
// smoothly across scanlines, so the deltas are near-zero bytes and LZ eats
// them; quantization error is bounded by (far - near) / 65534.
#pragma once

#include <span>

#include "render/warp.hpp"
#include "util/bytes.hpp"

namespace tvviz::codec {

/// Maximum absolute depth error decode(encode(d)) can introduce for the
/// given plane (half a quantization step; 0 for an all-background plane).
double depth_plane_max_error(const render::DepthImage& depth);

util::Bytes encode_depth_plane(const render::DepthImage& depth);
render::DepthImage decode_depth_plane(std::span<const std::uint8_t> data);

}  // namespace tvviz::codec
