#include "codec/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace tvviz::codec {

namespace {
/// Compute code lengths from frequencies via a Huffman tree (priority queue).
/// Returns empty when no symbol has a non-zero frequency.
std::vector<std::uint8_t> tree_lengths(std::span<const std::uint64_t> freqs) {
  struct Node {
    std::uint64_t freq;
    int index;  ///< < alphabet: leaf symbol; else internal node id.
  };
  const auto cmp = [](const Node& a, const Node& b) {
    return a.freq != b.freq ? a.freq > b.freq : a.index > b.index;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);

  const int n = static_cast<int>(freqs.size());
  for (int i = 0; i < n; ++i)
    if (freqs[static_cast<std::size_t>(i)] > 0)
      heap.push(Node{freqs[static_cast<std::size_t>(i)], i});
  if (heap.empty()) return {};

  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(heap.top().index)] = 1;
    return lengths;
  }

  // parent[] over leaves and internal nodes; depths computed by walking up.
  std::vector<int> parent(freqs.size(), -1);
  int next_internal = n;
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent.push_back(-1);  // slot for the new internal node
    const int id = next_internal++;
    parent[static_cast<std::size_t>(a.index)] = id;
    parent[static_cast<std::size_t>(b.index)] = id;
    heap.push(Node{a.freq + b.freq, id});
  }
  for (int i = 0; i < n; ++i) {
    if (freqs[static_cast<std::size_t>(i)] == 0) continue;
    int depth = 0;
    for (int v = i; parent[static_cast<std::size_t>(v)] != -1;
         v = parent[static_cast<std::size_t>(v)])
      ++depth;
    lengths[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(depth);
  }
  return lengths;
}
}  // namespace

HuffmanCode HuffmanCode::from_frequencies(std::span<const std::uint64_t> freqs) {
  std::vector<std::uint64_t> scaled(freqs.begin(), freqs.end());
  for (;;) {
    auto lengths = tree_lengths(scaled);
    if (lengths.empty())
      throw std::invalid_argument("huffman: all frequencies zero");
    const auto max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (max_len <= kMaxBits) return HuffmanCode(std::move(lengths));
    // Depth limiting by frequency flattening; converges to uniform lengths.
    for (auto& f : scaled)
      if (f > 0) f = f / 2 + 1;
  }
}

HuffmanCode HuffmanCode::from_lengths(std::vector<std::uint8_t> lengths) {
  return HuffmanCode(std::move(lengths));
}

HuffmanCode::HuffmanCode(std::vector<std::uint8_t> lengths)
    : lengths_(std::move(lengths)) {
  build_tables();
}

void HuffmanCode::build_tables() {
  codes_.assign(lengths_.size(), 0);
  sorted_symbols_.clear();
  std::fill(std::begin(count_), std::end(count_), 0);

  for (std::uint8_t len : lengths_) {
    if (len > kMaxBits) throw std::invalid_argument("huffman: length overflow");
    if (len > 0) ++count_[len];
  }
  // Canonical first codes per length.
  std::uint32_t code = 0;
  std::int32_t index = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    code = (code + count_[len - 1]) << 1;
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_[len];
  }
  // Kraft check: the code must be complete or under-full, never over-full.
  std::uint64_t kraft = 0;
  for (int len = 1; len <= kMaxBits; ++len)
    kraft += static_cast<std::uint64_t>(count_[len]) << (kMaxBits - len);
  if (kraft > (1ull << kMaxBits))
    throw std::invalid_argument("huffman: invalid length set (over-full)");

  // Assign codes to symbols sorted by (length, symbol value).
  sorted_symbols_.resize(static_cast<std::size_t>(index));
  std::uint32_t next_code[kMaxBits + 2];
  std::int32_t next_index[kMaxBits + 2];
  std::copy(std::begin(first_code_), std::end(first_code_), next_code);
  std::copy(std::begin(first_index_), std::end(first_index_), next_index);
  for (std::size_t sym = 0; sym < lengths_.size(); ++sym) {
    const std::uint8_t len = lengths_[sym];
    if (len == 0) continue;
    codes_[sym] = next_code[len]++;
    sorted_symbols_[static_cast<std::size_t>(next_index[len]++)] =
        static_cast<std::uint16_t>(sym);
  }
}

void HuffmanCode::encode(util::BitWriter& out, int symbol) const {
  const std::uint8_t len = lengths_.at(static_cast<std::size_t>(symbol));
  if (len == 0) throw std::invalid_argument("huffman: symbol has no code");
  out.bits(codes_[static_cast<std::size_t>(symbol)], len);
}

int HuffmanCode::decode(util::BitReader& in) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    code = (code << 1) | (in.bit() ? 1u : 0u);
    if (count_[len] != 0 && code >= first_code_[len] &&
        code < first_code_[len] + count_[len]) {
      return sorted_symbols_[static_cast<std::size_t>(
          first_index_[len] + static_cast<std::int32_t>(code - first_code_[len]))];
    }
  }
  throw std::runtime_error("huffman: invalid code in stream");
}

void HuffmanCode::write_lengths(util::ByteWriter& out) const {
  out.varint(lengths_.size());
  std::size_t i = 0;
  while (i < lengths_.size()) {
    if (lengths_[i] == 0) {
      std::size_t run = 1;
      while (i + run < lengths_.size() && lengths_[i + run] == 0) ++run;
      out.u8(0);
      out.varint(run);
      i += run;
    } else {
      out.u8(lengths_[i]);
      ++i;
    }
  }
}

HuffmanCode HuffmanCode::read_lengths(util::ByteReader& in) {
  const std::size_t n = in.varint();
  if (n > 1u << 20) throw std::runtime_error("huffman: absurd alphabet size");
  std::vector<std::uint8_t> lengths;
  lengths.reserve(n);
  while (lengths.size() < n) {
    const std::uint8_t v = in.u8();
    if (v == 0) {
      const std::size_t run = in.varint();
      if (lengths.size() + run > n)
        throw std::runtime_error("huffman: zero run overflows alphabet");
      lengths.insert(lengths.end(), run, 0);
    } else {
      lengths.push_back(v);
    }
  }
  return from_lengths(std::move(lengths));
}

double HuffmanCode::expected_bits(std::span<const std::uint64_t> freqs) const {
  std::uint64_t total = 0, bits = 0;
  for (std::size_t i = 0; i < freqs.size() && i < lengths_.size(); ++i) {
    total += freqs[i];
    bits += freqs[i] * lengths_[i];
  }
  return total > 0 ? static_cast<double>(bits) / static_cast<double>(total) : 0.0;
}

}  // namespace tvviz::codec
