// Canonical Huffman coding over an arbitrary symbol alphabet, shared by the
// BWT codec's entropy stage and the JPEG codec's coefficient coder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace tvviz::codec {

/// Canonical Huffman code for `alphabet_size` symbols with code lengths
/// capped at kMaxBits. Build from frequencies, then encode/decode symbols
/// through Bit{Writer,Reader}. Lengths serialize compactly so the decoder
/// can reconstruct the identical canonical code.
class HuffmanCode {
 public:
  static constexpr int kMaxBits = 15;

  /// Build an optimal (length-limited) code. Symbols with zero frequency get
  /// no code; encoding such a symbol throws. At least one frequency must be
  /// non-zero.
  static HuffmanCode from_frequencies(std::span<const std::uint64_t> freqs);

  /// Rebuild from serialized code lengths.
  static HuffmanCode from_lengths(std::vector<std::uint8_t> lengths);

  int alphabet_size() const noexcept { return static_cast<int>(lengths_.size()); }
  const std::vector<std::uint8_t>& lengths() const noexcept { return lengths_; }

  void encode(util::BitWriter& out, int symbol) const;
  int decode(util::BitReader& in) const;

  /// Serialize code lengths (run-length compressed) / parse them back.
  void write_lengths(util::ByteWriter& out) const;
  static HuffmanCode read_lengths(util::ByteReader& in);

  /// Mean code length in bits under the given symbol distribution.
  double expected_bits(std::span<const std::uint64_t> freqs) const;

 private:
  explicit HuffmanCode(std::vector<std::uint8_t> lengths);
  void build_tables();

  std::vector<std::uint8_t> lengths_;   ///< Per-symbol code length (0 = absent).
  std::vector<std::uint32_t> codes_;    ///< Canonical code bits per symbol.
  // Canonical decoding tables indexed by code length.
  std::uint32_t first_code_[kMaxBits + 2] = {};
  std::int32_t first_index_[kMaxBits + 2] = {};
  std::uint16_t count_[kMaxBits + 2] = {};
  std::vector<std::uint16_t> sorted_symbols_;  ///< Symbols by (length, value).
};

}  // namespace tvviz::codec
