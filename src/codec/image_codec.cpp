#include "codec/image_codec.hpp"

#include <stdexcept>
#include <vector>

#include "codec/bwt.hpp"
#include "codec/jpeg.hpp"
#include "codec/lz.hpp"

namespace tvviz::codec {

namespace {
/// RGB payload framing shared by Raw and ByteImageCodec.
util::Bytes pack_rgb(const render::Image& image) {
  util::ByteWriter w(static_cast<std::size_t>(image.width()) * image.height() * 3 + 16);
  w.u32(static_cast<std::uint32_t>(image.width()));
  w.u32(static_cast<std::uint32_t>(image.height()));
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x) {
      const auto* p = image.pixel(x, y);
      w.u8(p[0]);
      w.u8(p[1]);
      w.u8(p[2]);
    }
  return w.take();
}

render::Image unpack_rgb(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  const int w = static_cast<int>(r.u32());
  const int h = static_cast<int>(r.u32());
  if (w < 0 || h < 0 || r.remaining() < static_cast<std::size_t>(w) * h * 3)
    throw std::runtime_error("image: truncated RGB payload");
  render::Image image(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const std::uint8_t red = r.u8(), green = r.u8(), blue = r.u8();
      image.set(x, y, red, green, blue, 255);
    }
  return image;
}
}  // namespace

util::Bytes RawImageCodec::encode(const render::Image& image) const {
  return pack_rgb(image);
}

render::Image RawImageCodec::decode(std::span<const std::uint8_t> data) const {
  return unpack_rgb(data);
}

util::Bytes ByteImageCodec::encode(const render::Image& image) const {
  return bytes_->encode(pack_rgb(image));
}

render::Image ByteImageCodec::decode(std::span<const std::uint8_t> data) const {
  return unpack_rgb(bytes_->decode(data));
}

std::shared_ptr<const ImageCodec> make_image_codec(const std::string& name,
                                                   int quality) {
  if (name == "raw") return std::make_shared<RawImageCodec>();
  if (name == "rle")
    return std::make_shared<ByteImageCodec>(std::make_shared<RleCodec>());
  if (name == "lzo")
    return std::make_shared<ByteImageCodec>(std::make_shared<LzCodec>());
  if (name == "bzip")
    return std::make_shared<ByteImageCodec>(std::make_shared<BwtCodec>());
  if (name == "jpeg") return std::make_shared<JpegCodec>(quality);
  if (name == "jpeg+lzo")
    return std::make_shared<ChainImageCodec>(std::make_shared<JpegCodec>(quality),
                                             std::make_shared<LzCodec>());
  if (name == "jpeg+bzip")
    return std::make_shared<ChainImageCodec>(std::make_shared<JpegCodec>(quality),
                                             std::make_shared<BwtCodec>());
  throw std::invalid_argument("make_image_codec: unknown codec " + name);
}

const std::vector<std::string>& table1_codec_names() {
  static const std::vector<std::string> names = {
      "raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip"};
  return names;
}

}  // namespace tvviz::codec
