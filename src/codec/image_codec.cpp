#include "codec/image_codec.hpp"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "codec/bwt.hpp"
#include "codec/jpeg.hpp"
#include "codec/lz.hpp"
#include "obs/counters.hpp"

namespace tvviz::codec {

namespace {

/// Decorator: feed per-codec call counts, byte totals, and wall time into
/// the obs registry on every encode/decode. name()/lossless() pass through,
/// so wire codec names are unchanged.
class InstrumentedImageCodec final : public ImageCodec {
 public:
  explicit InstrumentedImageCodec(std::shared_ptr<const ImageCodec> inner)
      : inner_(std::move(inner)) {
    const std::string prefix = "codec." + inner_->name() + ".";
    encode_calls_ = &obs::counter(prefix + "encode_calls");
    encode_us_ = &obs::counter(prefix + "encode_us");
    bytes_in_ = &obs::counter(prefix + "bytes_in");
    bytes_out_ = &obs::counter(prefix + "bytes_out");
    decode_calls_ = &obs::counter(prefix + "decode_calls");
    decode_us_ = &obs::counter(prefix + "decode_us");
  }

  std::string name() const override { return inner_->name(); }
  bool lossless() const override { return inner_->lossless(); }

  util::Bytes encode(const render::Image& image) const override {
    const auto t0 = std::chrono::steady_clock::now();
    util::Bytes out = inner_->encode(image);
    const auto t1 = std::chrono::steady_clock::now();
    encode_calls_->add(1);
    encode_us_->add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    bytes_in_->add(static_cast<std::uint64_t>(image.width()) *
                   static_cast<std::uint64_t>(image.height()) * 3);
    bytes_out_->add(out.size());
    return out;
  }

  render::Image decode(std::span<const std::uint8_t> data) const override {
    const auto t0 = std::chrono::steady_clock::now();
    render::Image out = inner_->decode(data);
    const auto t1 = std::chrono::steady_clock::now();
    decode_calls_->add(1);
    decode_us_->add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    return out;
  }

  util::SharedBytes encode_shared(const render::Image& image,
                                  util::BufferPool& pool) const override {
    const auto t0 = std::chrono::steady_clock::now();
    util::SharedBytes out = inner_->encode_shared(image, pool);
    const auto t1 = std::chrono::steady_clock::now();
    encode_calls_->add(1);
    encode_us_->add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    bytes_in_->add(static_cast<std::uint64_t>(image.width()) *
                   static_cast<std::uint64_t>(image.height()) * 3);
    bytes_out_->add(out.size());
    return out;
  }

 private:
  std::shared_ptr<const ImageCodec> inner_;
  obs::Counter* encode_calls_;
  obs::Counter* encode_us_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* decode_calls_;
  obs::Counter* decode_us_;
};
/// Fill `w` with the RGB payload framing shared by Raw and ByteImageCodec.
void write_rgb(util::ByteWriter& w, const render::Image& image) {
  w.u32(static_cast<std::uint32_t>(image.width()));
  w.u32(static_cast<std::uint32_t>(image.height()));
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x) {
      const auto* p = image.pixel(x, y);
      w.u8(p[0]);
      w.u8(p[1]);
      w.u8(p[2]);
    }
}

util::Bytes pack_rgb(const render::Image& image) {
  util::ByteWriter w(
      static_cast<std::size_t>(image.width()) * image.height() * 3 + 8);
  write_rgb(w, image);
  return w.take();
}

render::Image unpack_rgb(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  const int w = static_cast<int>(r.u32());
  const int h = static_cast<int>(r.u32());
  if (w < 0 || h < 0 || r.remaining() < static_cast<std::size_t>(w) * h * 3)
    throw std::runtime_error("image: truncated RGB payload");
  render::Image image(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const std::uint8_t red = r.u8(), green = r.u8(), blue = r.u8();
      image.set(x, y, red, green, blue, 255);
    }
  return image;
}
}  // namespace

util::SharedBytes ImageCodec::encode_shared(const render::Image& image,
                                            util::BufferPool& /*pool*/) const {
  // Adopt the codec's own output vector: one allocation, zero copies.
  return util::SharedBytes(encode(image));
}

util::Bytes RawImageCodec::encode(const render::Image& image) const {
  return pack_rgb(image);
}

util::SharedBytes RawImageCodec::encode_shared(const render::Image& image,
                                               util::BufferPool& pool) const {
  // Raw RGB has a known exact size, so the frame can be built directly in a
  // pool-drawn buffer and recycled when the last consumer drops it.
  const std::size_t exact =
      8 + static_cast<std::size_t>(image.width()) * image.height() * 3;
  util::ByteWriter w(pool.acquire(exact));
  write_rgb(w, image);
  return util::SharedBytes::adopt_pooled(w.take(), pool);
}

render::Image RawImageCodec::decode(std::span<const std::uint8_t> data) const {
  return unpack_rgb(data);
}

util::Bytes ByteImageCodec::encode(const render::Image& image) const {
  return bytes_->encode(pack_rgb(image));
}

render::Image ByteImageCodec::decode(std::span<const std::uint8_t> data) const {
  return unpack_rgb(bytes_->decode(data));
}

std::shared_ptr<const ImageCodec> make_image_codec(const std::string& name,
                                                   int quality) {
  std::shared_ptr<const ImageCodec> codec;
  if (name == "raw") {
    codec = std::make_shared<RawImageCodec>();
  } else if (name == "rle") {
    codec = std::make_shared<ByteImageCodec>(std::make_shared<RleCodec>());
  } else if (name == "lzo") {
    codec = std::make_shared<ByteImageCodec>(std::make_shared<LzCodec>());
  } else if (name == "bzip") {
    codec = std::make_shared<ByteImageCodec>(std::make_shared<BwtCodec>());
  } else if (name == "jpeg") {
    codec = std::make_shared<JpegCodec>(quality);
  } else if (name == "jpeg+lzo") {
    codec = std::make_shared<ChainImageCodec>(
        std::make_shared<JpegCodec>(quality), std::make_shared<LzCodec>());
  } else if (name == "jpeg+bzip") {
    codec = std::make_shared<ChainImageCodec>(
        std::make_shared<JpegCodec>(quality), std::make_shared<BwtCodec>());
  } else {
    throw std::invalid_argument("make_image_codec: unknown codec " + name);
  }
  return std::make_shared<InstrumentedImageCodec>(std::move(codec));
}

const std::vector<std::string>& table1_codec_names() {
  static const std::vector<std::string> names = {
      "raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip"};
  return names;
}

}  // namespace tvviz::codec
