#include "codec/byte_codec.hpp"

#include <stdexcept>

namespace tvviz::codec {

// PackBits framing: control byte c
//   c in [0, 127]   -> copy the next c+1 literal bytes
//   c in [129, 255] -> repeat the next byte 257-c times
//   c == 128        -> unused (reserved)
util::Bytes RleCodec::encode(std::span<const std::uint8_t> input) const {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);
  std::size_t i = 0;
  while (i < input.size()) {
    // Find run length of identical bytes starting at i.
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] && run < 128)
      ++run;
    if (run >= 3) {
      out.push_back(static_cast<std::uint8_t>(257 - run));
      out.push_back(input[i]);
      i += run;
      continue;
    }
    // Literal run: until the next >=3 repeat or 128 bytes.
    std::size_t lit_end = i + 1;
    while (lit_end < input.size() && lit_end - i < 128) {
      if (lit_end + 2 < input.size() && input[lit_end] == input[lit_end + 1] &&
          input[lit_end] == input[lit_end + 2])
        break;
      ++lit_end;
    }
    const std::size_t lit = lit_end - i;
    out.push_back(static_cast<std::uint8_t>(lit - 1));
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
               input.begin() + static_cast<std::ptrdiff_t>(lit_end));
    i = lit_end;
  }
  return out;
}

util::Bytes RleCodec::decode(std::span<const std::uint8_t> input) const {
  util::Bytes out;
  out.reserve(input.size() * 2);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t c = input[i++];
    if (c <= 127) {
      const std::size_t n = static_cast<std::size_t>(c) + 1;
      if (i + n > input.size())
        throw std::runtime_error("rle: truncated literal run");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                 input.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else if (c >= 129) {
      if (i >= input.size()) throw std::runtime_error("rle: truncated repeat");
      const std::size_t n = 257 - static_cast<std::size_t>(c);
      out.insert(out.end(), n, input[i++]);
    } else {
      throw std::runtime_error("rle: reserved control byte");
    }
  }
  return out;
}

}  // namespace tvviz::codec
