// MPEG-style motion-compensated video codec (§4.2): the paper considers
// MPEG and rejects it for the interactive setting — "each image is
// generated on the fly and to be displayed in real time ... the overhead
// would be too high to make both the encoding and decoding efficient in
// software". This implementation exists to quantify that trade-off
// (bench/ablation_mpeg): fewer bits per frame than independent JPEG, at a
// much higher encoding cost.
//
// Structure: GOP of one JPEG-coded I-frame followed by P-frames. P-frames
// predict each 16x16 luma macroblock (8x8 chroma) by a full-search motion
// vector into the previously *reconstructed* frame, then DCT-quantize and
// entropy-code the residual.
#pragma once

#include <memory>
#include <optional>

#include "codec/jpeg.hpp"
#include "render/image.hpp"

namespace tvviz::codec {

struct MotionCodecOptions {
  int quality = 75;        ///< Quantizer quality, I-frames and residuals.
  int gop = 12;            ///< I-frame interval.
  int search_range = 8;    ///< Motion search window (+/- pixels).
  int macroblock = 16;     ///< Luma macroblock edge (multiple of 8).
};

class MotionEncoder {
 public:
  explicit MotionEncoder(MotionCodecOptions options = {});

  /// Encode the next frame of the sequence. Frame sizes must stay constant
  /// within a GOP; a size change forces an I-frame.
  util::Bytes encode_frame(const render::Image& frame);

  /// Force the next frame to be an I-frame.
  void reset() noexcept { frames_since_i_ = -1; }

  const MotionCodecOptions& options() const noexcept { return options_; }

 private:
  MotionCodecOptions options_;
  JpegCodec intra_;
  const detail::QuantTables* tables_;  ///< Per-quality cache entry (borrowed).
  int frames_since_i_ = -1;  ///< -1 = no reference yet.
  std::optional<render::Image> reference_;  ///< Last reconstructed frame.
};

class MotionDecoder {
 public:
  explicit MotionDecoder(MotionCodecOptions options = {});

  /// Decode the next frame. Throws std::runtime_error on a P-frame without
  /// a reference.
  render::Image decode_frame(std::span<const std::uint8_t> data);

  void reset() noexcept { reference_.reset(); }

 private:
  MotionCodecOptions options_;
  JpegCodec intra_;
  const detail::QuantTables* tables_;  ///< Per-quality cache entry (borrowed).
  std::optional<render::Image> reference_;
};

}  // namespace tvviz::codec
