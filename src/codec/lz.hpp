// LZO-style byte-oriented LZ77: moderate compression, cheap encoding, very
// fast allocation-free decoding — the properties §4.2 selects LZO for.
//
// The encoder splits large inputs into independent blocks (own hash-chain
// dictionary each, matches never reach across a boundary) compressed in
// parallel on the shared codec::TilePool; the concatenated op streams form
// one ordinary stream, so the decoder is block-agnostic. Match lengths are
// measured with the util/simd.hpp kernel, which returns byte-loop-identical
// results on every ISA tier.
#pragma once

#include "codec/byte_codec.hpp"

namespace tvviz::codec {

class LzCodec final : public ByteCodec {
 public:
  /// `level` 1..9 trades encode speed for ratio (match-chain search depth),
  /// mirroring LZO's slower-but-tighter levels. Decode speed is unaffected.
  /// `blocks` pins the parallel block count; 0 = auto (one per pool worker,
  /// capped so blocks stay >= 128 KiB — tiny inputs stay single-block).
  /// Block splitting is a ratio/speed trade, not a format change.
  explicit LzCodec(int level = 5, int blocks = 0);

  std::string name() const override { return "lzo"; }
  int level() const noexcept { return level_; }
  int blocks() const noexcept { return blocks_; }

  util::Bytes encode(std::span<const std::uint8_t> input) const override;
  util::Bytes decode(std::span<const std::uint8_t> input) const override;

 private:
  int level_;
  int max_chain_;
  int blocks_;
};

}  // namespace tvviz::codec
