// LZO-style byte-oriented LZ77: moderate compression, cheap encoding, very
// fast allocation-free decoding — the properties §4.2 selects LZO for.
#pragma once

#include "codec/byte_codec.hpp"

namespace tvviz::codec {

class LzCodec final : public ByteCodec {
 public:
  /// `level` 1..9 trades encode speed for ratio (match-chain search depth),
  /// mirroring LZO's slower-but-tighter levels. Decode speed is unaffected.
  explicit LzCodec(int level = 5);

  std::string name() const override { return "lzo"; }
  int level() const noexcept { return level_; }

  util::Bytes encode(std::span<const std::uint8_t> input) const override;
  util::Bytes decode(std::span<const std::uint8_t> input) const override;

 private:
  int level_;
  int max_chain_;
};

}  // namespace tvviz::codec
