#include "codec/motion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "codec/jpeg_detail.hpp"
#include "codec/tile_pool.hpp"
#include "util/simd.hpp"

namespace tvviz::codec {

namespace jd = detail;

namespace {

constexpr std::uint8_t kIFrame = 0;
constexpr std::uint8_t kPFrame = 1;

struct MotionVector {
  int dx = 0, dy = 0;
};

int macroblocks_along(int extent, int mb) { return (extent + mb - 1) / mb; }

/// Sum of absolute differences between a cur macroblock at (x0, y0) and the
/// reference block displaced by (dx, dy); border samples clamp. Interior
/// blocks take the vectorized row kernel; the clamped fallback performs the
/// same accumulation sequence, so either path is ISA-independent.
double block_sad(const jd::Plane& cur, const jd::Plane& ref, int x0, int y0,
                 int mb, int dx, int dy, double bail_out) {
  const bool interior = x0 >= 0 && y0 >= 0 && x0 + mb <= cur.w &&
                        y0 + mb <= cur.h && x0 + dx >= 0 && y0 + dy >= 0 &&
                        x0 + mb + dx <= ref.w && y0 + mb + dy <= ref.h;
  double sad = 0.0;
  if (interior) {
    for (int y = 0; y < mb; ++y) {
      sad += util::simd::sad_f32(
          &cur.data[static_cast<std::size_t>(y0 + y) * cur.w + x0],
          &ref.data[static_cast<std::size_t>(y0 + y + dy) * ref.w + x0 + dx],
          static_cast<std::size_t>(mb));
      if (sad >= bail_out) return sad;  // early exit
    }
    return sad;
  }
  std::vector<float> a(static_cast<std::size_t>(mb)),
      b(static_cast<std::size_t>(mb));
  for (int y = 0; y < mb; ++y) {
    for (int x = 0; x < mb; ++x) {
      a[static_cast<std::size_t>(x)] = cur.at(x0 + x, y0 + y);
      b[static_cast<std::size_t>(x)] = ref.at(x0 + x + dx, y0 + y + dy);
    }
    sad += util::simd::sad_f32(a.data(), b.data(), static_cast<std::size_t>(mb));
    if (sad >= bail_out) return sad;  // early exit
  }
  return sad;
}

/// Full-search motion estimation for every luma macroblock.
std::vector<MotionVector> estimate_motion(const jd::Plane& cur,
                                          const jd::Plane& ref, int mb,
                                          int range) {
  const int mbx = macroblocks_along(cur.w, mb);
  const int mby = macroblocks_along(cur.h, mb);
  std::vector<MotionVector> mvs(static_cast<std::size_t>(mbx) * mby);
  // Each macroblock's search is independent; fan rows out on the TilePool.
  TilePool::global().run(static_cast<std::size_t>(mby), [&](std::size_t row) {
    const int j = static_cast<int>(row);
    for (int i = 0; i < mbx; ++i) {
      const int x0 = i * mb, y0 = j * mb;
      MotionVector best;
      // Zero displacement first: it is the common case and sets the bar.
      double best_sad = block_sad(cur, ref, x0, y0, mb, 0, 0, 1e300);
      for (int dy = -range; dy <= range; ++dy)
        for (int dx = -range; dx <= range; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const double sad = block_sad(cur, ref, x0, y0, mb, dx, dy, best_sad);
          if (sad < best_sad) {
            best_sad = sad;
            best = MotionVector{dx, dy};
          }
        }
      mvs[static_cast<std::size_t>(j) * mbx + i] = best;
    }
  });
  return mvs;
}

/// Motion-compensated prediction of a plane. `scale` halves the vectors for
/// the subsampled chroma planes; `mb` is the plane-local macroblock edge.
jd::Plane predict(const jd::Plane& ref, const std::vector<MotionVector>& mvs,
                  int mbx, int mb, int scale) {
  jd::Plane out;
  out.w = ref.w;
  out.h = ref.h;
  out.data.resize(static_cast<std::size_t>(ref.w) * ref.h);
  const int mby = macroblocks_along(ref.h, mb);
  for (int j = 0; j < mby; ++j)
    for (int i = 0; i < macroblocks_along(ref.w, mb); ++i) {
      const auto& mv = mvs[static_cast<std::size_t>(j) * mbx + i];
      const int dx = mv.dx / scale, dy = mv.dy / scale;
      for (int y = j * mb; y < std::min(ref.h, (j + 1) * mb); ++y)
        for (int x = i * mb; x < std::min(ref.w, (i + 1) * mb); ++x)
          out.data[static_cast<std::size_t>(y) * ref.w + x] =
              ref.at(x + dx, y + dy);
    }
  return out;
}

jd::Plane subtract(const jd::Plane& a, const jd::Plane& b) {
  jd::Plane out = a;
  util::simd::sub_f32(out.data.data(), a.data.data(), b.data.data(),
                      out.data.size());
  return out;
}

jd::Plane add(const jd::Plane& a, const jd::Plane& b) {
  jd::Plane out = a;
  util::simd::add_f32(out.data.data(), a.data.data(), b.data.data(),
                      out.data.size());
  return out;
}

/// Quantize + entropy-code three residual planes into `out`.
void encode_residual(util::ByteWriter& out, const jd::Planes& residual,
                     const jd::QuantTables& tables) {
  const jd::Plane* planes[3] = {&residual.y, &residual.cb, &residual.cr};
  const float* quants[3] = {tables.luma_nat, tables.chroma_nat,
                            tables.chroma_nat};
  jd::SymbolStream streams[3];
  std::vector<std::uint64_t> dc_freq, ac_freq;
  for (int c = 0; c < 3; ++c) {
    const auto blocks = jd::quantize_plane_fast(*planes[c], quants[c]);
    streams[c] = jd::tokenize(blocks);
    jd::accumulate_frequencies(streams[c], dc_freq, ac_freq);
  }
  if (std::all_of(dc_freq.begin(), dc_freq.end(), [](auto v) { return v == 0; }))
    dc_freq[0] = 1;
  if (std::all_of(ac_freq.begin(), ac_freq.end(), [](auto v) { return v == 0; }))
    ac_freq[0] = 1;
  const HuffmanCode dc = HuffmanCode::from_frequencies(dc_freq);
  const HuffmanCode ac = HuffmanCode::from_frequencies(ac_freq);
  util::BitWriter bits;
  for (const auto& s : streams) jd::emit_stream(bits, s, dc, ac);
  const util::Bytes payload = bits.finish();
  dc.write_lengths(out);
  ac.write_lengths(out);
  out.varint(payload.size());
  out.raw(payload);
}

/// Inverse of encode_residual; plane dims supplied by the caller.
jd::Planes decode_residual(util::ByteReader& in, const int plane_w[3],
                           const int plane_h[3],
                           const jd::QuantTables& tables) {
  const std::uint16_t* quants[3] = {tables.luma_zz, tables.chroma_zz,
                                    tables.chroma_zz};
  const HuffmanCode dc = HuffmanCode::read_lengths(in);
  const HuffmanCode ac = HuffmanCode::read_lengths(in);
  const std::size_t payload_len = in.varint();
  util::BitReader bits(in.raw(payload_len));
  jd::Planes planes;
  jd::Plane* outs[3] = {&planes.y, &planes.cb, &planes.cr};
  for (int c = 0; c < 3; ++c) {
    const auto blocks = jd::decode_blocks(
        bits, jd::block_count(plane_w[c], plane_h[c]), dc, ac);
    *outs[c] = jd::dequantize_plane(blocks, plane_w[c], plane_h[c], quants[c]);
  }
  return planes;
}

}  // namespace

MotionEncoder::MotionEncoder(MotionCodecOptions options)
    : options_(options),
      intra_(options.quality, true),
      tables_(&jd::quant_tables_for(options.quality)) {
  if (options.macroblock % 8 != 0 || options.macroblock < 8)
    throw std::invalid_argument("MotionEncoder: macroblock must be 8k");
  if (options.gop < 1) throw std::invalid_argument("MotionEncoder: gop");
  if (options.search_range < 0 || options.search_range > 127)
    throw std::invalid_argument("MotionEncoder: search range");
}

util::Bytes MotionEncoder::encode_frame(const render::Image& frame) {
  const bool need_i = frames_since_i_ < 0 ||
                      frames_since_i_ + 1 >= options_.gop || !reference_ ||
                      reference_->width() != frame.width() ||
                      reference_->height() != frame.height();
  util::ByteWriter out;
  if (need_i) {
    const util::Bytes intra = intra_.encode(frame);
    out.u8(kIFrame);
    out.varint(intra.size());
    out.raw(intra);
    // Decoder-side reconstruction becomes the reference (no drift).
    reference_ = intra_.decode(intra);
    frames_since_i_ = 0;
    return out.take();
  }
  ++frames_since_i_;

  const jd::Planes cur = jd::to_planes(frame, true);
  const jd::Planes ref = jd::to_planes(*reference_, true);
  const int mb = options_.macroblock;
  const auto mvs = estimate_motion(cur.y, ref.y, mb, options_.search_range);
  const int mbx = macroblocks_along(cur.y.w, mb);

  jd::Planes prediction;
  prediction.y = predict(ref.y, mvs, mbx, mb, 1);
  prediction.cb = predict(ref.cb, mvs, mbx, mb / 2, 2);
  prediction.cr = predict(ref.cr, mvs, mbx, mb / 2, 2);

  jd::Planes residual;
  residual.y = subtract(cur.y, prediction.y);
  residual.cb = subtract(cur.cb, prediction.cb);
  residual.cr = subtract(cur.cr, prediction.cr);

  out.u8(kPFrame);
  out.u32(static_cast<std::uint32_t>(frame.width()));
  out.u32(static_cast<std::uint32_t>(frame.height()));
  for (const auto& mv : mvs) {
    out.u8(static_cast<std::uint8_t>(mv.dx + 128));
    out.u8(static_cast<std::uint8_t>(mv.dy + 128));
  }
  encode_residual(out, residual, *tables_);

  // Reconstruct exactly as the decoder will, from quantized residuals.
  util::Bytes packed = out.take();
  {
    util::ByteReader in(packed);
    (void)in.u8();
    (void)in.u32();
    (void)in.u32();
    for (std::size_t i = 0; i < mvs.size(); ++i) {
      (void)in.u8();
      (void)in.u8();
    }
    const int plane_w[3] = {cur.y.w, cur.cb.w, cur.cr.w};
    const int plane_h[3] = {cur.y.h, cur.cb.h, cur.cr.h};
    const jd::Planes dq = decode_residual(in, plane_w, plane_h, *tables_);
    jd::Planes recon;
    recon.y = add(prediction.y, dq.y);
    recon.cb = add(prediction.cb, dq.cb);
    recon.cr = add(prediction.cr, dq.cr);
    reference_ = jd::from_planes(recon, true);
  }
  return packed;
}

MotionDecoder::MotionDecoder(MotionCodecOptions options)
    : options_(options),
      intra_(options.quality, true),
      tables_(&jd::quant_tables_for(options.quality)) {}

render::Image MotionDecoder::decode_frame(std::span<const std::uint8_t> data) {
  util::ByteReader in(data);
  const std::uint8_t type = in.u8();
  if (type == kIFrame) {
    const std::size_t len = in.varint();
    render::Image frame = intra_.decode(in.raw(len));
    reference_ = frame;
    return frame;
  }
  if (type != kPFrame) throw std::runtime_error("motion: unknown frame type");
  if (!reference_) throw std::runtime_error("motion: P-frame without reference");

  const int w = static_cast<int>(in.u32());
  const int h = static_cast<int>(in.u32());
  if (reference_->width() != w || reference_->height() != h)
    throw std::runtime_error("motion: reference size mismatch");

  const int mb = options_.macroblock;
  const int mbx = macroblocks_along(w, mb);
  const int mby = macroblocks_along(h, mb);
  std::vector<MotionVector> mvs(static_cast<std::size_t>(mbx) * mby);
  for (auto& mv : mvs) {
    mv.dx = static_cast<int>(in.u8()) - 128;
    mv.dy = static_cast<int>(in.u8()) - 128;
  }

  const jd::Planes ref = jd::to_planes(*reference_, true);
  jd::Planes prediction;
  prediction.y = predict(ref.y, mvs, mbx, mb, 1);
  prediction.cb = predict(ref.cb, mvs, mbx, mb / 2, 2);
  prediction.cr = predict(ref.cr, mvs, mbx, mb / 2, 2);

  const int plane_w[3] = {ref.y.w, ref.cb.w, ref.cr.w};
  const int plane_h[3] = {ref.y.h, ref.cb.h, ref.cr.h};
  const jd::Planes residual = decode_residual(in, plane_w, plane_h, *tables_);

  jd::Planes recon;
  recon.y = add(prediction.y, residual.y);
  recon.cb = add(prediction.cb, residual.cb);
  recon.cr = add(prediction.cr, residual.cr);
  render::Image frame = jd::from_planes(recon, true);
  reference_ = frame;
  return frame;
}

}  // namespace tvviz::codec
