#include "codec/depth_plane.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "codec/lz.hpp"
#include "util/simd.hpp"

namespace tvviz::codec {

namespace {

constexpr std::uint32_t kMagic = 0x5a504c31;  // "ZPL1"
/// Quantized value reserved for background (kEmpty) pixels.
constexpr std::uint16_t kEmptyQ = 0xffff;
constexpr double kQMax = 65534.0;

struct Range {
  float near = 0.0f, far = 0.0f;
  bool any = false;
};

Range finite_range(const render::DepthImage& depth) {
  Range r;
  for (const float d : depth.plane()) {
    if (!(d < render::DepthImage::kEmpty)) continue;
    if (!r.any) {
      r.near = r.far = d;
      r.any = true;
    } else {
      r.near = std::min(r.near, d);
      r.far = std::max(r.far, d);
    }
  }
  return r;
}

}  // namespace

double depth_plane_max_error(const render::DepthImage& depth) {
  const Range r = finite_range(depth);
  if (!r.any) return 0.0;
  return (static_cast<double>(r.far) - r.near) / kQMax * 0.5;
}

util::Bytes encode_depth_plane(const render::DepthImage& depth) {
  const int w = depth.width(), h = depth.height();
  const Range range = finite_range(depth);
  const double span = static_cast<double>(range.far) - range.near;
  const double scale = span > 0.0 ? kQMax / span : 0.0;

  // Quantize to a little-endian u16 plane (sentinel for background).
  util::Bytes plane(static_cast<std::size_t>(w) * h * 2);
  std::size_t i = 0;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x, i += 2) {
      const float d = depth.at(x, y);
      std::uint16_t q = kEmptyQ;
      if (d < render::DepthImage::kEmpty)
        q = static_cast<std::uint16_t>(
            std::lround((static_cast<double>(d) - range.near) * scale));
      plane[i] = static_cast<std::uint8_t>(q & 0xff);
      plane[i + 1] = static_cast<std::uint8_t>(q >> 8);
    }

  // Row-delta filter, bottom row first so each row subtracts the still-
  // unmodified row above it (the SIMD byte-subtract wraps mod 256, exactly
  // inverted by add_u8 on decode).
  const std::size_t stride = static_cast<std::size_t>(w) * 2;
  for (int y = h - 1; y >= 1; --y)
    util::simd::sub_u8(plane.data() + y * stride, plane.data() + y * stride,
                       plane.data() + (y - 1) * stride, stride);

  const util::Bytes packed = LzCodec().encode(plane);
  util::ByteWriter out(24 + packed.size());
  out.u32(kMagic);
  out.u32(static_cast<std::uint32_t>(w));
  out.u32(static_cast<std::uint32_t>(h));
  out.f32(range.near);
  out.f32(range.far);
  out.varint(packed.size());
  out.raw(packed);
  return out.take();
}

render::DepthImage decode_depth_plane(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    if (r.u32() != kMagic)
      throw std::runtime_error("depth plane: bad magic");
    const int w = static_cast<int>(r.u32());
    const int h = static_cast<int>(r.u32());
    const float near = r.f32();
    const float far = r.f32();
    const std::size_t packed_len = r.varint();
    util::Bytes plane = LzCodec().decode(r.raw(packed_len));
    const std::size_t expect = static_cast<std::size_t>(w) * h * 2;
    if (plane.size() != expect)
      throw std::runtime_error("depth plane: size mismatch");

    // Undo the row-delta filter top-down (each row adds the already-
    // reconstructed row above).
    const std::size_t stride = static_cast<std::size_t>(w) * 2;
    for (int y = 1; y < h; ++y)
      util::simd::add_u8(plane.data() + y * stride, plane.data() + y * stride,
                         plane.data() + (y - 1) * stride, stride);

    render::DepthImage depth(w, h);
    const double span = static_cast<double>(far) - near;
    std::size_t i = 0;
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x, i += 2) {
        const std::uint16_t q = static_cast<std::uint16_t>(
            plane[i] | (static_cast<std::uint16_t>(plane[i + 1]) << 8));
        if (q == kEmptyQ) continue;  // stays kEmpty
        depth.set(x, y,
                  static_cast<float>(near + q / kQMax * span));
      }
    return depth;
  } catch (const std::out_of_range&) {
    throw std::runtime_error("depth plane: truncated stream");
  }
}

}  // namespace tvviz::codec
