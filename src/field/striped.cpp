#include "field/striped.hpp"

#include <fstream>
#include <stdexcept>

namespace tvviz::field {

namespace {
constexpr std::uint32_t kMagic = 0x54565332;  // "2SVT"

struct StripeHeader {
  std::uint32_t magic;
  std::uint32_t nx, ny, nz;
  std::uint32_t slab;
  std::uint32_t units;
};
static_assert(sizeof(StripeHeader) == 24);
}  // namespace

StripedVolumeStore::StripedVolumeStore(std::filesystem::path dir, int stripes,
                                       int slab_height)
    : dir_(std::move(dir)), slab_(slab_height) {
  if (stripes < 1) throw std::invalid_argument("StripedVolumeStore: stripes");
  if (slab_height < 1)
    throw std::invalid_argument("StripedVolumeStore: slab height");
  for (int k = 0; k < stripes; ++k) {
    stores_.push_back(dir_ / ("stripe_" + std::to_string(k)));
    std::filesystem::create_directories(stores_.back());
  }
}

std::filesystem::path StripedVolumeStore::path_for(int stripe, int step) const {
  return stores_[static_cast<std::size_t>(stripe)] /
         ("step_" + std::to_string(step) + ".slabs");
}

bool StripedVolumeStore::has(int step) const {
  return std::filesystem::exists(path_for(0, step));
}

void StripedVolumeStore::write(int step, const VolumeF& volume) {
  const Dims dims = volume.dims();
  const int unit_count = (dims.nz + slab_ - 1) / slab_;
  // Stripe 0 is written (renamed into place) last: has(step) checks stripe
  // 0, so a polling reader never sees a partially-striped step.
  for (int kk = stripes(); kk-- > 0;) {
    const int k = kk;
    std::vector<int> units;
    for (int u = 0; u < unit_count; ++u)
      if (u % stripes() == k) units.push_back(u);

    const auto final_path = path_for(k, step);
    const auto tmp_path = final_path.string() + ".tmp";
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("StripedVolumeStore: open for write");
    const StripeHeader h{kMagic, static_cast<std::uint32_t>(dims.nx),
                         static_cast<std::uint32_t>(dims.ny),
                         static_cast<std::uint32_t>(dims.nz),
                         static_cast<std::uint32_t>(slab_),
                         static_cast<std::uint32_t>(units.size())};
    out.write(reinterpret_cast<const char*>(&h), sizeof h);
    for (int u : units) {
      const int z0 = u * slab_;
      const int z1 = std::min(dims.nz, z0 + slab_);
      const std::uint32_t z0u = static_cast<std::uint32_t>(z0);
      out.write(reinterpret_cast<const char*>(&z0u), sizeof z0u);
      // Rows are contiguous in the x-fastest layout: write the slab span.
      const std::size_t offset =
          static_cast<std::size_t>(z0) * dims.ny * dims.nx;
      const std::size_t count =
          static_cast<std::size_t>(z1 - z0) * dims.ny * dims.nx;
      out.write(reinterpret_cast<const char*>(volume.data().data() + offset),
                static_cast<std::streamsize>(count * sizeof(float)));
    }
    if (!out) throw std::runtime_error("StripedVolumeStore: write failed");
    out.close();
    std::filesystem::rename(tmp_path, final_path);
  }
}

Dims StripedVolumeStore::read_dims(int step) const {
  std::ifstream in(path_for(0, step), std::ios::binary);
  if (!in)
    throw std::runtime_error("StripedVolumeStore: missing step " +
                             std::to_string(step));
  StripeHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in || h.magic != kMagic)
    throw std::runtime_error("StripedVolumeStore: bad stripe header");
  return Dims{static_cast<int>(h.nx), static_cast<int>(h.ny),
              static_cast<int>(h.nz)};
}

VolumeF StripedVolumeStore::read(int step) const {
  const Dims dims = read_dims(step);
  Box whole;
  whole.hi[0] = dims.nx;
  whole.hi[1] = dims.ny;
  whole.hi[2] = dims.nz;
  return read_box(step, whole);
}

VolumeF StripedVolumeStore::read_box(int step, const Box& box) const {
  const Dims dims = read_dims(step);
  if (box.hi[0] > dims.nx || box.hi[1] > dims.ny || box.hi[2] > dims.nz ||
      box.lo[0] < 0 || box.lo[1] < 0 || box.lo[2] < 0)
    throw std::out_of_range("StripedVolumeStore: box outside volume");

  VolumeF out(box.dims());
  std::vector<float> slab_buf;
  std::size_t units_seen = 0;
  std::size_t expected_units = 0;
  for (int k = 0; k < stripes(); ++k) {
    std::ifstream in(path_for(k, step), std::ios::binary);
    if (!in) throw std::runtime_error("StripedVolumeStore: missing stripe");
    StripeHeader h{};
    in.read(reinterpret_cast<char*>(&h), sizeof h);
    if (!in || h.magic != kMagic)
      throw std::runtime_error("StripedVolumeStore: bad stripe header");
    const std::size_t plane =
        static_cast<std::size_t>(dims.nx) * static_cast<std::size_t>(dims.ny);
    // Honour the slab height the file was written with (it may differ from
    // this reader's configuration).
    const int file_slab = static_cast<int>(h.slab);
    units_seen += h.units;
    expected_units = static_cast<std::size_t>(
        (dims.nz + file_slab - 1) / file_slab);
    for (std::uint32_t u = 0; u < h.units; ++u) {
      std::uint32_t z0u = 0;
      in.read(reinterpret_cast<char*>(&z0u), sizeof z0u);
      if (!in) throw std::runtime_error("StripedVolumeStore: truncated unit");
      const int z0 = static_cast<int>(z0u);
      const int z1 = std::min(dims.nz, z0 + file_slab);
      const std::size_t count = static_cast<std::size_t>(z1 - z0) * plane;
      if (z1 <= box.lo[2] || z0 >= box.hi[2]) {
        in.seekg(static_cast<std::streamoff>(count * sizeof(float)),
                 std::ios::cur);
        continue;
      }
      slab_buf.resize(count);
      in.read(reinterpret_cast<char*>(slab_buf.data()),
              static_cast<std::streamsize>(count * sizeof(float)));
      if (!in) throw std::runtime_error("StripedVolumeStore: truncated slab");
      for (int z = std::max(z0, box.lo[2]); z < std::min(z1, box.hi[2]); ++z)
        for (int y = box.lo[1]; y < box.hi[1]; ++y)
          for (int x = box.lo[0]; x < box.hi[0]; ++x)
            out.at(x - box.lo[0], y - box.lo[1], z - box.lo[2]) =
                slab_buf[static_cast<std::size_t>(z - z0) * plane +
                         static_cast<std::size_t>(y) * dims.nx +
                         static_cast<std::size_t>(x)];
    }
  }
  // A reader configured with fewer stripes than the writer would silently
  // miss slabs; the unit count exposes that.
  if (units_seen != expected_units)
    throw std::runtime_error(
        "StripedVolumeStore: stripe count mismatch with the written data");
  return out;
}

std::size_t StripedVolumeStore::materialize(const DatasetDesc& desc) {
  std::size_t total = 0;
  for (int step = 0; step < desc.steps; ++step) {
    const VolumeF vol = generate(desc, step);
    write(step, vol);
    total += vol.bytes();
  }
  return total;
}

}  // namespace tvviz::field
