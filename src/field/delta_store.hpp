// Differential time-step storage (§2.1: Shen & Johnson's differential
// volume rendering "reduce[d] not only the rendering time but also the
// storage space by 90%"). Steps are stored as LZ-compressed deltas against
// the previous step, with periodic key frames; temporal coherence in the
// simulation makes the deltas cheap. This attacks the paper's data-input
// bottleneck from the storage side: less disk space AND fewer bytes through
// the shared sequential input channel.
#pragma once

#include <filesystem>
#include <optional>

#include "codec/lz.hpp"
#include "field/generators.hpp"
#include "field/volume.hpp"

namespace tvviz::field {

class DeltaVolumeStore {
 public:
  enum class Precision {
    kFloat32,     ///< Bit-exact round trip.
    kQuantized8,  ///< 8-bit quantized [0,1] values: visually lossless for
                  ///< rendering, 4x smaller before compression, and far
                  ///< better delta compression (§2.1's 90% regime).
  };

  /// `key_interval` steps between self-contained key frames; smaller means
  /// cheaper random access, larger means better compression.
  DeltaVolumeStore(std::filesystem::path dir, int key_interval = 16,
                   int lz_level = 5,
                   Precision precision = Precision::kFloat32);

  /// Write step `step`. Sequential writes produce deltas; a write without
  /// its immediate predecessor (first write, out-of-order, size change)
  /// becomes a key frame regardless of position.
  void write(int step, const VolumeF& volume);

  /// Read a step, reconstructing through the delta chain from the nearest
  /// key frame at or before it. Sequential reads are cached: reading steps
  /// in ascending order costs one delta application each.
  VolumeF read(int step);

  bool has(int step) const;
  int key_interval() const noexcept { return key_interval_; }

  /// Total bytes on disk for steps [0, count).
  std::size_t stored_bytes(int count) const;

  /// Materialize a dataset; returns (raw bytes, stored bytes).
  std::pair<std::size_t, std::size_t> materialize(const DatasetDesc& desc);

 private:
  std::filesystem::path path_for(int step) const;
  bool is_key(int step) const { return step % key_interval_ == 0; }

  std::filesystem::path dir_;
  int key_interval_;
  codec::LzCodec lz_;
  Precision precision_;
  // Write-side chain state.
  std::optional<VolumeF> last_written_;
  int last_written_step_ = -1;
  // Read-side cache.
  std::optional<VolumeF> cached_;
  int cached_step_ = -1;
};

}  // namespace tvviz::field
