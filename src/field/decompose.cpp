#include "field/decompose.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvviz::field {

std::vector<std::pair<int, int>> split_1d(int n, int parts) {
  if (parts <= 0) throw std::invalid_argument("split_1d: parts must be > 0");
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(parts));
  const int base = n / parts;
  const int extra = n % parts;
  int begin = 0;
  for (int i = 0; i < parts; ++i) {
    const int len = base + (i < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

std::vector<Box> decompose_slabs(const Dims& dims, int parts, int axis) {
  if (axis < 0 || axis > 2) throw std::invalid_argument("decompose_slabs: axis");
  const int extent = axis == 0 ? dims.nx : axis == 1 ? dims.ny : dims.nz;
  const auto ranges = split_1d(extent, parts);
  std::vector<Box> boxes;
  boxes.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    Box b;
    b.hi[0] = dims.nx;
    b.hi[1] = dims.ny;
    b.hi[2] = dims.nz;
    b.lo[axis] = lo;
    b.hi[axis] = hi;
    boxes.push_back(b);
  }
  return boxes;
}

std::vector<Box> decompose_slabs_weighted(const Dims& dims, int parts,
                                          int axis,
                                          std::span<const double> weights) {
  if (axis < 0 || axis > 2)
    throw std::invalid_argument("decompose_slabs_weighted: axis");
  const int extent = axis == 0 ? dims.nx : axis == 1 ? dims.ny : dims.nz;
  if (static_cast<int>(weights.size()) != extent)
    throw std::invalid_argument(
        "decompose_slabs_weighted: weights length != axis extent");
  if (parts <= 0 || parts > extent)
    throw std::invalid_argument("decompose_slabs_weighted: bad parts");

  // Equal-weight boundaries by prefix sums, with a one-plane minimum per
  // slab (a floor weight keeps degenerate all-zero regions splittable).
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  const double floor_w = total > 0.0 ? total * 1e-6 + 1e-12 : 1.0;
  std::vector<double> prefix(static_cast<std::size_t>(extent) + 1, 0.0);
  for (int k = 0; k < extent; ++k)
    prefix[static_cast<std::size_t>(k) + 1] =
        prefix[static_cast<std::size_t>(k)] +
        std::max(weights[static_cast<std::size_t>(k)], 0.0) + floor_w;
  const double grand = prefix.back();

  std::vector<Box> boxes;
  boxes.reserve(static_cast<std::size_t>(parts));
  int begin = 0;
  for (int part = 0; part < parts; ++part) {
    int end;
    if (part == parts - 1) {
      end = extent;
    } else {
      const double target = grand * (part + 1) / parts;
      const auto it =
          std::lower_bound(prefix.begin(), prefix.end(), target);
      end = static_cast<int>(it - prefix.begin());
      // Leave enough planes for the remaining slabs, and advance at least
      // one plane past the previous boundary.
      end = std::clamp(end, begin + 1, extent - (parts - 1 - part));
    }
    Box b;
    b.hi[0] = dims.nx;
    b.hi[1] = dims.ny;
    b.hi[2] = dims.nz;
    b.lo[axis] = begin;
    b.hi[axis] = end;
    boxes.push_back(b);
    begin = end;
  }
  return boxes;
}

namespace {
void bisect(const Box& box, int parts, std::vector<Box>& out) {
  if (parts == 1) {
    out.push_back(box);
    return;
  }
  const Dims d = box.dims();
  const int extents[3] = {d.nx, d.ny, d.nz};
  const int axis = static_cast<int>(
      std::max_element(extents, extents + 3) - extents);
  // Split voxels proportionally to the two halves' processor shares.
  const int left_parts = parts / 2;
  const int right_parts = parts - left_parts;
  const int extent = extents[axis];
  int cut = box.lo[axis] +
            static_cast<int>(static_cast<long long>(extent) * left_parts / parts);
  cut = std::clamp(cut, box.lo[axis] + 1, box.hi[axis] - 1);
  Box left = box, right = box;
  left.hi[axis] = cut;
  right.lo[axis] = cut;
  bisect(left, left_parts, out);
  bisect(right, right_parts, out);
}
}  // namespace

std::vector<Box> decompose_blocks(const Dims& dims, int parts) {
  if (parts <= 0)
    throw std::invalid_argument("decompose_blocks: parts must be > 0");
  if (static_cast<std::size_t>(parts) > dims.voxels())
    throw std::invalid_argument("decompose_blocks: more parts than voxels");
  Box whole;
  whole.hi[0] = dims.nx;
  whole.hi[1] = dims.ny;
  whole.hi[2] = dims.nz;
  std::vector<Box> out;
  out.reserve(static_cast<std::size_t>(parts));
  bisect(whole, parts, out);
  return out;
}

Box with_ghost(const Box& box, const Dims& dims, int ghost) {
  Box g = box;
  const int extents[3] = {dims.nx, dims.ny, dims.nz};
  for (int axis = 0; axis < 3; ++axis) {
    g.lo[axis] = std::max(0, box.lo[axis] - ghost);
    g.hi[axis] = std::min(extents[axis], box.hi[axis] + ghost);
  }
  return g;
}

}  // namespace tvviz::field
