#include "field/noise.hpp"

#include <cmath>

namespace tvviz::field {

double lattice_hash(int x, int y, int z, std::uint64_t seed) noexcept {
  // splitmix64-style avalanche over the packed coordinates.
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) * 0xd6e8feb86659fd93ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(z)) * 0xa0761d6478bd642fULL;
  h ^= h >> 31;
  h *= 0x2545f4914f6cdd1dULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

namespace {
constexpr double smooth(double t) noexcept { return t * t * (3.0 - 2.0 * t); }
}  // namespace

double value_noise(double x, double y, double z, std::uint64_t seed) noexcept {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const int z0 = static_cast<int>(std::floor(z));
  const double fx = smooth(x - x0);
  const double fy = smooth(y - y0);
  const double fz = smooth(z - z0);

  double c[2][2][2];
  for (int dz = 0; dz <= 1; ++dz)
    for (int dy = 0; dy <= 1; ++dy)
      for (int dx = 0; dx <= 1; ++dx)
        c[dz][dy][dx] = lattice_hash(x0 + dx, y0 + dy, z0 + dz, seed);

  const double x00 = c[0][0][0] + (c[0][0][1] - c[0][0][0]) * fx;
  const double x01 = c[0][1][0] + (c[0][1][1] - c[0][1][0]) * fx;
  const double x10 = c[1][0][0] + (c[1][0][1] - c[1][0][0]) * fx;
  const double x11 = c[1][1][0] + (c[1][1][1] - c[1][1][0]) * fx;
  const double y0v = x00 + (x01 - x00) * fy;
  const double y1v = x10 + (x11 - x10) * fy;
  return y0v + (y1v - y0v) * fz;
}

double fbm(double x, double y, double z, int octaves,
           std::uint64_t seed) noexcept {
  double sum = 0.0;
  double amplitude = 0.5;
  double total = 0.0;
  double fx = x, fy = y, fz = z;
  for (int o = 0; o < octaves; ++o) {
    sum += amplitude * value_noise(fx, fy, fz, seed + static_cast<std::uint64_t>(o));
    total += amplitude;
    amplitude *= 0.5;
    fx *= 2.0;
    fy *= 2.0;
    fz *= 2.0;
  }
  return total > 0.0 ? sum / total : 0.0;
}

}  // namespace tvviz::field
