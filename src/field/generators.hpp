// Procedural time-varying scalar fields standing in for the paper's three
// CFD datasets. Each generator is deterministic in (dims, step, steps, seed)
// and is parameterized to reproduce the dataset property the paper's
// experiments depend on:
//   * turbulent jet   — sparse pixel coverage (compresses very well)
//   * turbulent vortex— dense coverage (compresses worse; transport-bound)
//   * shock / mixing  — much larger volume (render-bound)
#pragma once

#include <cstdint>
#include <string>

#include "field/volume.hpp"

namespace tvviz::field {

enum class DatasetKind { kTurbulentJet, kTurbulentVortex, kShockMixing };

const char* dataset_name(DatasetKind kind) noexcept;

/// Description of a time-varying dataset: the paper's three presets plus
/// arbitrary custom configurations.
struct DatasetDesc {
  DatasetKind kind = DatasetKind::kTurbulentJet;
  Dims dims;
  int steps = 1;
  std::uint64_t seed = 1;

  std::size_t bytes_per_step() const noexcept {
    return dims.voxels() * sizeof(float);
  }
  std::size_t total_bytes() const noexcept {
    return bytes_per_step() * static_cast<std::size_t>(steps);
  }
};

/// Paper presets at full resolution (44 GB mixing set included — callers
/// normally scale these down with `scaled`).
DatasetDesc turbulent_jet_desc();    ///< 129 x 129 x 104, 150 steps
DatasetDesc turbulent_vortex_desc(); ///< 128^3, 100 steps
DatasetDesc shock_mixing_desc();     ///< 640 x 256 x 256, 265 steps

/// Shrink a dataset description by `factor` along every axis (>= 1) and cap
/// the number of time steps; preserves the dataset's character.
DatasetDesc scaled(DatasetDesc desc, int factor, int max_steps);

/// Generate time step `step` (0-based, of `desc.steps`) of the dataset.
/// Values are normalized to [0, 1].
VolumeF generate(const DatasetDesc& desc, int step);

/// Generate only `box` of time step `step` — what one render node holds.
/// at(i,j,k) of the result equals the global voxel at box.lo + (i,j,k).
VolumeF generate_box(const DatasetDesc& desc, int step, const Box& box);

}  // namespace tvviz::field
