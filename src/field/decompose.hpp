// Domain decomposition: split a volume among the processors of a render
// group. Slabs along one axis for small groups; recursive bisection blocks
// (kd-split along the longest axis) for larger ones, as parallel ray casters
// with binary-swap compositing use.
#pragma once

#include <span>
#include <vector>

#include "field/volume.hpp"

namespace tvviz::field {

/// Split [0, n) into `parts` contiguous ranges differing by at most one.
std::vector<std::pair<int, int>> split_1d(int n, int parts);

/// Slab decomposition along `axis` (0=x, 1=y, 2=z) into `parts` boxes.
std::vector<Box> decompose_slabs(const Dims& dims, int parts, int axis = 2);

/// Load-balanced slab decomposition: `weights[k]` is the estimated render
/// work of plane k along `axis` (length = that axis' extent). Boundaries
/// are placed so every slab carries roughly equal total weight — the
/// counterweight to the render-imbalance term of the performance model.
/// Every slab keeps at least one plane.
std::vector<Box> decompose_slabs_weighted(const Dims& dims, int parts,
                                          int axis,
                                          std::span<const double> weights);

/// Recursive-bisection block decomposition into exactly `parts` boxes,
/// splitting the longest axis at each level and balancing voxel counts.
std::vector<Box> decompose_blocks(const Dims& dims, int parts);

/// Grow `box` by `ghost` voxels on every side, clipped to `dims`.
Box with_ghost(const Box& box, const Dims& dims, int ghost);

}  // namespace tvviz::field
