// On-disk time-step store (the mass-storage device of the paper's scenario)
// plus an analytic disk model for the data-input pipeline stage.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "field/generators.hpp"
#include "field/volume.hpp"

namespace tvviz::field {

/// Sequential-disk cost model: the time to read `bytes` contiguous bytes.
/// Defaults approximate a late-1990s workstation disk over NFS/fast LAN,
/// the paper's "no parallel I/O" environment.
struct DiskModel {
  double seek_seconds = 0.012;        ///< Per-request positioning cost.
  double bandwidth_bytes_per_s = 25e6;  ///< Sustained sequential bandwidth.

  double read_seconds(std::size_t bytes) const noexcept {
    return seek_seconds + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Writes and reads time-step volumes as raw little-endian f32 files with a
/// small header, one file per step: <dir>/step_<k>.vol
class VolumeStore {
 public:
  explicit VolumeStore(std::filesystem::path dir);

  /// Persist one time step. Overwrites any existing file for `step`.
  void write(int step, const VolumeF& volume) const;

  /// Load a whole time step. Throws std::runtime_error on missing/corrupt file.
  VolumeF read(int step) const;

  /// Load only `box` of a time step (reads just the needed scanlines).
  VolumeF read_box(int step, const Box& box) const;

  /// Materialize `desc` to disk (all steps). Returns total bytes written.
  std::size_t materialize(const DatasetDesc& desc) const;

  bool has(int step) const;
  std::filesystem::path path_for(int step) const;
  const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  std::filesystem::path dir_;
};

}  // namespace tvviz::field
