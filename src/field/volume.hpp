// Dense 3D scalar volumes: the unit of data flowing through the pipeline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/vecmath.hpp"

namespace tvviz::field {

/// Volume dimensions (voxel counts along x, y, z).
struct Dims {
  int nx = 0, ny = 0, nz = 0;

  std::size_t voxels() const noexcept {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
  bool operator==(const Dims&) const = default;
};

/// Axis-aligned voxel box [lo, hi) used for domain decomposition.
struct Box {
  int lo[3] = {0, 0, 0};
  int hi[3] = {0, 0, 0};

  Dims dims() const noexcept {
    return Dims{hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]};
  }
  std::size_t voxels() const noexcept { return dims().voxels(); }
  bool contains(int x, int y, int z) const noexcept {
    return x >= lo[0] && x < hi[0] && y >= lo[1] && y < hi[1] && z >= lo[2] &&
           z < hi[2];
  }
  bool operator==(const Box&) const = default;
};

/// Dense scalar volume, x-fastest layout. Values conventionally in [0, 1].
template <typename T = float>
class Volume {
 public:
  Volume() = default;
  explicit Volume(Dims dims, T fill = T{})
      : dims_(dims), data_(dims.voxels(), fill) {
    if (dims.nx < 0 || dims.ny < 0 || dims.nz < 0)
      throw std::invalid_argument("Volume: negative dimension");
  }

  const Dims& dims() const noexcept { return dims_; }
  std::size_t voxels() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }

  T& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  const T& at(int x, int y, int z) const { return data_[index(x, y, z)]; }

  /// Clamped access: coordinates outside the volume snap to the border.
  T clamped(int x, int y, int z) const noexcept {
    x = std::clamp(x, 0, dims_.nx - 1);
    y = std::clamp(y, 0, dims_.ny - 1);
    z = std::clamp(z, 0, dims_.nz - 1);
    return data_[index(x, y, z)];
  }

  /// Trilinear sample at continuous voxel coordinates (0..n-1 per axis).
  /// Out-of-range coordinates clamp to the border.
  double sample(double x, double y, double z) const noexcept {
    const int x0 = static_cast<int>(std::floor(x));
    const int y0 = static_cast<int>(std::floor(y));
    const int z0 = static_cast<int>(std::floor(z));
    const double fx = x - x0, fy = y - y0, fz = z - z0;
    double c = 0.0;
    for (int dz = 0; dz <= 1; ++dz)
      for (int dy = 0; dy <= 1; ++dy)
        for (int dx = 0; dx <= 1; ++dx) {
          const double w = (dx ? fx : 1.0 - fx) * (dy ? fy : 1.0 - fy) *
                           (dz ? fz : 1.0 - fz);
          if (w > 0.0)
            c += w * static_cast<double>(clamped(x0 + dx, y0 + dy, z0 + dz));
        }
    return c;
  }

  /// Central-difference gradient at continuous coordinates (for shading).
  util::Vec3 gradient(double x, double y, double z) const noexcept {
    return {sample(x + 1, y, z) - sample(x - 1, y, z),
            sample(x, y + 1, z) - sample(x, y - 1, z),
            sample(x, y, z + 1) - sample(x, y, z - 1)};
  }

  /// Populate every voxel from f(x, y, z).
  void fill_from(const std::function<T(int, int, int)>& f) {
    std::size_t i = 0;
    for (int z = 0; z < dims_.nz; ++z)
      for (int y = 0; y < dims_.ny; ++y)
        for (int x = 0; x < dims_.nx; ++x) data_[i++] = f(x, y, z);
  }

  /// Copy out the sub-box `box` (must lie within the volume).
  Volume<T> extract(const Box& box) const {
    Volume<T> sub(box.dims());
    for (int z = box.lo[2]; z < box.hi[2]; ++z)
      for (int y = box.lo[1]; y < box.hi[1]; ++y)
        for (int x = box.lo[0]; x < box.hi[0]; ++x)
          sub.at(x - box.lo[0], y - box.lo[1], z - box.lo[2]) = at(x, y, z);
    return sub;
  }

  std::span<const T> data() const noexcept { return data_; }
  std::span<T> data() noexcept { return data_; }

  T min_value() const noexcept {
    return data_.empty() ? T{} : *std::min_element(data_.begin(), data_.end());
  }
  T max_value() const noexcept {
    return data_.empty() ? T{} : *std::max_element(data_.begin(), data_.end());
  }
  double mean_value() const noexcept {
    if (data_.empty()) return 0.0;
    double sum = 0.0;
    for (const T& v : data_) sum += static_cast<double>(v);
    return sum / static_cast<double>(data_.size());
  }

  /// Fraction of voxels with value above `threshold` (pixel-coverage proxy).
  double coverage(T threshold) const noexcept {
    if (data_.empty()) return 0.0;
    std::size_t n = 0;
    for (const T& v : data_) n += (v > threshold) ? 1u : 0u;
    return static_cast<double>(n) / static_cast<double>(data_.size());
  }

 private:
  std::size_t index(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * dims_.ny + static_cast<std::size_t>(y)) *
               dims_.nx +
           static_cast<std::size_t>(x);
  }

  Dims dims_;
  std::vector<T> data_;
};

using VolumeF = Volume<float>;

}  // namespace tvviz::field
