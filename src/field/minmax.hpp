// Min-max block summary of a volume: the §7.1 "preprocessing ... can
// provide many hints to the renderer" idea. A coarse grid stores the value
// range of each BxBxB block (extended one voxel so trilinear interpolation
// near block borders is covered); the renderer uses it to leap over blocks
// the transfer function maps to zero opacity.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "field/volume.hpp"

namespace tvviz::field {

class MinMaxGrid {
 public:
  /// Summarize `volume` with blocks of `block_size` voxels per axis.
  /// Each block's range covers the block plus a one-voxel border, so any
  /// trilinear sample whose support touches the block is bounded.
  explicit MinMaxGrid(const VolumeF& volume, int block_size = 8);

  int block_size() const noexcept { return block_; }
  Dims grid_dims() const noexcept { return grid_; }
  std::size_t blocks() const noexcept { return ranges_.size(); }

  /// Value range of block (bx, by, bz).
  std::pair<float, float> range(int bx, int by, int bz) const {
    return ranges_[index(bx, by, bz)];
  }

  /// Value range of the block containing voxel coordinates (x, y, z)
  /// (clamped into the volume).
  std::pair<float, float> range_at(double x, double y, double z) const;

  /// Block index containing voxel coordinate v along one axis.
  int block_of(double v, int axis) const;

 private:
  std::size_t index(int bx, int by, int bz) const {
    return (static_cast<std::size_t>(bz) * grid_.ny +
            static_cast<std::size_t>(by)) * grid_.nx +
           static_cast<std::size_t>(bx);
  }

  int block_;
  Dims vol_dims_;
  Dims grid_;
  std::vector<std::pair<float, float>> ranges_;
};

}  // namespace tvviz::field
