#include "field/store.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace tvviz::field {

namespace {
constexpr std::uint32_t kMagic = 0x54565631;  // "TVV1"

struct Header {
  std::uint32_t magic;
  std::uint32_t nx, ny, nz;
};
static_assert(sizeof(Header) == 16);
}  // namespace

VolumeStore::VolumeStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path VolumeStore::path_for(int step) const {
  return dir_ / ("step_" + std::to_string(step) + ".vol");
}

bool VolumeStore::has(int step) const {
  return std::filesystem::exists(path_for(step));
}

void VolumeStore::write(int step, const VolumeF& volume) const {
  // Write to a temporary and rename: readers polling for new steps (the
  // run-time tracking scenario) never observe a half-written file.
  const auto final_path = path_for(step);
  const auto tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("VolumeStore: cannot open for write");
    const Header h{kMagic, static_cast<std::uint32_t>(volume.dims().nx),
                   static_cast<std::uint32_t>(volume.dims().ny),
                   static_cast<std::uint32_t>(volume.dims().nz)};
    out.write(reinterpret_cast<const char*>(&h), sizeof h);
    out.write(reinterpret_cast<const char*>(volume.data().data()),
              static_cast<std::streamsize>(volume.bytes()));
    if (!out) throw std::runtime_error("VolumeStore: write failed");
  }
  std::filesystem::rename(tmp_path, final_path);
}

namespace {
Header read_header(std::ifstream& in, const std::filesystem::path& path) {
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in || h.magic != kMagic)
    throw std::runtime_error("VolumeStore: bad header in " + path.string());
  return h;
}
}  // namespace

VolumeF VolumeStore::read(int step) const {
  const auto path = path_for(step);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("VolumeStore: missing " + path.string());
  const Header h = read_header(in, path);
  VolumeF vol(Dims{static_cast<int>(h.nx), static_cast<int>(h.ny),
                   static_cast<int>(h.nz)});
  in.read(reinterpret_cast<char*>(vol.data().data()),
          static_cast<std::streamsize>(vol.bytes()));
  if (!in) throw std::runtime_error("VolumeStore: truncated " + path.string());
  return vol;
}

VolumeF VolumeStore::read_box(int step, const Box& box) const {
  const auto path = path_for(step);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("VolumeStore: missing " + path.string());
  const Header h = read_header(in, path);
  const Dims dims{static_cast<int>(h.nx), static_cast<int>(h.ny),
                  static_cast<int>(h.nz)};
  if (box.hi[0] > dims.nx || box.hi[1] > dims.ny || box.hi[2] > dims.nz ||
      box.lo[0] < 0 || box.lo[1] < 0 || box.lo[2] < 0)
    throw std::out_of_range("VolumeStore: box outside stored volume");

  VolumeF vol(box.dims());
  const int run = box.hi[0] - box.lo[0];
  std::vector<float> row(static_cast<std::size_t>(run));
  for (int z = box.lo[2]; z < box.hi[2]; ++z) {
    for (int y = box.lo[1]; y < box.hi[1]; ++y) {
      const std::size_t voxel_index =
          (static_cast<std::size_t>(z) * dims.ny + static_cast<std::size_t>(y)) *
              dims.nx +
          static_cast<std::size_t>(box.lo[0]);
      in.seekg(static_cast<std::streamoff>(sizeof(Header) +
                                           voxel_index * sizeof(float)));
      in.read(reinterpret_cast<char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
      if (!in) throw std::runtime_error("VolumeStore: truncated " + path.string());
      for (int x = 0; x < run; ++x)
        vol.at(x, y - box.lo[1], z - box.lo[2]) = row[static_cast<std::size_t>(x)];
    }
  }
  return vol;
}

std::size_t VolumeStore::materialize(const DatasetDesc& desc) const {
  std::size_t total = 0;
  for (int step = 0; step < desc.steps; ++step) {
    const VolumeF vol = generate(desc, step);
    write(step, vol);
    total += vol.bytes() + sizeof(Header);
  }
  return total;
}

}  // namespace tvviz::field
