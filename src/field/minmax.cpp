#include "field/minmax.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvviz::field {

MinMaxGrid::MinMaxGrid(const VolumeF& volume, int block_size)
    : block_(block_size), vol_dims_(volume.dims()) {
  if (block_size < 2) throw std::invalid_argument("MinMaxGrid: block too small");
  grid_.nx = (vol_dims_.nx + block_ - 1) / block_;
  grid_.ny = (vol_dims_.ny + block_ - 1) / block_;
  grid_.nz = (vol_dims_.nz + block_ - 1) / block_;
  grid_.nx = std::max(grid_.nx, 1);
  grid_.ny = std::max(grid_.ny, 1);
  grid_.nz = std::max(grid_.nz, 1);
  ranges_.assign(grid_.voxels(), {0.0f, 0.0f});

  for (int bz = 0; bz < grid_.nz; ++bz)
    for (int by = 0; by < grid_.ny; ++by)
      for (int bx = 0; bx < grid_.nx; ++bx) {
        // One-voxel border so samples interpolating across the block edge
        // are bounded by this block's range too.
        const int x0 = std::max(0, bx * block_ - 1);
        const int y0 = std::max(0, by * block_ - 1);
        const int z0 = std::max(0, bz * block_ - 1);
        const int x1 = std::min(vol_dims_.nx, (bx + 1) * block_ + 1);
        const int y1 = std::min(vol_dims_.ny, (by + 1) * block_ + 1);
        const int z1 = std::min(vol_dims_.nz, (bz + 1) * block_ + 1);
        float lo = volume.at(x0, y0, z0), hi = lo;
        for (int z = z0; z < z1; ++z)
          for (int y = y0; y < y1; ++y)
            for (int x = x0; x < x1; ++x) {
              const float v = volume.at(x, y, z);
              lo = std::min(lo, v);
              hi = std::max(hi, v);
            }
        ranges_[index(bx, by, bz)] = {lo, hi};
      }
}

int MinMaxGrid::block_of(double v, int axis) const {
  const int extent = axis == 0 ? grid_.nx : axis == 1 ? grid_.ny : grid_.nz;
  int b = static_cast<int>(v) / block_;
  return std::clamp(b, 0, extent - 1);
}

std::pair<float, float> MinMaxGrid::range_at(double x, double y,
                                             double z) const {
  return ranges_[index(block_of(x, 0), block_of(y, 1), block_of(z, 2))];
}

}  // namespace tvviz::field
