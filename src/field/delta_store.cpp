#include "field/delta_store.hpp"

#include <cstring>

#include "util/vecmath.hpp"
#include <fstream>
#include <stdexcept>

namespace tvviz::field {

namespace {
constexpr std::uint32_t kMagic = 0x54564456;  // "VDVT"
constexpr std::uint8_t kKey = 0;
constexpr std::uint8_t kDelta = 1;

using Precision = DeltaVolumeStore::Precision;

util::Bytes raw_bytes_of(const VolumeF& volume, Precision precision) {
  if (precision == Precision::kQuantized8) {
    util::Bytes out(volume.voxels());
    const auto data = volume.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
      const float v = data[i];
      out[i] = static_cast<std::uint8_t>(
          util::clamp01(static_cast<double>(v)) * 255.0 + 0.5);
    }
    return out;
  }
  util::Bytes out(volume.bytes());
  std::memcpy(out.data(), volume.data().data(), out.size());
  return out;
}

VolumeF volume_of(const Dims& dims, std::span<const std::uint8_t> raw,
                  Precision precision) {
  VolumeF volume(dims);
  if (precision == Precision::kQuantized8) {
    if (raw.size() != dims.voxels())
      throw std::runtime_error("DeltaVolumeStore: payload size mismatch");
    auto data = volume.data();
    for (std::size_t i = 0; i < raw.size(); ++i)
      data[i] = static_cast<float>(raw[i]) / 255.0f;
    return volume;
  }
  if (raw.size() != dims.voxels() * sizeof(float))
    throw std::runtime_error("DeltaVolumeStore: payload size mismatch");
  std::memcpy(volume.data().data(), raw.data(), raw.size());
  return volume;
}
}  // namespace

DeltaVolumeStore::DeltaVolumeStore(std::filesystem::path dir, int key_interval,
                                   int lz_level, Precision precision)
    : dir_(std::move(dir)),
      key_interval_(key_interval),
      lz_(lz_level),
      precision_(precision) {
  if (key_interval < 1)
    throw std::invalid_argument("DeltaVolumeStore: key interval");
  std::filesystem::create_directories(dir_);
}

std::filesystem::path DeltaVolumeStore::path_for(int step) const {
  return dir_ / ("step_" + std::to_string(step) + ".dvol");
}

bool DeltaVolumeStore::has(int step) const {
  return std::filesystem::exists(path_for(step));
}

void DeltaVolumeStore::write(int step, const VolumeF& volume) {
  // A step becomes a key frame at the configured interval, and whenever the
  // delta chain has no immediate predecessor (first write, out-of-order
  // write, or size change).
  const bool key = is_key(step) || last_written_step_ != step - 1 ||
                   !last_written_ || last_written_->dims() != volume.dims();

  util::Bytes payload = raw_bytes_of(volume, precision_);
  if (!key) {
    const util::Bytes prev = raw_bytes_of(*last_written_, precision_);
    for (std::size_t i = 0; i < payload.size(); ++i)
      payload[i] = static_cast<std::uint8_t>(payload[i] - prev[i]);
  }
  const util::Bytes packed = lz_.encode(payload);

  util::ByteWriter out(packed.size() + 32);
  out.u32(kMagic);
  out.u8(key ? kKey : kDelta);
  out.u8(precision_ == Precision::kQuantized8 ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(volume.dims().nx));
  out.u32(static_cast<std::uint32_t>(volume.dims().ny));
  out.u32(static_cast<std::uint32_t>(volume.dims().nz));
  out.varint(packed.size());
  out.raw(packed);

  const auto final_path = path_for(step);
  const auto tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("DeltaVolumeStore: open for write");
    const auto& bytes = out.bytes();
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) throw std::runtime_error("DeltaVolumeStore: write failed");
  }
  std::filesystem::rename(tmp_path, final_path);

  last_written_ = volume;
  last_written_step_ = step;
}

VolumeF DeltaVolumeStore::read(int step) {
  if (step < 0) throw std::out_of_range("DeltaVolumeStore: negative step");
  if (cached_ && cached_step_ == step) return *cached_;
  // Reconstruct from the nearest usable base: the read cache if it is the
  // immediate predecessor, else the preceding key frame.
  int base = step;
  if (cached_step_ >= 0 && cached_step_ < step &&
      cached_step_ >= (step / key_interval_) * key_interval_)
    base = cached_step_ + 1;
  else
    base = (step / key_interval_) * key_interval_;

  for (int s = base; s <= step; ++s) {
    std::ifstream f(path_for(s), std::ios::binary);
    if (!f)
      throw std::runtime_error("DeltaVolumeStore: missing step " +
                               std::to_string(s));
    util::Bytes file((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    util::ByteReader in(file);
    if (in.u32() != kMagic)
      throw std::runtime_error("DeltaVolumeStore: bad magic");
    const std::uint8_t type = in.u8();
    const std::uint8_t stored_precision = in.u8();
    if ((stored_precision == 1) != (precision_ == Precision::kQuantized8))
      throw std::runtime_error("DeltaVolumeStore: precision mismatch");
    const Dims dims{static_cast<int>(in.u32()), static_cast<int>(in.u32()),
                    static_cast<int>(in.u32())};
    const std::size_t packed_len = in.varint();
    util::Bytes payload = lz_.decode(in.raw(packed_len));

    if (type == kDelta) {
      if (!cached_ || cached_step_ != s - 1 || cached_->dims() != dims)
        throw std::runtime_error("DeltaVolumeStore: broken delta chain at " +
                                 std::to_string(s));
      const util::Bytes prev = raw_bytes_of(*cached_, precision_);
      if (payload.size() != prev.size())
        throw std::runtime_error("DeltaVolumeStore: delta size mismatch");
      for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(payload[i] + prev[i]);
    } else if (type != kKey) {
      throw std::runtime_error("DeltaVolumeStore: unknown frame type");
    }
    cached_ = volume_of(dims, payload, precision_);
    cached_step_ = s;
  }
  return *cached_;
}

std::size_t DeltaVolumeStore::stored_bytes(int count) const {
  std::size_t total = 0;
  for (int s = 0; s < count; ++s)
    if (has(s)) total += std::filesystem::file_size(path_for(s));
  return total;
}

std::pair<std::size_t, std::size_t> DeltaVolumeStore::materialize(
    const DatasetDesc& desc) {
  std::size_t raw = 0;
  for (int s = 0; s < desc.steps; ++s) {
    const VolumeF volume = generate(desc, s);
    raw += volume.bytes();
    write(s, volume);
  }
  return {raw, stored_bytes(desc.steps)};
}

}  // namespace tvviz::field
