#include "field/preview.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace tvviz::field {

std::vector<double> estimate_plane_weights(
    const DatasetDesc& desc, int step, int axis,
    const std::function<bool(float)>& visible, int probes_per_plane,
    std::uint64_t seed) {
  if (axis < 0 || axis > 2)
    throw std::invalid_argument("estimate_plane_weights: axis");
  if (probes_per_plane < 1)
    throw std::invalid_argument("estimate_plane_weights: probes");
  const int extents[3] = {desc.dims.nx, desc.dims.ny, desc.dims.nz};
  const int planes = extents[axis];
  std::vector<double> weights(static_cast<std::size_t>(planes), 0.0);
  util::Rng rng(seed);
  for (int k = 0; k < planes; ++k) {
    int hits = 0;
    for (int p = 0; p < probes_per_plane; ++p) {
      Box cell;
      for (int a = 0; a < 3; ++a) {
        const int coord =
            a == axis ? k
                      : static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(extents[a])));
        cell.lo[a] = coord;
        cell.hi[a] = coord + 1;
      }
      if (visible(generate_box(desc, step, cell).at(0, 0, 0))) ++hits;
    }
    weights[static_cast<std::size_t>(k)] =
        static_cast<double>(hits) / probes_per_plane;
  }
  return weights;
}

TemporalSummary TemporalSummary::analyze(const DatasetDesc& desc, int probes,
                                         std::uint64_t seed) {
  if (probes < 1) throw std::invalid_argument("TemporalSummary: probes");
  // Fixed probe voxels, identical across steps.
  util::Rng rng(seed);
  std::vector<Box> cells;
  cells.reserve(static_cast<std::size_t>(probes));
  for (int i = 0; i < probes; ++i) {
    Box b;
    b.lo[0] = static_cast<int>(rng.below(static_cast<std::uint64_t>(desc.dims.nx)));
    b.lo[1] = static_cast<int>(rng.below(static_cast<std::uint64_t>(desc.dims.ny)));
    b.lo[2] = static_cast<int>(rng.below(static_cast<std::uint64_t>(desc.dims.nz)));
    b.hi[0] = b.lo[0] + 1;
    b.hi[1] = b.lo[1] + 1;
    b.hi[2] = b.lo[2] + 1;
    cells.push_back(b);
  }

  TemporalSummary summary;
  summary.deltas_.assign(static_cast<std::size_t>(desc.steps), 0.0);
  std::vector<float> previous(cells.size(), 0.0f);
  for (int step = 0; step < desc.steps; ++step) {
    double acc = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const float v = generate_box(desc, step, cells[i]).at(0, 0, 0);
      if (step > 0) acc += std::abs(static_cast<double>(v) - previous[i]);
      previous[i] = v;
    }
    if (step > 0)
      summary.deltas_[static_cast<std::size_t>(step)] =
          acc / static_cast<double>(cells.size());
  }
  return summary;
}

double TemporalSummary::total_change() const noexcept {
  double total = 0.0;
  for (double d : deltas_) total += d;
  return total;
}

std::vector<int> TemporalSummary::select_steps(double threshold) const {
  std::vector<int> keep;
  if (deltas_.empty()) return keep;
  keep.push_back(0);
  double acc = 0.0;
  for (int s = 1; s < steps(); ++s) {
    acc += deltas_[static_cast<std::size_t>(s)];
    if (threshold <= 0.0 || acc >= threshold) {
      keep.push_back(s);
      acc = 0.0;
    }
  }
  if (keep.back() != steps() - 1) keep.push_back(steps() - 1);
  return keep;
}

std::vector<int> TemporalSummary::select_budget(int count) const {
  if (count < 2) throw std::invalid_argument("TemporalSummary: budget < 2");
  if (deltas_.empty()) return {};
  count = std::min(count, steps());
  // Cumulative change as the parameter; pick equal quantiles.
  std::vector<double> cumulative(deltas_.size(), 0.0);
  for (std::size_t s = 1; s < deltas_.size(); ++s)
    cumulative[s] = cumulative[s - 1] + deltas_[s];
  const double total = cumulative.back();

  std::vector<int> keep;
  keep.push_back(0);
  for (int k = 1; k < count - 1; ++k) {
    const double target = total * k / (count - 1);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), target);
    int step = static_cast<int>(it - cumulative.begin());
    step = std::min(step, steps() - 1);
    if (step > keep.back()) keep.push_back(step);
  }
  if (keep.back() != steps() - 1) keep.push_back(steps() - 1);
  return keep;
}

}  // namespace tvviz::field
