// Temporal preprocessing for preview mode (§7.1: "Preprocessing of the
// time-varying datasets, if allowed, can provide many hints to the
// renderer ... certain time steps can be skipped during a previewing
// mode"). A cheap probe-based summary measures how much each step differs
// from its predecessor; the planner then selects a subset of steps that
// covers the sequence's change budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "field/generators.hpp"

namespace tvviz::field {

/// Probe-based per-plane work estimate along `axis`: the fraction of probed
/// voxels in each plane for which `visible` is true. Deterministic in the
/// seed, so every rank of a group computes identical weights without
/// communication. Feed to decompose_slabs_weighted for load balancing.
std::vector<double> estimate_plane_weights(
    const DatasetDesc& desc, int step, int axis,
    const std::function<bool(float)>& visible, int probes_per_plane = 32,
    std::uint64_t seed = 4242);

class TemporalSummary {
 public:
  /// Probe `probes` fixed pseudo-random voxels of every step of `desc` and
  /// record the mean absolute change between consecutive steps.
  static TemporalSummary analyze(const DatasetDesc& desc, int probes = 2048,
                                 std::uint64_t seed = 1234);

  int steps() const noexcept { return static_cast<int>(deltas_.size()); }

  /// Mean |v_t - v_{t-1}| over the probes; delta(0) == 0.
  double delta(int step) const { return deltas_.at(static_cast<std::size_t>(step)); }

  /// Total accumulated change across the sequence.
  double total_change() const noexcept;

  /// Preview selection by threshold: keep a step once at least `threshold`
  /// of accumulated change has passed since the last kept step. Step 0 and
  /// the final step are always kept. threshold <= 0 keeps everything.
  std::vector<int> select_steps(double threshold) const;

  /// Preview selection by budget: pick `count` steps at equal quantiles of
  /// cumulative change — fast-changing episodes get dense sampling.
  std::vector<int> select_budget(int count) const;

 private:
  std::vector<double> deltas_;
};

}  // namespace tvviz::field
