// Striped (parallel) volume storage — the §7.1 future-work item: "Parallel
// I/O, if available, can be incorporated into the pipeline rendering
// process quite straightforwardly, and would improve the overall system
// performance."
//
// Each time step is striped round-robin by z-slab across K independent
// stores (modelling K I/O servers / disks, à la MPI-2 file views). A
// rank's subvolume read touches only the stripes covering its slabs, so K
// readers proceed concurrently with no shared sequential channel.
#pragma once

#include <filesystem>
#include <vector>

#include "field/store.hpp"

namespace tvviz::field {

class StripedVolumeStore {
 public:
  /// `stripes` independent stores under <dir>/stripe_<k>; `slab_height`
  /// voxels of z per stripe unit.
  StripedVolumeStore(std::filesystem::path dir, int stripes,
                     int slab_height = 8);

  int stripes() const noexcept { return static_cast<int>(stores_.size()); }
  int slab_height() const noexcept { return slab_; }

  /// Stripe that stores the slab unit containing global z.
  int stripe_of(int z) const noexcept { return (z / slab_) % stripes(); }

  /// Persist one time step across the stripes.
  void write(int step, const VolumeF& volume);

  /// Load a whole time step (gathers every stripe).
  VolumeF read(int step) const;

  /// Load only `box` of a time step, touching only the stripes that hold
  /// the covered slab units.
  VolumeF read_box(int step, const Box& box) const;

  /// Materialize a dataset (all steps). Returns total bytes written.
  std::size_t materialize(const DatasetDesc& desc);

  bool has(int step) const;

 private:
  /// Per-stripe slab file: stripe k, step s holds the concatenation of its
  /// slab units in ascending z, each tagged with its z origin.
  std::filesystem::path path_for(int stripe, int step) const;

  std::filesystem::path dir_;
  int slab_;
  std::vector<std::filesystem::path> stores_;
  // Cached per-step dims (from stripe 0's header).
  Dims read_dims(int step) const;
};

}  // namespace tvviz::field
