// Value histograms over volumes: used for transfer-function design and for
// characterizing dataset density (which drives compression behaviour).
#pragma once

#include <cstddef>
#include <vector>

#include "field/volume.hpp"

namespace tvviz::field {

class Histogram {
 public:
  explicit Histogram(int bins = 64) : counts_(static_cast<std::size_t>(bins), 0) {}

  /// Accumulate all voxels of `vol`; values are clamped into [0, 1].
  void accumulate(const VolumeF& vol) {
    for (float v : vol.data()) {
      const double c = v < 0.f ? 0.0 : (v > 1.f ? 1.0 : static_cast<double>(v));
      auto bin = static_cast<std::size_t>(c * static_cast<double>(counts_.size()));
      if (bin >= counts_.size()) bin = counts_.size() - 1;
      ++counts_[bin];
      ++total_;
    }
  }

  int bins() const noexcept { return static_cast<int>(counts_.size()); }
  std::size_t total() const noexcept { return total_; }
  std::size_t count(int bin) const { return counts_.at(static_cast<std::size_t>(bin)); }

  /// Fraction of samples at or above value `v` in [0, 1].
  double fraction_above(double v) const noexcept {
    if (total_ == 0) return 0.0;
    const auto first =
        static_cast<std::size_t>(v * static_cast<double>(counts_.size()));
    std::size_t n = 0;
    for (std::size_t b = first; b < counts_.size(); ++b) n += counts_[b];
    return static_cast<double>(n) / static_cast<double>(total_);
  }

  /// Value below which fraction `q` in [0,1] of the samples fall.
  double quantile(double q) const noexcept {
    if (total_ == 0) return 0.0;
    const auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
    std::size_t acc = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      acc += counts_[b];
      if (acc >= target)
        return static_cast<double>(b + 1) / static_cast<double>(counts_.size());
    }
    return 1.0;
  }

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tvviz::field
