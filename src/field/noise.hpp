// Lattice value noise and fractional Brownian motion used by the procedural
// dataset generators. Deterministic in (coordinates, seed) so every run and
// every rank regenerates identical data.
#pragma once

#include <cstdint>

namespace tvviz::field {

/// Hash of an integer lattice point to [0, 1).
double lattice_hash(int x, int y, int z, std::uint64_t seed) noexcept;

/// Smooth trilinear value noise at a continuous point, in [0, 1).
double value_noise(double x, double y, double z, std::uint64_t seed) noexcept;

/// Fractional Brownian motion: `octaves` layers of value noise with
/// per-octave frequency doubling and amplitude halving. Output in [0, 1).
double fbm(double x, double y, double z, int octaves,
           std::uint64_t seed) noexcept;

}  // namespace tvviz::field
