#include "field/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "field/noise.hpp"
#include "util/vecmath.hpp"

namespace tvviz::field {

const char* dataset_name(DatasetKind kind) noexcept {
  switch (kind) {
    case DatasetKind::kTurbulentJet: return "turbulent-jet";
    case DatasetKind::kTurbulentVortex: return "turbulent-vortex";
    case DatasetKind::kShockMixing: return "shock-mixing";
  }
  return "?";
}

DatasetDesc turbulent_jet_desc() {
  return DatasetDesc{DatasetKind::kTurbulentJet, Dims{129, 129, 104}, 150, 11};
}

DatasetDesc turbulent_vortex_desc() {
  return DatasetDesc{DatasetKind::kTurbulentVortex, Dims{128, 128, 128}, 100, 23};
}

DatasetDesc shock_mixing_desc() {
  return DatasetDesc{DatasetKind::kShockMixing, Dims{640, 256, 256}, 265, 37};
}

DatasetDesc scaled(DatasetDesc desc, int factor, int max_steps) {
  if (factor < 1) throw std::invalid_argument("scaled: factor must be >= 1");
  desc.dims.nx = std::max(8, desc.dims.nx / factor);
  desc.dims.ny = std::max(8, desc.dims.ny / factor);
  desc.dims.nz = std::max(8, desc.dims.nz / factor);
  desc.steps = std::max(1, std::min(desc.steps, max_steps));
  return desc;
}

namespace {

constexpr double kTau = 6.283185307179586;

/// Normalized coordinates in [0,1] for a global voxel index.
struct Norm {
  double x, y, z;
};

Norm normalize(const Dims& dims, int x, int y, int z) {
  return {dims.nx > 1 ? static_cast<double>(x) / (dims.nx - 1) : 0.0,
          dims.ny > 1 ? static_cast<double>(y) / (dims.ny - 1) : 0.0,
          dims.nz > 1 ? static_cast<double>(z) / (dims.nz - 1) : 0.0};
}

/// Clamp to [0,1] and floor near-zero values to an exact 0, like the
/// denormal/output cutoffs of real CFD solvers. Exact zeros make the empty
/// regions temporally identical, which the differential store exploits.
float finalize(double v) {
  const double clamped = util::clamp01(v);
  return clamped < 2e-3 ? 0.0f : static_cast<float>(clamped);
}

/// Turbulent jet: a meandering plume along +y with advected small-scale
/// turbulence. Most of the domain is empty -> sparse images.
float jet_value(const Norm& p, double t, std::uint64_t seed) {
  // Plume axis meanders slowly with height and time.
  const double ax = 0.5 + 0.08 * std::sin(kTau * (0.7 * p.y + 0.3 * t));
  const double az = 0.5 + 0.08 * std::cos(kTau * (0.9 * p.y + 0.2 * t));
  const double dx = p.x - ax, dz = p.z - az;
  const double r2 = dx * dx + dz * dz;
  // Cone widens with height; nothing below the nozzle.
  const double width = 0.035 + 0.16 * p.y;
  const double envelope = std::exp(-r2 / (2.0 * width * width));
  // Advected turbulence: noise coordinates drift downstream with time.
  const double turb =
      fbm(6.0 * p.x, 6.0 * p.y - 5.0 * t, 6.0 * p.z, 4, seed);
  const double v = envelope * (0.35 + 0.9 * turb);
  return finalize(v);
}

/// Turbulent vortex: several strong vortex tubes plus a broad background
/// vorticity floor. Touches most of the domain -> dense images.
float vortex_value(const Norm& p, double t, std::uint64_t seed) {
  double v = 0.0;
  constexpr int kTubes = 10;
  for (int k = 0; k < kTubes; ++k) {
    const double phase = static_cast<double>(k) / kTubes;
    // Tube axis: vertical line that orbits and bends sinusoidally.
    const double cx = 0.5 + 0.33 * std::cos(kTau * (phase + 0.15 * t)) +
                      0.05 * std::sin(kTau * (2.0 * p.y + phase));
    const double cz = 0.5 + 0.33 * std::sin(kTau * (phase + 0.15 * t)) +
                      0.05 * std::cos(kTau * (2.0 * p.y + 3.0 * phase));
    const double dx = p.x - cx, dz = p.z - cz;
    const double d2 = dx * dx + dz * dz;
    const double strength = 0.55 + 0.45 * std::sin(kTau * (phase * 3.1 + 0.23 * t));
    v += strength * std::exp(-d2 / (2.0 * 0.06 * 0.06));
  }
  // Background turbulence keeps coverage high everywhere.
  const double background =
      0.22 + 0.3 * fbm(4.0 * p.x + 9.0 * t, 4.0 * p.y, 4.0 * p.z + 3.0 * t, 4, seed);
  return finalize(0.75 * v + background);
}

/// Shock/bubble mixing: a planar shock sweeps along +x through an ambient
/// medium containing a denser bubble; a turbulent mixing zone grows behind
/// the front.
float shock_value(const Norm& p, double t, std::uint64_t seed) {
  // Shock front position sweeps the domain over the run.
  const double front = 0.05 + 0.95 * t;
  const double behind = front - p.x;  // > 0 once the shock has passed
  // Thin bright shell at the front.
  const double shell = std::exp(-(behind * behind) / (2.0 * 0.015 * 0.015));
  // Bubble: dense sphere that compresses and drifts once shocked.
  const double bubble_cx = 0.45 + 0.12 * std::max(0.0, t - 0.35);
  const double bx = (p.x - bubble_cx) / (1.0 - 0.35 * t);  // compression
  const double by = p.y - 0.5, bz = p.z - 0.5;
  const double bd2 = bx * bx + by * by + bz * bz;
  const double bubble = 0.8 * std::exp(-bd2 / (2.0 * 0.13 * 0.13));
  // Mixing turbulence grows in the shocked region.
  double mixing = 0.0;
  if (behind > 0.0) {
    const double zone = std::min(1.0, behind / 0.3);
    mixing = 0.5 * zone *
             fbm(8.0 * p.x + 2.0 * t, 8.0 * p.y, 8.0 * p.z, 4, seed);
  }
  const double ambient = 0.06;
  return finalize(ambient + 0.85 * shell + bubble + mixing);
}

}  // namespace

VolumeF generate_box(const DatasetDesc& desc, int step, const Box& box) {
  if (step < 0 || step >= desc.steps)
    throw std::out_of_range("generate: step out of range");
  const double t =
      desc.steps > 1 ? static_cast<double>(step) / (desc.steps - 1) : 0.0;
  VolumeF vol(box.dims());
  for (int z = box.lo[2]; z < box.hi[2]; ++z)
    for (int y = box.lo[1]; y < box.hi[1]; ++y)
      for (int x = box.lo[0]; x < box.hi[0]; ++x) {
        const Norm p = normalize(desc.dims, x, y, z);
        float v = 0.0f;
        switch (desc.kind) {
          case DatasetKind::kTurbulentJet: v = jet_value(p, t, desc.seed); break;
          case DatasetKind::kTurbulentVortex:
            v = vortex_value(p, t, desc.seed);
            break;
          case DatasetKind::kShockMixing: v = shock_value(p, t, desc.seed); break;
        }
        vol.at(x - box.lo[0], y - box.lo[1], z - box.lo[2]) = v;
      }
  return vol;
}

VolumeF generate(const DatasetDesc& desc, int step) {
  Box whole;
  whole.hi[0] = desc.dims.nx;
  whole.hi[1] = desc.dims.ny;
  whole.hi[2] = desc.dims.nz;
  return generate_box(desc, step, whole);
}

}  // namespace tvviz::field
