#include "hub/tcp_hub.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tvviz::hub {

using net::HelloInfo;
using net::MsgType;
using net::NetMessage;
using net::TcpConnection;

HubTcpServer::HubTcpServer(int port, HubConfig config)
    : hub_(config), max_version_(config.max_protocol_version) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("hub: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("hub: bind failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("hub: listen failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HubTcpServer::~HubTcpServer() { shutdown(); }

void HubTcpServer::shutdown() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  // Order matters for the flush guarantee: first unblock the renderer
  // readers (everything they received is already in the hub inbox), then
  // drain the hub into the client queues, and only then join the display
  // workers — their writers flush those queues over the still-open sockets
  // before closing them.
  {
    util::LockGuard lock(threads_mutex_);
    for (auto& c : renderer_conns_) c->shutdown();
  }
  hub_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  util::LockGuard lock(threads_mutex_);
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  for (auto& c : display_conns_) c->shutdown();
}

void HubTcpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed
    auto conn = std::make_shared<TcpConnection>(fd);
    std::optional<NetMessage> first;
    try {
      first = conn->recv_message();
    } catch (const std::exception&) {
      continue;  // malformed first frame: drop the connection, keep serving
    }
    if (!first || first->type != MsgType::kHello) continue;
    static obs::Counter& rejected = obs::counter("net.hub.hello_rejected");
    const auto refuse = [&](const std::string& reason) {
      rejected.add(1);
      try {
        conn->send_message(net::make_error(reason));
      } catch (const std::exception&) {
      }
    };
    HelloInfo info;
    try {
      info = net::parse_hello(*first);
    } catch (const std::exception& e) {
      refuse(std::string("malformed hello: ") + e.what());
      continue;
    }
    if (info.version == 0 || info.version > max_version_) {
      refuse("unsupported protocol version " + std::to_string(info.version) +
             " (this hub speaks 1.." + std::to_string(max_version_) + ")");
      continue;
    }
    if (info.role != "renderer" && info.role != "display") {
      refuse("unknown endpoint role '" + info.role +
             "' (expected 'renderer' or 'display')");
      continue;
    }
    util::LockGuard lock(threads_mutex_);
    if (info.role == "renderer") {
      renderer_conns_.push_back(conn);
      workers_.emplace_back([this, conn] { serve_renderer(conn); });
    } else {
      display_conns_.push_back(conn);
      workers_.emplace_back(
          [this, conn, info = std::move(info)]() mutable {
            serve_display(conn, std::move(info));
          });
    }
  }
}

void HubTcpServer::serve_renderer(std::shared_ptr<TcpConnection> conn) {
  auto port = hub_.connect_renderer();
  std::atomic<bool> reading{true};
  std::thread writer([&] {
    while (reading.load() && running_.load()) {
      bool sent = false;
      while (auto event = port->poll_control()) {
        NetMessage msg;
        msg.type = MsgType::kControl;
        msg.payload = event->serialize();
        try {
          conn->send_message(msg);
        } catch (const std::exception&) {
          return;
        }
        sent = true;
      }
      if (!sent) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  while (running_.load()) {
    std::optional<NetMessage> msg;
    try {
      msg = conn->recv_message();
    } catch (const std::exception&) {
      // Malformed wire data or a socket error mid-stream: treat it as a
      // disconnect. An uncaught throw here would std::terminate the whole
      // hub process on one misbehaving renderer.
      break;
    }
    if (!msg) break;
    port->send(std::move(*msg));
  }
  reading.store(false);
  writer.join();
}

void HubTcpServer::serve_display(std::shared_ptr<TcpConnection> conn,
                                 HelloInfo info) {
  ClientOptions options;
  options.id = info.client_id;
  options.queue_frames = info.queue_frames;
  if (info.last_acked_step >= 0) {
    // An explicit resume point also applies to ids the hub has never seen
    // (e.g. the hub restarted and lost its registry but the cache refilled).
    options.replay_cache = true;
    options.replay_after_step = info.last_acked_step;
  }
  std::shared_ptr<FrameHub::ClientPort> port;
  try {
    port = hub_.connect_client(std::move(options));
  } catch (const std::exception& e) {
    try {
      conn->send_message(net::make_error(e.what()));
    } catch (const std::exception&) {
    }
    return;
  }
  if (info.last_acked_step >= 0) port->ack(info.last_acked_step);
  {
    NetMessage ok;
    ok.type = MsgType::kHelloAck;
    ok.codec = port->id();  // the identity the hub filed this client under
    try {
      conn->send_message(ok);
    } catch (const std::exception&) {
      hub_.disconnect_client(*port);
      return;
    }
  }
  // Reader: acks, heartbeats and control events from the viewer.
  std::thread reader([&] {
    while (running_.load()) {
      std::optional<NetMessage> msg;
      try {
        msg = conn->recv_message();
      } catch (const std::exception&) {
        return;
      }
      if (!msg) return;
      switch (msg->type) {
        case MsgType::kAck:
          port->ack(msg->frame_index);
          break;
        case MsgType::kHeartbeat:
          port->heartbeat();
          break;
        case MsgType::kControl:
          port->send_control(net::ControlEvent::deserialize(msg->payload));
          break;
        default:
          break;
      }
    }
  });
  // Writer: the client's queue onto the socket. Runs past running_ going
  // false so a shutdown flushes the queue tail (next() returns nullptr once
  // the port is closed *and* drained).
  for (;;) {
    auto msg = port->next();
    if (!msg) break;
    try {
      conn->send_message(*msg);
    } catch (const std::exception&) {
      break;
    }
  }
  // Socket gone or port closed: detach without forgetting, so this id can
  // reconnect and resume from its last acked step.
  hub_.disconnect_client(*port);
  conn->shutdown();
  reader.join();
}

// -------------------------------------------------------- HubTcpViewer ----

HubTcpViewer::HubTcpViewer(int port) : HubTcpViewer(port, Options()) {}

HubTcpViewer::HubTcpViewer(int port, Options options)
    : port_(port), options_(std::move(options)) {
  last_acked_.store(options_.last_acked_step);
  {
    // Seed the jitter stream from the requested identity so a named
    // viewer's backoff schedule replays deterministically.
    std::uint64_t h = 0x76696577ULL;
    for (const char ch : options_.client_id)
      h = (h ^ static_cast<std::uint8_t>(ch)) * 0x100000001b3ULL;
    retry_rng_ = util::Rng(util::splitmix64(h));
  }
  if (options_.auto_reconnect) {
    // First contact under the policy too: an injected refused connect (or a
    // hub still starting up) is ridden out here rather than thrown.
    fault::Backoff backoff(options_.retry, retry_rng_.fork());
    std::exception_ptr last;
    std::shared_ptr<TcpConnection> conn;
    while (!conn && backoff.next()) {
      try {
        conn = connect_and_handshake();
      } catch (const net::SocketError&) {
        last = std::current_exception();
      }
    }
    if (!conn) {
      if (last) std::rethrow_exception(last);
      throw net::SocketError("hub: viewer connect attempts exhausted");
    }
    util::LockGuard lock(state_mutex_);
    conn_ = std::move(conn);
  } else {
    // Handshake first (it does I/O and excludes state_mutex_), then install
    // the socket under the — still uncontended — state lock.
    auto conn = connect_and_handshake();
    util::LockGuard lock(state_mutex_);
    conn_ = std::move(conn);
  }
  if (options_.heartbeat_interval_ms > 0) {
    const auto interval =
        std::chrono::milliseconds(options_.heartbeat_interval_ms);
    heartbeat_thread_ = std::thread([this, interval] {
      while (open_.load()) {
        {
          util::LockGuard lock(send_mutex_);
          if (!open_.load()) break;
          NetMessage beat;
          beat.type = MsgType::kHeartbeat;
          try {
            current()->send_message(beat);
          } catch (const std::exception&) {
            // With auto_reconnect the next() loop is (or will be) swapping
            // the socket; keep beating on whatever is installed next.
            if (!options_.auto_reconnect) return;
          }
        }
        std::this_thread::sleep_for(interval);
      }
    });
  }
}

std::shared_ptr<TcpConnection> HubTcpViewer::connect_and_handshake() {
  auto conn = std::shared_ptr<TcpConnection>(
      TcpConnection::connect_local(port_).release());
  if (options_.retry.io_timeout_ms > 0.0)
    conn->set_io_timeout_ms(options_.retry.io_timeout_ms);
  HelloInfo info;
  info.role = "display";
  // A reconnect reclaims the identity the hub assigned on first contact and
  // resumes after the newest step this viewer acked. assigned_id_ is shared
  // with assigned_id() callers on other threads, so snapshot it under the
  // state lock.
  {
    util::LockGuard lock(state_mutex_);
    info.client_id = assigned_id_.empty() ? options_.client_id : assigned_id_;
  }
  info.last_acked_step = last_acked_.load();
  info.queue_frames = options_.queue_frames;
  info.wants_heartbeat = options_.heartbeat_interval_ms > 0;
  conn->send_message(net::make_hello(info));
  auto reply = conn->recv_message();
  if (!reply)
    throw net::SocketError("hub: server closed during handshake");
  if (reply->type == MsgType::kError) {
    const std::string text = net::error_text(*reply);
    if (options_.allow_downgrade &&
        text.find("unsupported protocol version") != std::string::npos) {
      // The server is older than this viewer: renegotiate with the legacy
      // v1 hello (role in the codec field, no capability payload — so no
      // identity and no resume point either).
      static obs::Counter& downgrades = obs::counter("net.retry.downgrades");
      downgrades.add(1);
      downgraded_.store(true);
      conn = std::shared_ptr<TcpConnection>(
          TcpConnection::connect_local(port_).release());
      if (options_.retry.io_timeout_ms > 0.0)
        conn->set_io_timeout_ms(options_.retry.io_timeout_ms);
      NetMessage legacy;
      legacy.type = MsgType::kHello;
      legacy.codec = "display";
      conn->send_message(legacy);
      reply = conn->recv_message();
      if (!reply)
        throw net::SocketError("hub: server closed during v1 handshake");
    }
  }
  if (reply->type == MsgType::kError)
    throw std::runtime_error("hub: refused: " + net::error_text(*reply));
  if (reply->type != MsgType::kHelloAck)
    throw std::runtime_error("hub: unexpected handshake reply");
  {
    util::LockGuard lock(state_mutex_);
    assigned_id_ = reply->codec;
  }
  return conn;
}

bool HubTcpViewer::reconnect() {
  obs::Span span("net.retry.reconnect");
  fault::Backoff backoff(options_.retry, retry_rng_.fork());
  while (open_.load() && backoff.next()) {
    std::shared_ptr<TcpConnection> fresh;
    try {
      fresh = connect_and_handshake();
    } catch (const std::exception&) {
      continue;
    }
    std::shared_ptr<TcpConnection> old;
    {
      util::LockGuard lock(state_mutex_);
      old = std::move(conn_);
      conn_ = std::move(fresh);
    }
    // Shut the old socket down outside the lock: if a sender is blocked
    // inside send_message() on it (holding send_mutex_), this is what
    // unblocks them — they fail over to the fresh connection on retry.
    if (old) old->shutdown();
    static obs::Counter& reconnects = obs::counter("net.retry.reconnects");
    reconnects.add(1);
    return true;
  }
  return false;
}

std::shared_ptr<TcpConnection> HubTcpViewer::current() const {
  util::LockGuard lock(state_mutex_);
  return conn_;
}

std::string HubTcpViewer::assigned_id() const {
  util::LockGuard lock(state_mutex_);
  return assigned_id_;
}

std::optional<NetMessage> HubTcpViewer::next() {
  for (;;) {
    auto conn = current();
    if (!conn || !open_.load()) return std::nullopt;
    try {
      auto msg = conn->recv_message();
      if (msg) return msg;
      // Orderly close at a frame boundary: the hub went away cleanly.
    } catch (const std::exception&) {
      if (!options_.auto_reconnect || !open_.load()) throw;
      // Mid-frame death (WireError), socket error, or expired deadline:
      // the partially received frame was never surfaced — recover and let
      // the resume replay it whole.
    }
    if (!options_.auto_reconnect) return std::nullopt;
    if (!reconnect()) return std::nullopt;
  }
}

HubTcpViewer::~HubTcpViewer() { close(); }

void HubTcpViewer::ack(int step) {
  int prev = last_acked_.load();
  while (step > prev && !last_acked_.compare_exchange_weak(prev, step)) {
  }
  util::LockGuard lock(send_mutex_);
  if (!open_.load()) return;
  NetMessage msg;
  msg.type = MsgType::kAck;
  msg.frame_index = step;
  try {
    current()->send_message(msg);
  } catch (const std::exception&) {
    // The resume point is already recorded locally; a reconnecting viewer
    // re-announces it in the next hello. Fail-fast viewers keep throwing.
    if (!options_.auto_reconnect) throw;
  }
}

void HubTcpViewer::send_control(const net::ControlEvent& event) {
  util::LockGuard lock(send_mutex_);
  if (!open_.load()) return;
  NetMessage msg;
  msg.type = MsgType::kControl;
  msg.payload = event.serialize();
  try {
    current()->send_message(msg);
  } catch (const std::exception&) {
    if (!options_.auto_reconnect) throw;
  }
}

void HubTcpViewer::close() {
  if (!open_.exchange(false)) return;
  // Shut the socket down WITHOUT taking send_mutex_: a sender blocked inside
  // send_message() (the default policy has no io_timeout) holds that lock
  // and can only be unblocked by this very shutdown — waiting for the lock
  // here would deadlock. The pointer snapshot is safe under state_mutex_,
  // which is never held across I/O.
  if (auto conn = current()) conn->shutdown();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

}  // namespace tvviz::hub
