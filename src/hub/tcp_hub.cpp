#include "hub/tcp_hub.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace tvviz::hub {

using net::HelloInfo;
using net::MsgType;
using net::NetMessage;
using net::TcpConnection;

namespace {

obs::Gauge& sessions_gauge() {
  static obs::Gauge& g = obs::gauge("net.hub.epoll.sessions");
  return g;
}

obs::Counter& accept_errors_ctr() {
  static obs::Counter& c = obs::counter("net.hub.accept_errors");
  return c;
}

obs::Counter& stalled_evictions_ctr() {
  static obs::Counter& c = obs::counter("net.hub.stalled_evictions");
  return c;
}

/// Shared hello validation for both transports: refusals get a kError frame
/// and count net.hub.hello_rejected; a non-hello first message is dropped
/// silently (exactly the legacy behavior).
std::optional<HelloInfo> validate_hello(TcpConnection& conn,
                                        const NetMessage& first,
                                        std::uint32_t max_version) {
  if (first.type != MsgType::kHello) return std::nullopt;
  static obs::Counter& rejected = obs::counter("net.hub.hello_rejected");
  const auto refuse = [&](const std::string& reason) {
    rejected.add(1);
    try {
      conn.send_message(net::make_error(reason));
    } catch (const std::exception&) {
    }
  };
  HelloInfo info;
  try {
    info = net::parse_hello(first);
  } catch (const std::exception& e) {
    refuse(std::string("malformed hello: ") + e.what());
    return std::nullopt;
  }
  if (info.version == 0 || info.version > max_version) {
    refuse("unsupported protocol version " + std::to_string(info.version) +
           " (this hub speaks 1.." + std::to_string(max_version) + ")");
    return std::nullopt;
  }
  if (info.role != "renderer" && info.role != "display") {
    refuse("unknown endpoint role '" + info.role +
           "' (expected 'renderer' or 'display')");
    return std::nullopt;
  }
  return info;
}

obs::Counter& depth_stripped_ctr() {
  static obs::Counter& c = obs::counter("net.hub.depth_stripped");
  return c;
}

/// Depth-container frames leave the hub intact only toward viewers that
/// announced the v4 wants_depth capability; everyone else gets the color
/// half (a zero-copy payload view, no re-encode). kFrameData is never
/// rewritten — fetched bodies must still hash to the advertised ContentId
/// at the receiving edge.
NetMessage outbound_frame(const NetMessage& msg, bool wants_depth) {
  if (wants_depth || msg.type != MsgType::kFrame || !net::is_depth_frame(msg))
    return msg;
  depth_stripped_ctr().add(1);
  return net::strip_depth(msg);
}

}  // namespace

/// Epoll-mode per-connection record. `role` and the port pointers are
/// written only inside the serialized read chain (one-shot arm -> worker
/// job -> rearm): consecutive reads of one socket are ordered through the
/// job queue, so they need no lock of their own. `role` is additionally
/// atomic because shutdown() classifies sessions from another thread, and
/// the drain chain reads the port pointers only after the ready/control
/// callback install (whose internal lock publishes them).
struct HubTcpServer::Session {
  Session(int fd_in, std::shared_ptr<TcpConnection> conn_in)
      : fd(fd_in), conn(std::move(conn_in)) {}

  enum class Role { kHandshake, kRenderer, kDisplay };

  const int fd;
  const std::shared_ptr<TcpConnection> conn;
  std::atomic<Role> role{Role::kHandshake};
  std::shared_ptr<FrameHub::RendererPort> renderer_port;
  std::shared_ptr<FrameHub::ClientPort> client_port;
  /// First evict wins; everything downstream of the exchange is idempotent.
  std::atomic<bool> dead{false};
  /// Collapses ready-callback storms into at most one queued drain job.
  std::atomic<bool> drain_scheduled{false};
  std::atomic<bool> control_scheduled{false};
  /// v4 capability: frames keep their depth plane on the way out. Written
  /// once in handle_hello before the first drain, read by drain jobs.
  std::atomic<bool> wants_depth{false};
};

/// Legacy-mode per-connection record (std::list keeps nodes stable while
/// the serve thread runs). `done` is the reap signal: the accept thread
/// joins and erases finished sessions between accepts.
struct HubTcpServer::ThreadSession {
  explicit ThreadSession(std::shared_ptr<TcpConnection> conn_in)
      : conn(std::move(conn_in)) {}
  std::shared_ptr<TcpConnection> conn;
  std::atomic<bool> done{false};
  /// Display sockets stay open through shutdown's flush; see shutdown().
  std::atomic<bool> is_display{false};
  std::thread thread;
};

HubTcpServer::HubTcpServer(int port, HubConfig config)
    : hub_(config),
      config_(config),
      max_version_(config.max_protocol_version) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("hub: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("hub: bind failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("hub: listen failed");
  }
  if (config_.tcp_transport == HubConfig::TcpTransport::kEpoll)
    start_epoll();
  else
    accept_thread_ = std::thread([this] { accept_loop(); });
}

HubTcpServer::~HubTcpServer() { shutdown(); }

std::size_t HubTcpServer::active_sessions() const {
  if (loop_) {
    util::LockGuard lock(sessions_mutex_);
    return sessions_.size();
  }
  util::LockGuard lock(threads_mutex_);
  std::size_t n = 0;
  for (const auto& s : thread_sessions_)
    if (!s.done.load()) ++n;
  return n;
}

// ------------------------------------------------- epoll transport ----

void HubTcpServer::start_epoll() {
  // The loop thread must never block in accept(): drain with non-blocking
  // accepts until EAGAIN, then re-arm. Accepted sockets stay blocking
  // (TcpConnection's deadline machinery handles them).
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  loop_ = net::EventLoop::make_epoll();
  loop_->add(listen_fd_, net::kEventRead,
             // tvviz-analyzer: allow(loop-this-capture): the server owns the
             // loop; stop() joins the loop thread before `this` dies.
             [this](std::uint32_t) { on_accept_ready(); });
  std::size_t n = config_.tcp_workers;
  if (n == 0)
    n = std::min<std::size_t>(
        4, std::max(1u, std::thread::hardware_concurrency()));
  pool_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pool_.emplace_back([this] { worker_loop(); });
  loop_thread_ = std::thread([this] { loop_->run(); });
}

void HubTcpServer::worker_loop() {
  obs::set_thread_lane("hub worker");
  static obs::Counter& jobs_ctr = obs::counter("net.hub.epoll.jobs");
  while (auto job = jobs_.pop()) {
    jobs_ctr.add(1);
    (*job)();
  }
}

void HubTcpServer::on_accept_ready() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) break;  // backlog drained
      if (!running_.load()) return;
      if (!net::accept_should_retry(err)) return;  // listener is gone
      accept_errors_ctr().add(1);
      if (net::accept_error_needs_backoff(err)) {
        // Descriptor/buffer exhaustion: an instant retry would spin on the
        // same error. Leave the listener disarmed and re-enter after a
        // capped exponential backoff; a successful accept resets it.
        accept_backoff_ms_ = std::min(accept_backoff_ms_ * 2.0 + 1.0, 100.0);
        loop_->post_after(accept_backoff_ms_, [this] {
          if (running_.load()) on_accept_ready();
        });
        return;
      }
      continue;  // EINTR / ECONNABORTED: just try again
    }
    accept_backoff_ms_ = 0.0;
    auto conn = std::make_shared<TcpConnection>(fd);
    if (config_.tcp_io_timeout_ms > 0.0)
      conn->set_io_timeout_ms(config_.tcp_io_timeout_ms);
    auto session = std::make_shared<Session>(fd, std::move(conn));
    {
      util::LockGuard lock(sessions_mutex_);
      sessions_[fd] = session;
      sessions_gauge().set(static_cast<std::int64_t>(sessions_.size()));
    }
    loop_->add(fd, net::kEventRead,
               [this, ws = std::weak_ptr<Session>(session)](std::uint32_t) {
                 if (auto s = ws.lock()) schedule_read(s);
               });
  }
  if (running_.load()) loop_->rearm(listen_fd_, net::kEventRead);
}

void HubTcpServer::schedule_read(const std::shared_ptr<Session>& session) {
  if (session->dead.load()) return;
  jobs_.push([this, session] { on_readable(session); });
}

void HubTcpServer::on_readable(const std::shared_ptr<Session>& session) {
  if (session->dead.load()) return;
  std::optional<NetMessage> msg;
  try {
    msg = session->conn->recv_message();
  } catch (const net::TimeoutError&) {
    // Readable but unable to complete a frame within the deadline: a
    // slow-loris handshake or a peer stalled mid-frame. Evict rather than
    // park a worker on it again.
    stalled_evictions_ctr().add(1);
    evict(session);
    return;
  } catch (const std::exception&) {
    evict(session);
    return;
  }
  if (!msg) {
    evict(session);
    return;
  }
  switch (session->role.load()) {
    case Session::Role::kHandshake:
      handle_hello(session, std::move(*msg));
      return;  // rearms (or evicts) itself
    case Session::Role::kRenderer:
      session->renderer_port->send(std::move(*msg));
      break;
    case Session::Role::kDisplay:
      switch (msg->type) {
        case MsgType::kAck:
          session->client_port->ack(msg->frame_index);
          break;
        case MsgType::kHeartbeat:
          session->client_port->heartbeat();
          break;
        case MsgType::kControl:
          session->client_port->send_control(
              net::ControlEvent::deserialize(msg->payload));
          break;
        case MsgType::kFrameFetch:
          // The reply rides the client's own queue (normal drain path), so
          // it can never interleave with an in-flight worker send.
          try {
            session->client_port->request_content(
                net::parse_frame_fetch(*msg));
          } catch (const std::exception&) {
            evict(session);  // malformed fetch: treat like any wire error
            return;
          }
          break;
        default:
          // A display endpoint has no business sending frame/hello types;
          // log rather than drop silently so a protocol-v5 sender is
          // visible (wire-switch-default, DESIGN.md §18).
          TVVIZ_LOG(kWarn) << "hub: ignoring unexpected message type "
                           << static_cast<int>(msg->type)
                           << " from display fd=" << session->fd;
          break;
      }
      break;
  }
  loop_->rearm(session->fd, net::kEventRead);
}

void HubTcpServer::handle_hello(const std::shared_ptr<Session>& session,
                                NetMessage first) {
  auto info = validate_hello(*session->conn, first, max_version_);
  if (!info) {
    evict(session);
    return;
  }
  std::weak_ptr<Session> ws = session;
  if (info->role == "renderer") {
    session->renderer_port = hub_.connect_renderer();
    session->renderer_port->set_control_callback([this, ws] {
      if (auto s = ws.lock()) schedule_control_drain(s);
    });
    session->role.store(Session::Role::kRenderer);
    loop_->rearm(session->fd, net::kEventRead);
    return;
  }
  ClientOptions options;
  options.id = info->client_id;
  options.queue_frames = info->queue_frames;
  // The capability byte is only meaningful from a peer that actually
  // speaks the v3 exchange; a v2 hello with stray trailing bytes must not
  // switch its stream to advertisements it cannot resolve.
  options.wants_frame_refs = info->wants_frame_refs && info->version >= 3;
  // v4 capability, same rule: only honored from a peer that speaks v4.
  session->wants_depth.store(info->wants_depth && info->version >= 4);
  if (info->last_acked_step >= 0) {
    // An explicit resume point also applies to ids the hub has never seen
    // (e.g. the hub restarted and lost its registry but the cache refilled).
    options.replay_cache = true;
    options.replay_after_step = info->last_acked_step;
  }
  std::shared_ptr<FrameHub::ClientPort> port;
  try {
    port = hub_.connect_client(std::move(options));
  } catch (const std::exception& e) {
    try {
      session->conn->send_message(net::make_error(e.what()));
    } catch (const std::exception&) {
    }
    evict(session);
    return;
  }
  if (info->last_acked_step >= 0) port->ack(info->last_acked_step);
  {
    NetMessage ok;
    ok.type = MsgType::kHelloAck;
    ok.codec = port->id();  // the identity the hub filed this client under
    try {
      session->conn->send_message(ok);
    } catch (const std::exception&) {
      hub_.disconnect_client(*port);
      evict(session);
      return;
    }
  }
  session->client_port = std::move(port);
  session->role.store(Session::Role::kDisplay);
  session->client_port->set_ready_callback([this, ws] {
    if (auto s = ws.lock()) schedule_drain(s);
  });
  // The connect-time replay may already be queued; drain it now rather
  // than waiting for the next live delivery.
  schedule_drain(session);
  loop_->rearm(session->fd, net::kEventRead);
}

void HubTcpServer::schedule_drain(const std::shared_ptr<Session>& session) {
  if (session->dead.load()) return;
  if (session->drain_scheduled.exchange(true)) return;
  if (!jobs_.push([this, session] { drain_display(session); }))
    session->drain_scheduled.store(false);  // shutting down; flush job lost
}

void HubTcpServer::drain_display(const std::shared_ptr<Session>& session) {
  // Clear-then-drain: a delivery landing after the clear schedules a fresh
  // job; one landing before it is picked up by this loop. No lost wakeups.
  session->drain_scheduled.store(false);
  if (session->dead.load()) return;
  auto port = session->client_port;
  if (!port) return;
  const bool wants_depth = session->wants_depth.load();
  while (auto msg = port->try_next()) {
    try {
      session->conn->send_message(outbound_frame(*msg, wants_depth));
    } catch (const net::TimeoutError&) {
      // Zero bytes accepted within the deadline: the viewer stopped
      // reading. Evict it instead of letting it pin a worker.
      stalled_evictions_ctr().add(1);
      evict(session);
      return;
    } catch (const net::SendDeadlineError&) {
      // Same stall, caught mid-frame: the connection is already shut
      // (stream desynchronized), but the cause is still a stalled reader.
      stalled_evictions_ctr().add(1);
      evict(session);
      return;
    } catch (const std::exception&) {
      evict(session);
      return;
    }
  }
  // Closed and fully flushed (hub shutdown, reap, or reconnect takeover):
  // this drain is the last act of the session.
  if (port->closed() && port->buffered() == 0) evict(session);
}

void HubTcpServer::schedule_control_drain(
    const std::shared_ptr<Session>& session) {
  if (session->dead.load()) return;
  if (session->control_scheduled.exchange(true)) return;
  if (!jobs_.push([this, session] { drain_renderer_control(session); }))
    session->control_scheduled.store(false);
}

void HubTcpServer::drain_renderer_control(
    const std::shared_ptr<Session>& session) {
  session->control_scheduled.store(false);
  if (session->dead.load()) return;
  auto port = session->renderer_port;
  if (!port) return;
  while (auto event = port->poll_control()) {
    NetMessage msg;
    msg.type = MsgType::kControl;
    msg.payload = event->serialize();
    try {
      session->conn->send_message(msg);
    } catch (const std::exception&) {
      evict(session);
      return;
    }
  }
}

void HubTcpServer::evict(const std::shared_ptr<Session>& session) {
  if (session->dead.exchange(true)) return;
  loop_->remove(session->fd);
  if (session->client_port) hub_.disconnect_client(*session->client_port);
  if (session->renderer_port)
    hub_.disconnect_renderer(*session->renderer_port);
  session->conn->shutdown();
  util::LockGuard lock(sessions_mutex_);
  sessions_.erase(session->fd);
  sessions_gauge().set(static_cast<std::int64_t>(sessions_.size()));
}

// ------------------------------------- legacy thread-per-connection ----

void HubTcpServer::accept_loop() {
  double backoff_ms = 1.0;
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      // Only a dead listener (shutdown, EBADF/EINVAL) stops the loop;
      // transient failures are counted and retried — EMFILE-class ones
      // after a capped backoff so the retry doesn't spin.
      if (!running_.load() || !net::accept_should_retry(err)) return;
      accept_errors_ctr().add(1);
      if (net::accept_error_needs_backoff(err)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2.0, 100.0);
      }
      continue;
    }
    backoff_ms = 1.0;
    reap_finished_sessions();
    auto conn = std::make_shared<TcpConnection>(fd);
    if (config_.tcp_io_timeout_ms > 0.0)
      conn->set_io_timeout_ms(config_.tcp_io_timeout_ms);
    util::LockGuard lock(threads_mutex_);
    ThreadSession& session = thread_sessions_.emplace_back(std::move(conn));
    // The handshake (a blocking read) runs on the serve thread, never here:
    // a client that connects and goes silent must not block the next
    // accept.
    session.thread = std::thread([this, &session] { serve_connection(session); });
  }
}

void HubTcpServer::reap_finished_sessions() {
  std::vector<std::thread> finished;
  {
    util::LockGuard lock(threads_mutex_);
    for (auto it = thread_sessions_.begin(); it != thread_sessions_.end();) {
      if (it->done.load()) {
        finished.push_back(std::move(it->thread));
        it = thread_sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& t : finished)
    if (t.joinable()) t.join();
}

void HubTcpServer::serve_connection(ThreadSession& session) {
  const auto conn = session.conn;
  std::optional<NetMessage> first;
  try {
    first = conn->recv_message();
  } catch (const std::exception&) {
    first.reset();  // malformed first frame: drop, keep serving others
  }
  if (first) {
    if (auto info = validate_hello(*conn, *first, max_version_)) {
      if (info->role == "renderer") {
        serve_renderer(conn);
      } else {
        session.is_display.store(true);
        serve_display(conn, std::move(*info));
      }
    }
  }
  session.done.store(true);
}

void HubTcpServer::serve_renderer(std::shared_ptr<TcpConnection> conn) {
  auto port = hub_.connect_renderer();
  std::atomic<bool> reading{true};
  std::thread writer([&] {
    while (reading.load() && running_.load()) {
      bool sent = false;
      while (auto event = port->poll_control()) {
        NetMessage msg;
        msg.type = MsgType::kControl;
        msg.payload = event->serialize();
        try {
          conn->send_message(msg);
        } catch (const std::exception&) {
          return;
        }
        sent = true;
      }
      if (!sent) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  while (running_.load()) {
    std::optional<NetMessage> msg;
    try {
      msg = conn->recv_message();
    } catch (const std::exception&) {
      // Malformed wire data or a socket error mid-stream: treat it as a
      // disconnect. An uncaught throw here would std::terminate the whole
      // hub process on one misbehaving renderer.
      break;
    }
    if (!msg) break;
    port->send(std::move(*msg));
  }
  reading.store(false);
  writer.join();
  hub_.disconnect_renderer(*port);
}

void HubTcpServer::serve_display(std::shared_ptr<TcpConnection> conn,
                                 HelloInfo info) {
  ClientOptions options;
  options.id = info.client_id;
  options.queue_frames = info.queue_frames;
  options.wants_frame_refs = info.wants_frame_refs && info.version >= 3;
  const bool wants_depth = info.wants_depth && info.version >= 4;
  if (info.last_acked_step >= 0) {
    // An explicit resume point also applies to ids the hub has never seen
    // (e.g. the hub restarted and lost its registry but the cache refilled).
    options.replay_cache = true;
    options.replay_after_step = info.last_acked_step;
  }
  std::shared_ptr<FrameHub::ClientPort> port;
  try {
    port = hub_.connect_client(std::move(options));
  } catch (const std::exception& e) {
    try {
      conn->send_message(net::make_error(e.what()));
    } catch (const std::exception&) {
    }
    return;
  }
  if (info.last_acked_step >= 0) port->ack(info.last_acked_step);
  {
    NetMessage ok;
    ok.type = MsgType::kHelloAck;
    ok.codec = port->id();  // the identity the hub filed this client under
    try {
      conn->send_message(ok);
    } catch (const std::exception&) {
      hub_.disconnect_client(*port);
      return;
    }
  }
  // Reader: acks, heartbeats and control events from the viewer. A dead
  // socket detaches the port here so the writer's blocking next() wakes up
  // — otherwise an idle disconnected session would linger until the next
  // frame tried to flow (the churn regression). Shutdown is the exception:
  // the port must stay open for the writer's flush of the queue tail.
  std::thread reader([&] {
    while (running_.load()) {
      std::optional<NetMessage> msg;
      try {
        msg = conn->recv_message();
      } catch (const std::exception&) {
        if (running_.load()) hub_.disconnect_client(*port);
        return;
      }
      if (!msg) {
        if (running_.load()) hub_.disconnect_client(*port);
        return;
      }
      switch (msg->type) {
        case MsgType::kAck:
          port->ack(msg->frame_index);
          break;
        case MsgType::kHeartbeat:
          port->heartbeat();
          break;
        case MsgType::kControl:
          port->send_control(net::ControlEvent::deserialize(msg->payload));
          break;
        case MsgType::kFrameFetch:
          try {
            port->request_content(net::parse_frame_fetch(*msg));
          } catch (const std::exception&) {
            if (running_.load()) hub_.disconnect_client(*port);
            return;  // malformed fetch: same exit as any wire error
          }
          break;
        default:
          // Same contract as the epoll path: never swallow an unknown
          // message type silently (wire-switch-default, DESIGN.md §18).
          TVVIZ_LOG(kWarn) << "hub: ignoring unexpected message type "
                           << static_cast<int>(msg->type)
                           << " from display client " << port->id();
          break;
      }
    }
  });
  // Writer: the client's queue onto the socket. Runs past running_ going
  // false so a shutdown flushes the queue tail (next() returns nullptr once
  // the port is closed *and* drained).
  for (;;) {
    auto msg = port->next();
    if (!msg) break;
    try {
      conn->send_message(outbound_frame(*msg, wants_depth));
    } catch (const std::exception&) {
      break;
    }
  }
  // Socket gone or port closed: detach without forgetting, so this id can
  // reconnect and resume from its last acked step.
  hub_.disconnect_client(*port);
  conn->shutdown();
  reader.join();
}

// -------------------------------------------------------- shutdown ----

void HubTcpServer::shutdown() {
  if (!running_.exchange(false)) return;
  if (loop_) loop_->remove(listen_fd_);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (loop_) {
    // Order matters for the flush guarantee: first stop the inflow by
    // shutting the renderer (and still-handshaking) sockets, then drain the
    // hub into the client queues — closing each port fires its ready
    // callback, queueing a final flush drain — and only then retire the
    // workers: jobs_.close() lets them finish every queued flush over the
    // still-open display sockets before exiting.
    std::vector<std::shared_ptr<Session>> snapshot;
    {
      util::LockGuard lock(sessions_mutex_);
      snapshot.reserve(sessions_.size());
      for (auto& [fd, s] : sessions_) snapshot.push_back(s);
    }
    for (auto& s : snapshot)
      if (s->role.load() != Session::Role::kDisplay) s->conn->shutdown();
    hub_.shutdown();
    jobs_.close();
    for (auto& t : pool_)
      if (t.joinable()) t.join();
    loop_->stop();
    if (loop_thread_.joinable()) loop_thread_.join();
    // Anything not evicted by its flush drain (e.g. a socket that was
    // already broken): close it now.
    snapshot.clear();
    {
      util::LockGuard lock(sessions_mutex_);
      for (auto& [fd, s] : sessions_) snapshot.push_back(s);
      sessions_.clear();
      sessions_gauge().set(0);
    }
    for (auto& s : snapshot) s->conn->shutdown();
    return;
  }
  // Legacy: same ordering with per-connection threads. Display sockets stay
  // open so their writer loops can flush the queue tails.
  {
    util::LockGuard lock(threads_mutex_);
    for (auto& s : thread_sessions_)
      if (!s.is_display.load()) s.conn->shutdown();
  }
  hub_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<ThreadSession> rest;
  {
    util::LockGuard lock(threads_mutex_);
    rest.splice(rest.begin(), thread_sessions_);
  }
  for (auto& s : rest) {
    if (s.thread.joinable()) s.thread.join();
    s.conn->shutdown();
  }
}

// -------------------------------------------------------- HubTcpViewer ----

HubTcpViewer::HubTcpViewer(int port) : HubTcpViewer(port, Options()) {}

HubTcpViewer::HubTcpViewer(int port, Options options)
    : port_(port), options_(std::move(options)) {
  last_acked_.store(options_.last_acked_step);
  // Seed the jitter stream from the requested identity so a named viewer's
  // backoff schedule replays deterministically. The 'view' tag keeps the
  // stream distinct from the hub's link_rng for the same id.
  std::uint64_t jitter_seed = util::fnv1a(options_.client_id, 0x76696577ULL);
  retry_rng_ = util::Rng(util::splitmix64(jitter_seed));
  if (options_.auto_reconnect) {
    // First contact under the policy too: an injected refused connect (or a
    // hub still starting up) is ridden out here rather than thrown.
    fault::Backoff backoff(options_.retry, retry_rng_.fork());
    std::exception_ptr last;
    std::shared_ptr<TcpConnection> conn;
    while (!conn && backoff.next()) {
      try {
        conn = connect_and_handshake();
      } catch (const net::SocketError&) {
        last = std::current_exception();
      }
    }
    if (!conn) {
      if (last) std::rethrow_exception(last);
      throw net::SocketError("hub: viewer connect attempts exhausted");
    }
    util::LockGuard lock(state_mutex_);
    conn_ = std::move(conn);
  } else {
    // Handshake first (it does I/O and excludes state_mutex_), then install
    // the socket under the — still uncontended — state lock.
    auto conn = connect_and_handshake();
    util::LockGuard lock(state_mutex_);
    conn_ = std::move(conn);
  }
  if (options_.heartbeat_interval_ms > 0) {
    const auto interval =
        std::chrono::milliseconds(options_.heartbeat_interval_ms);
    heartbeat_thread_ = std::thread([this, interval] {
      while (open_.load()) {
        {
          util::LockGuard lock(send_mutex_);
          if (!open_.load()) break;
          NetMessage beat;
          beat.type = MsgType::kHeartbeat;
          try {
            current()->send_message(beat);
          } catch (const std::exception&) {
            // With auto_reconnect the next() loop is (or will be) swapping
            // the socket; keep beating on whatever is installed next.
            if (!options_.auto_reconnect) return;
          }
        }
        std::this_thread::sleep_for(interval);
      }
    });
  }
}

std::shared_ptr<TcpConnection> HubTcpViewer::connect_and_handshake() {
  // The downgrade ladder: each "unsupported protocol version" refusal steps
  // hello_version_ down one generation and retries on a fresh socket (the
  // server closes after a kError). v4 -> v3 loses only the depth plane and
  // v3 -> v2 only the frame-ref capability — both always taken; v2 -> v1
  // loses identity and resume, so it is gated on allow_downgrade. The
  // settled rung is sticky: later reconnects to the same server start where
  // the ladder ended.
  for (;;) {
    auto conn = std::shared_ptr<TcpConnection>(
        TcpConnection::connect_local(port_).release());
    if (options_.retry.io_timeout_ms > 0.0)
      conn->set_io_timeout_ms(options_.retry.io_timeout_ms);
    const std::uint32_t version = hello_version_.load();
    if (version >= 2) {
      HelloInfo info;
      info.version = version;
      info.role = "display";
      // A reconnect reclaims the identity the hub assigned on first contact
      // and resumes after the newest step this viewer acked. assigned_id_
      // is shared with assigned_id() callers on other threads, so snapshot
      // it under the state lock.
      {
        util::LockGuard lock(state_mutex_);
        info.client_id =
            assigned_id_.empty() ? options_.client_id : assigned_id_;
      }
      info.last_acked_step = last_acked_.load();
      info.queue_frames = options_.queue_frames;
      info.wants_heartbeat = options_.heartbeat_interval_ms > 0;
      info.wants_frame_refs = options_.wants_frame_refs && version >= 3;
      info.wants_depth = options_.wants_depth && version >= 4;
      conn->send_message(net::make_hello(info));
    } else {
      // Legacy v1 hello: role in the codec field, no capability payload.
      NetMessage legacy;
      legacy.type = MsgType::kHello;
      legacy.codec = "display";
      conn->send_message(legacy);
    }
    auto reply = conn->recv_message();
    if (!reply)
      throw net::SocketError("hub: server closed during handshake");
    if (reply->type == MsgType::kError) {
      const std::string text = net::error_text(*reply);
      const bool version_refusal =
          text.find("unsupported protocol version") != std::string::npos;
      if (version_refusal && version > 2) {
        static obs::Counter& downgrades =
            obs::counter("net.retry.downgrades");
        downgrades.add(1);
        // One rung at a time (v4 -> v3 -> v2): a v3 hub refuses v4 but
        // happily speaks v3, and the capability bytes degrade gracefully.
        hello_version_.store(version - 1);
        continue;
      }
      if (version_refusal && version == 2 && options_.allow_downgrade) {
        static obs::Counter& downgrades =
            obs::counter("net.retry.downgrades");
        downgrades.add(1);
        downgraded_.store(true);
        hello_version_.store(1);
        continue;
      }
      throw std::runtime_error("hub: refused: " + text);
    }
    if (reply->type != MsgType::kHelloAck)
      throw std::runtime_error("hub: unexpected handshake reply");
    {
      util::LockGuard lock(state_mutex_);
      assigned_id_ = reply->codec;
    }
    return conn;
  }
}

bool HubTcpViewer::reconnect() {
  obs::Span span("net.retry.reconnect");
  fault::Backoff backoff(options_.retry, retry_rng_.fork());
  while (open_.load() && backoff.next()) {
    std::shared_ptr<TcpConnection> fresh;
    try {
      fresh = connect_and_handshake();
    } catch (const std::exception&) {
      continue;
    }
    std::shared_ptr<TcpConnection> old;
    {
      util::LockGuard lock(state_mutex_);
      old = std::move(conn_);
      conn_ = std::move(fresh);
    }
    // Shut the old socket down outside the lock: if a sender is blocked
    // inside send_message() on it (holding send_mutex_), this is what
    // unblocks them — they fail over to the fresh connection on retry.
    if (old) old->shutdown();
    static obs::Counter& reconnects = obs::counter("net.retry.reconnects");
    reconnects.add(1);
    reconnects_.fetch_add(1);
    return true;
  }
  return false;
}

std::shared_ptr<TcpConnection> HubTcpViewer::current() const {
  util::LockGuard lock(state_mutex_);
  return conn_;
}

std::string HubTcpViewer::assigned_id() const {
  util::LockGuard lock(state_mutex_);
  return assigned_id_;
}

std::optional<NetMessage> HubTcpViewer::next() {
  for (;;) {
    auto conn = current();
    if (!conn || !open_.load()) return std::nullopt;
    try {
      auto msg = conn->recv_message();
      if (msg) {
        bytes_received_.fetch_add(msg->wire_size());
        return msg;
      }
      // Orderly close at a frame boundary: the hub went away cleanly.
    } catch (const std::exception&) {
      if (!options_.auto_reconnect || !open_.load()) throw;
      // Mid-frame death (WireError), socket error, or expired deadline:
      // the partially received frame was never surfaced — recover and let
      // the resume replay it whole.
    }
    if (!options_.auto_reconnect) return std::nullopt;
    if (!reconnect()) return std::nullopt;
  }
}

HubTcpViewer::~HubTcpViewer() { close(); }

void HubTcpViewer::ack(int step) {
  int prev = last_acked_.load();
  while (step > prev && !last_acked_.compare_exchange_weak(prev, step)) {
  }
  util::LockGuard lock(send_mutex_);
  if (!open_.load()) return;
  NetMessage msg;
  msg.type = MsgType::kAck;
  msg.frame_index = step;
  try {
    current()->send_message(msg);
  } catch (const std::exception&) {
    // The resume point is already recorded locally; a reconnecting viewer
    // re-announces it in the next hello. Fail-fast viewers keep throwing.
    if (!options_.auto_reconnect) throw;
  }
}

void HubTcpViewer::request_frame(net::ContentId content) {
  util::LockGuard lock(send_mutex_);
  if (!open_.load()) return;
  try {
    current()->send_message(net::make_frame_fetch(content));
  } catch (const std::exception&) {
    // The pending ref stays unresolved; the reconnect's resume replays the
    // advertisement and the edge asks again. Fail-fast endpoints throw.
    if (!options_.auto_reconnect) throw;
  }
}

void HubTcpViewer::send_control(const net::ControlEvent& event) {
  util::LockGuard lock(send_mutex_);
  if (!open_.load()) return;
  NetMessage msg;
  msg.type = MsgType::kControl;
  msg.payload = event.serialize();
  try {
    current()->send_message(msg);
  } catch (const std::exception&) {
    if (!options_.auto_reconnect) throw;
  }
}

void HubTcpViewer::close() {
  if (!open_.exchange(false)) return;
  // Shut the socket down WITHOUT taking send_mutex_: a sender blocked inside
  // send_message() (the default policy has no io_timeout) holds that lock
  // and can only be unblocked by this very shutdown — waiting for the lock
  // here would deadlock. The pointer snapshot is safe under state_mutex_,
  // which is never held across I/O.
  if (auto conn = current()) conn->shutdown();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

}  // namespace tvviz::hub
