// FrameHub: the multi-client session broker. It sits where DisplayDaemon
// sits — between the parallel renderer's interface and the display side of
// §4.1 — but serves N viewers from one renderer stream:
//
//  * every compressed frame is stored once in a reference-counted
//    FrameCache and fanned out to the clients by shared pointer, so the
//    encode cost is paid once per time step no matter how many viewers
//    are attached;
//  * each client has its own bounded send queue with a newest-frame-wins
//    drop policy: a slow client loses its own oldest frames (counted) and
//    never stalls the renderer or the other clients;
//  * clients carry liveness state (acks, heartbeats); a configurable idle
//    timeout reaps dead clients, and a returning client reconnects by id
//    and is resumed from the cache starting after its last acked step;
//  * per-client LinkModel throttling simulates heterogeneous WAN paths in
//    process (the real-socket form lives in hub/tcp_hub.hpp).
//
// Control events flow back from any client and are broadcast to every
// renderer interface, exactly like the single-client daemon.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hub/frame_cache.hpp"
#include "net/link.hpp"
#include "net/protocol.hpp"
#include "net/queue.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace tvviz::hub {

struct HubConfig {
  std::size_t cache_steps = 32;         ///< Frame-cache ring capacity.
  std::size_t client_queue_frames = 8;  ///< Default per-client send bound.
  std::size_t max_clients = 64;
  /// Reap a client idle (no pop/ack/heartbeat) longer than this. 0 = never.
  double heartbeat_timeout_s = 0.0;
  /// Highest protocol version this hub's TCP front end accepts (see
  /// hub/tcp_hub.hpp). Lowering it below net::kProtocolVersion simulates an
  /// older server, which newer viewers must downgrade to (handshake
  /// renegotiation) — exercised by the chaos suite.
  std::uint32_t max_protocol_version = net::kProtocolVersion;

  /// TCP front-end architecture (hub/tcp_hub.hpp). kEpoll is the default:
  /// one readiness loop plus a fixed worker pool, O(1) threads for any
  /// client count. kThreadPerConnection is the legacy shape, kept for the
  /// apples-to-apples ablation (bench/ablation_hub_fanout --transport).
  enum class TcpTransport { kEpoll, kThreadPerConnection };
  TcpTransport tcp_transport = TcpTransport::kEpoll;
  /// I/O deadline installed on accepted hub sockets; a display that stops
  /// reading long enough to stall a worker mid-send is evicted
  /// (net.hub.stalled_evictions) instead of wedging the pool. 0 = none.
  double tcp_io_timeout_ms = 0.0;
  /// Worker threads behind the epoll loop. 0 = auto (min(4, hardware)).
  std::size_t tcp_workers = 0;
};

struct ClientOptions {
  std::string id;                ///< Stable identity; empty = auto-assign.
  std::size_t queue_frames = 0;  ///< 0 = the hub default.
  /// Simulated delivery link: next() sleeps transfer_seconds * scale per
  /// message. scale 0 disables (LAN-instant delivery).
  net::LinkModel link{};
  double link_time_scale = 0.0;
  /// Serve cached history before the live stream (late joiner / explicit
  /// resume): every cached step > replay_after_step is queued on connect.
  bool replay_cache = false;
  int replay_after_step = -1;
  /// Frame-by-reference delivery (protocol v3, the relay tree): this client
  /// keeps its own content-addressed cache, so image traffic — live and
  /// replayed — is queued as kFrameRef advertisements; the client answers
  /// with request_content() only on a cache miss.
  bool wants_frame_refs = false;
};

struct ClientStats {
  std::string id;
  bool connected = false;
  int last_acked_step = -1;
  std::uint64_t messages_delivered = 0;
  std::uint64_t steps_skipped = 0;    ///< Whole steps dropped by backpressure.
  std::uint64_t messages_resumed = 0; ///< Replayed from the cache on connect.
};

class FrameHub {
 public:
  /// Renderer-side connection; same shape as DisplayDaemon::RendererPort so
  /// session code can drive either transport through one adapter.
  class RendererPort {
   public:
    void send(net::NetMessage msg);
    std::optional<net::ControlEvent> poll_control();

    /// Invoked (from the hub's broadcast path) after control events become
    /// available via poll_control(), and once when the hub shuts the control
    /// queue. Runs outside hub locks; must not block. Used by the event-loop
    /// transport to schedule a control drain instead of polling.
    void set_control_callback(std::function<void()> cb)
        TVVIZ_EXCLUDES(cb_mutex_);

   private:
    friend class FrameHub;
    explicit RendererPort(FrameHub* hub) : hub_(hub) {}
    void notify_control() TVVIZ_EXCLUDES(cb_mutex_);
    FrameHub* hub_;
    net::BlockingQueue<net::ControlEvent> control_{1024};
    mutable util::Mutex cb_mutex_;
    std::function<void()> control_cb_ TVVIZ_GUARDED_BY(cb_mutex_);
  };

  struct ClientState;  // opaque; defined in hub.cpp's view of this header

  /// Display-side connection. Frames come out as shared immutable buffers.
  class ClientPort {
   public:
    /// Next message; blocks. nullptr once the client is closed (hub
    /// shutdown, reap, or takeover by a reconnect) and its queue drained.
    FramePtr next();
    /// Bounded-wait variant; nullptr on timeout or closed (check closed()).
    FramePtr next_for(std::chrono::milliseconds timeout);
    /// Non-blocking pop: nullptr when the queue is momentarily empty (or
    /// closed and drained — distinguish with closed()). The event-loop
    /// transport drains queues with this instead of parking a thread.
    FramePtr try_next();

    /// Invoked after a message lands in this client's queue and once when
    /// the port is closed. Runs outside the per-client lock on the hub's
    /// delivery path; must not block. Replaces the dedicated writer thread
    /// in the event-loop transport.
    void set_ready_callback(std::function<void()> cb);

    /// Acknowledge that `step` was displayed (the resume point after a
    /// disconnect). Also counts as liveness.
    void ack(int step);
    /// Liveness beacon for clients that are between frames.
    void heartbeat();
    /// User-control event toward every renderer interface.
    void send_control(const net::ControlEvent& event);
    /// Cache-miss follow-up to a kFrameRef (wants_frame_refs clients): the
    /// hub answers with a kFrameData on this client's own queue — through
    /// the normal delivery path, so it never interleaves with an in-flight
    /// send — or counts net.relay.fetch_misses if the content was evicted
    /// (the edge skips that step, exactly like a backpressure drop).
    void request_content(net::ContentId content);

    const std::string& id() const;
    bool closed() const;
    std::size_t buffered() const;

   private:
    friend class FrameHub;
    ClientPort(FrameHub* hub, std::shared_ptr<ClientState> state)
        : hub_(hub), state_(std::move(state)) {}
    FrameHub* hub_;
    std::shared_ptr<ClientState> state_;
  };

  explicit FrameHub(HubConfig config = {});
  ~FrameHub();

  FrameHub(const FrameHub&) = delete;
  FrameHub& operator=(const FrameHub&) = delete;

  std::shared_ptr<RendererPort> connect_renderer()
      TVVIZ_EXCLUDES(clients_mutex_);

  /// Detach a renderer interface: closes its control queue and drops the
  /// hub's reference so churned renderer connections do not accumulate.
  void disconnect_renderer(RendererPort& port) TVVIZ_EXCLUDES(clients_mutex_);

  /// Attach a client. If `options.id` names a client seen before, this is a
  /// reconnect: the new port is resumed from the cache starting after the
  /// client's last acked step (a still-open old port is closed — takeover).
  /// Throws std::runtime_error at max_clients.
  std::shared_ptr<ClientPort> connect_client(ClientOptions options = {})
      TVVIZ_EXCLUDES(clients_mutex_);

  /// Detach without forgetting: the client's last acked step is kept so a
  /// later connect_client with the same id resumes where it left off.
  void disconnect_client(ClientPort& port) TVVIZ_EXCLUDES(clients_mutex_);

  /// Orderly shutdown: drain every frame already accepted from the
  /// renderers into the client queues (the flush guarantee), then close
  /// all ports and wake every blocked endpoint.
  void shutdown() TVVIZ_EXCLUDES(clients_mutex_);

  std::size_t connected_clients() const TVVIZ_EXCLUDES(clients_mutex_);
  std::vector<ClientStats> client_stats() const TVVIZ_EXCLUDES(clients_mutex_);
  ClientStats stats_for(const std::string& id) const;
  std::uint64_t steps_relayed() const noexcept { return steps_relayed_.load(); }
  std::uint64_t clients_reaped() const noexcept { return clients_reaped_.load(); }
  FrameCache& cache() noexcept { return cache_; }

 private:
  struct Inbound {
    bool is_control = false;
    net::NetMessage msg;
    net::ControlEvent control;
  };

  void relay_loop() TVVIZ_EXCLUDES(clients_mutex_);
  /// Answer one client's kFrameFetch from the content index (see
  /// ClientPort::request_content).
  void serve_fetch(const std::shared_ptr<ClientState>& client,
                   net::ContentId content) TVVIZ_EXCLUDES(clients_mutex_);
  void broadcast_control(const net::ControlEvent& event)
      TVVIZ_EXCLUDES(clients_mutex_);
  /// Fan-out delivery happens strictly outside the clients_mutex_ snapshot
  /// section: it takes the per-client lock and must never nest inside.
  void deliver(const std::shared_ptr<ClientState>& client, FramePtr msg)
      TVVIZ_EXCLUDES(clients_mutex_);
  void reap_idle_clients() TVVIZ_EXCLUDES(clients_mutex_);
  /// Takes only the per-client lock; callers may or may not hold
  /// clients_mutex_ (reap does not).
  void close_client(const std::shared_ptr<ClientState>& client);
  double now_s() const { return clock_.seconds(); }

  HubConfig config_;
  FrameCache cache_;
  util::WallTimer clock_;
  net::BlockingQueue<Inbound> inbox_{4096};

  mutable util::Mutex clients_mutex_;
  /// Every client ever seen, connected or not (the "not" keep last_acked
  /// for resume). Ordered by insertion for deterministic stats output.
  std::vector<std::shared_ptr<ClientState>> clients_
      TVVIZ_GUARDED_BY(clients_mutex_);
  std::vector<std::shared_ptr<RendererPort>> renderers_
      TVVIZ_GUARDED_BY(clients_mutex_);
  int next_auto_id_ TVVIZ_GUARDED_BY(clients_mutex_) = 0;

  std::atomic<std::uint64_t> steps_relayed_{0};
  std::atomic<std::uint64_t> clients_reaped_{0};
  /// Set once a kShutdown crosses the relay: clients connecting after the
  /// stream ended get the end-of-stream marker appended to their replay.
  std::atomic<bool> stream_ended_{false};
  std::atomic<bool> running_{true};
  std::thread relay_thread_;
};

}  // namespace tvviz::hub
