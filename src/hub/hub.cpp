#include "hub/hub.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace tvviz::hub {

namespace {

bool droppable(const FramePtr& msg) {
  // Only image traffic participates in newest-frame-wins; control-plane
  // messages (kShutdown in particular) must always reach the client. A
  // kFrameRef stands in for the frame it advertises (same frame_index), so
  // it drops like one; a kFrameData answers an explicit fetch and must
  // always arrive — dropping it would strand the requester's pending ref.
  return msg->type == net::MsgType::kFrame ||
         msg->type == net::MsgType::kSubImage ||
         msg->type == net::MsgType::kFrameRef;
}

obs::Gauge& clients_gauge() {
  static obs::Gauge& g = obs::gauge("net.hub.clients");
  return g;
}
obs::Counter& skipped_ctr() {
  static obs::Counter& c = obs::counter("net.hub.steps_skipped");
  return c;
}

}  // namespace

/// Mutable per-client record. The queue is bounded by `capacity` with a
/// drop-oldest-step policy, so pushing never blocks the relay thread.
struct FrameHub::ClientState {
  std::string id;
  std::size_t capacity = 8;
  net::LinkModel link{};
  double link_scale = 0.0;
  /// Immutable after connect: image traffic goes out as kFrameRef
  /// advertisements instead of full frames (protocol v3 relay peers).
  bool wants_refs = false;
  /// Per-client stream for the link's fault events (loss/stall sampling),
  /// seeded from the client id so a named client replays identically.
  util::Rng link_rng{1};

  mutable util::Mutex mutex;
  util::CondVar cv;
  std::deque<FramePtr> queue TVVIZ_GUARDED_BY(mutex);
  /// Messages still queued from the connect-time replay (plus a possible
  /// end-of-stream marker). They sit at the front of the queue and extend
  /// the backpressure bound one-for-one, so the configured capacity is
  /// restored automatically as the history drains (or is dropped).
  std::size_t replay_pending TVVIZ_GUARDED_BY(mutex) = 0;
  /// Step whose remaining pieces must be dropped because the step was
  /// chosen as a drop victim while its own pieces were being delivered.
  int suppressed_step TVVIZ_GUARDED_BY(mutex) = -1;
  bool closed TVVIZ_GUARDED_BY(mutex) = false;
  /// Atomic, not mutex-guarded: reap_idle_clients flips it through
  /// close_client holding only this client's mutex, while the hub reads it
  /// under clients_mutex_ — no single lock covers both sides (this was a
  /// real cross-mutex race; see hub_test "ReapRacesWithStatsPolling").
  std::atomic<bool> connected{true};
  std::uint64_t delivered TVVIZ_GUARDED_BY(mutex) = 0;
  std::uint64_t steps_skipped TVVIZ_GUARDED_BY(mutex) = 0;
  std::uint64_t resumed TVVIZ_GUARDED_BY(mutex) = 0;

  std::atomic<int> last_acked{-1};
  /// Steps at or below this were declared displayed at connect time (the
  /// resume point): live fan-out never delivers them. Fixed at connect —
  /// unlike last_acked it does NOT advance with live acks, because a
  /// pipelined renderer may emit steps out of order and an ack for a newer
  /// step must not drop an older one still in flight.
  std::atomic<int> resume_floor{-1};
  std::atomic<double> last_seen_s{0.0};

  /// Event-loop transport hook: fired after a push and on close. Copied out
  /// under the lock, invoked outside it (it schedules work; must not block).
  std::function<void()> ready_cb TVVIZ_GUARDED_BY(mutex);

  obs::Counter* delivered_ctr = nullptr;
  obs::Counter* skipped_steps_ctr = nullptr;

  void notify_ready() TVVIZ_EXCLUDES(mutex) {
    std::function<void()> cb;
    {
      util::LockGuard lock(mutex);
      cb = ready_cb;
    }
    if (cb) cb();
  }
};

namespace {

/// Erase every queued image piece of `step`, keeping the replay allowance
/// in sync with the replayed entries removed.
void erase_step_locked(FrameHub::ClientState& client, int step)
    TVVIZ_REQUIRES(client.mutex) {
  std::size_t pos = 0;
  std::size_t removed_replay = 0;
  std::erase_if(client.queue, [&](const FramePtr& m) {
    const bool kill = droppable(m) && m->frame_index == step;
    if (kill && pos < client.replay_pending) ++removed_replay;
    ++pos;
    return kill;
  });
  client.replay_pending -= removed_replay;
}

}  // namespace

// --------------------------------------------------------- RendererPort ----

void FrameHub::RendererPort::send(net::NetMessage msg) {
  hub_->inbox_.push(Inbound{false, std::move(msg), {}});
  static obs::Gauge& depth = obs::gauge("net.hub.inbox_depth");
  depth.update_max(static_cast<std::int64_t>(hub_->inbox_.size()));
}

std::optional<net::ControlEvent> FrameHub::RendererPort::poll_control() {
  return control_.try_pop();
}

void FrameHub::RendererPort::set_control_callback(std::function<void()> cb) {
  util::LockGuard lock(cb_mutex_);
  control_cb_ = std::move(cb);
}

void FrameHub::RendererPort::notify_control() {
  std::function<void()> cb;
  {
    util::LockGuard lock(cb_mutex_);
    cb = control_cb_;
  }
  if (cb) cb();
}

// ----------------------------------------------------------- ClientPort ----

FramePtr FrameHub::ClientPort::next() {
  return next_for(std::chrono::hours(24 * 365));
}

FramePtr FrameHub::ClientPort::next_for(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  FramePtr msg;
  {
    util::LockGuard lock(state_->mutex);
    while (!state_->closed && state_->queue.empty()) {
      if (state_->cv.wait_until(state_->mutex, deadline) ==
          std::cv_status::timeout)
        break;
    }
    if (state_->queue.empty()) return nullptr;  // timed out or closed+drained
    msg = std::move(state_->queue.front());
    state_->queue.pop_front();
    if (state_->replay_pending > 0) --state_->replay_pending;
    ++state_->delivered;
    if (state_->delivered_ctr) state_->delivered_ctr->add(1);
  }
  state_->last_seen_s.store(hub_->now_s());
  // Simulated per-client WAN: the delivery pays this client's link cost
  // without occupying the relay thread, so one slow link never delays the
  // fan-out to anybody else.
  if (state_->link_scale > 0.0) {
    double s;
    {
      // The fault draw consumes the per-client stream; serialize it so
      // concurrent next_for callers cannot tear the PRNG state.
      util::LockGuard lock(state_->mutex);
      s = state_->link.transfer_seconds_faulty(msg->wire_size(), 1,
                                               state_->link_rng) *
          state_->link_scale;
    }
    if (s > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
  }
  return msg;
}

FramePtr FrameHub::ClientPort::try_next() {
  return next_for(std::chrono::milliseconds(0));
}

void FrameHub::ClientPort::set_ready_callback(std::function<void()> cb) {
  util::LockGuard lock(state_->mutex);
  state_->ready_cb = std::move(cb);
}

void FrameHub::ClientPort::ack(int step) {
  int prev = state_->last_acked.load();
  while (step > prev && !state_->last_acked.compare_exchange_weak(prev, step)) {
  }
  state_->last_seen_s.store(hub_->now_s());
  static obs::Counter& acks = obs::counter("net.hub.acks");
  acks.add(1);
}

void FrameHub::ClientPort::heartbeat() {
  state_->last_seen_s.store(hub_->now_s());
  static obs::Counter& beats = obs::counter("net.hub.heartbeats");
  beats.add(1);
}

void FrameHub::ClientPort::send_control(const net::ControlEvent& event) {
  hub_->inbox_.push(Inbound{true, {}, event});
}

void FrameHub::ClientPort::request_content(net::ContentId content) {
  state_->last_seen_s.store(hub_->now_s());  // a fetch is liveness too
  hub_->serve_fetch(state_, content);
}

const std::string& FrameHub::ClientPort::id() const { return state_->id; }

bool FrameHub::ClientPort::closed() const {
  util::LockGuard lock(state_->mutex);
  return state_->closed;
}

std::size_t FrameHub::ClientPort::buffered() const {
  util::LockGuard lock(state_->mutex);
  return state_->queue.size();
}

// -------------------------------------------------------------- FrameHub ----

FrameHub::FrameHub(HubConfig config)
    : config_(config),
      cache_(config.cache_steps),
      relay_thread_([this] { relay_loop(); }) {}

FrameHub::~FrameHub() { shutdown(); }

std::shared_ptr<FrameHub::RendererPort> FrameHub::connect_renderer() {
  util::LockGuard lock(clients_mutex_);
  auto port = std::shared_ptr<RendererPort>(new RendererPort(this));
  renderers_.push_back(port);
  return port;
}

void FrameHub::disconnect_renderer(RendererPort& port) {
  std::shared_ptr<RendererPort> victim;
  {
    util::LockGuard lock(clients_mutex_);
    for (auto it = renderers_.begin(); it != renderers_.end(); ++it)
      if (it->get() == &port) {
        victim = std::move(*it);
        renderers_.erase(it);
        break;
      }
  }
  // Close outside clients_mutex_ (it wakes the control callback) and keep
  // the victim alive past the erase so a concurrent broadcast snapshot can
  // still push into the now-closed queue harmlessly.
  if (victim) {
    victim->control_.close();
    victim->notify_control();
  }
}

std::shared_ptr<FrameHub::ClientPort> FrameHub::connect_client(
    ClientOptions options) {
  util::LockGuard lock(clients_mutex_);
  if (!running_.load())
    throw std::runtime_error("hub: connect_client after shutdown");

  std::shared_ptr<ClientState>* slot = nullptr;
  if (!options.id.empty())
    for (auto& c : clients_)
      if (c->id == options.id) {
        slot = &c;
        break;
      }

  std::size_t connected = 0;
  for (const auto& c : clients_)
    if (c->connected.load()) ++connected;
  if ((!slot || !(*slot)->connected.load()) && connected >= config_.max_clients)
    throw std::runtime_error(
        "hub: at capacity (" + std::to_string(config_.max_clients) +
        " clients)");

  // Resume point: a returning client continues after its last acked step;
  // a new client replays cached history only if asked to.
  bool replay = options.replay_cache;
  int resume_after = options.replay_after_step;
  int carried_ack = -1;
  if (slot) {
    close_client(*slot);  // takeover: at most one live port per identity
    carried_ack = (*slot)->last_acked.load();
    replay = true;
    resume_after = std::max(resume_after, carried_ack);
  }

  auto state = std::make_shared<ClientState>();
  state->id = options.id.empty()
                  ? "client-" + std::to_string(next_auto_id_++)
                  : options.id;
  state->capacity = options.queue_frames != 0 ? options.queue_frames
                                              : config_.client_queue_frames;
  state->link = options.link;
  state->link_scale = options.link_time_scale;
  state->wants_refs = options.wants_frame_refs;
  // FNV-1a over the id: implementation-independent (unlike std::hash),
  // so a named client's fault stream replays across builds.
  std::uint64_t link_seed = util::fnv1a(state->id);
  state->link_rng = util::Rng(util::splitmix64(link_seed));
  // A requested resume point declares everything up to it displayed: fix
  // the floor here, inside the same critical section the fan-out snapshots
  // under, so a step the client already saw elsewhere (viewer following a
  // restarted relay edge) can't slip through live between connect and the
  // handshake's explicit ack. last_acked itself carries only real acks.
  state->last_acked.store(carried_ack);
  state->resume_floor.store(replay ? std::max(resume_after, carried_ack)
                                   : carried_ack);
  state->last_seen_s.store(now_s());
  state->delivered_ctr = &obs::counter("net.hub.client." + state->id +
                                       ".messages_delivered");
  state->skipped_steps_ctr =
      &obs::counter("net.hub.client." + state->id + ".steps_skipped");

  {
    // The fresh state is not published yet, so this lock is uncontended —
    // it exists so the guarded-queue writes happen inside a critical
    // section the analysis can see.
    util::LockGuard state_lock(state->mutex);
    if (replay) {
      obs::Span resume_span("resume", resume_after);
      if (state->wants_refs) {
        // Resume-through-the-tree dedup: a reconnecting edge is replayed
        // advertisements, not bodies — it fetches only the steps its own
        // cache actually lost.
        auto cached = cache_.entries_after(resume_after);
        state->resumed = cached.size();
        for (const auto& m : cached)
          state->queue.push_back(std::make_shared<const net::NetMessage>(
              net::make_frame_ref(*m.frame, m.content)));
      } else {
        auto cached = cache_.messages_after(resume_after);
        state->resumed = cached.size();
        for (auto& m : cached) state->queue.push_back(std::move(m));
      }
      static obs::Counter& resumes = obs::counter("net.hub.resumes");
      resumes.add(1);
    }

    // A client joining after the renderer already signed off would
    // otherwise wait forever on a live stream that is never coming: replay
    // ends with the end-of-stream marker the client missed.
    if (stream_ended_.load()) {
      net::NetMessage bye;
      bye.type = net::MsgType::kShutdown;
      state->queue.push_back(std::make_shared<const net::NetMessage>(bye));
    }
    // The preload may exceed the steady-state bound: backpressure applies
    // to the live stream, not to the history the client explicitly asked to
    // catch up on. The allowance drains with the queue, so the configured
    // bound is back in force once the history has been consumed.
    state->replay_pending = state->queue.size();
  }

  if (slot)
    *slot = state;
  else
    clients_.push_back(state);

  std::size_t now_connected = 0;
  for (const auto& c : clients_)
    if (c->connected.load()) ++now_connected;
  clients_gauge().set(static_cast<std::int64_t>(now_connected));
  return std::shared_ptr<ClientPort>(new ClientPort(this, state));
}

void FrameHub::disconnect_client(ClientPort& port) {
  util::LockGuard lock(clients_mutex_);
  close_client(port.state_);
  std::size_t connected = 0;
  for (const auto& c : clients_)
    if (c->connected.load()) ++connected;
  clients_gauge().set(static_cast<std::int64_t>(connected));
}

void FrameHub::close_client(const std::shared_ptr<ClientState>& client) {
  {
    util::LockGuard lock(client->mutex);
    client->closed = true;
    client->connected.store(false);
  }
  client->cv.notify_all();
  // Wake the event-loop transport too: its drain observes closed+drained
  // and evicts the session (or flushes the tail first on shutdown).
  client->notify_ready();
}

void FrameHub::shutdown() {
  if (!running_.exchange(false)) return;
  inbox_.close();
  // Flush guarantee: the relay keeps draining the closed inbox, and client
  // deliveries never block (drop policy), so every frame the renderers
  // already handed over lands in a queue before any port closes.
  if (relay_thread_.joinable()) relay_thread_.join();
  // Snapshot, then close outside clients_mutex_: close wakes the ready /
  // control callbacks, which schedule flush work and must not run with hub
  // locks held.
  std::vector<std::shared_ptr<ClientState>> clients;
  std::vector<std::shared_ptr<RendererPort>> renderers;
  {
    util::LockGuard lock(clients_mutex_);
    clients = clients_;
    renderers = renderers_;
    clients_gauge().set(0);
  }
  for (auto& c : clients) close_client(c);
  for (auto& r : renderers) {
    r->control_.close();
    r->notify_control();
  }
}

std::size_t FrameHub::connected_clients() const {
  util::LockGuard lock(clients_mutex_);
  std::size_t n = 0;
  for (const auto& c : clients_)
    if (c->connected.load()) ++n;
  return n;
}

std::vector<ClientStats> FrameHub::client_stats() const {
  util::LockGuard lock(clients_mutex_);
  std::vector<ClientStats> out;
  out.reserve(clients_.size());
  for (const auto& c : clients_) {
    ClientStats s;
    s.id = c->id;
    s.last_acked_step = c->last_acked.load();
    s.connected = c->connected.load();
    {
      util::LockGuard state_lock(c->mutex);
      s.messages_delivered = c->delivered;
      s.steps_skipped = c->steps_skipped;
      s.messages_resumed = c->resumed;
    }
    out.push_back(std::move(s));
  }
  return out;
}

ClientStats FrameHub::stats_for(const std::string& id) const {
  for (auto& s : client_stats())
    if (s.id == id) return s;
  throw std::runtime_error("hub: unknown client '" + id + "'");
}

void FrameHub::serve_fetch(const std::shared_ptr<ClientState>& client,
                           net::ContentId content) {
  static obs::Counter& served = obs::counter("net.relay.fetches_served");
  static obs::Counter& missed = obs::counter("net.relay.fetch_misses");
  auto frame = cache_.lookup_content(content);
  if (!frame) {
    // Advertised, then evicted before the fetch landed: the requester skips
    // that step, the same outcome as a backpressure drop. Nothing to send —
    // a kFrameData must carry the bytes its ContentId hashes to.
    missed.add(1);
    return;
  }
  deliver(client, std::make_shared<const net::NetMessage>(
                      net::make_frame_data(*frame)));
  served.add(1);
}

void FrameHub::broadcast_control(const net::ControlEvent& event) {
  static obs::Counter& controls = obs::counter("net.hub.controls_broadcast");
  controls.add(1);
  // Snapshot under the lock, push outside it: the push can wake a control
  // callback that schedules work, and a bounded queue can block — neither
  // belongs inside clients_mutex_.
  std::vector<std::shared_ptr<RendererPort>> targets;
  {
    util::LockGuard lock(clients_mutex_);
    targets = renderers_;
  }
  for (auto& r : targets) {
    r->control_.push(event);
    r->notify_control();
  }
}

void FrameHub::deliver(const std::shared_ptr<ClientState>& client,
                       FramePtr msg) {
  const bool image = droppable(msg);
  {
    util::LockGuard lock(client->mutex);
    if (client->closed) return;
    // Newest-frame-wins never applies to a relay peer: its queue IS the
    // stream, and the edge's dedup watermark assumes a gapless prefix — a
    // step dropped here would be skipped as "already seen" by every later
    // resume replay, punching a permanent hole in the whole subtree. The
    // queue rides out bursts unbounded instead; refs are ~a hundred bytes
    // and a dead edge is reaped by the idle timeout like any client.
    if (image && !client->wants_refs) {
      const int step = msg->frame_index;
      // A step already chosen as a drop victim loses its remaining pieces
      // too (counted once, when it was victimised): whole steps or nothing.
      if (step == client->suppressed_step) return;
      // Newest-frame-wins: make room by dropping the oldest queued *step*
      // (all of its sub-image pieces together, so the client never sees a
      // partially-dropped frame). Non-droppable messages are kept, and so
      // is the replayed-history prefix — the bound applies to the live
      // stream, so the victim search starts past the replay allowance.
      while (client->queue.size() >=
             client->capacity + client->replay_pending) {
        const auto victim_it = std::find_if(
            client->queue.begin() +
                static_cast<std::ptrdiff_t>(client->replay_pending),
            client->queue.end(), droppable);
        if (victim_it == client->queue.end()) break;
        const int victim_step = (*victim_it)->frame_index;
        erase_step_locked(*client, victim_step);
        ++client->steps_skipped;
        if (client->skipped_steps_ctr) client->skipped_steps_ctr->add(1);
        skipped_ctr().add(1);
        if (victim_step == step) {
          // The oldest droppable step is the one being delivered right now
          // (its piece count exceeds the queue bound). Enqueuing this piece
          // after evicting its siblings would hand the client a partial
          // frame, so the incoming piece goes down with the rest.
          client->suppressed_step = step;
          return;
        }
      }
    }
    client->queue.push_back(std::move(msg));
  }
  client->cv.notify_one();
  client->notify_ready();
}

void FrameHub::reap_idle_clients() {
  if (config_.heartbeat_timeout_s <= 0.0) return;
  const double cutoff = now_s() - config_.heartbeat_timeout_s;
  std::vector<std::shared_ptr<ClientState>> dead;
  {
    util::LockGuard lock(clients_mutex_);
    for (auto& c : clients_)
      if (c->connected.load() && c->last_seen_s.load() < cutoff)
        dead.push_back(c);
  }
  if (dead.empty()) return;
  static obs::Counter& reaped = obs::counter("net.hub.clients_reaped");
  for (auto& c : dead) {
    close_client(c);
    reaped.add(1);
    clients_reaped_.fetch_add(1);
  }
  util::LockGuard lock(clients_mutex_);
  std::size_t connected = 0;
  for (const auto& c : clients_)
    if (c->connected.load()) ++connected;
  clients_gauge().set(static_cast<std::int64_t>(connected));
}

void FrameHub::relay_loop() {
  obs::set_thread_lane("hub relay");
  static obs::Counter& steps_ctr = obs::counter("net.hub.steps_relayed");
  static obs::Counter& bytes_ctr = obs::counter("net.hub.bytes_in");
  static obs::Counter& fanout_ctr = obs::counter("net.hub.fanout_messages");

  const bool reaping = config_.heartbeat_timeout_s > 0.0;
  const auto tick = std::chrono::milliseconds(
      reaping ? std::max<long>(2, static_cast<long>(
                                      config_.heartbeat_timeout_s * 250.0))
              : 50);
  for (;;) {
    std::optional<Inbound> item =
        reaping ? inbox_.pop_for(tick) : inbox_.pop();
    if (reaping) reap_idle_clients();
    if (!item) {
      if (!reaping || inbox_.closed()) return;  // shut down and drained
      continue;                                 // reap tick
    }
    if (item->is_control) {
      broadcast_control(item->control);
      continue;
    }

    net::NetMessage& msg = item->msg;
    const bool is_shutdown = msg.type == net::MsgType::kShutdown;
    const bool image = msg.type == net::MsgType::kFrame ||
                       msg.type == net::MsgType::kSubImage;
    const bool whole_frame =
        msg.type == net::MsgType::kFrame ||
        (msg.type == net::MsgType::kSubImage &&
         msg.piece == msg.piece_count - 1);
    obs::Span relay_span("relay", msg.frame_index);
    bytes_ctr.add(msg.wire_size());

    // One insert, N reference-counted deliveries: the frame was encoded
    // exactly once upstream and is never re-encoded or copied here. The
    // cache insert and the fan-out snapshot share one critical section with
    // connect_client (which reads the cache under the same lock), so a
    // client connecting concurrently either sees this message in its replay
    // — and is not in this snapshot — or receives it live, never both.
    FramePtr shared;
    net::ContentId content = 0;
    std::vector<std::shared_ptr<ClientState>> targets;
    {
      util::LockGuard lock(clients_mutex_);
      if (is_shutdown) stream_ended_.store(true);
      if (image) {
        auto cached = cache_.insert(msg.frame_index, std::move(msg));
        shared = std::move(cached.frame);
        content = cached.content;
      } else {
        shared = std::make_shared<const net::NetMessage>(std::move(msg));
      }
      for (auto& c : clients_)
        if (c->connected.load()) targets.push_back(c);
    }
    // Relay peers get the advertisement, everyone else the frame itself.
    // One ref message serves every such peer (built only if one is
    // attached); it carries the frame's header fields, so the drop policy
    // above treats it exactly like the frame it stands for.
    FramePtr ref;
    for (auto& c : targets) {
      // A step at or below the client's connect-time resume point is never
      // re-delivered: a restarted relay edge re-injects history it
      // recovered from upstream, and viewers that followed the edge across
      // the restart must not see those steps twice. The floor is frozen at
      // connect — comparing against the live ack instead would drop
      // legitimate out-of-order steps from a pipelined renderer.
      if (image && shared->frame_index <= c->resume_floor.load()) continue;
      if (image && c->wants_refs) {
        if (!ref)
          ref = std::make_shared<const net::NetMessage>(
              net::make_frame_ref(*shared, content));
        deliver(c, ref);
      } else {
        deliver(c, shared);
      }
    }
    fanout_ctr.add(targets.size());
    if (image && !targets.empty())
      cache_.note_fanout_hits(targets.size() - 1);  // beyond the first copy
    if (whole_frame) {
      steps_relayed_.fetch_add(1);
      steps_ctr.add(1);
    }
  }
}

}  // namespace tvviz::hub
