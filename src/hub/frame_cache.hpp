// Reference-counted cache of recent compressed frames, the scaling device
// of the multi-client hub (after Bethel et al.'s network data cache): the
// renderer's stream is encoded exactly once per time step, stored as shared
// immutable buffers, and fanned out to any number of clients by reference.
// Eviction is by step age — a ring of the most recent `capacity_steps`
// steps — so a reconnecting client can be resumed from its last
// acknowledged step without ever re-encoding.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/protocol.hpp"
#include "util/mutex.hpp"

namespace tvviz::hub {

/// Immutable shared handle to one relayed message. Every client queue and
/// the cache hold the same buffer; the payload is never copied on fan-out.
using FramePtr = std::shared_ptr<const net::NetMessage>;

/// Everything cached for one time step: a single kFrame message, or the
/// kSubImage pieces of a parallel-compressed frame, in arrival order.
struct CachedStep {
  int step = -1;
  std::vector<FramePtr> messages;
  std::size_t bytes = 0;  ///< Sum of wire sizes.
};

/// Thread-safe ring of the most recent steps. Counters/gauges (registered
/// under net.hub.cache.*): inserts, evictions, hits (deliveries served from
/// a shared cached buffer), misses (resume requests for evicted steps),
/// occupancy_steps and bytes gauges.
class FrameCache {
 public:
  explicit FrameCache(std::size_t capacity_steps);

  /// Append one message to `step`'s entry (creating it, evicting the oldest
  /// step beyond capacity) and return the shared handle for fan-out.
  FramePtr insert(int step, net::NetMessage msg) TVVIZ_EXCLUDES(mutex_);

  /// All messages of one cached step (empty if evicted or never seen).
  /// Counts a hit or miss.
  std::vector<FramePtr> lookup(int step) TVVIZ_EXCLUDES(mutex_);

  /// Messages of every cached step strictly greater than `after_step`, in
  /// step order — the resume path. Steps in (after_step, oldest) that were
  /// already evicted are counted as misses; each returned step is a hit.
  std::vector<FramePtr> messages_after(int after_step)
      TVVIZ_EXCLUDES(mutex_);

  /// Record `n` deliveries served from shared cached buffers (the hub's
  /// fan-out path calls this; resume paths are counted internally).
  void note_fanout_hits(std::uint64_t n);

  std::size_t occupancy() const TVVIZ_EXCLUDES(mutex_);
  std::size_t bytes() const TVVIZ_EXCLUDES(mutex_);
  /// Oldest / newest cached step; nullopt while empty.
  std::optional<int> oldest_step() const TVVIZ_EXCLUDES(mutex_);
  std::optional<int> newest_step() const TVVIZ_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<int, CachedStep> steps_ TVVIZ_GUARDED_BY(mutex_);
  std::size_t capacity_;
  std::size_t bytes_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace tvviz::hub
