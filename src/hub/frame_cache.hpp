// Reference-counted cache of recent compressed frames, the scaling device
// of the multi-client hub (after Bethel et al.'s network data cache): the
// renderer's stream is encoded exactly once per time step, stored as shared
// immutable buffers, and fanned out to any number of clients by reference.
// Eviction is by step age — a ring of the most recent `capacity_steps`
// steps — so a reconnecting client can be resumed from its last
// acknowledged step without ever re-encoding.
//
// Every inserted message also carries a ContentId (util::fnv1a over codec +
// payload, computed exactly once, at insert) and the cache keeps a second,
// content-addressed index over the same buffers. That index is what makes
// the relay tree cheap: an edge hub that already holds a payload answers a
// kFrameRef from lookup_content() instead of re-fetching it over the WAN,
// and identical frames cached at different steps resolve to one entry.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "util/mutex.hpp"

namespace tvviz::hub {

/// Immutable shared handle to one relayed message. Every client queue and
/// the cache hold the same buffer; the payload is never copied on fan-out.
using FramePtr = std::shared_ptr<const net::NetMessage>;

/// One cached message plus its content identity (hashed once, at insert).
struct CachedMessage {
  FramePtr frame;
  net::ContentId content = 0;
};

/// Everything cached for one time step: a single kFrame message, or the
/// kSubImage pieces of a parallel-compressed frame, in arrival order.
struct CachedStep {
  int step = -1;
  std::vector<CachedMessage> messages;
  std::size_t bytes = 0;  ///< Sum of wire sizes.
};

/// Thread-safe ring of the most recent steps. Counters/gauges (registered
/// under net.hub.cache.*): inserts, evictions, hits (deliveries served from
/// a shared cached buffer), misses (resume requests for evicted steps),
/// content_hits / content_misses (the content-addressed index), and the
/// occupancy_steps / bytes gauges.
class FrameCache {
 public:
  explicit FrameCache(std::size_t capacity_steps);

  /// Append one message to `step`'s entry (creating it, evicting the oldest
  /// step beyond capacity) and return the shared handle plus the ContentId
  /// computed for it — the only place the payload is ever hashed.
  CachedMessage insert(int step, net::NetMessage msg) TVVIZ_EXCLUDES(mutex_);

  /// All messages of one cached step (empty if evicted or never seen).
  /// Counts a hit or miss.
  std::vector<FramePtr> lookup(int step) TVVIZ_EXCLUDES(mutex_);

  /// Messages of every cached step strictly greater than `after_step`, in
  /// step order — the resume path. Steps in (after_step, oldest) that were
  /// already evicted are counted as misses; each returned step is a hit.
  std::vector<FramePtr> messages_after(int after_step)
      TVVIZ_EXCLUDES(mutex_);

  /// Same walk, but with the ContentId of each message — the ref-replay
  /// path: a resuming edge is sent kFrameRef advertisements built from
  /// these instead of the full bodies.
  std::vector<CachedMessage> entries_after(int after_step)
      TVVIZ_EXCLUDES(mutex_);

  /// The cached message with this content identity, from any step still in
  /// the ring (identical payloads at several steps share one index entry).
  /// Counts net.hub.cache.content_hits / content_misses.
  FramePtr lookup_content(net::ContentId content) TVVIZ_EXCLUDES(mutex_);

  /// Record `n` deliveries served from shared cached buffers (the hub's
  /// fan-out path calls this; resume paths are counted internally).
  void note_fanout_hits(std::uint64_t n);

  std::size_t occupancy() const TVVIZ_EXCLUDES(mutex_);
  std::size_t bytes() const TVVIZ_EXCLUDES(mutex_);
  /// Distinct ContentIds currently indexed (<= total cached messages).
  std::size_t content_entries() const TVVIZ_EXCLUDES(mutex_);
  /// Oldest / newest cached step; nullopt while empty.
  std::optional<int> oldest_step() const TVVIZ_EXCLUDES(mutex_);
  std::optional<int> newest_step() const TVVIZ_EXCLUDES(mutex_);

 private:
  /// One entry of the content index. `refs` counts how many cached step
  /// messages share this id, so evicting one step of a duplicated frame
  /// does not forget the payload the other step still advertises.
  struct ContentEntry {
    FramePtr frame;
    std::size_t refs = 0;
  };

  void evict_oldest_locked() TVVIZ_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::map<int, CachedStep> steps_ TVVIZ_GUARDED_BY(mutex_);
  std::unordered_map<net::ContentId, ContentEntry> by_content_
      TVVIZ_GUARDED_BY(mutex_);
  std::size_t capacity_;
  std::size_t bytes_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace tvviz::hub
