#include "hub/frame_cache.hpp"

#include "obs/counters.hpp"

namespace tvviz::hub {

namespace {
obs::Counter& inserts_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.inserts");
  return c;
}
obs::Counter& evictions_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.evictions");
  return c;
}
obs::Counter& hits_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.hits");
  return c;
}
obs::Counter& misses_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.misses");
  return c;
}
obs::Gauge& occupancy_gauge() {
  static obs::Gauge& g = obs::gauge("net.hub.cache.occupancy_steps");
  return g;
}
obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::gauge("net.hub.cache.bytes");
  return g;
}
}  // namespace

FrameCache::FrameCache(std::size_t capacity_steps)
    : capacity_(capacity_steps == 0 ? 1 : capacity_steps) {}

FramePtr FrameCache::insert(int step, net::NetMessage msg) {
  auto shared = std::make_shared<const net::NetMessage>(std::move(msg));
  util::LockGuard lock(mutex_);
  auto& entry = steps_[step];
  entry.step = step;
  entry.bytes += shared->wire_size();
  bytes_ += shared->wire_size();
  entry.messages.push_back(shared);
  inserts_ctr().add(1);
  // Evict by step age until back within the ring capacity. The evicted
  // buffers stay alive for any client queue still holding them — eviction
  // only forgets the cache's own reference.
  while (steps_.size() > capacity_) {
    auto oldest = steps_.begin();
    bytes_ -= oldest->second.bytes;
    steps_.erase(oldest);
    evictions_ctr().add(1);
  }
  occupancy_gauge().set(static_cast<std::int64_t>(steps_.size()));
  bytes_gauge().set(static_cast<std::int64_t>(bytes_));
  return shared;
}

std::vector<FramePtr> FrameCache::lookup(int step) {
  util::LockGuard lock(mutex_);
  const auto it = steps_.find(step);
  if (it == steps_.end()) {
    misses_ctr().add(1);
    return {};
  }
  hits_ctr().add(it->second.messages.size());
  return it->second.messages;
}

std::vector<FramePtr> FrameCache::messages_after(int after_step) {
  util::LockGuard lock(mutex_);
  std::vector<FramePtr> out;
  if (!steps_.empty()) {
    // Steps the caller needed but the ring has already forgotten.
    const int oldest = steps_.begin()->first;
    if (after_step + 1 < oldest)
      misses_ctr().add(static_cast<std::uint64_t>(oldest - after_step - 1));
  }
  for (auto it = steps_.upper_bound(after_step); it != steps_.end(); ++it) {
    hits_ctr().add(it->second.messages.size());
    out.insert(out.end(), it->second.messages.begin(),
               it->second.messages.end());
  }
  return out;
}

void FrameCache::note_fanout_hits(std::uint64_t n) { hits_ctr().add(n); }

std::size_t FrameCache::occupancy() const {
  util::LockGuard lock(mutex_);
  return steps_.size();
}

std::size_t FrameCache::bytes() const {
  util::LockGuard lock(mutex_);
  return bytes_;
}

std::optional<int> FrameCache::oldest_step() const {
  util::LockGuard lock(mutex_);
  if (steps_.empty()) return std::nullopt;
  return steps_.begin()->first;
}

std::optional<int> FrameCache::newest_step() const {
  util::LockGuard lock(mutex_);
  if (steps_.empty()) return std::nullopt;
  return steps_.rbegin()->first;
}

}  // namespace tvviz::hub
