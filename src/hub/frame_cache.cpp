#include "hub/frame_cache.hpp"

#include "obs/counters.hpp"

namespace tvviz::hub {

namespace {
obs::Counter& inserts_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.inserts");
  return c;
}
obs::Counter& evictions_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.evictions");
  return c;
}
obs::Counter& hits_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.hits");
  return c;
}
obs::Counter& misses_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.misses");
  return c;
}
obs::Counter& content_hits_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.content_hits");
  return c;
}
obs::Counter& content_misses_ctr() {
  static obs::Counter& c = obs::counter("net.hub.cache.content_misses");
  return c;
}
obs::Gauge& occupancy_gauge() {
  static obs::Gauge& g = obs::gauge("net.hub.cache.occupancy_steps");
  return g;
}
obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::gauge("net.hub.cache.bytes");
  return g;
}

/// Steps in (after_step, oldest) the ring has already forgotten. Widened
/// arithmetic: `after_step + 1` overflows int at INT_MAX (a viewer that
/// acked the last representable step asking for "anything newer"), and
/// `oldest - after_step` overflows for a very negative resume point.
std::uint64_t evicted_gap(int after_step, int oldest) noexcept {
  const long long gap =
      static_cast<long long>(oldest) - static_cast<long long>(after_step) - 1;
  return gap > 0 ? static_cast<std::uint64_t>(gap) : 0;
}

}  // namespace

FrameCache::FrameCache(std::size_t capacity_steps)
    : capacity_(capacity_steps == 0 ? 1 : capacity_steps) {}

void FrameCache::evict_oldest_locked() {
  auto oldest = steps_.begin();
  bytes_ -= oldest->second.bytes;
  // Unpin each message from the content index; an id shared with a step
  // still cached (identical payload at two steps) keeps its entry.
  for (const auto& m : oldest->second.messages) {
    auto it = by_content_.find(m.content);
    if (it != by_content_.end() && --it->second.refs == 0)
      by_content_.erase(it);
  }
  steps_.erase(oldest);
  evictions_ctr().add(1);
}

CachedMessage FrameCache::insert(int step, net::NetMessage msg) {
  auto shared = std::make_shared<const net::NetMessage>(std::move(msg));
  // Hashed exactly once per cached message, outside the lock.
  const net::ContentId content = net::content_id_of(*shared);
  util::LockGuard lock(mutex_);
  auto& entry = steps_[step];
  entry.step = step;
  entry.bytes += shared->wire_size();
  bytes_ += shared->wire_size();
  entry.messages.push_back(CachedMessage{shared, content});
  auto& slot = by_content_[content];
  if (slot.refs++ == 0) slot.frame = shared;
  inserts_ctr().add(1);
  // Evict by step age until back within the ring capacity. The evicted
  // buffers stay alive for any client queue still holding them — eviction
  // only forgets the cache's own reference. Note the ring is strictly
  // age-ordered: inserting a step older than everything cached while full
  // evicts that same step right back out (the return value still carries
  // the shared handle for the in-flight fan-out).
  while (steps_.size() > capacity_) evict_oldest_locked();
  occupancy_gauge().set(static_cast<std::int64_t>(steps_.size()));
  bytes_gauge().set(static_cast<std::int64_t>(bytes_));
  return CachedMessage{std::move(shared), content};
}

std::vector<FramePtr> FrameCache::lookup(int step) {
  util::LockGuard lock(mutex_);
  const auto it = steps_.find(step);
  if (it == steps_.end()) {
    misses_ctr().add(1);
    return {};
  }
  hits_ctr().add(it->second.messages.size());
  std::vector<FramePtr> out;
  out.reserve(it->second.messages.size());
  for (const auto& m : it->second.messages) out.push_back(m.frame);
  return out;
}

std::vector<FramePtr> FrameCache::messages_after(int after_step) {
  util::LockGuard lock(mutex_);
  std::vector<FramePtr> out;
  if (!steps_.empty())
    misses_ctr().add(evicted_gap(after_step, steps_.begin()->first));
  for (auto it = steps_.upper_bound(after_step); it != steps_.end(); ++it) {
    hits_ctr().add(it->second.messages.size());
    for (const auto& m : it->second.messages) out.push_back(m.frame);
  }
  return out;
}

std::vector<CachedMessage> FrameCache::entries_after(int after_step) {
  util::LockGuard lock(mutex_);
  std::vector<CachedMessage> out;
  if (!steps_.empty())
    misses_ctr().add(evicted_gap(after_step, steps_.begin()->first));
  for (auto it = steps_.upper_bound(after_step); it != steps_.end(); ++it) {
    hits_ctr().add(it->second.messages.size());
    out.insert(out.end(), it->second.messages.begin(),
               it->second.messages.end());
  }
  return out;
}

FramePtr FrameCache::lookup_content(net::ContentId content) {
  util::LockGuard lock(mutex_);
  const auto it = by_content_.find(content);
  if (it == by_content_.end()) {
    content_misses_ctr().add(1);
    return nullptr;
  }
  content_hits_ctr().add(1);
  return it->second.frame;
}

void FrameCache::note_fanout_hits(std::uint64_t n) { hits_ctr().add(n); }

std::size_t FrameCache::occupancy() const {
  util::LockGuard lock(mutex_);
  return steps_.size();
}

std::size_t FrameCache::bytes() const {
  util::LockGuard lock(mutex_);
  return bytes_;
}

std::size_t FrameCache::content_entries() const {
  util::LockGuard lock(mutex_);
  return by_content_.size();
}

std::optional<int> FrameCache::oldest_step() const {
  util::LockGuard lock(mutex_);
  if (steps_.empty()) return std::nullopt;
  return steps_.begin()->first;
}

std::optional<int> FrameCache::newest_step() const {
  util::LockGuard lock(mutex_);
  if (steps_.empty()) return std::nullopt;
  return steps_.rbegin()->first;
}

}  // namespace tvviz::hub
