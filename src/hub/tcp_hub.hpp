// The FrameHub behind a listening socket: the wide-area deployment of the
// multi-client broker. Renderer processes connect exactly as they do to the
// single-client TcpDaemonServer (v1 hellos still work); display clients
// speak the v2 capability handshake, carrying a stable client id, a resume
// point, and queue preferences, and get back a kHelloAck (or a kError frame
// explaining why they were refused).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hub/hub.hpp"
#include "net/tcp.hpp"

namespace tvviz::hub {

/// FrameHub served over TCP on 127.0.0.1.
class HubTcpServer {
 public:
  /// Listen on `port` (0 = ephemeral; see port()).
  explicit HubTcpServer(int port = 0, HubConfig config = {});
  ~HubTcpServer();

  int port() const noexcept { return port_; }
  FrameHub& hub() noexcept { return hub_; }

  /// Stop accepting, flush queued frames to the display sockets, close
  /// every connection, join all threads.
  void shutdown();

 private:
  void accept_loop();
  void serve_renderer(std::shared_ptr<net::TcpConnection> conn);
  void serve_display(std::shared_ptr<net::TcpConnection> conn,
                     net::HelloInfo info);

  FrameHub hub_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<net::TcpConnection>> renderer_conns_;
  std::vector<std::shared_ptr<net::TcpConnection>> display_conns_;
};

/// Display-side endpoint speaking the v2 hub handshake. Compare
/// net::TcpDisplayLink, the v1 single-client form (which the hub also
/// accepts, minus resume/acks).
class HubTcpViewer {
 public:
  struct Options {
    std::string client_id;       ///< Empty = let the hub assign one.
    int last_acked_step = -1;    ///< Resume after this step; -1 = live only.
    std::uint32_t queue_frames = 0;  ///< Requested bound; 0 = hub default.
    /// Send kHeartbeat beacons from a background thread every this many
    /// milliseconds; 0 = no heartbeat thread.
    int heartbeat_interval_ms = 0;
  };

  /// Connects and completes the handshake. Throws std::runtime_error on
  /// refusal, with the server's kError text.
  explicit HubTcpViewer(int port);
  HubTcpViewer(int port, Options options);
  ~HubTcpViewer();

  /// The identity the hub filed this client under (echoed or assigned).
  const std::string& assigned_id() const noexcept { return assigned_id_; }

  /// Blocking receive; std::nullopt when the hub closes.
  std::optional<net::NetMessage> next() { return conn_->recv_message(); }

  /// Acknowledge a displayed step (the resume point for a reconnect).
  void ack(int step);
  void send_control(const net::ControlEvent& event);

  void close();

 private:
  std::unique_ptr<net::TcpConnection> conn_;
  std::string assigned_id_;
  std::atomic<bool> open_{true};
  std::mutex send_mutex_;  ///< Heartbeat thread vs ack/control senders.
  std::thread heartbeat_thread_;
};

}  // namespace tvviz::hub
