// The FrameHub behind a listening socket: the wide-area deployment of the
// multi-client broker. Renderer processes connect exactly as they do to the
// single-client TcpDaemonServer (v1 hellos still work); display clients
// speak the v2 capability handshake, carrying a stable client id, a resume
// point, and queue preferences, and get back a kHelloAck (or a kError frame
// explaining why they were refused).
//
// Transport architecture (HubConfig::tcp_transport, DESIGN.md §14): the
// default is a readiness-based core — one epoll loop thread owns the
// listening socket and every connection, and a small fixed worker pool does
// the blocking work (hello parsing, fan-out sends), so thread count is O(1)
// in the client count and a stalled or silent client can never occupy the
// accept path. The legacy thread-per-connection shape is kept behind
// kThreadPerConnection for the apples-to-apples ablation
// (bench/ablation_hub_fanout --transport).
//
// The viewer endpoint owns the WAN recovery story: with auto_reconnect it
// rides out refused connects, mid-frame disconnects and handshake version
// mismatches (downgrading to the v1 hello when the server is older), and
// resumes the stream from its last acked step — the §4.1 display never shows
// a partial frame and never restarts the animation from zero.
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/retry.hpp"
#include "hub/hub.hpp"
#include "net/event_loop.hpp"
#include "net/queue.hpp"
#include "net/tcp.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace tvviz::hub {

/// FrameHub served over TCP on 127.0.0.1.
class HubTcpServer {
 public:
  /// Listen on `port` (0 = ephemeral; see port()).
  explicit HubTcpServer(int port = 0, HubConfig config = {});
  ~HubTcpServer();

  int port() const noexcept { return port_; }
  FrameHub& hub() noexcept { return hub_; }

  /// Transport sessions currently tracked (sockets not yet evicted). The
  /// churn regression test asserts this stays bounded — disconnected
  /// clients are reaped, not accumulated until shutdown.
  std::size_t active_sessions() const
      TVVIZ_EXCLUDES(sessions_mutex_, threads_mutex_);

  /// Stop accepting, flush queued frames to the display sockets, close
  /// every connection, join all threads.
  void shutdown() TVVIZ_EXCLUDES(sessions_mutex_, threads_mutex_);

 private:
  // ----- epoll transport (default) -----------------------------------
  /// Per-connection record. `role` and the ports are written only by the
  /// serialized read chain (one-shot arm -> worker job -> rearm); `role` is
  /// atomic because shutdown() classifies sessions from another thread.
  struct Session;

  void start_epoll();
  void worker_loop();
  /// Listener readiness (loop thread): accept until EAGAIN; transient
  /// errors retry (net.hub.accept_errors), fd-exhaustion re-arms after a
  /// capped backoff, and only a dead listener stops accepting.
  void on_accept_ready();
  void schedule_read(const std::shared_ptr<Session>& session);
  void on_readable(const std::shared_ptr<Session>& session);
  void handle_hello(const std::shared_ptr<Session>& session,
                    net::NetMessage first);
  void schedule_drain(const std::shared_ptr<Session>& session);
  void drain_display(const std::shared_ptr<Session>& session);
  void schedule_control_drain(const std::shared_ptr<Session>& session);
  void drain_renderer_control(const std::shared_ptr<Session>& session);
  /// Idempotent teardown: deregister from the loop, detach from the hub,
  /// shut the socket down, drop the session record.
  void evict(const std::shared_ptr<Session>& session)
      TVVIZ_EXCLUDES(sessions_mutex_);

  // ----- legacy thread-per-connection transport -----------------------
  struct ThreadSession;

  void accept_loop() TVVIZ_EXCLUDES(threads_mutex_);
  void serve_connection(ThreadSession& session);
  void serve_renderer(std::shared_ptr<net::TcpConnection> conn);
  void serve_display(std::shared_ptr<net::TcpConnection> conn,
                     net::HelloInfo info);
  /// Join and erase sessions whose serve thread has finished (called from
  /// the accept thread between accepts — the reap that keeps churn bounded).
  void reap_finished_sessions() TVVIZ_EXCLUDES(threads_mutex_);

  FrameHub hub_;
  HubConfig config_;
  std::uint32_t max_version_ = net::kProtocolVersion;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};

  // Epoll transport state.
  std::unique_ptr<net::EventLoop> loop_;
  std::thread loop_thread_;
  net::BlockingQueue<std::function<void()>> jobs_;
  std::vector<std::thread> pool_;
  mutable util::Mutex sessions_mutex_;
  std::unordered_map<int, std::shared_ptr<Session>> sessions_
      TVVIZ_GUARDED_BY(sessions_mutex_);
  /// Loop-thread only: current listener re-arm backoff after fd exhaustion.
  double accept_backoff_ms_ = 0.0;

  // Legacy transport state.
  std::thread accept_thread_;
  mutable util::Mutex threads_mutex_;
  std::list<ThreadSession> thread_sessions_ TVVIZ_GUARDED_BY(threads_mutex_);
};

/// Display-side endpoint speaking the v2 hub handshake. Compare
/// net::TcpDisplayLink, the v1 single-client form (which the hub also
/// accepts, minus resume/acks).
class HubTcpViewer {
 public:
  struct Options {
    std::string client_id;       ///< Empty = let the hub assign one.
    int last_acked_step = -1;    ///< Resume after this step; -1 = live only.
    std::uint32_t queue_frames = 0;  ///< Requested bound; 0 = hub default.
    /// Send kHeartbeat beacons from a background thread every this many
    /// milliseconds; 0 = no heartbeat thread.
    int heartbeat_interval_ms = 0;
    /// Survive refused connects and mid-stream disconnects: next() silently
    /// reconnects under `retry` and resumes after the last acked step
    /// (net.retry.reconnects counts each recovery). Off by default — the
    /// pre-fault-injection fail-fast behavior.
    bool auto_reconnect = false;
    /// Backoff/timeout policy for connects and reconnects (its io_timeout_ms
    /// is installed on the socket, so a stalled hub surfaces as a
    /// TimeoutError instead of a hang).
    fault::RetryPolicy retry{};
    /// When the server refuses the hello with "unsupported protocol
    /// version", renegotiate down the ladder instead of failing
    /// (net.retry.downgrades): v3 drops to v2 unconditionally (only the
    /// frame-ref capability is lost); v2 drops to the legacy v1 hello only
    /// with this set, because v1 carries no identity or resume point.
    bool allow_downgrade = true;
    /// Announce the v3 frame-ref capability: the hub sends kFrameRef
    /// advertisements instead of frame bodies and answers request_frame()
    /// with kFrameData. For relay edges (hub/relay.hpp), not end viewers —
    /// whoever sets this owns a content cache to resolve refs against.
    bool wants_frame_refs = false;
    /// Announce the v4 depth capability: depth-container frames arrive
    /// intact (for the render::Warper) instead of being stripped to their
    /// color half at the hub. Silently dropped when the ladder settles
    /// below v4.
    bool wants_depth = false;
  };

  /// Connects and completes the handshake. Throws std::runtime_error on
  /// refusal, with the server's kError text.
  explicit HubTcpViewer(int port);
  HubTcpViewer(int port, Options options);
  ~HubTcpViewer();

  /// The identity the hub filed this client under (echoed or assigned).
  /// Resolved under the state lock: a concurrent reconnect may reassign it.
  std::string assigned_id() const TVVIZ_EXCLUDES(state_mutex_);

  /// True once the handshake fell back to the v1 hello.
  bool downgraded() const noexcept { return downgraded_.load(); }

  /// Hello generation the last handshake settled on (4 unless the server
  /// pushed the negotiation down the ladder).
  std::uint32_t negotiated_version() const noexcept {
    return hello_version_.load();
  }

  /// Successful mid-stream recoveries so far (mirrors net.retry.reconnects
  /// for this endpoint; the relay layer folds deltas into
  /// net.relay.upstream_reconnects).
  std::uint64_t reconnects() const noexcept { return reconnects_.load(); }

  /// Wire bytes this endpoint has received via next() — an edge's measure
  /// of the upstream (root-egress) traffic it cost.
  std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load();
  }

  /// Blocking receive. std::nullopt when the hub closes (with
  /// auto_reconnect: only once reconnection attempts are exhausted).
  std::optional<net::NetMessage> next()
      TVVIZ_EXCLUDES(send_mutex_, state_mutex_);

  /// Acknowledge a displayed step (the resume point for a reconnect).
  void ack(int step) TVVIZ_EXCLUDES(send_mutex_);
  void send_control(const net::ControlEvent& event)
      TVVIZ_EXCLUDES(send_mutex_);
  /// Cache-miss reply to a kFrameRef: ask the hub for the body; it arrives
  /// as a kFrameData on the normal next() stream. Requires a v3 handshake
  /// with wants_frame_refs. A send failure under auto_reconnect is
  /// swallowed — the reconnect replays the ref and the edge re-requests.
  void request_frame(net::ContentId content) TVVIZ_EXCLUDES(send_mutex_);

  /// Contract (PR 4 review): close() must never wait on send_mutex_ — a
  /// sender blocked inside send_message() holds it and is unblocked only by
  /// the socket shutdown close() performs.
  void close() TVVIZ_EXCLUDES(send_mutex_);

 private:
  /// One connect + handshake attempt (including the v1 downgrade leg).
  /// Returns the connected socket; updates assigned_id_/downgraded_. Does
  /// I/O, so state_mutex_ must not be held on entry.
  std::shared_ptr<net::TcpConnection> connect_and_handshake()
      TVVIZ_EXCLUDES(state_mutex_);
  /// Backoff loop over connect_and_handshake; swaps conn_ on success.
  bool reconnect() TVVIZ_EXCLUDES(send_mutex_, state_mutex_);
  std::shared_ptr<net::TcpConnection> current() const
      TVVIZ_EXCLUDES(state_mutex_);

  int port_ = 0;
  Options options_;
  std::shared_ptr<net::TcpConnection> conn_ TVVIZ_GUARDED_BY(state_mutex_);
  std::string assigned_id_ TVVIZ_GUARDED_BY(state_mutex_);
  std::atomic<int> last_acked_{-1};
  std::atomic<bool> open_{true};
  std::atomic<bool> downgraded_{false};
  /// Hello generation for the next handshake; written only by the ladder in
  /// connect_and_handshake, sticky across reconnects (a server that refused
  /// v3 once is not offered it again).
  std::atomic<std::uint32_t> hello_version_{net::kProtocolVersion};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  util::Rng retry_rng_{0x76696577ULL};  ///< Jitter stream for reconnects.
  /// Serializes the senders (ack/control/heartbeat). May be held for as long
  /// as a send blocks, so close() must never wait on it.
  mutable util::Mutex send_mutex_ TVVIZ_ACQUIRED_BEFORE(state_mutex_);
  /// Guards the conn_ pointer and assigned_id_ — held only for snapshots and
  /// swaps, never across I/O, so close() and reconnect() can always reach the
  /// live socket even while a sender is blocked holding send_mutex_.
  /// Lock order where both are taken: send_mutex_ then state_mutex_.
  mutable util::Mutex state_mutex_;
  std::thread heartbeat_thread_;
};

}  // namespace tvviz::hub
