// Communicator: a rank's view of a process group, in the style of MPI.
// Point-to-point operations go through per-rank mailboxes; collectives are
// implemented as binomial trees / dissemination patterns over point-to-point,
// so they exercise the same messaging substrate a real cluster would.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"
#include "vmp/mailbox.hpp"

namespace tvviz::obs {
class Counter;
}

namespace tvviz::vmp {

class World;

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return static_cast<int>(ranks_.size()); }

  // -- point to point ------------------------------------------------------

  /// Send bytes to `dest` (rank within this communicator) with `tag`.
  /// Non-blocking in the eager-buffered sense: the mailbox shares the
  /// refcounted payload, so sending never copies the bytes.
  void send(int dest, int tag, util::SharedBytes payload) const;
  void send(int dest, int tag, util::Bytes payload) const;
  void send(int dest, int tag, std::span<const std::uint8_t> payload) const;

  /// Blocking receive. source/tag accept kAnySource / kAnyTag.
  /// The returned Message::source is translated to this communicator's ranks.
  Message recv(int source = kAnySource, int tag = kAnyTag) const;

  /// Non-blocking probe / receive.
  bool probe(int source = kAnySource, int tag = kAnyTag) const;
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag) const;

  /// Combined exchange (deadlock-free pairwise swap, as in binary-swap).
  Message sendrecv(int peer, int tag, util::SharedBytes payload) const;

  // -- typed convenience wrappers -----------------------------------------

  template <typename T>
  void send_value(int dest, int tag, const T& value) const {
    static_assert(std::is_trivially_copyable_v<T>);
    util::Bytes buf(sizeof(T));
    std::memcpy(buf.data(), &value, sizeof(T));
    send(dest, tag, std::move(buf));
  }

  template <typename T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const Message msg = recv(source, tag);
    T value;
    if (msg.payload.size() != sizeof(T))
      throw std::runtime_error("vmp: recv_value size mismatch");
    std::memcpy(&value, msg.payload.data(), sizeof(T));
    return value;
  }

  // -- collectives (must be called by every rank of the communicator) ------

  /// Dissemination barrier: O(log P) rounds.
  void barrier() const;

  /// Binomial-tree broadcast from `root`; returns the broadcast bytes.
  /// Interior nodes forward the very buffer they received (refcount bump).
  util::SharedBytes bcast(int root, util::SharedBytes payload) const;

  /// Gather each rank's bytes at `root` (index = rank). Non-roots get {}.
  std::vector<util::SharedBytes> gather(int root,
                                        util::SharedBytes payload) const;

  /// Scatter: `root` provides one payload per rank (size() entries, ignored
  /// elsewhere); every rank returns its own.
  util::SharedBytes scatter(int root,
                            std::vector<util::SharedBytes> payloads) const;
  util::SharedBytes scatter(int root, std::vector<util::Bytes> payloads) const;

  /// Allgather: every rank contributes bytes and receives everyone's,
  /// indexed by rank. The results are views into one broadcast table.
  std::vector<util::SharedBytes> allgather(util::SharedBytes payload) const;

  /// Element-wise reduction of equal-length double vectors at `root`.
  std::vector<double> reduce(int root, std::vector<double> values,
                             ReduceOp op) const;

  /// Reduce + broadcast.
  std::vector<double> allreduce(std::vector<double> values, ReduceOp op) const;

  /// Partition into sub-communicators by `color` (ranks with equal color end
  /// up together, ordered by current rank). Every rank must call this.
  Communicator split(int color) const;

  /// Sub-communicator over an explicit subset of this communicator's ranks
  /// (same list on every rank). Ranks not listed get a null communicator
  /// (size 0) and must not use it.
  Communicator subgroup(const std::vector<int>& members) const;

  bool is_null() const noexcept { return ranks_.empty(); }

 private:
  friend class Cluster;
  friend class World;
  Communicator(std::shared_ptr<World> world, std::uint32_t context, int rank,
               std::vector<int> ranks);

  int global_rank(int local) const { return ranks_.at(static_cast<std::size_t>(local)); }
  int local_rank_of_global(int global) const;
  Communicator subgroup_internal(const std::vector<int>& members,
                                 std::uint32_t context) const;
  /// Collective: parent rank 0 allocates `count` fresh context ids and
  /// broadcasts the first; ids are consecutive.
  std::uint32_t allocate_contexts(int count) const;

  std::shared_ptr<World> world_;
  std::uint32_t context_ = 0;
  int rank_ = -1;               ///< This rank within the communicator.
  std::vector<int> ranks_;      ///< local rank -> world rank.
  // Per-world-rank send counters (obs registry entries; null for the null
  // communicator). Resolved once at construction, bumped lock-free in send().
  obs::Counter* msgs_sent_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
};

/// Launches P rank threads, each receiving a Communicator over the full world.
/// Exceptions thrown by any rank poison the world (unblocking peers) and the
/// first one is rethrown from run().
class Cluster {
 public:
  using RankFn = std::function<void(Communicator&)>;

  /// Run `fn` on `num_ranks` virtual processors and wait for completion.
  static void run(int num_ranks, const RankFn& fn);
};

}  // namespace tvviz::vmp
