#include "vmp/communicator.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/counters.hpp"

namespace tvviz::vmp {

/// Shared state of the virtual machine: one mailbox per world rank and a
/// context-id allocator for derived communicators.
class World {
 public:
  explicit World(int size) : mailboxes_(static_cast<std::size_t>(size)) {}

  Mailbox& mailbox(int world_rank) {
    return mailboxes_.at(static_cast<std::size_t>(world_rank));
  }

  /// Reserve `count` consecutive context ids; returns the first.
  std::uint32_t allocate_contexts(std::uint32_t count) {
    return context_counter_.fetch_add(count) + 1;
  }

  void poison_all() {
    for (auto& mb : mailboxes_) mb.poison();
  }

  int size() const { return static_cast<int>(mailboxes_.size()); }

 private:
  std::vector<Mailbox> mailboxes_;
  std::atomic<std::uint32_t> context_counter_{0};
};

namespace {
// Reserved tags for collectives; user traffic must use tags >= 0, and the
// communicator context already isolates different communicators.
constexpr int kBarrierTag = -1000;
constexpr int kBcastTag = -1001;
constexpr int kGatherTag = -1002;
constexpr int kReduceTag = -1003;

util::Bytes pack_doubles(const std::vector<double>& v) {
  util::ByteWriter w(v.size() * 8 + 4);
  w.varint(v.size());
  for (double x : v) w.f64(x);
  return w.take();
}

std::vector<double> unpack_doubles(std::span<const std::uint8_t> b) {
  util::ByteReader r(b);
  std::vector<double> v(r.varint());
  for (auto& x : v) x = r.f64();
  return v;
}

void apply_reduce(std::vector<double>& acc, const std::vector<double>& in,
                  ReduceOp op) {
  if (acc.size() != in.size())
    throw std::runtime_error("vmp: reduce length mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] += in[i]; break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
    }
  }
}
}  // namespace

Communicator::Communicator(std::shared_ptr<World> world, std::uint32_t context,
                           int rank, std::vector<int> ranks)
    : world_(std::move(world)),
      context_(context),
      rank_(rank),
      ranks_(std::move(ranks)) {
  if (rank_ >= 0 && !ranks_.empty()) {
    // Counters are keyed by *world* rank, so split/subgroup communicators of
    // the same processor feed the same per-rank lane.
    const std::string prefix =
        "vmp.rank" + std::to_string(ranks_[static_cast<std::size_t>(rank_)]);
    msgs_sent_ = &obs::counter(prefix + ".messages_sent");
    bytes_sent_ = &obs::counter(prefix + ".bytes_sent");
  }
}

int Communicator::local_rank_of_global(int global) const {
  const auto it = std::find(ranks_.begin(), ranks_.end(), global);
  if (it == ranks_.end())
    throw std::runtime_error("vmp: message from rank outside communicator");
  return static_cast<int>(it - ranks_.begin());
}

void Communicator::send(int dest, int tag, util::SharedBytes payload) const {
  static obs::Counter& msgs = obs::counter("vmp.messages_sent");
  static obs::Counter& bytes = obs::counter("vmp.bytes_sent");
  msgs.add(1);
  bytes.add(payload.size());
  if (msgs_sent_) {
    msgs_sent_->add(1);
    bytes_sent_->add(payload.size());
  }
  world_->mailbox(global_rank(dest))
      .push(Message(global_rank(rank_), tag, context_, std::move(payload)));
}

void Communicator::send(int dest, int tag, util::Bytes payload) const {
  send(dest, tag, util::SharedBytes(std::move(payload)));
}

void Communicator::send(int dest, int tag,
                        std::span<const std::uint8_t> payload) const {
  send(dest, tag, util::SharedBytes::copy_of(payload));
}

Message Communicator::recv(int source, int tag) const {
  const int global_src = source == kAnySource ? kAnySource : global_rank(source);
  Message msg = world_->mailbox(global_rank(rank_)).pop(context_, global_src, tag);
  msg.source = local_rank_of_global(msg.source);
  return msg;
}

bool Communicator::probe(int source, int tag) const {
  const int global_src = source == kAnySource ? kAnySource : global_rank(source);
  return world_->mailbox(global_rank(rank_)).probe(context_, global_src, tag);
}

std::optional<Message> Communicator::try_recv(int source, int tag) const {
  const int global_src = source == kAnySource ? kAnySource : global_rank(source);
  auto msg = world_->mailbox(global_rank(rank_)).try_pop(context_, global_src, tag);
  if (msg) msg->source = local_rank_of_global(msg->source);
  return msg;
}

Message Communicator::sendrecv(int peer, int tag,
                               util::SharedBytes payload) const {
  // Mailboxes buffer eagerly, so a plain send-then-recv cannot deadlock.
  send(peer, tag, std::move(payload));
  return recv(peer, tag);
}

void Communicator::barrier() const {
  // Dissemination barrier: O(log P) rounds, exact-source matching.
  const int p = size();
  for (int step = 1; step < p; step <<= 1) {
    const int to = (rank_ + step) % p;
    const int from = (rank_ - step % p + p) % p;
    send(to, kBarrierTag, util::Bytes{});
    (void)recv(from, kBarrierTag);
  }
}

util::SharedBytes Communicator::bcast(int root,
                                      util::SharedBytes payload) const {
  // Binomial tree rotated so that `root` maps to virtual rank 0. Every rank
  // receives from a deterministic parent (exact-source match), so two
  // back-to-back broadcasts on the same communicator cannot cross-talk.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int recv_step;  // the bit at which this vrank hangs off the tree
  if (vrank == 0) {
    recv_step = 1;
    while (recv_step < p) recv_step <<= 1;
  } else {
    recv_step = vrank & -vrank;
    const int vparent = vrank - recv_step;
    payload = recv((vparent + root) % p, kBcastTag).payload;
  }
  for (int step = recv_step >> 1; step >= 1; step >>= 1) {
    const int vchild = vrank + step;
    if (vchild < p) send((vchild + root) % p, kBcastTag, payload);
  }
  return payload;
}

std::vector<util::SharedBytes> Communicator::gather(
    int root, util::SharedBytes payload) const {
  // Flat gather with per-source receives: correct under repeated gathers
  // because mailbox delivery is FIFO per (source, context, tag).
  if (rank_ == root) {
    std::vector<util::SharedBytes> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(payload);
    for (int src = 0; src < size(); ++src) {
      if (src == root) continue;
      out[static_cast<std::size_t>(src)] = recv(src, kGatherTag).payload;
    }
    return out;
  }
  send(root, kGatherTag, std::move(payload));
  return {};
}

util::SharedBytes Communicator::scatter(
    int root, std::vector<util::SharedBytes> payloads) const {
  constexpr int kScatterTag = -1004;
  if (rank_ == root) {
    if (payloads.size() != static_cast<std::size_t>(size()))
      throw std::invalid_argument("vmp: scatter payload count != size()");
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      send(dst, kScatterTag, std::move(payloads[static_cast<std::size_t>(dst)]));
    }
    return std::move(payloads[static_cast<std::size_t>(root)]);
  }
  return recv(root, kScatterTag).payload;
}

util::SharedBytes Communicator::scatter(int root,
                                        std::vector<util::Bytes> payloads) const {
  std::vector<util::SharedBytes> shared;
  shared.reserve(payloads.size());
  for (auto& b : payloads) shared.emplace_back(std::move(b));
  return scatter(root, std::move(shared));
}

std::vector<util::SharedBytes> Communicator::allgather(
    util::SharedBytes payload) const {
  // Gather at rank 0, then broadcast the packed table. Every rank's result
  // entries are aliasing views into the one broadcast table buffer.
  auto all = gather(0, std::move(payload));
  util::SharedBytes table;
  if (rank_ == 0) {
    std::size_t total = util::varint_size(all.size());
    for (const auto& b : all) total += util::varint_size(b.size()) + b.size();
    util::ByteWriter w(total);
    w.varint(all.size());
    for (const auto& b : all) {
      w.varint(b.size());
      w.raw(b);
    }
    table = w.take();
  }
  table = bcast(0, std::move(table));
  util::ByteReader r(table);
  std::vector<util::SharedBytes> out(r.varint());
  for (auto& b : out) {
    const std::size_t len = r.varint();
    const auto s = r.raw(len);
    b = table.view(static_cast<std::size_t>(s.data() - table.data()), len);
  }
  return out;
}

std::vector<double> Communicator::reduce(int root, std::vector<double> values,
                                         ReduceOp op) const {
  // Binomial-tree reduction toward virtual rank 0 (= root).
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      const int parent = ((vrank - step) + root) % p;
      send(parent, kReduceTag, pack_doubles(values));
      return {};  // contributed; done
    }
    const int vchild = vrank + step;
    if (vchild < p) {
      const Message msg = recv((vchild + root) % p, kReduceTag);
      apply_reduce(values, unpack_doubles(msg.payload), op);
    }
  }
  return values;
}

std::vector<double> Communicator::allreduce(std::vector<double> values,
                                            ReduceOp op) const {
  auto reduced = reduce(0, std::move(values), op);
  auto packed = bcast(0, rank_ == 0 ? pack_doubles(reduced) : util::Bytes{});
  return unpack_doubles(packed);
}

std::uint32_t Communicator::allocate_contexts(int count) const {
  util::SharedBytes packed;
  if (rank_ == 0) {
    util::ByteWriter w;
    w.u32(world_->allocate_contexts(static_cast<std::uint32_t>(count)));
    packed = w.take();
  }
  packed = bcast(0, std::move(packed));
  return util::ByteReader(packed).u32();
}

Communicator Communicator::subgroup_internal(const std::vector<int>& members,
                                             std::uint32_t context) const {
  std::vector<int> global;
  global.reserve(members.size());
  int my_pos = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == rank_) my_pos = static_cast<int>(i);
    global.push_back(global_rank(members[i]));
  }
  if (my_pos < 0) return Communicator(world_, 0, -1, {});  // null communicator
  return Communicator(world_, context, my_pos, std::move(global));
}

Communicator Communicator::subgroup(const std::vector<int>& members) const {
  const std::uint32_t ctx = allocate_contexts(1);
  return subgroup_internal(members, ctx);
}

Communicator Communicator::split(int color) const {
  // Exchange colors, then derive one fresh context per distinct color so the
  // resulting sibling communicators cannot observe each other's traffic.
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(color));
  auto all = gather(0, w.take());
  util::SharedBytes table;
  if (rank_ == 0) {
    util::ByteWriter tw(all.size() * 4);
    for (const auto& b : all) tw.u32(util::ByteReader(b).u32());
    table = tw.take();
  }
  table = bcast(0, std::move(table));
  util::ByteReader r(table);
  std::vector<int> colors(static_cast<std::size_t>(size()));
  for (auto& c : colors) c = static_cast<int>(r.u32());

  // Distinct colors in order of first appearance define context offsets.
  std::vector<int> distinct;
  for (int c : colors)
    if (std::find(distinct.begin(), distinct.end(), c) == distinct.end())
      distinct.push_back(c);
  const std::uint32_t base =
      allocate_contexts(static_cast<int>(distinct.size()));
  const auto color_index = static_cast<std::uint32_t>(
      std::find(distinct.begin(), distinct.end(), color) - distinct.begin());

  std::vector<int> members;
  for (int i = 0; i < size(); ++i)
    if (colors[static_cast<std::size_t>(i)] == color) members.push_back(i);
  return subgroup_internal(members, base + color_index);
}

void Cluster::run(int num_ranks, const RankFn& fn) {
  if (num_ranks <= 0) throw std::invalid_argument("vmp: num_ranks must be > 0");
  auto world = std::make_shared<World>(num_ranks);
  const std::uint32_t ctx = world->allocate_contexts(1);

  std::vector<int> identity(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) identity[static_cast<std::size_t>(i)] = i;

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks));
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(world, ctx, r, identity);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        world->poison_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& err : errors)
    if (err) std::rethrow_exception(err);
}

}  // namespace tvviz::vmp
