#include "vmp/mailbox.hpp"

#include <stdexcept>

#include "obs/counters.hpp"

namespace tvviz::vmp {

void Mailbox::push(Message msg) {
  static obs::Gauge& depth = obs::gauge("vmp.mailbox.depth");
  {
    util::LockGuard lock(mutex_);
    queue_.push_back(std::move(msg));
    depth.update_max(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::extract_locked(std::uint32_t context, int source,
                                               int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, context, source, tag)) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

Message Mailbox::pop(std::uint32_t context, int source, int tag) {
  util::LockGuard lock(mutex_);
  for (;;) {
    if (auto msg = extract_locked(context, source, tag)) return std::move(*msg);
    if (poisoned_)
      throw std::runtime_error("vmp: world poisoned while waiting for message");
    cv_.wait(mutex_);
  }
}

bool Mailbox::probe(std::uint32_t context, int source, int tag) const {
  util::LockGuard lock(mutex_);
  for (const auto& m : queue_)
    if (matches(m, context, source, tag)) return true;
  return false;
}

std::optional<Message> Mailbox::try_pop(std::uint32_t context, int source,
                                        int tag) {
  util::LockGuard lock(mutex_);
  return extract_locked(context, source, tag);
}

void Mailbox::poison() {
  {
    util::LockGuard lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  util::LockGuard lock(mutex_);
  return queue_.size();
}

}  // namespace tvviz::vmp
