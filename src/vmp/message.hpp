// Message envelope for the virtual message-passing runtime.
#pragma once

#include <cstdint>
#include <utility>

#include "util/shared_bytes.hpp"

namespace tvviz::vmp {

/// Wildcards for receive matching (MPI_ANY_SOURCE / MPI_ANY_TAG analogues).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;       ///< Sending rank within the communicator's world.
  int tag = 0;          ///< Application tag.
  std::uint32_t context = 0;  ///< Communicator context id (isolates traffic).
  /// Refcounted: forwarding a message between ranks shares the allocation.
  util::SharedBytes payload;

  Message() = default;
  Message(int src, int tag_, std::uint32_t ctx, util::SharedBytes data)
      : source(src), tag(tag_), context(ctx), payload(std::move(data)) {}
};

}  // namespace tvviz::vmp
