// Per-rank mailbox: an unbounded MPSC queue with blocking receive matched on
// (context, tag, source). One mailbox per virtual processor node.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "vmp/message.hpp"

namespace tvviz::vmp {

class Mailbox {
 public:
  /// Enqueue a message (called by any sender thread).
  void push(Message msg);

  /// Block until a message matching (context, tag, source) is available and
  /// remove it. tag/source may be kAnyTag/kAnySource.
  /// Throws std::runtime_error if the world was poisoned (a peer died).
  Message pop(std::uint32_t context, int source, int tag);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(std::uint32_t context, int source, int tag) const;

  /// Non-blocking receive; std::nullopt when no match is queued.
  std::optional<Message> try_pop(std::uint32_t context, int source, int tag);

  /// Wake all blocked receivers with an error (peer rank failed).
  void poison();

  std::size_t pending() const;

 private:
  static bool matches(const Message& m, std::uint32_t context, int source,
                      int tag) {
    return m.context == context && (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  std::optional<Message> extract_locked(std::uint32_t context, int source,
                                        int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace tvviz::vmp
