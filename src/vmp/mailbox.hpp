// Per-rank mailbox: an unbounded MPSC queue with blocking receive matched on
// (context, tag, source). One mailbox per virtual processor node.
#pragma once

#include <deque>
#include <optional>

#include "util/mutex.hpp"
#include "vmp/message.hpp"

namespace tvviz::vmp {

class Mailbox {
 public:
  /// Enqueue a message (called by any sender thread).
  void push(Message msg) TVVIZ_EXCLUDES(mutex_);

  /// Block until a message matching (context, tag, source) is available and
  /// remove it. tag/source may be kAnyTag/kAnySource.
  /// Throws std::runtime_error if the world was poisoned (a peer died).
  Message pop(std::uint32_t context, int source, int tag)
      TVVIZ_EXCLUDES(mutex_);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(std::uint32_t context, int source, int tag) const
      TVVIZ_EXCLUDES(mutex_);

  /// Non-blocking receive; std::nullopt when no match is queued.
  std::optional<Message> try_pop(std::uint32_t context, int source, int tag)
      TVVIZ_EXCLUDES(mutex_);

  /// Wake all blocked receivers with an error (peer rank failed).
  void poison() TVVIZ_EXCLUDES(mutex_);

  std::size_t pending() const TVVIZ_EXCLUDES(mutex_);

 private:
  static bool matches(const Message& m, std::uint32_t context, int source,
                      int tag) {
    return m.context == context && (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  std::optional<Message> extract_locked(std::uint32_t context, int source,
                                        int tag) TVVIZ_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Message> queue_ TVVIZ_GUARDED_BY(mutex_);
  bool poisoned_ TVVIZ_GUARDED_BY(mutex_) = false;
};

}  // namespace tvviz::vmp
