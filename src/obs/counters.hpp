// Process-wide registry of named monotonic counters and gauges: bytes
// compressed, frames relayed, mailbox depth high-water, and so on. Cheap
// enough for hot paths — increments are relaxed atomics with no locks; the
// registry mutex is only taken to resolve a name to its counter, which call
// sites do once (function-local static reference).
//
//   static obs::Counter& frames = obs::counter("net.daemon.frames_relayed");
//   frames.add(1);
//
// Naming scheme: dot-separated, "<subsystem>.<object>.<quantity>", with
// units as suffix where not obvious ("_us", "_bytes"). Counters only ever
// increase; gauges carry a level plus a high-water mark.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tvviz::obs {

/// Monotonic counter. All operations are relaxed atomics.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Level gauge with a high-water mark (e.g. queue depths).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  /// Raise the high-water mark without touching the level.
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = hw_.load(std::memory_order_relaxed);
    while (v > cur &&
           !hw_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  std::int64_t high_water() const noexcept {
    return hw_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    v_.store(0, std::memory_order_relaxed);
    hw_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> hw_{0};
};

/// Find-or-create by name. The returned reference is stable for the life of
/// the process; resolve once and cache at hot call sites.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

struct CounterSample {
  std::string name;
  bool is_gauge = false;
  std::uint64_t value = 0;       ///< Counter value (counters).
  std::int64_t level = 0;        ///< Current level (gauges).
  std::int64_t high_water = 0;   ///< High-water mark (gauges).
};

/// Snapshot of every registered counter and gauge, sorted by name.
std::vector<CounterSample> counters_snapshot();

/// {"counters":{name:value,...},"gauges":{name:{"value":v,"high_water":h}}}
void write_counters_json(std::ostream& out);
bool write_counters_json_file(const std::string& path);

/// Zero every counter and gauge (benchmark isolation, tests).
void reset_counters();

}  // namespace tvviz::obs
