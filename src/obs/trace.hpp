// Lightweight span tracing for the input -> render -> composite -> compress
// -> send -> display pipeline. Spans are fixed-size event records written
// into per-lane ring buffers (one lane per thread — vmp rank, daemon relay,
// display client — or an explicitly named lane for virtual-time traces from
// the discrete-event simulator). The exporter emits Chrome trace_event JSON
// loadable in chrome://tracing or Perfetto.
//
// Tracing is off by default; a disabled TVVIZ_SPAN costs one relaxed atomic
// load. Recording a span takes one uncontended mutex acquisition on the
// owning lane, cheap at per-stage (not per-pixel) granularity.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tvviz::obs {

/// One completed span. `name` must point at storage that outlives the trace
/// (string literals at the call sites).
struct TraceEvent {
  const char* name = "";
  double start_s = 0.0;  ///< Seconds since the process trace epoch.
  double end_s = 0.0;
  int step = -1;   ///< Time step the span worked on (-1 = n/a).
  int group = -1;  ///< Processor group (-1 = n/a).
};

/// Globally enable/disable span recording. Counters are always on; tracing
/// is opt-in (e.g. behind a --trace-out flag).
void enable_tracing(bool on) noexcept;
bool tracing_enabled() noexcept;

/// Seconds since the process trace epoch (monotonic).
double trace_now_seconds() noexcept;

/// Point this thread's spans at the lane called `name`, creating it on
/// first use. Lanes are keyed by name, so ranks of successive sessions
/// share one lane each ("rank 0", "rank 1", ...).
void set_thread_lane(const std::string& name);

/// Id of the named lane (created on demand): the handle for explicit-time
/// recording, e.g. virtual timestamps from the pipeline simulator.
int lane_id(const std::string& name);

/// Record a completed span with explicit timestamps on an explicit lane.
/// No-op while tracing is disabled.
void record_span(int lane, const char* name, double start_s, double end_s,
                 int step = -1, int group = -1);

/// RAII span on the current thread's lane: captures the start time at
/// construction and records the event at end()/destruction. Inert when
/// tracing was disabled at construction.
class Span {
 public:
  explicit Span(const char* name, int step = -1, int group = -1);
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record now instead of at scope exit (idempotent).
  void end();

 private:
  const char* name_;
  double start_s_;
  int step_, group_;
  bool active_;
};

/// One lane's recorded events (ring-buffer order, newest kept on overflow).
struct LaneSnapshot {
  int id = 0;
  std::string name;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;  ///< Events overwritten by ring wrap-around.
};

/// Copy out every lane's events (safe while recording continues).
std::vector<LaneSnapshot> snapshot_trace();

/// Emit the whole trace as Chrome trace_event JSON: one tid per lane with a
/// thread_name metadata record, spans as complete ("X") events carrying
/// step/group args, timestamps in microseconds.
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace to `path`; false (with no throw) if the file cannot
/// be opened.
bool write_chrome_trace_file(const std::string& path);

/// Drop all recorded events and drop counts. Lane registrations survive.
void clear_trace();

}  // namespace tvviz::obs

#define TVVIZ_SPAN_CONCAT2(a, b) a##b
#define TVVIZ_SPAN_CONCAT(a, b) TVVIZ_SPAN_CONCAT2(a, b)
/// TVVIZ_SPAN("render", step, group): RAII span for the enclosing scope.
#define TVVIZ_SPAN(...) \
  ::tvviz::obs::Span TVVIZ_SPAN_CONCAT(tvviz_span_, __LINE__)(__VA_ARGS__)
