#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <unordered_map>

#include "util/mutex.hpp"

namespace tvviz::obs {

namespace {

constexpr std::size_t kLaneCapacity = 1 << 16;  ///< Events kept per lane.

std::atomic<bool> g_enabled{false};

/// Single-writer ring buffer of completed spans. The mutex is uncontended in
/// steady state (owner thread writes; snapshot/clear are rare readers).
struct Lane {
  Lane(int id_in, std::string name_in) : id(id_in), name(std::move(name_in)) {}

  void push(const TraceEvent& e) TVVIZ_EXCLUDES(mutex) {
    util::LockGuard lock(mutex);
    if (events.size() < kLaneCapacity) {
      events.push_back(e);
    } else {
      events[wrap] = e;
      wrap = (wrap + 1) % kLaneCapacity;
      ++dropped;
    }
  }

  const int id;
  const std::string name;
  util::Mutex mutex;
  std::vector<TraceEvent> events TVVIZ_GUARDED_BY(mutex);
  std::size_t wrap TVVIZ_GUARDED_BY(mutex) = 0;  ///< Oldest slot, once full.
  std::uint64_t dropped TVVIZ_GUARDED_BY(mutex) = 0;
};

struct Registry {
  util::Mutex mutex;
  std::vector<std::shared_ptr<Lane>> lanes TVVIZ_GUARDED_BY(mutex);  // by id
  std::unordered_map<std::string, std::shared_ptr<Lane>> named
      TVVIZ_GUARDED_BY(mutex);
  int next_id TVVIZ_GUARDED_BY(mutex) = 1;

  std::shared_ptr<Lane> lane_for(const std::string& name)
      TVVIZ_EXCLUDES(mutex) {
    util::LockGuard lock(mutex);
    auto it = named.find(name);
    if (it != named.end()) return it->second;
    auto lane = std::make_shared<Lane>(next_id++, name);
    lanes.push_back(lane);
    named.emplace(name, lane);
    return lane;
  }
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

/// This thread's lane; shared_ptr keeps it readable after thread exit.
thread_local std::shared_ptr<Lane> t_lane;

Lane& thread_lane() {
  if (!t_lane) {
    static std::atomic<int> anon_counter{0};
    t_lane = registry().lane_for("thread " +
                                 std::to_string(anon_counter.fetch_add(1)));
  }
  return *t_lane;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void json_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void enable_tracing(bool on) noexcept {
  if (on) (void)trace_epoch();  // pin the epoch before the first span
  g_enabled.store(on, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

double trace_now_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       trace_epoch())
      .count();
}

void set_thread_lane(const std::string& name) {
  t_lane = registry().lane_for(name);
}

int lane_id(const std::string& name) { return registry().lane_for(name)->id; }

void record_span(int lane, const char* name, double start_s, double end_s,
                 int step, int group) {
  if (!tracing_enabled()) return;
  std::shared_ptr<Lane> target;
  {
    Registry& reg = registry();
    util::LockGuard lock(reg.mutex);
    for (const auto& l : reg.lanes)
      if (l->id == lane) {
        target = l;
        break;
      }
  }
  if (!target) return;  // unknown lane id: drop silently
  target->push(TraceEvent{name, start_s, end_s, step, group});
}

Span::Span(const char* name, int step, int group)
    : name_(name),
      start_s_(0.0),
      step_(step),
      group_(group),
      active_(tracing_enabled()) {
  if (active_) start_s_ = trace_now_seconds();
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  thread_lane().push(
      TraceEvent{name_, start_s_, trace_now_seconds(), step_, group_});
}

std::vector<LaneSnapshot> snapshot_trace() {
  std::vector<std::shared_ptr<Lane>> lanes;
  {
    Registry& reg = registry();
    util::LockGuard lock(reg.mutex);
    lanes = reg.lanes;
  }
  std::vector<LaneSnapshot> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes) {
    LaneSnapshot snap;
    snap.id = lane->id;
    snap.name = lane->name;
    util::LockGuard lock(lane->mutex);
    snap.events = lane->events;
    snap.dropped = lane->dropped;
    out.push_back(std::move(snap));
  }
  return out;
}

void write_chrome_trace(std::ostream& out) {
  const auto lanes = snapshot_trace();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const auto& lane : lanes) {
    comma();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << lane.id
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escaped(out, lane.name);
    out << "\"}}";
    for (const auto& e : lane.events) {
      comma();
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << lane.id << ",\"name\":\"";
      json_escaped(out, e.name);
      out << "\",\"ts\":" << e.start_s * 1e6
          << ",\"dur\":" << (e.end_s - e.start_s) * 1e6 << ",\"args\":{";
      out << "\"step\":" << e.step << ",\"group\":" << e.group << "}}";
    }
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return out.good();
}

void clear_trace() {
  std::vector<std::shared_ptr<Lane>> lanes;
  {
    Registry& reg = registry();
    util::LockGuard lock(reg.mutex);
    lanes = reg.lanes;
  }
  for (const auto& lane : lanes) {
    util::LockGuard lock(lane->mutex);
    lane->events.clear();
    lane->wrap = 0;
    lane->dropped = 0;
  }
}

}  // namespace tvviz::obs
