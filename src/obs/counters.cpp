#include "obs/counters.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>

#include "util/mutex.hpp"

namespace tvviz::obs {

namespace {

/// std::map keeps node addresses stable across inserts, so references handed
/// out by counter()/gauge() stay valid forever.
struct CounterRegistry {
  util::Mutex mutex;
  std::map<std::string, Counter, std::less<>> counters
      TVVIZ_GUARDED_BY(mutex);
  std::map<std::string, Gauge, std::less<>> gauges TVVIZ_GUARDED_BY(mutex);
};

CounterRegistry& registry() {
  static CounterRegistry* r = new CounterRegistry;  // leaked: teardown-safe
  return *r;
}

void json_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

Counter& counter(std::string_view name) {
  CounterRegistry& reg = registry();
  util::LockGuard lock(reg.mutex);
  const auto it = reg.counters.find(name);
  if (it != reg.counters.end()) return it->second;
  return reg.counters.emplace(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple())
      .first->second;
}

Gauge& gauge(std::string_view name) {
  CounterRegistry& reg = registry();
  util::LockGuard lock(reg.mutex);
  const auto it = reg.gauges.find(name);
  if (it != reg.gauges.end()) return it->second;
  return reg.gauges.emplace(std::piecewise_construct,
                            std::forward_as_tuple(name),
                            std::forward_as_tuple())
      .first->second;
}

std::vector<CounterSample> counters_snapshot() {
  CounterRegistry& reg = registry();
  util::LockGuard lock(reg.mutex);
  std::vector<CounterSample> out;
  out.reserve(reg.counters.size() + reg.gauges.size());
  for (const auto& [name, c] : reg.counters) {
    CounterSample s;
    s.name = name;
    s.value = c.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : reg.gauges) {
    CounterSample s;
    s.name = name;
    s.is_gauge = true;
    s.level = g.value();
    s.high_water = g.high_water();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void write_counters_json(std::ostream& out) {
  const auto samples = counters_snapshot();
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& s : samples) {
    if (s.is_gauge) continue;
    if (!first) out << ",";
    first = false;
    out << "\n  \"";
    json_escaped(out, s.name);
    out << "\": " << s.value;
  }
  out << "\n},\"gauges\":{";
  first = true;
  for (const auto& s : samples) {
    if (!s.is_gauge) continue;
    if (!first) out << ",";
    first = false;
    out << "\n  \"";
    json_escaped(out, s.name);
    out << "\": {\"value\": " << s.level
        << ", \"high_water\": " << s.high_water << "}";
  }
  out << "\n}}\n";
}

bool write_counters_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_counters_json(out);
  return out.good();
}

void reset_counters() {
  CounterRegistry& reg = registry();
  util::LockGuard lock(reg.mutex);
  for (auto& [name, c] : reg.counters) c.reset();
  for (auto& [name, g] : reg.gauges) g.reset();
}

}  // namespace tvviz::obs
