// The relay tree: hub-of-hubs distribution after the LBNL network-data-
// cache idea. A root FrameHub serves a handful of EdgeHubs instead of every
// viewer; each edge re-serves its region's viewers from its own
// content-addressed FrameCache, so root egress scales with the number of
// edges, not the number of viewers (bench/ablation_relay_tree holds the
// ratio near 1.0 as viewers quadruple).
//
// An EdgeHub is pure composition of existing pieces:
//
//   * upstream: a HubTcpViewer speaking protocol v3 with wants_frame_refs —
//     auto-reconnect under the PR 4 retry/backoff policy, acking whole
//     frames so a killed-and-restarted edge resumes from its last acked
//     step (the root replays kFrameRef advertisements, and the edge fetches
//     only what its cache actually lost);
//   * downstream: a HubTcpServer on the PR 6 event loop — its FrameHub's
//     FrameCache doubles as the edge's content store, its client queues and
//     drop policy govern the edge's viewers exactly as at the root;
//   * between them: a single pump thread resolving advertisements against
//     the local cache (ref hit: reinject the cached payload; miss: send
//     kFrameFetch, park the advertisement until the kFrameData arrives,
//     matched by recomputed ContentId — which doubles as an integrity
//     check on the fetched bytes).
//
// Edges chain: an EdgeHub's upstream_port may be another edge's port(),
// forming deeper trees (tree_depth is advertised on the net.relay.tree_depth
// gauge). Viewers connect to an edge exactly as they would to the root —
// same protocol, same resume semantics — so the tree is invisible to them.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/retry.hpp"
#include "hub/tcp_hub.hpp"
#include "net/protocol.hpp"
#include "util/mutex.hpp"

namespace tvviz::relay {

struct EdgeHubConfig {
  int upstream_port = 0;  ///< Root (or parent edge) hub port on 127.0.0.1.
  int listen_port = 0;    ///< Downstream viewer port; 0 = ephemeral.
  /// Downstream hub shape. cache_steps is the edge's content store: it
  /// bounds both viewer resume depth and ref-dedup reach.
  hub::HubConfig hub{};
  /// Stable upstream identity. A restarted edge reclaiming its id is
  /// resumed by the root from the last step the old incarnation acked.
  /// Empty = let the root assign one (no resume across restarts).
  std::string edge_id;
  /// Backoff/timeout policy for upstream connects and reconnects.
  fault::RetryPolicy upstream_retry{};
  /// Requested upstream send-queue bound; 0 = the root's default.
  std::uint32_t upstream_queue_frames = 0;
  /// Hops below the root (1 = directly attached). Advertised on the
  /// net.relay.tree_depth gauge (update_max across edges in-process).
  int tree_depth = 1;
  /// Advertisements parked awaiting a kFrameData. Beyond this, the oldest
  /// parked advertisement is dropped (net.relay.pending_dropped) — the
  /// same skip-a-step outcome as a backpressure drop.
  std::size_t max_pending_fetches = 256;
};

/// One interior node of the relay tree. Construction connects upstream
/// (blocking, under the retry policy) and starts serving downstream;
/// shutdown() (or the destructor) tears both sides down.
class EdgeHub {
 public:
  /// Point-in-time snapshot of this edge's relay activity (per-instance;
  /// the net.relay.* counters aggregate across every edge in the process).
  struct Stats {
    std::uint64_t refs_seen = 0;        ///< kFrameRef advertisements received.
    std::uint64_t ref_hits = 0;         ///< Resolved from the local cache.
    std::uint64_t ref_misses = 0;       ///< Required an upstream fetch.
    std::uint64_t fetch_bytes_saved = 0;  ///< Payload bytes NOT re-shipped.
    std::uint64_t frames_forwarded = 0;   ///< Messages injected downstream.
    std::uint64_t upstream_bytes = 0;     ///< Wire bytes read upstream.
    std::uint64_t upstream_reconnects = 0;
  };

  explicit EdgeHub(EdgeHubConfig config);
  ~EdgeHub();

  EdgeHub(const EdgeHub&) = delete;
  EdgeHub& operator=(const EdgeHub&) = delete;

  /// Downstream viewer port (resolves an ephemeral listen_port).
  int port() const noexcept { return server_.port(); }
  /// The downstream hub (cache occupancy, client stats) — the edge's own
  /// content store.
  hub::FrameHub& hub() noexcept { return server_.hub(); }
  /// Identity the upstream hub filed this edge under.
  std::string upstream_id() const { return upstream_.assigned_id(); }
  /// True once the upstream stream's end-of-stream marker came through.
  bool stream_ended() const noexcept { return stream_ended_.load(); }

  Stats stats() const;

  void shutdown();

 private:
  void pump_loop();
  /// Forwards viewer control events upstream. A dedicated thread, woken by
  /// the injector's control callback: the callback itself must not block
  /// (it runs on the downstream hub's broadcast path), and an upstream
  /// send can.
  void control_loop() TVVIZ_EXCLUDES(control_mutex_);
  /// Forward one display-ready message into the downstream hub (which
  /// caches image traffic under the edge's own ContentId index) and advance
  /// the upstream ack frontier.
  void inject(net::NetMessage msg);
  void handle_ref(const net::NetMessage& ref);
  void handle_data(const net::NetMessage& data);
  /// Inject queued advertisements from the front while their bodies are
  /// available — strictly in arrival order, so a cache hit behind a
  /// still-in-flight fetch waits its turn and viewers never see steps
  /// reordered.
  void drain_queue();
  /// The newest step this edge may ack upstream: the minimum last-acked
  /// step over its *connected* downstream viewers (never past what they
  /// have displayed, so a killed-and-restarted edge is resumed early enough
  /// that no viewer skips a frame), or the injected frontier when no viewer
  /// is attached.
  int ack_floor();
  /// Ack ack_floor() once nothing is parked — never past a step whose
  /// fetch is still in flight, so an upstream resume cannot skip it.
  void maybe_ack();

  EdgeHubConfig config_;
  hub::HubTcpServer server_;
  /// Renderer-side injection port into the downstream hub; the hub's
  /// control broadcast also surfaces viewer control events here, which the
  /// control callback forwards upstream.
  std::shared_ptr<hub::FrameHub::RendererPort> injector_;
  hub::HubTcpViewer upstream_;

  /// One advertisement awaiting injection (its body, or its turn).
  struct Parked {
    net::NetMessage ref;
    net::FrameRefInfo info;
  };

  /// Pump-thread-only state (single consumer of upstream_.next(); no lock):
  /// advertisements are parked in arrival order and injected strictly from
  /// the front, so a frame whose body is still in flight holds back later
  /// steps instead of being overtaken by them.
  std::deque<Parked> queue_;
  /// Fetched bodies not yet drained into the queue (several parked steps
  /// may share one body). Cleared once the queue empties — by then the
  /// bodies live in the downstream cache.
  std::unordered_map<net::ContentId, util::SharedBytes> arrived_;
  std::unordered_set<net::ContentId> fetched_;  ///< Fetches outstanding.
  int max_ready_step_ = -1;       ///< Newest whole frame injected.
  int last_acked_step_ = -1;      ///< Newest step acked upstream.
  std::uint64_t seen_reconnects_ = 0;  ///< upstream_.reconnects() watermark.

  // Cross-thread stats (pump writes, stats() reads).
  std::atomic<std::uint64_t> refs_seen_{0};
  std::atomic<std::uint64_t> ref_hits_{0};
  std::atomic<std::uint64_t> ref_misses_{0};
  std::atomic<std::uint64_t> bytes_saved_{0};
  std::atomic<std::uint64_t> frames_forwarded_{0};
  std::atomic<std::uint64_t> upstream_reconnects_{0};
  std::atomic<bool> stream_ended_{false};
  std::atomic<bool> running_{true};

  /// Wakeup channel between the (non-blocking) control callback and the
  /// control-forwarding thread.
  mutable util::Mutex control_mutex_;
  util::CondVar control_cv_;
  bool control_signal_ TVVIZ_GUARDED_BY(control_mutex_) = false;

  std::thread pump_;
  std::thread control_thread_;
};

}  // namespace tvviz::relay
