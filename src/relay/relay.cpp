#include "relay/relay.hpp"

#include <algorithm>
#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tvviz::relay {

using net::MsgType;
using net::NetMessage;

namespace {

obs::Counter& ref_hits_ctr() {
  static obs::Counter& c = obs::counter("net.relay.ref_hits");
  return c;
}
obs::Counter& ref_misses_ctr() {
  static obs::Counter& c = obs::counter("net.relay.ref_misses");
  return c;
}
obs::Counter& bytes_saved_ctr() {
  static obs::Counter& c = obs::counter("net.relay.fetch_bytes_saved");
  return c;
}
obs::Counter& reconnects_ctr() {
  static obs::Counter& c = obs::counter("net.relay.upstream_reconnects");
  return c;
}
obs::Counter& forwarded_ctr() {
  static obs::Counter& c = obs::counter("net.relay.frames_forwarded");
  return c;
}
obs::Counter& pending_dropped_ctr() {
  static obs::Counter& c = obs::counter("net.relay.pending_dropped");
  return c;
}
obs::Gauge& tree_depth_gauge() {
  static obs::Gauge& g = obs::gauge("net.relay.tree_depth");
  return g;
}

hub::HubTcpViewer::Options upstream_options(const EdgeHubConfig& config) {
  hub::HubTcpViewer::Options options;
  options.client_id = config.edge_id;
  options.queue_frames = config.upstream_queue_frames;
  options.auto_reconnect = true;
  options.retry = config.upstream_retry;
  options.wants_frame_refs = true;
  return options;
}

/// Reconstruct the display-ready frame an advertisement stands for, from
/// the ref's header fields and a payload that arrived some other way (the
/// local cache or a kFrameData). The payload handle is shared, never
/// copied.
NetMessage materialize(const NetMessage& ref, const net::FrameRefInfo& info,
                       const util::SharedBytes& payload) {
  NetMessage out;
  out.type = info.frame_type;
  out.frame_index = ref.frame_index;
  out.piece = ref.piece;
  out.piece_count = ref.piece_count;
  out.codec = ref.codec;
  out.payload = payload;
  return out;
}

}  // namespace

EdgeHub::EdgeHub(EdgeHubConfig config)
    : config_(std::move(config)),
      server_(config_.listen_port, config_.hub),
      injector_(server_.hub().connect_renderer()),
      upstream_(config_.upstream_port, upstream_options(config_)) {
  tree_depth_gauge().update_max(config_.tree_depth);
  // Viewer control events reach the downstream hub's renderer interfaces;
  // this edge's interface forwards them up the tree. The callback only
  // wakes the control thread — it runs on the hub's broadcast path and
  // must not block on an upstream send.
  injector_->set_control_callback([this] {
    {
      util::LockGuard lock(control_mutex_);
      control_signal_ = true;
    }
    control_cv_.notify_one();
  });
  control_thread_ = std::thread([this] { control_loop(); });
  pump_ = std::thread([this] { pump_loop(); });
}

EdgeHub::~EdgeHub() { shutdown(); }

void EdgeHub::control_loop() {
  obs::set_thread_lane("relay control");
  for (;;) {
    {
      util::LockGuard lock(control_mutex_);
      while (!control_signal_ && running_.load())
        control_cv_.wait(control_mutex_);
      if (!running_.load()) return;
      control_signal_ = false;
    }
    while (auto event = injector_->poll_control()) {
      try {
        upstream_.send_control(*event);
      } catch (const std::exception&) {
        // Upstream mid-reconnect: the event is dropped, like any control
        // event racing a dead link. Steering state is re-sent by users.
      }
    }
  }
}

void EdgeHub::pump_loop() {
  obs::set_thread_lane("relay pump");
  // End-of-stream marker held back while fetches are still in flight: the
  // replies for parked advertisements ride the same upstream queue *behind*
  // the marker, so propagating it immediately would drop the stream's tail.
  std::optional<NetMessage> eos;
  while (running_.load()) {
    std::optional<NetMessage> msg;
    try {
      msg = upstream_.next();
    } catch (const std::exception&) {
      break;  // closed under us mid-recv (shutdown)
    }
    if (!msg) break;  // upstream gone for good (retry attempts exhausted)

    // A reconnect happened inside next(): every in-flight fetch died with
    // the old socket. Drop the parked advertisements — the resume already
    // replayed every unacked step's ref, so the re-requests are underway.
    const std::uint64_t rc = upstream_.reconnects();
    if (rc != seen_reconnects_) {
      reconnects_ctr().add(rc - seen_reconnects_);
      upstream_reconnects_.fetch_add(rc - seen_reconnects_);
      seen_reconnects_ = rc;
      queue_.clear();
      arrived_.clear();
      fetched_.clear();
    }

    switch (msg->type) {
      case MsgType::kFrame:
      case MsgType::kSubImage:
        // v2 fallback (upstream too old for refs): plain store-and-forward.
        // A resume replay overlaps what this edge already injected (the ack
        // floor trails the viewers, not the pump); re-injecting would
        // double-deliver downstream, so already-passed steps are skipped.
        if (msg->frame_index <= max_ready_step_) break;
        inject(std::move(*msg));
        break;
      case MsgType::kFrameRef:
        handle_ref(*msg);
        break;
      case MsgType::kFrameData:
        handle_data(*msg);
        break;
      case MsgType::kShutdown:
        // End of stream: propagate so downstream viewers see it, then stop
        // pumping (reconnecting to a root that signed off is pointless) —
        // but only after every parked advertisement resolves.
        stream_ended_.store(true);
        eos = std::move(*msg);
        break;
      case MsgType::kError:
        return;  // fatal refusal mid-stream
      default:
        // A root never sends hello/ack/control types downstream; log so a
        // protocol-v5 message is visible instead of vanishing into the
        // pump (wire-switch-default, DESIGN.md §18).
        TVVIZ_LOG(kWarn) << "relay: ignoring unexpected upstream message "
                         << "type " << static_cast<int>(msg->type);
        break;
    }
    if (eos && queue_.empty()) {
      inject(std::move(*eos));
      return;
    }
  }
  // Upstream died with the marker in hand: viewers still get their
  // end-of-stream (minus whatever the dead link swallowed).
  if (eos) inject(std::move(*eos));
}

void EdgeHub::inject(NetMessage msg) {
  const bool whole_frame =
      msg.type == MsgType::kFrame ||
      (msg.type == MsgType::kSubImage && msg.piece == msg.piece_count - 1);
  const int step = msg.frame_index;
  forwarded_ctr().add(1);
  frames_forwarded_.fetch_add(1);
  // The downstream hub caches image traffic under this edge's own
  // ContentId index (recomputed once, at its insert) and fans out to the
  // edge's viewers with the root's exact delivery semantics.
  injector_->send(std::move(msg));
  if (whole_frame) {
    max_ready_step_ = std::max(max_ready_step_, step);
    maybe_ack();
  }
}

void EdgeHub::handle_ref(const NetMessage& ref) {
  refs_seen_.fetch_add(1);
  net::FrameRefInfo info;
  try {
    info = net::parse_frame_ref(ref);
  } catch (const std::exception&) {
    return;  // malformed advertisement: skip it, keep the stream alive
  }
  // A resume replay re-advertises steps this edge already injected (the
  // upstream ack floor deliberately trails the viewers): the overlap is a
  // dedup win — nothing is fetched and nothing is re-delivered downstream.
  if (ref.frame_index <= max_ready_step_) {
    ref_hits_ctr().add(1);
    ref_hits_.fetch_add(1);
    bytes_saved_ctr().add(info.payload_bytes);
    bytes_saved_.fetch_add(info.payload_bytes);
    return;
  }
  const auto cached = server_.hub().cache().lookup_content(info.content);
  if (cached) {
    // Dedup win: the payload never crosses the upstream link again — an
    // identical frame, a resumed replay, or a late-joiner catch-up.
    ref_hits_ctr().add(1);
    ref_hits_.fetch_add(1);
    bytes_saved_ctr().add(info.payload_bytes);
    bytes_saved_.fetch_add(info.payload_bytes);
    if (queue_.empty()) {  // nothing ahead of it: inject right away
      inject(materialize(ref, info, cached->payload));
      return;
    }
  } else {
    ref_misses_.fetch_add(1);
    ref_misses_ctr().add(1);
    // One fetch per distinct content, no matter how many parked steps
    // advertise it.
    if (!arrived_.count(info.content) && fetched_.insert(info.content).second)
      upstream_.request_frame(info.content);
  }
  // Park in arrival order behind whatever is still waiting for its body;
  // drain_queue injects strictly from the front, so steps never reorder.
  queue_.push_back({ref, info});
  while (queue_.size() > config_.max_pending_fetches) {
    // Same outcome as a backpressure drop: that step is skipped here.
    pending_dropped_ctr().add(1);
    queue_.pop_front();
  }
  drain_queue();
}

void EdgeHub::handle_data(const NetMessage& data) {
  // Match by recomputed hash, not by trusting any field: a body corrupted
  // in flight hashes to an unknown id and is discarded (the fetch entry
  // stays; an upstream reconnect replays the ref and refetches).
  const net::ContentId content = net::content_id_of(data);
  if (fetched_.erase(content) == 0) {
    return;  // unsolicited, stale, or corrupt
  }
  arrived_[content] = data.payload;
  drain_queue();
}

void EdgeHub::drain_queue() {
  while (!queue_.empty()) {
    const Parked& front = queue_.front();
    util::SharedBytes payload;
    if (const auto it = arrived_.find(front.info.content); it != arrived_.end())
      payload = it->second;
    else if (const auto cached =
                 server_.hub().cache().lookup_content(front.info.content))
      payload = cached->payload;
    else
      break;  // body still in flight: later steps wait their turn
    inject(materialize(front.ref, front.info, payload));
    queue_.pop_front();
  }
  if (queue_.empty()) arrived_.clear();
}

int EdgeHub::ack_floor() {
  int floor = max_ready_step_;
  bool any_viewer = false;
  for (const auto& stats : server_.hub().client_stats()) {
    if (!stats.connected) continue;
    any_viewer = true;
    floor = std::min(floor, stats.last_acked_step);
  }
  return any_viewer ? floor : max_ready_step_;
}

void EdgeHub::maybe_ack() {
  // Never ack past an advertisement whose body is still in flight: an
  // upstream resume replays everything after the acked step, so acking a
  // newer step while an older fetch is pending could skip the older one.
  if (!queue_.empty()) return;
  const int floor = ack_floor();
  if (floor <= last_acked_step_) return;
  last_acked_step_ = floor;
  upstream_.ack(last_acked_step_);
}

EdgeHub::Stats EdgeHub::stats() const {
  Stats s;
  s.refs_seen = refs_seen_.load();
  s.ref_hits = ref_hits_.load();
  s.ref_misses = ref_misses_.load();
  s.fetch_bytes_saved = bytes_saved_.load();
  s.frames_forwarded = frames_forwarded_.load();
  s.upstream_bytes = upstream_.bytes_received();
  s.upstream_reconnects = upstream_reconnects_.load();
  return s;
}

void EdgeHub::shutdown() {
  if (!running_.exchange(false)) return;
  // Wake both service threads: closing the upstream socket unblocks the
  // pump's recv; the signal unblocks the control wait.
  upstream_.close();
  {
    util::LockGuard lock(control_mutex_);
    control_signal_ = true;
  }
  control_cv_.notify_all();
  if (pump_.joinable()) pump_.join();
  if (control_thread_.joinable()) control_thread_.join();
  // Downstream last: the flush guarantee drains every frame the pump
  // already injected out to the viewers before their sockets close.
  server_.shutdown();
}

}  // namespace tvviz::relay
