// Annotated mutex / condition-variable wrappers. This header is the ONLY
// place in src/ allowed to name std::mutex / std::condition_variable /
// std::lock_guard directly (enforced by tools/lint_invariants.py); all
// guarded state declares util::Mutex and takes util::LockGuard so the
// clang thread-safety analysis (thread_annotations.hpp, DESIGN.md §13)
// can see every acquisition.
//
// CondVar deliberately has no predicate overloads: waits are written as
// explicit `while (!pred) cv_.wait(mutex_);` loops at the call site, which
// keeps the guarded reads inside a region the analysis can check (a
// predicate lambda would be analyzed without the lock held).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace tvviz::util {

/// std::mutex with capability annotations.
class TVVIZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TVVIZ_ACQUIRE() { m_.lock(); }
  void unlock() TVVIZ_RELEASE() { m_.unlock(); }
  bool try_lock() TVVIZ_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  /// The underlying handle, for CondVar only: handing it out any wider
  /// would let callers lock behind the analysis's back.
  std::mutex& native() noexcept { return m_; }

  std::mutex m_;
};

/// RAII lock for util::Mutex (the std::lock_guard replacement).
class TVVIZ_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) TVVIZ_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() TVVIZ_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable bound to util::Mutex. Every wait requires the mutex
/// held (and returns with it held), matching std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& m) TVVIZ_REQUIRES(m) {
    // Adopt the already-held mutex for the duration of the wait; release()
    // afterwards so the unique_lock dtor does not unlock it a second time.
    std::unique_lock<std::mutex> lk(m.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& m,
                            const std::chrono::time_point<Clock, Duration>& tp)
      TVVIZ_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.native(), std::adopt_lock);
    std::cv_status status = cv_.wait_until(lk, tp);
    lk.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& m,
                          const std::chrono::duration<Rep, Period>& dur)
      TVVIZ_REQUIRES(m) {
    return wait_until(m, std::chrono::steady_clock::now() + dur);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace tvviz::util
