#include "util/rng.hpp"

#include <cmath>

namespace tvviz::util {

double Rng::normal() noexcept {
  // Box-Muller; u1 in (0,1] so the log is finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace tvviz::util
