// Wall-clock timing for kernel calibration and benchmark harnesses.
#pragma once

#include <chrono>

namespace tvviz::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tvviz::util
