// Minimal 3D math for the renderer: vectors, 4x4 transforms, and rays.
#pragma once

#include <cmath>

namespace tvviz::util {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const noexcept { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }
  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }

  constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double length() const noexcept { return std::sqrt(dot(*this)); }
  Vec3 normalized() const noexcept {
    const double len = length();
    return len > 0.0 ? *this / len : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

/// Row-major 4x4 affine transform (last row implicitly [0 0 0 1] for points).
struct Mat4 {
  double m[4][4] = {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}};

  static constexpr Mat4 identity() noexcept { return {}; }

  static Mat4 translate(const Vec3& t) noexcept {
    Mat4 r;
    r.m[0][3] = t.x;
    r.m[1][3] = t.y;
    r.m[2][3] = t.z;
    return r;
  }

  static Mat4 scale(const Vec3& s) noexcept {
    Mat4 r;
    r.m[0][0] = s.x;
    r.m[1][1] = s.y;
    r.m[2][2] = s.z;
    return r;
  }

  static Mat4 rotate_y(double rad) noexcept {
    Mat4 r;
    const double c = std::cos(rad), s = std::sin(rad);
    r.m[0][0] = c;  r.m[0][2] = s;
    r.m[2][0] = -s; r.m[2][2] = c;
    return r;
  }

  static Mat4 rotate_x(double rad) noexcept {
    Mat4 r;
    const double c = std::cos(rad), s = std::sin(rad);
    r.m[1][1] = c;  r.m[1][2] = -s;
    r.m[2][1] = s;  r.m[2][2] = c;
    return r;
  }

  Mat4 operator*(const Mat4& o) const noexcept {
    Mat4 r;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        double acc = 0.0;
        for (int k = 0; k < 4; ++k) acc += m[i][k] * o.m[k][j];
        r.m[i][j] = acc;
      }
    return r;
  }

  /// Transform a point (applies translation).
  constexpr Vec3 point(const Vec3& p) const noexcept {
    return {m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3]};
  }

  /// Transform a direction (ignores translation).
  constexpr Vec3 dir(const Vec3& d) const noexcept {
    return {m[0][0] * d.x + m[0][1] * d.y + m[0][2] * d.z,
            m[1][0] * d.x + m[1][1] * d.y + m[1][2] * d.z,
            m[2][0] * d.x + m[2][1] * d.y + m[2][2] * d.z};
  }
};

struct Ray {
  Vec3 origin;
  Vec3 direction;  // need not be normalized

  constexpr Vec3 at(double t) const noexcept { return origin + direction * t; }
};

constexpr double clamp01(double v) noexcept {
  return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
}

}  // namespace tvviz::util
