// The project's one payload hash: FNV-1a, 64-bit. Chosen over std::hash
// because its output is implementation-independent — a ContentId computed
// by a renderer build must match the one an edge hub recomputes from the
// same bytes, and a named client's fault stream must replay across
// compilers. Everything in src/ that hashes raw bytes goes through here
// (tools/lint_invariants.py flags stray copies of the FNV constants).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace tvviz::util {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// FNV-1a over raw bytes. `seed` defaults to the standard offset basis;
/// passing a previous fnv1a result chains hashes over discontiguous parts
/// (the ContentId hashes codec-name bytes, then payload bytes).
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                              std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) h = (h ^ b) * kFnv1aPrime;
  return h;
}

/// FNV-1a over the bytes of a string (client ids, codec names).
constexpr std::uint64_t fnv1a(std::string_view s,
                              std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t h = seed;
  for (const char ch : s) h = (h ^ static_cast<std::uint8_t>(ch)) * kFnv1aPrime;
  return h;
}

}  // namespace tvviz::util
