// Deterministic pseudo-random number generation for workload synthesis and
// property tests. xoshiro256++ seeded via splitmix64: fast, high quality, and
// reproducible across platforms (no libstdc++ distribution dependence).
#pragma once

#include <cstdint>
#include <limits>

namespace tvviz::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x6d61637644617669ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid bias.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller (pair discarded; simplicity over speed).
  double normal() noexcept;

  /// Fork a statistically independent stream (for per-worker determinism).
  constexpr Rng fork() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace tvviz::util
