// Zero-copy buffer management for the frame path. Two pieces:
//
//  * SharedBytes — an immutable, reference-counted byte buffer with cheap
//    aliasing views. A compressed frame is produced once (by a codec or a
//    ByteWriter), wrapped, and then every hop of renderer -> hub -> N
//    viewers shares the same allocation; "copying" a SharedBytes bumps a
//    refcount. view() carves out a sub-range (e.g. the payload slice of a
//    received wire frame) that keeps the whole backing buffer alive.
//
//  * BufferPool — a size-bucketed free list of byte vectors. The TCP
//    receive path and the encode-into-pooled-buffer codec entry points
//    draw their buffers here so steady-state streaming allocates nothing.
//    A SharedBytes created with adopt_pooled() returns its storage to the
//    pool when the last reference (message, cache entry, or view) drops.
//
// Ownership rules (see DESIGN.md §11): whoever fills a buffer owns it
// mutably exactly until it is wrapped in a SharedBytes; from then on the
// bytes are immutable and ownership is collective. Nobody frees by hand.
//
// Counters/gauges: util.pool.{hits,misses,bytes_pooled,outstanding} and
// util.shared_bytes.{copies,copy_bytes} (every deep copy is counted, so a
// "zero-copy path" is checkable by assertion).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/mutex.hpp"

namespace tvviz::util {

class BufferPool;

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Adopt a byte vector without copying — the writer -> wire hop.
  SharedBytes(Bytes&& bytes);  // NOLINT(google-explicit-constructor)

  /// Deep copy of a borrowed vector (counted; prefer std::move).
  SharedBytes(const Bytes& bytes);  // NOLINT(google-explicit-constructor)

  SharedBytes(std::initializer_list<std::uint8_t> init);

  /// Deep copy of arbitrary borrowed bytes (counted in
  /// util.shared_bytes.copy_bytes).
  static SharedBytes copy_of(std::span<const std::uint8_t> data);

  /// Adopt a (typically pool-drawn) buffer whose storage goes back to
  /// `pool` when the last reference — including every view — drops.
  static SharedBytes adopt_pooled(Bytes&& bytes, BufferPool& pool);

  /// Aliasing sub-view [offset, offset + len): shares storage, no copy.
  /// Throws std::out_of_range past the end.
  SharedBytes view(std::size_t offset, std::size_t len) const;

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::span<const std::uint8_t> span() const noexcept {
    return {data_, size_};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): SharedBytes stands in for
  // span<const uint8_t> at every parse/decode call site.
  operator std::span<const std::uint8_t>() const noexcept { return span(); }
  const std::uint8_t* begin() const noexcept { return data_; }
  const std::uint8_t* end() const noexcept { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Handles (messages, cache entries, views) sharing this storage.
  long use_count() const noexcept { return storage_.use_count(); }

  /// True when both handles alias one underlying allocation.
  bool shares_storage_with(const SharedBytes& other) const noexcept {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  /// Mutable copy-out (deep copy, counted).
  Bytes to_bytes() const;

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) noexcept {
    return a.size_ == b.size_ &&
           (a.data_ == b.data_ || std::equal(a.begin(), a.end(), b.begin()));
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) noexcept {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) noexcept {
    return b == a;
  }

 private:
  struct Storage;

  std::shared_ptr<const Storage> storage_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Thread-safe, size-bucketed free list of byte vectors (buckets are
/// powers of two). acquire() returns a vector resized to the request with
/// bucket-rounded capacity; release() (or the destruction of a SharedBytes
/// made with adopt_pooled) files it for reuse. Buffers beyond
/// max_buffer_bytes, or landing in a full bucket, are simply freed.
class BufferPool {
 public:
  struct Config {
    std::size_t min_bucket_bytes = 256;        ///< Smallest bucket size.
    std::size_t max_buffer_bytes = 64u << 20;  ///< Larger buffers bypass.
    std::size_t max_buffers_per_bucket = 32;
  };

  BufferPool();
  explicit BufferPool(Config config);

  /// Process-wide pool of the frame path (never destroyed, so buffers held
  /// across static teardown stay safe to release).
  static BufferPool& global();

  /// A buffer of exactly `size` bytes; contents are unspecified.
  Bytes acquire(std::size_t size) TVVIZ_EXCLUDES(mutex_);

  /// File a buffer for reuse (by capacity bucket).
  void release(Bytes&& buffer) TVVIZ_EXCLUDES(mutex_);

  std::size_t pooled_bytes() const TVVIZ_EXCLUDES(mutex_);
  std::size_t pooled_buffers() const TVVIZ_EXCLUDES(mutex_);

 private:
  std::size_t bucket_of(std::size_t capacity) const noexcept;

  Config config_;
  /// acquire() minus release(); mirrored into util.pool.outstanding.
  std::atomic<std::int64_t> outstanding_{0};
  mutable Mutex mutex_;
  /// bucket index -> free buffers of that capacity.
  std::vector<std::vector<Bytes>> buckets_ TVVIZ_GUARDED_BY(mutex_);
  std::size_t pooled_bytes_ TVVIZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace tvviz::util
