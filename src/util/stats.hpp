// Streaming statistics accumulator (Welford) used by metrics collection and
// the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace tvviz::util {

/// Single-pass mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set (linear interpolation). p in [0, 100].
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace tvviz::util
