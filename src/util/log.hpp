// Leveled logging to stderr. Thread-safe at line granularity; quiet by
// default so test and benchmark output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace tvviz::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line (used by the LOG macro; prefer the macro).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, out_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace tvviz::util

#define TVVIZ_LOG(level)                                             \
  if (::tvviz::util::log_level() <= ::tvviz::util::LogLevel::level) \
  ::tvviz::util::detail::LogStream(::tvviz::util::LogLevel::level)
