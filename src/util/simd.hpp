// Portable SIMD kernel dispatch for the codec hot paths (§4.2): the ONLY
// translation unit in the tree allowed to name vendor intrinsics
// (lint_invariants.py check 5 enforces this).
//
// Contract:
//   * Every kernel has a scalar reference implementation, and every vector
//     implementation performs the IDENTICAL IEEE-754 arithmetic sequence per
//     element (same operations, same association, no FMA contraction), so a
//     bitstream produced under any ISA decodes bit-identically to the scalar
//     path. The differential parity suite in tests/codec_test.cpp asserts
//     this; treat any reassociation as a format break.
//   * The active ISA is resolved once at first use: compile-time availability
//     (SSE2/AVX2/NEON) intersected with runtime CPUID, overridable by the
//     TVVIZ_SIMD environment knob (scalar|sse2|avx2|neon|auto) and
//     programmatically by force_isa() / ScopedIsa for tests and ablations.
//   * Dispatch is a single acquire-load of a kernel-table pointer per call —
//     cheap enough for per-block use; batch kernels amortize it anyway.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/counters.hpp"

#if defined(__x86_64__) || defined(__i386__)
#if defined(__SSE2__)
#define TVVIZ_SIMD_X86 1
#include <immintrin.h>
#endif
#elif defined(__ARM_NEON)
#define TVVIZ_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tvviz::util::simd {

/// Instruction-set tiers, ordered weakest to strongest per architecture.
enum class Isa : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

inline const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "scalar";
}

namespace detail {

/// float cast of the orthonormal 8-point DCT basis used by codec::JpegCodec
/// (A[u][x] = alpha(u) cos((2x+1) u pi / 16)); computed once in double and
/// narrowed so every ISA sees the same constants.
inline const float* dct_basis8() {
  static const auto table = [] {
    struct T { float a[64]; } t{};
    for (int u = 0; u < 8; ++u) {
      const double alpha =
          u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x)
        t.a[u * 8 + x] = static_cast<float>(
            alpha * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0));
    }
    return t;
  }();
  return table.a;
}

// ------------------------------------------------------------- scalar ----
// Reference implementations. These define the arithmetic contract; the
// vector paths below mirror them operation for operation.

/// Separable 8x8 forward DCT, float. out[u*8+v] = sum_x sum_y A[u][x]
/// A[v][y] in[x*8+y], accumulated x (then y) ascending — the exact order the
/// vector paths reproduce lane-wise.
inline void fdct8x8_scalar(const float* in, float* out) {
  const float* A = dct_basis8();
  float tmp[64];
  for (int u = 0; u < 8; ++u)
    for (int c = 0; c < 8; ++c) {
      float acc = A[u * 8] * in[c];
      for (int x = 1; x < 8; ++x) acc += A[u * 8 + x] * in[x * 8 + c];
      tmp[u * 8 + c] = acc;
    }
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      float acc = A[v * 8] * tmp[u * 8];
      for (int y = 1; y < 8; ++y) acc += A[v * 8 + y] * tmp[u * 8 + y];
      out[u * 8 + v] = acc;
    }
}

/// freq / quant rounded half away from zero, truncating cast — matches the
/// vector div + or-signed-half + cvtt sequence bit for bit.
inline void quantize64_scalar(const float* freq, const float* quant,
                              std::int32_t* out) {
  for (int i = 0; i < 64; ++i) {
    const float t = freq[i] / quant[i];
    const float half = std::signbit(t) ? -0.5f : 0.5f;
    out[i] = static_cast<std::int32_t>(t + half);
  }
}

/// One RGBA pixel -> level-shifted Y and centered Cb/Cr (BT.601 as in
/// codec::detail::to_planes). Left-associated sums; no contraction.
inline void rgb_px_scalar(const std::uint8_t* px, float* y, float* cb,
                          float* cr) {
  const float r = static_cast<float>(px[0]);
  const float g = static_cast<float>(px[1]);
  const float b = static_cast<float>(px[2]);
  *y = ((0.299f * r + 0.587f * g) + 0.114f * b) - 128.0f;
  *cb = (-0.168736f * r + -0.331264f * g) + 0.5f * b;
  *cr = (0.5f * r + -0.418688f * g) + -0.081312f * b;
}

/// Eight consecutive RGBA pixels.
inline void rgb_block8_scalar(const std::uint8_t* rgba, float* y, float* cb,
                              float* cr) {
  for (int i = 0; i < 8; ++i)
    rgb_px_scalar(rgba + 4 * i, y + i, cb + i, cr + i);
}

inline std::size_t match_length_scalar(const std::uint8_t* a,
                                       const std::uint8_t* b,
                                       std::size_t max_len) {
  std::size_t i = 0;
  while (i < max_len && a[i] == b[i]) ++i;
  return i;
}

inline void add_u8_scalar(std::uint8_t* dst, const std::uint8_t* a,
                          const std::uint8_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<std::uint8_t>(a[i] + b[i]);
}

inline void sub_u8_scalar(std::uint8_t* dst, const std::uint8_t* a,
                          const std::uint8_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<std::uint8_t>(a[i] - b[i]);
}

inline void add_f32_scalar(float* dst, const float* a, const float* b,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

inline void sub_f32_scalar(float* dst, const float* a, const float* b,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}

/// Sum of |a[i]-b[i]| over 8 lanes with a FIXED pairwise reduction tree:
/// ((d0+d1)+(d2+d3)) + ((d4+d5)+(d6+d7)). The vector paths use the same
/// tree (hadd twice + final add), so the float result is bit-identical.
inline float sad8_scalar(const float* a, const float* b) {
  float d[8];
  for (int i = 0; i < 8; ++i) d[i] = std::fabs(a[i] - b[i]);
  return ((d[0] + d[1]) + (d[2] + d[3])) + ((d[4] + d[5]) + (d[6] + d[7]));
}

/// 4:2:0 chroma downsample of `pairs` complete 2x2 cells:
/// out[k] = (((r0[2k] + r0[2k+1]) + r1[2k]) + r1[2k+1]) * 0.25f.
/// Fixed add order; *0.25f is an exact scale, so every tier agrees bit for
/// bit. Partial edge cells are the caller's problem.
inline void avg2x2_scalar(const float* r0, const float* r1, std::size_t pairs,
                          float* out) {
  for (std::size_t k = 0; k < pairs; ++k)
    out[k] =
        (((r0[2 * k] + r0[2 * k + 1]) + r1[2 * k]) + r1[2 * k + 1]) * 0.25f;
}

/// Bit i set iff v[i] != 0 — the tokenizer's end-of-block scan. Integer
/// compares, exact on every tier.
inline std::uint64_t nonzero_mask64_scalar(const std::int32_t* v) {
  std::uint64_t m = 0;
  for (int i = 0; i < 64; ++i)
    if (v[i] != 0) m |= std::uint64_t{1} << i;
  return m;
}

/// Kernel table: one entry per hot operation. Batch entries own their tail
/// handling; fixed-width entries (fdct, quantize64, rgb_block8, sad8,
/// nonzero_mask64) are composed by ISA-independent wrappers below.
struct Kernels {
  Isa isa;
  void (*fdct8x8)(const float*, float*);
  void (*quantize64)(const float*, const float*, std::int32_t*);
  void (*rgb_block8)(const std::uint8_t*, float*, float*, float*);
  std::size_t (*match_length)(const std::uint8_t*, const std::uint8_t*,
                              std::size_t);
  void (*add_u8)(std::uint8_t*, const std::uint8_t*, const std::uint8_t*,
                 std::size_t);
  void (*sub_u8)(std::uint8_t*, const std::uint8_t*, const std::uint8_t*,
                 std::size_t);
  void (*add_f32)(float*, const float*, const float*, std::size_t);
  void (*sub_f32)(float*, const float*, const float*, std::size_t);
  float (*sad8)(const float*, const float*);
  void (*avg2x2)(const float*, const float*, std::size_t, float*);
  std::uint64_t (*nonzero_mask64)(const std::int32_t*);
};

inline const Kernels& scalar_table() {
  static const Kernels k = {Isa::kScalar,     fdct8x8_scalar,
                            quantize64_scalar, rgb_block8_scalar,
                            match_length_scalar, add_u8_scalar,
                            sub_u8_scalar,     add_f32_scalar,
                            sub_f32_scalar,    sad8_scalar,
                            avg2x2_scalar,     nonzero_mask64_scalar};
  return k;
}

// --------------------------------------------------------------- SSE2 ----
#if defined(TVVIZ_SIMD_X86)

inline std::size_t match_length_sse2(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     std::size_t max_len) {
  std::size_t i = 0;
  while (i + 16 <= max_len) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned m =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (m != 0xffffu)
      return i + static_cast<std::size_t>(__builtin_ctz(~m & 0xffffu));
    i += 16;
  }
  while (i < max_len && a[i] == b[i]) ++i;
  return i;
}

inline void add_u8_sse2(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi8(va, vb));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] + b[i]);
}

inline void sub_u8_sse2(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_sub_epi8(va, vb));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] - b[i]);
}

inline void add_f32_sse2(float* dst, const float* a, const float* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

inline void sub_f32_sse2(float* dst, const float* a, const float* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm_storeu_ps(dst + i, _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

inline void quantize64_sse2(const float* freq, const float* quant,
                            std::int32_t* out) {
  const __m128 sign_mask = _mm_set1_ps(-0.0f);
  const __m128 half = _mm_set1_ps(0.5f);
  for (int i = 0; i < 64; i += 4) {
    const __m128 t = _mm_div_ps(_mm_loadu_ps(freq + i), _mm_loadu_ps(quant + i));
    const __m128 signed_half = _mm_or_ps(half, _mm_and_ps(t, sign_mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_cvttps_epi32(_mm_add_ps(t, signed_half)));
  }
}

/// shuffle_ps pair-split keeps lane order sequential within 128 bits, so
/// each output lane sees exactly the scalar cell's add order.
inline void avg2x2_sse2(const float* r0, const float* r1, std::size_t pairs,
                        float* out) {
  const __m128 quarter = _mm_set1_ps(0.25f);
  std::size_t k = 0;
  for (; k + 4 <= pairs; k += 4) {
    const __m128 a0 = _mm_loadu_ps(r0 + 2 * k);
    const __m128 a1 = _mm_loadu_ps(r0 + 2 * k + 4);
    const __m128 b0 = _mm_loadu_ps(r1 + 2 * k);
    const __m128 b1 = _mm_loadu_ps(r1 + 2 * k + 4);
    const __m128 ae = _mm_shuffle_ps(a0, a1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 ao = _mm_shuffle_ps(a0, a1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 be = _mm_shuffle_ps(b0, b1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 bo = _mm_shuffle_ps(b0, b1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 sum = _mm_add_ps(_mm_add_ps(_mm_add_ps(ae, ao), be), bo);
    _mm_storeu_ps(out + k, _mm_mul_ps(sum, quarter));
  }
  if (k < pairs) avg2x2_scalar(r0 + 2 * k, r1 + 2 * k, pairs - k, out + k);
}

inline std::uint64_t nonzero_mask64_sse2(const std::int32_t* v) {
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t m = 0;
  for (int i = 0; i < 64; i += 4) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const int z = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, zero)));
    m |= static_cast<std::uint64_t>(~z & 0xf) << i;
  }
  return m;
}

inline const Kernels& sse2_table() {
  // Shuffle-heavy kernels (DCT transposes, RGBA deinterleave, hadd trees)
  // want SSSE3/SSE3; the SSE2 tier keeps those scalar and vectorizes the
  // element-wise ones, which is where pre-AVX2 hosts spend their time.
  static const Kernels k = {Isa::kSse2,       fdct8x8_scalar,
                            quantize64_sse2,   rgb_block8_scalar,
                            match_length_sse2, add_u8_sse2,
                            sub_u8_sse2,       add_f32_sse2,
                            sub_f32_sse2,      sad8_scalar,
                            avg2x2_sse2,       nonzero_mask64_sse2};
  return k;
}

// --------------------------------------------------------------- AVX2 ----
// Compiled with a per-function target attribute so this header builds
// without -mavx2; the dispatcher only installs the table after a CPUID
// check.

__attribute__((target("avx2"))) inline void transpose8x8_avx2(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
  r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
  r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
  r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
  r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
  r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
  r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
  r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

/// Lane c of pass 1 is exactly the scalar column-c accumulation; transposes
/// are pure data movement, so every output element sees the scalar
/// operation sequence. No FMA: "avx2" does not enable contraction.
__attribute__((target("avx2"))) inline void fdct8x8_avx2(const float* in,
                                                         float* out) {
  const float* A = dct_basis8();
  __m256 rows[8];
  for (int x = 0; x < 8; ++x) rows[x] = _mm256_loadu_ps(in + x * 8);
  __m256 tmp[8];
  for (int u = 0; u < 8; ++u) {
    __m256 acc = _mm256_mul_ps(_mm256_set1_ps(A[u * 8]), rows[0]);
    for (int x = 1; x < 8; ++x)
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(_mm256_set1_ps(A[u * 8 + x]), rows[x]));
    tmp[u] = acc;
  }
  transpose8x8_avx2(tmp);  // tmp[y] lane u = pass-1 value (u, y)
  __m256 res[8];
  for (int v = 0; v < 8; ++v) {
    __m256 acc = _mm256_mul_ps(_mm256_set1_ps(A[v * 8]), tmp[0]);
    for (int y = 1; y < 8; ++y)
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(_mm256_set1_ps(A[v * 8 + y]), tmp[y]));
    res[v] = acc;  // lane u = out[u][v]
  }
  transpose8x8_avx2(res);
  for (int u = 0; u < 8; ++u) _mm256_storeu_ps(out + u * 8, res[u]);
}

__attribute__((target("avx2"))) inline void quantize64_avx2(
    const float* freq, const float* quant, std::int32_t* out) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  for (int i = 0; i < 64; i += 8) {
    const __m256 t =
        _mm256_div_ps(_mm256_loadu_ps(freq + i), _mm256_loadu_ps(quant + i));
    const __m256 signed_half = _mm256_or_ps(half, _mm256_and_ps(t, sign_mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvttps_epi32(_mm256_add_ps(t, signed_half)));
  }
}

__attribute__((target("avx2"))) inline void rgb_block8_avx2(
    const std::uint8_t* rgba, float* y, float* cb, float* cr) {
  const __m256i px =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rgba));
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  const __m256 r = _mm256_cvtepi32_ps(_mm256_and_si256(px, byte_mask));
  const __m256 g = _mm256_cvtepi32_ps(
      _mm256_and_si256(_mm256_srli_epi32(px, 8), byte_mask));
  const __m256 b = _mm256_cvtepi32_ps(
      _mm256_and_si256(_mm256_srli_epi32(px, 16), byte_mask));
  const __m256 yv = _mm256_sub_ps(
      _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(0.299f), r),
                                  _mm256_mul_ps(_mm256_set1_ps(0.587f), g)),
                    _mm256_mul_ps(_mm256_set1_ps(0.114f), b)),
      _mm256_set1_ps(128.0f));
  const __m256 cbv = _mm256_add_ps(
      _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(-0.168736f), r),
                    _mm256_mul_ps(_mm256_set1_ps(-0.331264f), g)),
      _mm256_mul_ps(_mm256_set1_ps(0.5f), b));
  const __m256 crv = _mm256_add_ps(
      _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(0.5f), r),
                    _mm256_mul_ps(_mm256_set1_ps(-0.418688f), g)),
      _mm256_mul_ps(_mm256_set1_ps(-0.081312f), b));
  _mm256_storeu_ps(y, yv);
  _mm256_storeu_ps(cb, cbv);
  _mm256_storeu_ps(cr, crv);
}

__attribute__((target("avx2"))) inline std::size_t match_length_avx2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t max_len) {
  std::size_t i = 0;
  while (i + 32 <= max_len) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const std::uint32_t m = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (m != 0xffffffffu)
      return i + static_cast<std::size_t>(__builtin_ctz(~m));
    i += 32;
  }
  while (i < max_len && a[i] == b[i]) ++i;
  return i;
}

__attribute__((target("avx2"))) inline void add_u8_avx2(std::uint8_t* dst,
                                                        const std::uint8_t* a,
                                                        const std::uint8_t* b,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi8(va, vb));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] + b[i]);
}

__attribute__((target("avx2"))) inline void sub_u8_avx2(std::uint8_t* dst,
                                                        const std::uint8_t* a,
                                                        const std::uint8_t* b,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_sub_epi8(va, vb));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] - b[i]);
}

__attribute__((target("avx2"))) inline void add_f32_avx2(float* dst,
                                                         const float* a,
                                                         const float* b,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) inline void sub_f32_avx2(float* dst,
                                                         const float* a,
                                                         const float* b,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i,
                     _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

/// hadd(lo,hi) -> [d0+d1, d2+d3, d4+d5, d6+d7]; hadd again pairs those;
/// final add_ss reproduces the scalar reduction tree exactly.
__attribute__((target("avx2"))) inline float sad8_avx2(const float* a,
                                                       const float* b) {
  const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(a), _mm256_loadu_ps(b));
  const __m256 ad = _mm256_andnot_ps(_mm256_set1_ps(-0.0f), diff);
  const __m128 lo = _mm256_castps256_ps128(ad);
  const __m128 hi = _mm256_extractf128_ps(ad, 1);
  const __m128 h1 = _mm_hadd_ps(lo, hi);
  const __m128 h2 = _mm_hadd_ps(h1, h1);
  return _mm_cvtss_f32(
      _mm_add_ss(h2, _mm_shuffle_ps(h2, h2, _MM_SHUFFLE(1, 1, 1, 1))));
}

/// Per-128-lane shuffles scramble the output order; the sum is permuted
/// back once before the store, after arithmetic identical to the scalar
/// cell order.
__attribute__((target("avx2"))) inline void avg2x2_avx2(const float* r0,
                                                        const float* r1,
                                                        std::size_t pairs,
                                                        float* out) {
  const __m256 quarter = _mm256_set1_ps(0.25f);
  const __m256i fixup = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  std::size_t k = 0;
  for (; k + 8 <= pairs; k += 8) {
    const __m256 a0 = _mm256_loadu_ps(r0 + 2 * k);
    const __m256 a1 = _mm256_loadu_ps(r0 + 2 * k + 8);
    const __m256 b0 = _mm256_loadu_ps(r1 + 2 * k);
    const __m256 b1 = _mm256_loadu_ps(r1 + 2 * k + 8);
    const __m256 ae = _mm256_shuffle_ps(a0, a1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m256 ao = _mm256_shuffle_ps(a0, a1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m256 be = _mm256_shuffle_ps(b0, b1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m256 bo = _mm256_shuffle_ps(b0, b1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m256 sum = _mm256_add_ps(_mm256_add_ps(_mm256_add_ps(ae, ao), be), bo);
    _mm256_storeu_ps(out + k, _mm256_permutevar8x32_ps(
                                  _mm256_mul_ps(sum, quarter), fixup));
  }
  if (k < pairs) avg2x2_scalar(r0 + 2 * k, r1 + 2 * k, pairs - k, out + k);
}

__attribute__((target("avx2"))) inline std::uint64_t nonzero_mask64_avx2(
    const std::int32_t* v) {
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t m = 0;
  for (int i = 0; i < 64; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const int z =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, zero)));
    m |= static_cast<std::uint64_t>(~z & 0xff) << i;
  }
  return m;
}

inline const Kernels& avx2_table() {
  static const Kernels k = {Isa::kAvx2,       fdct8x8_avx2,
                            quantize64_avx2,   rgb_block8_avx2,
                            match_length_avx2, add_u8_avx2,
                            sub_u8_avx2,       add_f32_avx2,
                            sub_f32_avx2,      sad8_avx2,
                            avg2x2_avx2,       nonzero_mask64_avx2};
  return k;
}

#endif  // TVVIZ_SIMD_X86

// --------------------------------------------------------------- NEON ----
#if defined(TVVIZ_SIMD_NEON)

inline std::size_t match_length_neon(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     std::size_t max_len) {
  std::size_t i = 0;
  while (i + 16 <= max_len) {
    const uint8x16_t eq = vceqq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    if (vminvq_u8(eq) != 0xff) break;  // first mismatch inside this chunk
    i += 16;
  }
  while (i < max_len && a[i] == b[i]) ++i;
  return i;
}

inline void add_u8_neon(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, vaddq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] + b[i]);
}

inline void sub_u8_neon(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, vsubq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] - b[i]);
}

inline const Kernels& neon_table() {
  // Float kernels stay scalar on NEON: aarch64 compilers contract mul+add
  // to fused ops aggressively, which would break the cross-ISA bit-parity
  // contract. Integer byte ops and the match finder are exact.
  static const Kernels k = {Isa::kNeon,       fdct8x8_scalar,
                            quantize64_scalar, rgb_block8_scalar,
                            match_length_neon, add_u8_neon,
                            sub_u8_neon,       add_f32_scalar,
                            sub_f32_scalar,    sad8_scalar,
                            avg2x2_scalar,     nonzero_mask64_scalar};
  return k;
}

#endif  // TVVIZ_SIMD_NEON

inline const Kernels& table_for(Isa isa) {
#if defined(TVVIZ_SIMD_X86)
  if (isa == Isa::kAvx2) return avx2_table();
  if (isa == Isa::kSse2) return sse2_table();
#endif
#if defined(TVVIZ_SIMD_NEON)
  if (isa == Isa::kNeon) return neon_table();
#endif
  (void)isa;
  return scalar_table();
}

inline Isa best_available() {
#if defined(TVVIZ_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;
#elif defined(TVVIZ_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

/// Clamp a requested tier to what this host can actually run.
inline Isa clamp_available(Isa want) {
  const Isa best = best_available();
#if defined(TVVIZ_SIMD_X86)
  if (want == Isa::kNeon) return best;
  if (static_cast<int>(want) > static_cast<int>(best)) return best;
  return want;
#else
  if (want == Isa::kScalar) return Isa::kScalar;
  return best;
#endif
}

inline std::atomic<const Kernels*>& kernel_slot() {
  static std::atomic<const Kernels*> slot{nullptr};
  return slot;
}

inline Isa initial_isa() {
  Isa isa = best_available();
  if (const char* env = std::getenv("TVVIZ_SIMD")) {
    const std::string v(env);
    if (v == "scalar") isa = Isa::kScalar;
    else if (v == "sse2") isa = clamp_available(Isa::kSse2);
    else if (v == "avx2") isa = clamp_available(Isa::kAvx2);
    else if (v == "neon") isa = clamp_available(Isa::kNeon);
    else if (!v.empty() && v != "auto")
      obs::counter("codec.simd.bad_override").add(1);
    if (isa != best_available()) obs::counter("codec.simd.overrides").add(1);
  }
  return isa;
}

inline const Kernels& kernels() {
  auto& slot = kernel_slot();
  const Kernels* k = slot.load(std::memory_order_acquire);
  if (k == nullptr) {
    const Kernels* fresh = &table_for(initial_isa());
    // Racing first calls resolve the same environment; either store wins.
    if (slot.compare_exchange_strong(k, fresh, std::memory_order_acq_rel))
      k = fresh;
    obs::gauge("codec.simd.level").set(static_cast<int>(k->isa));
  }
  return *k;
}

}  // namespace detail

/// ISA the dispatcher currently routes to.
inline Isa active_isa() { return detail::kernels().isa; }

/// Strongest tier this host supports (compile-time ∩ CPUID).
inline Isa best_available_isa() { return detail::best_available(); }

/// Force the dispatch tier (clamped to what the host supports); returns the
/// previously active tier. Scalar is always honored — that is the fallback
/// guarantee ablations and the parity tests rely on.
inline Isa force_isa(Isa isa) {
  const Isa prev = active_isa();
  const detail::Kernels* table = &detail::table_for(detail::clamp_available(isa));
  detail::kernel_slot().store(table, std::memory_order_release);
  obs::gauge("codec.simd.level").set(static_cast<int>(table->isa));
  obs::counter("codec.simd.overrides").add(1);
  return prev;
}

/// RAII ISA override for tests: forces `isa` for the scope, restores after.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : prev_(force_isa(isa)) {}
  ~ScopedIsa() { force_isa(prev_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  Isa prev_;
};

// ------------------------------------------------------------ wrappers ----

/// Separable 8x8 forward DCT (JPEG normalization), row-major in/out.
inline void fdct8x8(const float in[64], float out[64]) {
  detail::kernels().fdct8x8(in, out);
}

/// out[i] = round_half_away(freq[i] / quant[i]); natural (row-major) order.
inline void quantize64(const float freq[64], const float quant[64],
                       std::int32_t out[64]) {
  detail::kernels().quantize64(freq, quant, out);
}

/// `n` RGBA pixels -> level-shifted Y (-128) and centered Cb/Cr planes.
inline void rgb_to_ycbcr(const std::uint8_t* rgba, std::size_t n, float* y,
                         float* cb, float* cr) {
  const detail::Kernels& k = detail::kernels();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) k.rgb_block8(rgba + 4 * i, y + i, cb + i, cr + i);
  for (; i < n; ++i) detail::rgb_px_scalar(rgba + 4 * i, y + i, cb + i, cr + i);
}

/// Length of the common prefix of a and b, capped at max_len.
inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t max_len) {
  return detail::kernels().match_length(a, b, max_len);
}

/// Element-wise wrapping byte add/sub (frame-diff residuals).
inline void add_u8(std::uint8_t* dst, const std::uint8_t* a,
                   const std::uint8_t* b, std::size_t n) {
  detail::kernels().add_u8(dst, a, b, n);
}
inline void sub_u8(std::uint8_t* dst, const std::uint8_t* a,
                   const std::uint8_t* b, std::size_t n) {
  detail::kernels().sub_u8(dst, a, b, n);
}

/// Element-wise float add/sub (motion-compensation residuals).
inline void add_f32(float* dst, const float* a, const float* b,
                    std::size_t n) {
  detail::kernels().add_f32(dst, a, b, n);
}
inline void sub_f32(float* dst, const float* a, const float* b,
                    std::size_t n) {
  detail::kernels().sub_f32(dst, a, b, n);
}

/// 4:2:0 chroma average of `pairs` complete 2x2 cells drawn from two rows:
/// out[k] = mean of {row0,row1} x {2k, 2k+1}. Callers handle ragged edges.
inline void avg2x2(const float* row0, const float* row1, std::size_t pairs,
                   float* out) {
  detail::kernels().avg2x2(row0, row1, pairs, out);
}

/// Bitmask of the nonzero entries of a 64-coefficient block (bit i = v[i]).
inline std::uint64_t nonzero_mask64(const std::int32_t v[64]) {
  return detail::kernels().nonzero_mask64(v);
}

/// Sum of absolute differences, accumulated in double per fixed-tree
/// 8-lane chunk (then a scalar tail) — identical across every ISA tier.
inline double sad_f32(const float* a, const float* b, std::size_t n) {
  const detail::Kernels& k = detail::kernels();
  double total = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    total += static_cast<double>(k.sad8(a + i, b + i));
  for (; i < n; ++i)
    total += static_cast<double>(std::fabs(a[i] - b[i]));
  return total;
}

}  // namespace tvviz::util::simd
