#include "util/shared_bytes.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

#include "obs/counters.hpp"

namespace tvviz::util {

namespace {

obs::Counter& copies_ctr() {
  static obs::Counter& c = obs::counter("util.shared_bytes.copies");
  return c;
}
obs::Counter& copy_bytes_ctr() {
  static obs::Counter& c = obs::counter("util.shared_bytes.copy_bytes");
  return c;
}
obs::Counter& pool_hits_ctr() {
  static obs::Counter& c = obs::counter("util.pool.hits");
  return c;
}
obs::Counter& pool_misses_ctr() {
  static obs::Counter& c = obs::counter("util.pool.misses");
  return c;
}
obs::Gauge& pool_bytes_gauge() {
  static obs::Gauge& g = obs::gauge("util.pool.bytes_pooled");
  return g;
}
obs::Gauge& pool_outstanding_gauge() {
  static obs::Gauge& g = obs::gauge("util.pool.outstanding");
  return g;
}

void count_copy(std::size_t n) {
  copies_ctr().add(1);
  copy_bytes_ctr().add(n);
}

}  // namespace

// ----------------------------------------------------------- SharedBytes ----

/// The single owner of the actual allocation. `pool` is set for pooled
/// storage: the destructor of the last reference files the vector back
/// instead of freeing it.
struct SharedBytes::Storage {
  Bytes buf;
  BufferPool* pool = nullptr;

  Storage(Bytes&& b, BufferPool* p) : buf(std::move(b)), pool(p) {}
  ~Storage() {
    if (pool != nullptr) pool->release(std::move(buf));
  }
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;
};

SharedBytes::SharedBytes(Bytes&& bytes) {
  if (bytes.empty()) return;
  auto storage = std::make_shared<const Storage>(std::move(bytes), nullptr);
  data_ = storage->buf.data();
  size_ = storage->buf.size();
  storage_ = std::move(storage);
}

SharedBytes::SharedBytes(const Bytes& bytes)
    : SharedBytes(Bytes(bytes)) {
  if (!bytes.empty()) count_copy(bytes.size());
}

SharedBytes::SharedBytes(std::initializer_list<std::uint8_t> init)
    : SharedBytes(Bytes(init)) {}

SharedBytes SharedBytes::copy_of(std::span<const std::uint8_t> data) {
  if (data.empty()) return {};
  count_copy(data.size());
  return SharedBytes(Bytes(data.begin(), data.end()));
}

SharedBytes SharedBytes::adopt_pooled(Bytes&& bytes, BufferPool& pool) {
  if (bytes.empty()) {
    pool.release(std::move(bytes));
    return {};
  }
  SharedBytes out;
  auto storage = std::make_shared<const Storage>(std::move(bytes), &pool);
  out.data_ = storage->buf.data();
  out.size_ = storage->buf.size();
  out.storage_ = std::move(storage);
  return out;
}

SharedBytes SharedBytes::view(std::size_t offset, std::size_t len) const {
  if (offset + len > size_ || offset + len < offset)
    throw std::out_of_range("SharedBytes::view past end of buffer");
  SharedBytes out;
  if (len == 0) return out;
  out.storage_ = storage_;
  out.data_ = data_ + offset;
  out.size_ = len;
  return out;
}

Bytes SharedBytes::to_bytes() const {
  if (size_ != 0) count_copy(size_);
  return Bytes(begin(), end());
}

// ------------------------------------------------------------ BufferPool ----

BufferPool::BufferPool() : BufferPool(Config{}) {}

BufferPool::BufferPool(Config config) : config_(config) {
  if (config_.min_bucket_bytes == 0) config_.min_bucket_bytes = 1;
  // One bucket per power of two from min_bucket_bytes to max_buffer_bytes.
  std::size_t buckets = 1;
  for (std::size_t b = config_.min_bucket_bytes; b < config_.max_buffer_bytes;
       b <<= 1)
    ++buckets;
  buckets_.resize(buckets);
}

BufferPool& BufferPool::global() {
  // Leaked on purpose: frames wrapped in pooled SharedBytes may outlive
  // every other static and must still have a pool to return to.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

std::size_t BufferPool::bucket_of(std::size_t capacity) const noexcept {
  std::size_t idx = 0;
  for (std::size_t b = config_.min_bucket_bytes; b < capacity; b <<= 1) ++idx;
  return idx;
}

Bytes BufferPool::acquire(std::size_t size) {
  pool_outstanding_gauge().set(outstanding_.fetch_add(1) + 1);
  if (size > config_.max_buffer_bytes) {
    pool_misses_ctr().add(1);
    return Bytes(size);
  }
  const std::size_t idx = bucket_of(size);
  {
    LockGuard lock(mutex_);
    auto& bucket = buckets_[idx];
    if (!bucket.empty()) {
      Bytes buf = std::move(bucket.back());
      bucket.pop_back();
      pooled_bytes_ -= buf.capacity();
      pool_bytes_gauge().set(static_cast<std::int64_t>(pooled_bytes_));
      pool_hits_ctr().add(1);
      buf.resize(size);
      return buf;
    }
  }
  pool_misses_ctr().add(1);
  // Reserve the full bucket so every buffer in a bucket is interchangeable
  // (a reused buffer can serve any request that maps to the same bucket).
  std::size_t bucket_bytes = config_.min_bucket_bytes;
  while (bucket_bytes < size) bucket_bytes <<= 1;
  Bytes buf;
  buf.reserve(bucket_bytes);
  buf.resize(size);
  return buf;
}

void BufferPool::release(Bytes&& buffer) {
  pool_outstanding_gauge().set(outstanding_.fetch_sub(1) - 1);
  if (buffer.capacity() == 0 || buffer.capacity() > config_.max_buffer_bytes)
    return;  // too small or too large to be worth keeping
  const std::size_t idx = bucket_of(buffer.capacity());
  LockGuard lock(mutex_);
  auto& bucket = buckets_[idx];
  if (bucket.size() >= config_.max_buffers_per_bucket) return;  // full: free
  pooled_bytes_ += buffer.capacity();
  pool_bytes_gauge().set(static_cast<std::int64_t>(pooled_bytes_));
  bucket.push_back(std::move(buffer));
}

std::size_t BufferPool::pooled_bytes() const {
  LockGuard lock(mutex_);
  return pooled_bytes_;
}

std::size_t BufferPool::pooled_buffers() const {
  LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

}  // namespace tvviz::util
