// Portable Clang Thread Safety Analysis attributes (the compile-time
// concurrency-contract layer; see DESIGN.md §13). Under clang the macros
// expand to the thread-safety attributes checked by -Wthread-safety (the
// TVVIZ_THREAD_SAFETY build turns them into hard errors); under any other
// compiler they expand to nothing, so the annotated tree builds everywhere.
//
// The macros annotate three kinds of declarations:
//
//  * data:      TVVIZ_GUARDED_BY(mutex_) on a member says every access
//               must hold mutex_;
//  * functions: TVVIZ_REQUIRES(mutex_) says the caller must already hold
//               it, TVVIZ_EXCLUDES(mutex_) says the caller must NOT hold
//               it (the encoding of "this function blocks / does I/O /
//               takes the lock itself");
//  * lock types: TVVIZ_CAPABILITY / TVVIZ_SCOPED_CAPABILITY plus
//               TVVIZ_ACQUIRE / TVVIZ_RELEASE teach the analysis what a
//               mutex wrapper does (util/mutex.hpp is the only user).
//
// Always annotate through these macros, never with raw __attribute__:
// tools/lint_invariants.py bans raw std::mutex outside util/mutex.hpp, and
// the negative-compile suite in tests/static/ checks the macros do fail
// the build when a contract is violated.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TVVIZ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TVVIZ_THREAD_ANNOTATION
#define TVVIZ_THREAD_ANNOTATION(x)  // not clang: contracts are documentation
#endif

/// A type that is a lockable capability ("mutex" names it in diagnostics).
#define TVVIZ_CAPABILITY(x) TVVIZ_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability at construction and releases it
/// at destruction (util::LockGuard).
#define TVVIZ_SCOPED_CAPABILITY TVVIZ_THREAD_ANNOTATION(scoped_lockable)

/// Data member: every read or write must hold the given capability.
#define TVVIZ_GUARDED_BY(x) TVVIZ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointed-to data (not the pointer) is guarded.
#define TVVIZ_PT_GUARDED_BY(x) TVVIZ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function contract: the caller must hold the capability on entry (and
/// still holds it on exit). Use for *_locked helpers.
#define TVVIZ_REQUIRES(...) \
  TVVIZ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function contract: the caller must hold at least a shared capability.
#define TVVIZ_REQUIRES_SHARED(...) \
  TVVIZ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function effect: acquires the capability (held on exit, not on entry).
#define TVVIZ_ACQUIRE(...) \
  TVVIZ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function effect: releases the capability (held on entry, not on exit).
#define TVVIZ_RELEASE(...) \
  TVVIZ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function effect: acquires the capability iff the return value equals the
/// first argument (e.g. TVVIZ_TRY_ACQUIRE(true)).
#define TVVIZ_TRY_ACQUIRE(...) \
  TVVIZ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function contract: the caller must NOT hold the capability. This is how
/// the reviewed-in-blood invariants are encoded ("send_mutex_ is never
/// waited on by close()", "state_mutex_ is never held across I/O"): a call
/// site holding the excluded lock is a compile error under clang.
#define TVVIZ_EXCLUDES(...) TVVIZ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documented lock-ordering edges (checked under -Wthread-safety-beta).
#define TVVIZ_ACQUIRED_BEFORE(...) \
  TVVIZ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TVVIZ_ACQUIRED_AFTER(...) \
  TVVIZ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability (accessor).
#define TVVIZ_RETURN_CAPABILITY(x) TVVIZ_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (trust, don't analyze).
#define TVVIZ_ASSERT_CAPABILITY(x) \
  TVVIZ_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch for code the analysis cannot follow. Every use needs a
/// comment explaining why the contract holds anyway.
#define TVVIZ_NO_THREAD_SAFETY_ANALYSIS \
  TVVIZ_THREAD_ANNOTATION(no_thread_safety_analysis)
