#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"

namespace tvviz::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serializes fprintf so lines never interleave

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  LockGuard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace tvviz::util
