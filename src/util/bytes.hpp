// Byte- and bit-granular serialization primitives shared by the codecs and
// the network message framing. All multi-byte integers are little-endian.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace tvviz::util {

using Bytes = std::vector<std::uint8_t>;

/// Encoded size of ByteWriter::varint(v) / ByteReader::varint, for exact
/// up-front reserves (a frame serialized into an exactly-reserved buffer
/// never reallocates mid-frame).
constexpr std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  /// Reuse `backing`'s allocation as the output buffer (the pooled-buffer
  /// encode path): contents are discarded, capacity is kept.
  explicit ByteWriter(Bytes&& backing) : buf_(std::move(backing)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    le(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    le(bits);
  }

  /// LEB128 variable-length unsigned integer.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  Bytes buf_;
};

/// Bounds-checked little-endian byte source. Throws std::out_of_range on
/// truncated input so corrupted streams fail loudly rather than reading junk.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return le<std::uint16_t>(); }
  std::uint32_t u32() { return le<std::uint32_t>(); }
  std::uint64_t u64() { return le<std::uint64_t>(); }
  float f32() {
    const std::uint32_t bits = le<std::uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  double f64() {
    const std::uint64_t bits = le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    throw std::out_of_range("varint: overlong encoding");
  }

  std::span<const std::uint8_t> raw(std::size_t n) { return take(n); }

  std::string str() {
    const auto n = varint();
    const auto s = take(n);
    return std::string(s.begin(), s.end());
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw std::out_of_range("ByteReader: truncated input");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  template <typename T>
  T le() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(s[i]) << (8 * i)));
    return v;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// MSB-first bit sink (entropy coder output).
class BitWriter {
 public:
  void bit(bool b) { bits(b ? 1u : 0u, 1); }

  /// Write the low `count` bits of `v`, most-significant first. count <= 32.
  /// A 64-bit accumulator takes whole symbols per call and flushes full
  /// bytes, instead of looping bit by bit (the entropy-coder hot path).
  void bits(std::uint32_t v, int count) {
    const std::uint32_t masked =
        count >= 32 ? v : (v & ((1u << count) - 1u));
    acc_ = (acc_ << count) | masked;
    nbits_ += count;
    while (nbits_ >= 8) {
      nbits_ -= 8;
      buf_.push_back(static_cast<std::uint8_t>(acc_ >> nbits_));
    }
  }

  /// Pad the final partial byte with ones (JPEG convention) and return buffer.
  Bytes finish() {
    if (nbits_ != 0) bits(0xffffffffu, 8 - nbits_);
    return std::move(buf_);
  }

  std::size_t bit_count() const noexcept {
    return buf_.size() * 8 + static_cast<std::size_t>(nbits_);
  }

 private:
  Bytes buf_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;  ///< Pending bits in acc_; < 8 between calls.
};

/// MSB-first bit source. Throws std::out_of_range past end of stream.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool bit() {
    if (nbits_ == 0) {
      if (pos_ >= data_.size())
        throw std::out_of_range("BitReader: truncated stream");
      acc_ = data_[pos_++];
      nbits_ = 8;
    }
    --nbits_;
    return ((acc_ >> nbits_) & 1u) != 0;
  }

  /// Read `count` bits, most-significant first. count <= 32.
  std::uint32_t bits(int count) {
    std::uint32_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | (bit() ? 1u : 0u);
    return v;
  }

  std::size_t bits_consumed() const noexcept { return pos_ * 8 - nbits_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint8_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace tvviz::util
