// FIFO k-server resource for discrete-event models: disks, network links,
// display clients. Jobs queue in arrival order; statistics track utilization
// and waiting so benches can report where the pipeline bottleneck sits.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "sevt/simulator.hpp"

namespace tvviz::sevt {

class Resource {
 public:
  Resource(Simulator& sim, int servers, std::string name)
      : sim_(sim), servers_(servers), name_(std::move(name)) {
    if (servers <= 0) throw std::invalid_argument("sevt: servers must be > 0");
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Request service of duration `dur`; `done` runs at completion time.
  /// Service starts immediately if a server is free, else the job waits FIFO.
  void use(Time dur, std::function<void()> done = {}) {
    if (busy_ < servers_) {
      start(dur, std::move(done));
    } else {
      waiting_.push_back(Job{sim_.now(), dur, std::move(done)});
    }
  }

  const std::string& name() const noexcept { return name_; }
  int busy() const noexcept { return busy_; }
  std::size_t queue_length() const noexcept { return waiting_.size(); }
  std::uint64_t jobs_served() const noexcept { return served_; }
  Time total_busy_time() const noexcept { return busy_time_; }
  Time total_wait_time() const noexcept { return wait_time_; }

  /// Fraction of `horizon` the servers were busy, averaged over servers.
  double utilization(Time horizon) const noexcept {
    return horizon > 0 ? busy_time_ / (horizon * servers_) : 0.0;
  }

 private:
  struct Job {
    Time arrived;
    Time dur;
    std::function<void()> done;
  };

  void start(Time dur, std::function<void()> done) {
    ++busy_;
    busy_time_ += dur;
    ++served_;
    sim_.after(dur, [this, done = std::move(done)] {
      --busy_;
      if (!waiting_.empty()) {
        Job job = std::move(waiting_.front());
        waiting_.pop_front();
        wait_time_ += sim_.now() - job.arrived;
        start(job.dur, std::move(job.done));
      }
      if (done) done();
    });
  }

  Simulator& sim_;
  int servers_;
  std::string name_;
  int busy_ = 0;
  std::deque<Job> waiting_;
  std::uint64_t served_ = 0;
  Time busy_time_ = 0.0;
  Time wait_time_ = 0.0;
};

}  // namespace tvviz::sevt
