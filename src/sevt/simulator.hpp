// Discrete-event simulation core: a virtual clock and an ordered event queue.
// Used to schedule the rendering pipeline at processor counts far beyond the
// physical core count, with stage durations taken from calibrated cost models.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace tvviz::sevt {

/// Virtual time in seconds.
using Time = double;

class Simulator {
 public:
  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  void at(Time t, std::function<void()> fn) {
    if (t < now_) throw std::invalid_argument("sevt: event scheduled in the past");
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedule `fn` `dt` seconds from now.
  void after(Time dt, std::function<void()> fn) { at(now_ + dt, std::move(fn)); }

  /// Process events until the queue drains. Events scheduled at equal times
  /// run in scheduling order (stable).
  void run() {
    while (!queue_.empty()) step();
  }

  /// Process events with time <= `t_end`, then set the clock to `t_end`.
  void run_until(Time t_end) {
    while (!queue_.empty() && queue_.top().t <= t_end) step();
    if (now_ < t_end) now_ = t_end;
  }

  std::uint64_t events_processed() const noexcept { return processed_; }
  bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void step() {
    // Move the event out before running: the handler may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace tvviz::sevt
