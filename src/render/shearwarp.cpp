#include "render/shearwarp.hpp"

#include <algorithm>
#include <cmath>

namespace tvviz::render {

ClassifiedVolume::ClassifiedVolume(const field::VolumeF& volume,
                                   const TransferFunction& tf,
                                   double opacity_epsilon)
    : dims_(volume.dims()), cells_(volume.voxels()) {
  std::size_t opaque = 0;
  std::size_t i = 0;
  for (int z = 0; z < dims_.nz; ++z)
    for (int y = 0; y < dims_.ny; ++y)
      for (int x = 0; x < dims_.nx; ++x, ++i) {
        const auto cp = tf.sample(static_cast<double>(volume.at(x, y, z)));
        const bool visible = cp.alpha > opacity_epsilon;
        cells_[i] = Classified{static_cast<float>(cp.r), static_cast<float>(cp.g),
                               static_cast<float>(cp.b),
                               visible ? static_cast<float>(cp.alpha) : 0.0f};
        opaque += visible ? 1u : 0u;
      }
  coverage_ = volume.voxels() > 0
                  ? static_cast<double>(opaque) / static_cast<double>(volume.voxels())
                  : 0.0;

  // Run-length encode opaque spans along each principal axis.
  const int extents[3] = {dims_.nx, dims_.ny, dims_.nz};
  for (int axis = 0; axis < 3; ++axis) {
    const int na = extents[transverse_[axis][0]];
    const int nb = extents[transverse_[axis][1]];
    spans_[axis].resize(static_cast<std::size_t>(na) * nb);
    for (int b = 0; b < nb; ++b)
      for (int a = 0; a < na; ++a) {
        auto& line = spans_[axis][static_cast<std::size_t>(b) * na + a];
        int run_start = -1;
        for (int k = 0; k < extents[axis]; ++k) {
          int xyz[3];
          xyz[axis] = k;
          xyz[transverse_[axis][0]] = a;
          xyz[transverse_[axis][1]] = b;
          const bool visible =
              cells_[index(xyz[0], xyz[1], xyz[2])].alpha > 0.0f;
          if (visible && run_start < 0) run_start = k;
          if (!visible && run_start >= 0) {
            line.emplace_back(run_start, k);
            run_start = -1;
          }
        }
        if (run_start >= 0) line.emplace_back(run_start, extents[axis]);
      }
  }
}

const std::vector<std::pair<int, int>>& ClassifiedVolume::spans(int axis, int a,
                                                                int b) const {
  const int extents[3] = {dims_.nx, dims_.ny, dims_.nz};
  const int na = extents[transverse_[axis][0]];
  return spans_[axis][static_cast<std::size_t>(b) * na + a];
}

std::size_t ClassifiedVolume::encoded_bytes() const noexcept {
  std::size_t bytes = cells_.size() * sizeof(Classified);
  for (const auto& per_axis : spans_)
    for (const auto& line : per_axis)
      bytes += line.size() * sizeof(std::pair<int, int>) + sizeof(void*);
  return bytes;
}

namespace {
struct AccumPixel {
  double r = 0.0, g = 0.0, b = 0.0, a = 0.0;
};

/// Opaque spans of the scanline that runs along axis `ua` at transverse
/// position v (on axis `va`) within slice k (on axis `p`).
const std::vector<std::pair<int, int>>& spans_for(const ClassifiedVolume& cv,
                                                  int ua, int va, int p, int v,
                                                  int k) {
  int coord[3] = {0, 0, 0};
  coord[va] = v;
  coord[p] = k;
  // ClassifiedVolume orders a scanline's transverse coordinates by ascending
  // axis index.
  const int other0 = ua == 0 ? 1 : 0;
  const int other1 = ua == 2 ? 1 : 2;
  return cv.spans(ua, coord[other0], coord[other1]);
}
}  // namespace

Image ShearWarpRenderer::render(const ClassifiedVolume& classified,
                                const Camera& camera) const {
  const field::Dims dims = classified.dims();
  const util::Vec3 d = camera.view_dir();
  const double comp[3] = {d.x, d.y, d.z};

  // Principal axis: the largest |view| component; slices are perpendicular.
  int p = 0;
  for (int axis = 1; axis < 3; ++axis)
    if (std::abs(comp[axis]) > std::abs(comp[p])) p = axis;
  const int ua = p == 0 ? 1 : 0;             // first transverse axis
  const int va = p == 2 ? 1 : 2;             // second transverse axis
  const int extents[3] = {dims.nx, dims.ny, dims.nz};
  const int nu = extents[ua], nv = extents[va], np = extents[p];

  // Shear per slice: moving one voxel along +p shifts the ray footprint by
  // (-d_u/d_p, -d_v/d_p) in transverse voxel units.
  const double shear_u = -comp[ua] / comp[p];
  const double shear_v = -comp[va] / comp[p];
  // Slice traversal order: front-to-back along the view direction.
  const bool forward = comp[p] > 0.0;

  // Intermediate image: transverse grid plus room for the maximum shear.
  const double max_shift_u = shear_u * (np - 1);
  const double max_shift_v = shear_v * (np - 1);
  const int off_u = static_cast<int>(std::ceil(std::max(0.0, -std::min(0.0, max_shift_u))));
  const int off_v = static_cast<int>(std::ceil(std::max(0.0, -std::min(0.0, max_shift_v))));
  const int iw = nu + static_cast<int>(std::ceil(std::abs(max_shift_u))) + 2;
  const int ih = nv + static_cast<int>(std::ceil(std::abs(max_shift_v))) + 2;
  std::vector<AccumPixel> inter(static_cast<std::size_t>(iw) * ih);

  // Distance between consecutive slice crossings along the (unit) ray.
  const double step = 1.0 / std::abs(comp[p]);

  for (int s = 0; s < np; ++s) {
    const int k = forward ? s : np - 1 - s;
    const double su = shear_u * k + off_u;
    const double sv = shear_v * k + off_v;
    // Iterate scanlines of the slice (v direction), resampling into the
    // sheared intermediate image with bilinear weights.
    for (int v = 0; v < nv; ++v) {
      // Opaque spans of the two contributing source scanlines (v and v+1
      // via bilinear in v); restrict work to their union.
      // Scanline along u at (v, k): use spans(axis=ua) with (a, b) mapping.
      const auto& spans_lo = spans_for(classified, ua, va, p, v, k);
      const auto& spans_hi =
          v + 1 < nv ? spans_for(classified, ua, va, p, v + 1, k) : spans_lo;

      // Merge the span lists.
      std::size_t ilo = 0, ihi = 0;
      while (ilo < spans_lo.size() || ihi < spans_hi.size()) {
        std::pair<int, int> run;
        if (ihi >= spans_hi.size() ||
            (ilo < spans_lo.size() && spans_lo[ilo].first <= spans_hi[ihi].first)) {
          run = spans_lo[ilo++];
        } else {
          run = spans_hi[ihi++];
        }
        // Extend with overlapping runs from either list.
        bool grew = true;
        while (grew) {
          grew = false;
          if (ilo < spans_lo.size() && spans_lo[ilo].first <= run.second) {
            run.second = std::max(run.second, spans_lo[ilo].second);
            ++ilo;
            grew = true;
          }
          if (ihi < spans_hi.size() && spans_hi[ihi].first <= run.second) {
            run.second = std::max(run.second, spans_hi[ihi].second);
            ++ihi;
            grew = true;
          }
        }

        // Composite the run into the intermediate image. A source span
        // [u0, u1) influences intermediate pixels floor(u0+su)..u1+su.
        const int iu_begin = std::max(0, static_cast<int>(std::floor(run.first + su)) - 1);
        const int iu_end = std::min(iw, static_cast<int>(std::ceil(run.second + su)) + 1);
        // The unique intermediate row whose pre-image falls in [v, v+1):
        // iv - sv in [v, v+1)  <=>  iv = ceil(v + sv). Each intermediate
        // pixel is therefore fed exactly once per slice.
        const int iv = static_cast<int>(std::ceil(v + sv));
        if (iv < 0 || iv >= ih) continue;
        for (int iu = iu_begin; iu < iu_end; ++iu) {
          AccumPixel& px = inter[static_cast<std::size_t>(iv) * iw + iu];
          if (px.a >= options_.early_termination) continue;
          const double srcu = iu - su;
          const double srcv = iv - sv;
          if (srcu < 0.0 || srcu > nu - 1 || srcv < 0.0 || srcv > nv - 1)
            continue;
          // Bilinear classified fetch.
          const int u0 = static_cast<int>(srcu);
          const int v0 = static_cast<int>(srcv);
          // Only process when this pixel's v pre-image maps into the current
          // scanline pair (avoid double compositing across v iterations).
          if (v0 != v) continue;
          const double fu = srcu - u0;
          const double fv2 = srcv - v0;
          auto fetch = [&](int uu, int vv) -> ClassifiedVolume::Classified {
            uu = std::clamp(uu, 0, nu - 1);
            vv = std::clamp(vv, 0, nv - 1);
            int xyz[3];
            xyz[ua] = uu;
            xyz[va] = vv;
            xyz[p] = k;
            return classified.at(xyz[0], xyz[1], xyz[2]);
          };
          const auto c00 = fetch(u0, v0), c10 = fetch(u0 + 1, v0);
          const auto c01 = fetch(u0, v0 + 1), c11 = fetch(u0 + 1, v0 + 1);
          const double w00 = (1 - fu) * (1 - fv2), w10 = fu * (1 - fv2);
          const double w01 = (1 - fu) * fv2, w11 = fu * fv2;
          const double alpha_cls = w00 * c00.alpha + w10 * c10.alpha +
                                   w01 * c01.alpha + w11 * c11.alpha;
          if (alpha_cls <= 0.0) continue;
          const double r = w00 * c00.r + w10 * c10.r + w01 * c01.r + w11 * c11.r;
          const double g = w00 * c00.g + w10 * c10.g + w01 * c01.g + w11 * c11.g;
          const double b = w00 * c00.b + w10 * c10.b + w01 * c01.b + w11 * c11.b;
          const double alpha = 1.0 - std::pow(1.0 - alpha_cls, step);
          const double w = (1.0 - px.a) * alpha;
          px.r += w * r;
          px.g += w * g;
          px.b += w * b;
          px.a += w;
        }
      }
    }
  }

  // Warp: map each final pixel to intermediate coordinates. A point at
  // slice 0 with transverse coordinates (i - off_u, j - off_v) sits at
  // volume position lo + e_u*(i-off_u) + e_v*(j-off_v); its camera-plane
  // coordinates are affine in (i, j). Invert that 2x2 system per pixel.
  util::Vec3 e[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const util::Vec3 right = camera.right_dir();
  const util::Vec3 up = camera.up_dir();
  const util::Vec3 c = camera.center(dims);
  // Base point of intermediate pixel (0, 0): volume coordinates.
  const util::Vec3 base = e[ua] * (0.0 - off_u) + e[va] * (0.0 - off_v) - c;
  const double a00 = e[ua].dot(right), a01 = e[va].dot(right);
  const double a10 = e[ua].dot(up), a11 = e[va].dot(up);
  const double b0 = base.dot(right), b1 = base.dot(up);
  const double det = a00 * a11 - a01 * a10;

  Image frame(camera.width(), camera.height());
  if (std::abs(det) < 1e-12) return frame;
  const double he = camera.half_extent(dims);
  for (int py = 0; py < camera.height(); ++py) {
    for (int px = 0; px < camera.width(); ++px) {
      const double cu = ((px + 0.5) / camera.width() * 2.0 - 1.0) * he;
      const double cv = (1.0 - (py + 0.5) / camera.height() * 2.0) * he;
      // Solve a * (i, j) + b = (cu, cv).
      const double rx = cu - b0, ry = cv - b1;
      const double i = (rx * a11 - a01 * ry) / det;
      const double j = (a00 * ry - rx * a10) / det;
      if (i < 0.0 || i > iw - 1 || j < 0.0 || j > ih - 1) continue;
      const int i0 = static_cast<int>(i), j0 = static_cast<int>(j);
      const double fi = i - i0, fj = j - j0;
      auto at = [&](int ii, int jj) -> const AccumPixel& {
        ii = std::clamp(ii, 0, iw - 1);
        jj = std::clamp(jj, 0, ih - 1);
        return inter[static_cast<std::size_t>(jj) * iw + ii];
      };
      const AccumPixel &p00 = at(i0, j0), &p10 = at(i0 + 1, j0);
      const AccumPixel &p01 = at(i0, j0 + 1), &p11 = at(i0 + 1, j0 + 1);
      const double w00 = (1 - fi) * (1 - fj), w10 = fi * (1 - fj);
      const double w01 = (1 - fi) * fj, w11 = fi * fj;
      const auto mix = [&](double v00, double v10, double v01, double v11) {
        return w00 * v00 + w10 * v10 + w01 * v01 + w11 * v11;
      };
      const double r = mix(p00.r, p10.r, p01.r, p11.r);
      const double g = mix(p00.g, p10.g, p01.g, p11.g);
      const double b = mix(p00.b, p10.b, p01.b, p11.b);
      const double a = mix(p00.a, p10.a, p01.a, p11.a);
      const auto q = [](double v) {
        return static_cast<std::uint8_t>(util::clamp01(v) * 255.0 + 0.5);
      };
      frame.set(px, py, q(r), q(g), q(b), q(a));
    }
  }
  return frame;
}

}  // namespace tvviz::render
