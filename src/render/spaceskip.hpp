// Space leaping: combine a MinMaxGrid with a transfer function to mark
// blocks whose entire value range classifies to zero opacity, and let rays
// jump over them. Because skipped samples contribute exactly zero, space
// leaping changes nothing in the rendered image — only its cost.
#pragma once

#include <memory>
#include <vector>

#include "field/minmax.hpp"
#include "render/transfer.hpp"

namespace tvviz::render {

/// Exact maximum opacity the (piecewise-linear) transfer function assigns
/// anywhere in [lo, hi]: the max over the endpoints and every control
/// point inside the interval.
double max_alpha_in_range(const TransferFunction& tf, double lo, double hi);

class BlockVisibility {
 public:
  /// `volume` must be the data the rays will sample (a node's subvolume,
  /// ghost layer included). Blocks are in that volume's local coordinates.
  BlockVisibility(const field::VolumeF& volume, const TransferFunction& tf,
                  int block_size = 8);

  /// True if the block containing local voxel coordinates (x, y, z) cannot
  /// contribute (max classified opacity is zero).
  bool invisible_at(double x, double y, double z) const {
    const auto [lo, hi] = grid_.range_at(x, y, z);
    (void)lo;
    (void)hi;
    return !visible_[block_index(x, y, z)];
  }

  /// Ray parameter at which the ray leaves the block containing the point
  /// `origin + t * dir` (all in local voxel coordinates). Strictly > t.
  double block_exit(const util::Vec3& p, const util::Vec3& dir,
                    double t) const;

  /// Fraction of blocks marked visible (diagnostics).
  double visible_fraction() const;

  int block_size() const noexcept { return grid_.block_size(); }

 private:
  std::size_t block_index(double x, double y, double z) const {
    const auto d = grid_.grid_dims();
    return (static_cast<std::size_t>(grid_.block_of(z, 2)) * d.ny +
            static_cast<std::size_t>(grid_.block_of(y, 1))) * d.nx +
           static_cast<std::size_t>(grid_.block_of(x, 0));
  }

  field::MinMaxGrid grid_;
  std::vector<bool> visible_;
};

}  // namespace tvviz::render
