#include "render/warp.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/counters.hpp"

namespace tvviz::render {

namespace {

constexpr double kTau = 6.283185307179586;

/// Wrap-aware |a - b| in degrees.
double angular_delta_deg(double a, double b) {
  double d = std::fmod(std::abs(a - b), kTau);
  if (d > kTau / 2.0) d = kTau - d;
  return d * 360.0 / kTau;
}

}  // namespace

DepthImage extract_depth(const PartialImage& frame, double alpha_floor) {
  DepthImage depth(frame.width(), frame.height());
  for (int y = 0; y < frame.height(); ++y)
    for (int x = 0; x < frame.width(); ++x) {
      const Rgba& p = frame.at(x, y);
      if (p.a > alpha_floor)
        depth.set(x, y, static_cast<float>(p.z / p.a));
    }
  return depth;
}

WarpResult Warper::warp(const Camera& target) const {
  if (!has_frame()) throw std::logic_error("Warper: no frame to warp");
  const Camera& src = frame_.camera;
  const int w = frame_.color.width();
  const int h = frame_.color.height();
  if (frame_.depth.width() != w || frame_.depth.height() != h)
    throw std::invalid_argument("Warper: color/depth size mismatch");

  // Hoist both cameras' orthographic bases out of the pixel loop (each
  // accessor call costs trig).
  const util::Vec3 c = src.center(dims_);
  const util::Vec3 right_s = src.right_dir(), up_s = src.up_dir(),
                   dir_s = src.view_dir();
  const util::Vec3 right_t = target.right_dir(), up_t = target.up_dir(),
                   dir_t = target.view_dir();
  const double he_s = src.half_extent(dims_);
  const double he_t = target.half_extent(dims_);
  const double c_dot_dir_s = c.dot(dir_s);

  WarpResult out;
  out.image = Image(target.width(), target.height());
  out.stale_deg = angular_delta_deg(target.azimuth(), src.azimuth());
  const int tw = target.width(), th = target.height();
  std::vector<float> zbuf(static_cast<std::size_t>(tw) * th,
                          DepthImage::kEmpty);
  // 0 = empty, 1 = direct splat, 2 = neighbourhood-filled.
  std::vector<std::uint8_t> mark(zbuf.size(), 0);

  // Pass 1: forward splat. Lift each source pixel to its world point via
  // the source camera's inverse pixel mapping (right/up are orthogonal to
  // the view direction, so the depth term separates), project through the
  // target camera, z-test nearest-pixel.
  for (int py = 0; py < h; ++py) {
    const double v = (1.0 - (py + 0.5) / h * 2.0) * he_s;
    for (int px = 0; px < w; ++px) {
      const float d = frame_.depth.at(px, py);
      if (!(d < DepthImage::kEmpty)) continue;  // background
      const double u = ((px + 0.5) / w * 2.0 - 1.0) * he_s;
      const util::Vec3 p =
          c + right_s * u + up_s * v + dir_s * (static_cast<double>(d) - c_dot_dir_s);
      const util::Vec3 q = p - c;
      const double fx = (q.dot(right_t) / he_t + 1.0) * 0.5 * tw - 0.5;
      const double fy = (1.0 - q.dot(up_t) / he_t) * 0.5 * th - 0.5;
      const int tx = static_cast<int>(std::lround(fx));
      const int ty = static_cast<int>(std::lround(fy));
      if (tx < 0 || tx >= tw || ty < 0 || ty >= th) continue;
      const float dt = static_cast<float>(p.dot(dir_t));
      const std::size_t i = static_cast<std::size_t>(ty) * tw + tx;
      if (dt < zbuf[i]) {
        zbuf[i] = dt;
        mark[i] = 1;
        const auto* s = frame_.color.pixel(px, py);
        out.image.set(tx, ty, s[0], s[1], s[2], s[3]);
      }
    }
  }

  // Pass 2: 3x3 splat hole-filling. A rotation opens one-pixel cracks
  // between forward-splatted neighbours; close each empty pixel from the
  // nearest (front-most) directly-splatted pixel in its 3x3 neighbourhood.
  // Only genuine cracks qualify — the pixel must have direct splats on
  // opposing sides — otherwise every silhouette would grow a one-pixel
  // ring of copied colour and the identity warp would stop being exact.
  const auto direct_at = [&](int x, int y) {
    return x >= 0 && x < tw && y >= 0 && y < th &&
           mark[static_cast<std::size_t>(y) * tw + x] == 1;
  };
  // Inverse-map a target pixel (at an estimated depth along the target
  // view direction) back into the source frame. Distinguishes genuine
  // background (source pixel empty — leave the hole transparent) from a
  // resampling crack (source pixel valid — fill from that exact sample).
  const double c_dot_dir_t = c.dot(dir_t);
  const auto source_pixel_for = [&](int tx2, int ty2,
                                    float zd) -> std::pair<int, int> {
    const double ut = ((tx2 + 0.5) / tw * 2.0 - 1.0) * he_t;
    const double vt = (1.0 - (ty2 + 0.5) / th * 2.0) * he_t;
    const util::Vec3 q = right_t * ut + up_t * vt +
                         dir_t * (static_cast<double>(zd) - c_dot_dir_t);
    const int sx = static_cast<int>(
        std::lround((q.dot(right_s) / he_s + 1.0) * 0.5 * w - 0.5));
    const int sy = static_cast<int>(
        std::lround((1.0 - q.dot(up_s) / he_s) * 0.5 * h - 0.5));
    if (sx < 0 || sx >= w || sy < 0 || sy >= h) return {-1, -1};
    return {sx, sy};
  };
  for (int ty = 0; ty < th; ++ty)
    for (int tx = 0; tx < tw; ++tx) {
      const std::size_t i = static_cast<std::size_t>(ty) * tw + tx;
      if (mark[i] != 0) {
        ++out.direct;
        continue;
      }
      const bool crack =
          (direct_at(tx - 1, ty) && direct_at(tx + 1, ty)) ||
          (direct_at(tx, ty - 1) && direct_at(tx, ty + 1)) ||
          (direct_at(tx - 1, ty - 1) && direct_at(tx + 1, ty + 1)) ||
          (direct_at(tx - 1, ty + 1) && direct_at(tx + 1, ty - 1));
      if (!crack) continue;
      float best_z = DepthImage::kEmpty;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = tx + dx, ny = ty + dy;
          if (nx < 0 || nx >= tw || ny < 0 || ny >= th) continue;
          const std::size_t n = static_cast<std::size_t>(ny) * tw + nx;
          if (mark[n] == 1 && zbuf[n] < best_z) best_z = zbuf[n];
        }
      if (best_z < DepthImage::kEmpty) {
        const auto [sx, sy] = source_pixel_for(tx, ty, best_z);
        if (sx >= 0 && frame_.depth.at(sx, sy) < DepthImage::kEmpty) {
          const auto* s = frame_.color.pixel(sx, sy);
          out.image.set(tx, ty, s[0], s[1], s[2], s[3]);
          zbuf[i] = best_z;
          mark[i] = 2;
          ++out.filled;
        }
      }
    }

  // Pass 3: what the fill could not close. An empty pixel mostly surrounded
  // by covered ones is an interior disocclusion hole, not background.
  for (int ty = 0; ty < th; ++ty)
    for (int tx = 0; tx < tw; ++tx) {
      if (mark[static_cast<std::size_t>(ty) * tw + tx] != 0) continue;
      int covered = 0;
      float near_z = DepthImage::kEmpty;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = tx + dx, ny = ty + dy;
          if (nx < 0 || nx >= tw || ny < 0 || ny >= th) continue;
          const std::size_t n = static_cast<std::size_t>(ny) * tw + nx;
          if (mark[n] != 0) {
            ++covered;
            if (zbuf[n] < near_z) near_z = zbuf[n];
          }
        }
      if (covered < 4) continue;
      // Interior only if the source frame had content here too — an
      // inverse-map landing on source background is just background.
      const auto [sx, sy] = source_pixel_for(tx, ty, near_z);
      if (sx >= 0 && frame_.depth.at(sx, sy) < DepthImage::kEmpty)
        ++out.unfilled;
    }

  const std::size_t covered = out.direct + out.filled + out.unfilled;
  out.hole_ratio =
      covered == 0 ? 0.0
                   : static_cast<double>(out.filled + out.unfilled) /
                         static_cast<double>(covered);

  static obs::Counter& warps = obs::counter("render.warp.warps");
  static obs::Counter& holes = obs::counter("render.warp.hole_pixels");
  warps.add(1);
  holes.add(out.filled + out.unfilled);
  obs::gauge("render.warp.hole_ratio_pct")
      .set(static_cast<std::int64_t>(std::lround(out.hole_ratio * 100.0)));
  obs::gauge("render.warp.stale_age_deg")
      .set(static_cast<std::int64_t>(std::lround(out.stale_deg)));
  return out;
}

}  // namespace tvviz::render
