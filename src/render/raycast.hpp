// Parallel ray-casting volume renderer (after Ma et al., "Parallel Volume
// Rendering Using Binary-Swap Compositing", the renderer the paper uses).
// Each node renders its subvolume into a PartialImage; a compositor merges
// them in view order.
#pragma once

#include <memory>

#include "field/volume.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/spaceskip.hpp"
#include "render/transfer.hpp"

namespace tvviz::render {

/// A node's share of the global volume: the voxels it stores (possibly with
/// a ghost layer) and the region it is responsible for rendering.
struct Subvolume {
  field::VolumeF data;      ///< Voxels covering `storage_box`.
  field::Box storage_box;   ///< Where `data` sits in global coordinates.
  field::Box render_box;    ///< Region this node renders (within storage).
  /// Optional §7.1 preprocessing product: blocks of `data` the transfer
  /// function maps to zero opacity are leapt over. Build with
  /// `attach_skipper`; must be rebuilt when data or TF changes.
  std::shared_ptr<const BlockVisibility> skipper;

  /// Build and attach the space-leaping structure for `tf`.
  void attach_skipper(const TransferFunction& tf, int block_size = 8) {
    skipper = std::make_shared<BlockVisibility>(data, tf, block_size);
  }

  /// Wrap a full volume: one node owns everything.
  static Subvolume whole(field::VolumeF volume) {
    field::Box box;
    box.hi[0] = volume.dims().nx;
    box.hi[1] = volume.dims().ny;
    box.hi[2] = volume.dims().nz;
    return Subvolume{std::move(volume), box, box, nullptr};
  }

  /// Sample at global voxel coordinates (clamps inside storage).
  double sample_global(double x, double y, double z) const noexcept {
    return data.sample(x - storage_box.lo[0], y - storage_box.lo[1],
                       z - storage_box.lo[2]);
  }

  util::Vec3 gradient_global(double x, double y, double z) const noexcept {
    return data.gradient(x - storage_box.lo[0], y - storage_box.lo[1],
                         z - storage_box.lo[2]);
  }
};

struct RenderOptions {
  double step = 0.8;            ///< Ray-march step in voxel units.
  double early_termination = 0.98;  ///< Stop once accumulated alpha exceeds.
  bool shading = true;          ///< Phong shading from the scalar gradient.
  double ambient = 0.25;
  double diffuse = 0.70;
  double specular = 0.25;
  double specular_exp = 24.0;
  util::Vec3 light_dir{0.4, 0.8, 0.45};  ///< Toward the light (normalized internally).
};

class RayCaster {
 public:
  explicit RayCaster(RenderOptions options = {}) : options_(options) {}

  const RenderOptions& options() const noexcept { return options_; }
  RenderOptions& options() noexcept { return options_; }

  /// Render `sub.render_box` of the global volume `global_dims` as seen by
  /// `camera`. The result covers only the screen-space bounding box of the
  /// subvolume and carries its view depth.
  PartialImage render(const Subvolume& sub, const field::Dims& global_dims,
                      const Camera& camera, const TransferFunction& tf) const;

  /// Convenience: single-node render of a whole volume to an 8-bit frame.
  /// With `space_leaping`, a BlockVisibility structure is built first and
  /// empty blocks are leapt over (identical image, fewer samples).
  Image render_full(const field::VolumeF& volume, const Camera& camera,
                    const TransferFunction& tf,
                    bool space_leaping = false) const;

  /// Samples actually evaluated by the last render() call on this thread's
  /// instance (for cost-model calibration).
  std::size_t last_sample_count() const noexcept { return samples_; }

 private:
  Rgba march(const util::Ray& ray, double t0, double t1, const Subvolume& sub,
             const TransferFunction& tf) const;

  RenderOptions options_;
  mutable std::size_t samples_ = 0;
};

}  // namespace tvviz::render
