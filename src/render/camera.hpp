// Orbit camera with orthographic projection. Orthographic rays keep
// subvolume visibility ordering exact for axis-aligned decompositions, which
// is what the paper's sort-last compositing relies on.
#pragma once

#include <cmath>

#include "field/volume.hpp"
#include "util/vecmath.hpp"

namespace tvviz::render {

class Camera {
 public:
  Camera(int width, int height, double azimuth_rad = 0.6,
         double elevation_rad = 0.35, double zoom = 1.0)
      : width_(width), height_(height), azimuth_(azimuth_rad),
        elevation_(elevation_rad), zoom_(zoom) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  double azimuth() const noexcept { return azimuth_; }
  double elevation() const noexcept { return elevation_; }
  double zoom() const noexcept { return zoom_; }

  void set_view(double azimuth_rad, double elevation_rad) noexcept {
    azimuth_ = azimuth_rad;
    elevation_ = elevation_rad;
  }
  void set_zoom(double zoom) noexcept { zoom_ = zoom; }

  /// Unit view direction (from eye toward the volume) in voxel space.
  util::Vec3 view_dir() const noexcept {
    const double ce = std::cos(elevation_), se = std::sin(elevation_);
    const double ca = std::cos(azimuth_), sa = std::sin(azimuth_);
    return util::Vec3{-ce * sa, -se, -ce * ca}.normalized();
  }

  util::Vec3 right_dir() const noexcept {
    // Perpendicular to view, horizontal.
    const double ca = std::cos(azimuth_), sa = std::sin(azimuth_);
    return util::Vec3{ca, 0.0, -sa};
  }

  util::Vec3 up_dir() const noexcept {
    return right_dir().cross(view_dir()).normalized();
  }

  /// Half-extent of the image plane in voxel units so the volume fits at
  /// zoom 1 from any angle.
  double half_extent(const field::Dims& dims) const noexcept {
    const util::Vec3 half{(dims.nx - 1) * 0.5, (dims.ny - 1) * 0.5,
                          (dims.nz - 1) * 0.5};
    return half.length() / zoom_;
  }

  util::Vec3 center(const field::Dims& dims) const noexcept {
    return {(dims.nx - 1) * 0.5, (dims.ny - 1) * 0.5, (dims.nz - 1) * 0.5};
  }

  /// Orthographic ray through pixel (px, py), in voxel coordinates. The ray
  /// origin lies outside the volume; direction is unit length.
  util::Ray ray_for(int px, int py, const field::Dims& dims) const noexcept {
    const double he = half_extent(dims);
    const util::Vec3 c = center(dims);
    const util::Vec3 dir = view_dir();
    const double u = ((px + 0.5) / width_ * 2.0 - 1.0) * he;
    const double v = (1.0 - (py + 0.5) / height_ * 2.0) * he;
    const util::Vec3 origin =
        c + right_dir() * u + up_dir() * v - dir * (2.0 * he * zoom_ + 1.0);
    return {origin, dir};
  }

  /// Depth of a point along the view direction (for subvolume ordering).
  double depth_of(const util::Vec3& p) const noexcept {
    return p.dot(view_dir());
  }

 private:
  int width_, height_;
  double azimuth_, elevation_, zoom_;
};

/// Intersect ray with the axis-aligned box [lo, hi] (voxel coords, inclusive
/// sample domain). Returns false when the ray misses; else [t_near, t_far].
inline bool intersect_box(const util::Ray& ray, const field::Box& box,
                          double& t_near, double& t_far) noexcept {
  t_near = -1e300;
  t_far = 1e300;
  const double lo[3] = {static_cast<double>(box.lo[0]),
                        static_cast<double>(box.lo[1]),
                        static_cast<double>(box.lo[2])};
  // Sample domain extends to hi-1 (last voxel center).
  const double hi[3] = {static_cast<double>(box.hi[0] - 1),
                        static_cast<double>(box.hi[1] - 1),
                        static_cast<double>(box.hi[2] - 1)};
  const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const double d[3] = {ray.direction.x, ray.direction.y, ray.direction.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-12) {
      if (o[axis] < lo[axis] || o[axis] > hi[axis]) return false;
      continue;
    }
    double t0 = (lo[axis] - o[axis]) / d[axis];
    double t1 = (hi[axis] - o[axis]) / d[axis];
    if (t0 > t1) std::swap(t0, t1);
    t_near = std::max(t_near, t0);
    t_far = std::min(t_far, t1);
    if (t_near > t_far) return false;
  }
  return true;
}

}  // namespace tvviz::render
