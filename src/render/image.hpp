// Image types: 8-bit RGBA for transport/display and premultiplied float RGBA
// for compositing partial images across render nodes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"

namespace tvviz::render {

/// Premultiplied RGBA color (compositing math operates on these). The `z`
/// channel is the opacity-weighted view depth (sum of w * camera-depth over
/// the ray samples, exactly like the color channels): premultiplied like
/// this, depth composes linearly under `over`, so binary-swap threads a
/// correct 2.5D depth plane through unchanged. The display normalizes by
/// alpha (z / a) to recover the ray's mean termination depth.
struct Rgba {
  double r = 0.0, g = 0.0, b = 0.0, a = 0.0;
  double z = 0.0;

  /// Front-to-back "over": this (front) over `back`.
  Rgba over(const Rgba& back) const noexcept {
    const double t = 1.0 - a;
    return {r + t * back.r, g + t * back.g, b + t * back.b, a + t * back.a,
            z + t * back.z};
  }
};

/// 8-bit RGBA raster, row-major, top-left origin.
class Image {
 public:
  Image() = default;
  Image(int width, int height)
      : width_(width),
        height_(height),
        pixels_(static_cast<std::size_t>(width) * height * 4, 0) {
    if (width < 0 || height < 0)
      throw std::invalid_argument("Image: negative size");
  }

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  std::size_t byte_size() const noexcept { return pixels_.size(); }

  std::uint8_t* pixel(int x, int y) {
    return &pixels_[(static_cast<std::size_t>(y) * width_ + x) * 4];
  }
  const std::uint8_t* pixel(int x, int y) const {
    return &pixels_[(static_cast<std::size_t>(y) * width_ + x) * 4];
  }

  void set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b,
           std::uint8_t a = 255) {
    auto* p = pixel(x, y);
    p[0] = r; p[1] = g; p[2] = b; p[3] = a;
  }

  std::span<const std::uint8_t> bytes() const noexcept { return pixels_; }
  std::span<std::uint8_t> bytes() noexcept { return pixels_; }

  /// Write binary PPM (alpha dropped) for eyeballing results.
  void write_ppm(const std::filesystem::path& path) const;

  /// Read a binary (P6) PPM written by write_ppm or any standard tool.
  /// Alpha is reconstructed as opaque. Throws std::runtime_error on
  /// malformed input.
  static Image read_ppm(const std::filesystem::path& path);

  bool operator==(const Image&) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Float RGBA (premultiplied) raster used during compositing; carries the
/// screen region it covers and a view depth so partial images from different
/// subvolumes can be ordered.
class PartialImage {
 public:
  PartialImage() = default;
  PartialImage(int x0, int y0, int width, int height)
      : x0_(x0), y0_(y0), width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * height) {}

  int x0() const noexcept { return x0_; }
  int y0() const noexcept { return y0_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Mean distance of the originating subvolume along the view direction;
  /// smaller = closer to the eye = composited in front.
  double depth() const noexcept { return depth_; }
  void set_depth(double d) noexcept { depth_ = d; }

  Rgba& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  const Rgba& at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  std::span<const Rgba> pixels() const noexcept { return pixels_; }
  std::span<Rgba> pixels() noexcept { return pixels_; }

  /// Serialize to bytes (for exchange between ranks) and back.
  util::Bytes serialize() const;
  static PartialImage deserialize(std::span<const std::uint8_t> data);

  /// Crop rows [row_begin, row_end) (relative to this image) into a new
  /// partial image — the unit binary-swap exchanges.
  PartialImage crop_rows(int row_begin, int row_end) const;

  /// Convert to 8-bit RGBA over a black background, into a full-frame image
  /// of size (frame_w, frame_h) at this partial image's offset.
  void splat_to(Image& frame) const;

 private:
  int x0_ = 0, y0_ = 0;
  int width_ = 0, height_ = 0;
  double depth_ = 0.0;
  std::vector<Rgba> pixels_;
};

/// Nearest-neighbour upscale by an integer factor (display-side companion
/// to JpegCodec::decode_fast's reduced-resolution output).
Image upscale(const Image& src, int factor);

/// Bilinear resize to an arbitrary size (used by the image-based viewer).
Image resize_bilinear(const Image& src, int width, int height);

/// Peak signal-to-noise ratio between two equal-size images, in dB
/// (infinity for identical images), over the RGB channels. Alpha is
/// excluded: frames travel the wire as 24-bit RGB (Table 1 counts three
/// bytes per pixel) and decoders reconstruct opaque alpha.
double psnr(const Image& a, const Image& b);

}  // namespace tvviz::render
