// Shear-warp volume renderer (after Lacroute & Levoy) — the baseline the
// paper weighs against ray casting in §6: faster per frame, but it needs a
// per-time-step preprocessing pass (opacity classification + run-length
// encoding), which erases its advantage for time-varying data.
//
// Orthographic factorization: the view transform is split into a shear of
// axis-aligned volume slices along the principal viewing axis plus a 2D warp
// of the composited intermediate image.
#pragma once

#include <cstdint>
#include <vector>

#include "field/volume.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/transfer.hpp"

namespace tvviz::render {

/// Classified, run-length-encoded volume: the per-time-step preprocessing
/// product. Must be rebuilt whenever the volume (time step) or the transfer
/// function changes.
class ClassifiedVolume {
 public:
  /// Classify every voxel through `tf` (opacity + color), then run-length
  /// encode transparent voxels per scanline for every principal axis.
  ClassifiedVolume(const field::VolumeF& volume, const TransferFunction& tf,
                   double opacity_epsilon = 1e-4);

  const field::Dims& dims() const noexcept { return dims_; }

  /// Classified values, x-fastest (same layout as the source volume).
  struct Classified {
    float r, g, b, alpha;
  };
  const Classified& at(int x, int y, int z) const {
    return cells_[index(x, y, z)];
  }

  /// Opaque spans [begin, end) of the scanline along `axis` at transverse
  /// coordinates (a, b): axis 0 -> line over x at (y=a, z=b); axis 1 -> line
  /// over y at (x=a, z=b); axis 2 -> line over z at (x=a, y=b).
  const std::vector<std::pair<int, int>>& spans(int axis, int a, int b) const;

  /// Fraction of voxels classified as non-transparent.
  double opacity_coverage() const noexcept { return coverage_; }

  /// Bytes of the encoding (preprocessing output size).
  std::size_t encoded_bytes() const noexcept;

 private:
  std::size_t index(int x, int y, int z) const noexcept {
    return (static_cast<std::size_t>(z) * dims_.ny +
            static_cast<std::size_t>(y)) * dims_.nx + static_cast<std::size_t>(x);
  }

  field::Dims dims_;
  std::vector<Classified> cells_;
  // spans_[axis] is a 2D array over the two transverse axes.
  std::vector<std::vector<std::pair<int, int>>> spans_[3];
  int transverse_[3][2] = {{1, 2}, {0, 2}, {0, 1}};
  double coverage_ = 0.0;
};

class ShearWarpRenderer {
 public:
  struct Options {
    double early_termination = 0.98;
    double opacity_epsilon = 1e-4;
  };

  ShearWarpRenderer() = default;
  explicit ShearWarpRenderer(Options options) : options_(options) {}

  /// Per-time-step preprocessing (the cost ray casting does not pay).
  ClassifiedVolume preprocess(const field::VolumeF& volume,
                              const TransferFunction& tf) const {
    return ClassifiedVolume(volume, tf, options_.opacity_epsilon);
  }

  /// Render a preprocessed volume for `camera`. The camera's view direction
  /// picks the principal axis; the intermediate image is composited slice by
  /// slice and warped to the final frame.
  Image render(const ClassifiedVolume& classified, const Camera& camera) const;

 private:
  Options options_{};
};

}  // namespace tvviz::render
