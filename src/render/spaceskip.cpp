#include "render/spaceskip.hpp"

#include <algorithm>
#include <cmath>

namespace tvviz::render {

double max_alpha_in_range(const TransferFunction& tf, double lo, double hi) {
  double best = std::max(tf.sample(lo).alpha, tf.sample(hi).alpha);
  for (const auto& cp : tf.points())
    if (cp.value > lo && cp.value < hi) best = std::max(best, cp.alpha);
  return best;
}

BlockVisibility::BlockVisibility(const field::VolumeF& volume,
                                 const TransferFunction& tf, int block_size)
    : grid_(volume, block_size) {
  const auto dims = grid_.grid_dims();
  visible_.assign(grid_.blocks(), true);
  std::size_t i = 0;
  for (int bz = 0; bz < dims.nz; ++bz)
    for (int by = 0; by < dims.ny; ++by)
      for (int bx = 0; bx < dims.nx; ++bx, ++i) {
        const auto [lo, hi] = grid_.range(bx, by, bz);
        // Classify with the marcher's own LUT (not the exact control-point
        // max): a block is skipped only when sample_lut is identically zero
        // over its value range, keeping leap/no-leap images bit-identical.
        visible_[i] = tf.max_alpha_lut(lo, hi) > 0.0;
      }
}

double BlockVisibility::block_exit(const util::Vec3& p, const util::Vec3& dir,
                                   double t) const {
  const int b = grid_.block_size();
  const double coords[3] = {p.x, p.y, p.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  double exit = 1e300;
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-12) continue;
    const double block_lo = std::floor(coords[axis] / b) * b;
    const double bound = d[axis] > 0 ? block_lo + b : block_lo;
    const double dt = (bound - coords[axis]) / d[axis];
    if (dt > 1e-9) exit = std::min(exit, dt);
  }
  // Nudge past the face so the next block is entered for sure.
  return exit == 1e300 ? t + b : t + exit + 1e-6;
}

double BlockVisibility::visible_fraction() const {
  if (visible_.empty()) return 0.0;
  std::size_t n = 0;
  for (bool v : visible_) n += v ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(visible_.size());
}

}  // namespace tvviz::render
