#include "render/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tvviz::render {

TransferFunction::TransferFunction(std::vector<ControlPoint> points)
    : points_(std::move(points)) {
  if (points_.size() < 2)
    throw std::invalid_argument("TransferFunction: need >= 2 control points");
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const ControlPoint& a, const ControlPoint& b) {
                        return a.value < b.value;
                      }))
    throw std::invalid_argument("TransferFunction: control points unsorted");
  lut_.reserve(static_cast<std::size_t>(kLutSize));
  for (int i = 0; i < kLutSize; ++i)
    lut_.push_back(sample(static_cast<double>(i) / (kLutSize - 1)));
}

TransferFunction::ControlPoint TransferFunction::sample_lut(
    double v) const noexcept {
  const double x = std::clamp(v, 0.0, 1.0) * (kLutSize - 1);
  const auto i = static_cast<std::size_t>(x);
  if (i >= static_cast<std::size_t>(kLutSize - 1)) return lut_.back();
  const double t = x - static_cast<double>(i);
  const ControlPoint& lo = lut_[i];
  const ControlPoint& hi = lut_[i + 1];
  return {v,
          lo.r + t * (hi.r - lo.r),
          lo.g + t * (hi.g - lo.g),
          lo.b + t * (hi.b - lo.b),
          lo.alpha + t * (hi.alpha - lo.alpha)};
}

double TransferFunction::max_alpha_lut(double lo, double hi) const noexcept {
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  if (hi < lo) std::swap(lo, hi);
  // Every sample_lut(v) for v in [lo, hi] interpolates between entries in
  // [i0, i1], so the max over those entries bounds it (and equals 0 exactly
  // when all of them are 0 — the property space-leaping relies on).
  const auto i0 = static_cast<std::size_t>(lo * (kLutSize - 1));
  const auto i1 = static_cast<std::size_t>(
      std::min<double>(kLutSize - 1, std::ceil(hi * (kLutSize - 1))));
  double best = 0.0;
  for (std::size_t i = i0; i <= i1; ++i)
    best = std::max(best, lut_[i].alpha);
  return best;
}

TransferFunction::ControlPoint TransferFunction::sample(double v) const noexcept {
  if (v <= points_.front().value) return points_.front();
  if (v >= points_.back().value) return points_.back();
  // Binary search for the segment containing v.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), v,
      [](double x, const ControlPoint& p) { return x < p.value; });
  const ControlPoint& hi = *it;
  const ControlPoint& lo = *(it - 1);
  const double span = hi.value - lo.value;
  const double t = span > 0.0 ? (v - lo.value) / span : 0.0;
  return {v,
          lo.r + t * (hi.r - lo.r),
          lo.g + t * (hi.g - lo.g),
          lo.b + t * (hi.b - lo.b),
          lo.alpha + t * (hi.alpha - lo.alpha)};
}

TransferFunction TransferFunction::fire(double threshold) {
  return TransferFunction({
      {0.0, 0.0, 0.0, 0.0, 0.0},
      {threshold, 0.0, 0.0, 0.1, 0.0},
      {threshold + 0.08, 0.1, 0.15, 0.7, 0.02},
      {0.55, 0.9, 0.45, 0.10, 0.10},
      {0.75, 1.0, 0.75, 0.20, 0.25},
      {1.0, 1.0, 1.0, 0.95, 0.50},
  });
}

TransferFunction TransferFunction::dense_cool_warm(double threshold) {
  return TransferFunction({
      {0.0, 0.0, 0.0, 0.0, 0.0},
      {threshold, 0.15, 0.25, 0.6, 0.015},
      {0.35, 0.35, 0.6, 0.8, 0.05},
      {0.6, 0.85, 0.85, 0.5, 0.12},
      {0.8, 0.95, 0.55, 0.25, 0.22},
      {1.0, 1.0, 0.95, 0.85, 0.40},
  });
}

TransferFunction TransferFunction::shock(double threshold) {
  return TransferFunction({
      {0.0, 0.0, 0.0, 0.0, 0.0},
      {threshold, 0.25, 0.3, 0.45, 0.0},
      {0.35, 0.4, 0.55, 0.8, 0.05},
      {0.6, 0.75, 0.8, 0.9, 0.15},
      {0.85, 1.0, 0.9, 0.6, 0.35},
      {1.0, 1.0, 1.0, 1.0, 0.55},
  });
}

}  // namespace tvviz::render
