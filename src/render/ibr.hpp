// Image-based remote viewing (§7.1, after Bethel's Visapult): instead of
// shipping one frame per time step, the server renders a *set* of views of
// a time step, ships it compressed, and the client reconstructs arbitrary
// nearby viewpoints from the set with its own (cheap) graphics — no server
// round-trip per mouse move.
//
// The reconstruction here is angular blending between the two nearest
// captured azimuths — the simplest member of the IBR family, enough to
// exercise the protocol and the bandwidth trade-off.
#pragma once

#include <vector>

#include "codec/image_codec.hpp"
#include "field/volume.hpp"
#include "render/raycast.hpp"

namespace tvviz::render {

class ViewSet {
 public:
  /// Server side: render `views` key images evenly spaced in azimuth
  /// [0, 2*pi) at the given elevation/zoom.
  static ViewSet capture(const field::VolumeF& volume,
                         const TransferFunction& tf, int views, int size,
                         double elevation = 0.35, double zoom = 1.0,
                         const RayCaster& caster = RayCaster());

  int view_count() const noexcept { return static_cast<int>(images_.size()); }
  int size() const noexcept { return size_; }
  double elevation() const noexcept { return elevation_; }
  const Image& view(int index) const { return images_.at(static_cast<std::size_t>(index)); }
  double azimuth_of(int index) const;

  /// Client side: reconstruct the view at `azimuth` by blending the two
  /// nearest key images (wrap-around aware).
  Image reconstruct(double azimuth) const;

  /// Ship the whole set through an image codec (what crosses the WAN).
  util::Bytes serialize(const codec::ImageCodec& codec) const;
  static ViewSet deserialize(std::span<const std::uint8_t> data,
                             const codec::ImageCodec& codec);

  /// Total compressed wire size via `codec`.
  std::size_t wire_bytes(const codec::ImageCodec& codec) const;

 private:
  ViewSet() = default;
  int size_ = 0;
  double elevation_ = 0.0;
  double zoom_ = 1.0;
  std::vector<Image> images_;
};

}  // namespace tvviz::render
