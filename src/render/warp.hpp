// Depth-image warping (ROADMAP item 4, after Zellmann's image-warping
// remote volume rendering): the renderer ships 2.5D frames — color plus the
// ray-caster's opacity-weighted termination depth — and the viewer
// forward-reprojects the last received frame against its *current* camera
// while the next frame is still in flight. Interaction latency then tracks
// the local display tick, not the WAN round trip; the arriving frame merely
// corrects the extrapolation.
//
// The reprojection is a forward splat: every source pixel with depth is
// lifted to its world point through the source camera, projected through
// the target camera, and z-tested into the target raster. One-pixel cracks
// opened by rotation are closed by a 3x3 neighbourhood fill; what remains
// unfilled is a disocclusion hole. The hole ratio (filled / covered) and
// the camera staleness are exported under render.warp.* so the latency
// experiments can watch warp quality degrade with staleness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "field/volume.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"

namespace tvviz::render {

/// Per-pixel view depth (camera-axis distance, voxel units) accompanying a
/// color frame. Background pixels — rays that accumulated ~no opacity —
/// carry kEmpty and are never splatted.
class DepthImage {
 public:
  static constexpr float kEmpty = std::numeric_limits<float>::infinity();

  DepthImage() = default;
  DepthImage(int width, int height)
      : width_(width),
        height_(height),
        depth_(static_cast<std::size_t>(width) * height, kEmpty) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  float at(int x, int y) const {
    return depth_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, float d) {
    depth_[static_cast<std::size_t>(y) * width_ + x] = d;
  }
  std::size_t size() const noexcept { return depth_.size(); }
  const std::vector<float>& plane() const noexcept { return depth_; }
  std::vector<float>& plane() noexcept { return depth_; }

 private:
  int width_ = 0, height_ = 0;
  std::vector<float> depth_;
};

/// Extract the alpha-normalized depth plane from a full-frame float image
/// (the leader's gathered binary-swap result): z / a where the ray hit
/// anything (a > alpha_floor), kEmpty where it saw background. The floor
/// defaults to zero so every pixel with visible colour carries depth —
/// an identity warp then reproduces the colour frame exactly.
DepthImage extract_depth(const PartialImage& frame,
                         double alpha_floor = 0.0);

/// A received 2.5D frame: what the warping viewer holds between arrivals.
struct DepthFrame {
  Image color;
  DepthImage depth;
  Camera camera{0, 0};
  int step = -1;
};

/// One forward reprojection's output and quality accounting.
struct WarpResult {
  Image image;
  std::size_t direct = 0;   ///< Target pixels hit by a source splat.
  std::size_t filled = 0;   ///< Cracks closed by the 3x3 neighbourhood fill.
  std::size_t unfilled = 0; ///< Crack candidates the fill could not close.
  /// Reprojection hole ratio: guessed pixels over covered pixels,
  /// (filled + unfilled) / (direct + filled + unfilled). 0 for an identity
  /// warp; grows with camera staleness as rotation opens disocclusions.
  double hole_ratio = 0.0;
  /// |target azimuth - source azimuth| in degrees (camera staleness).
  double stale_deg = 0.0;
};

/// Forward-reprojects the last received DepthFrame against a live camera.
/// Not thread-safe: one warper per viewer, driven from its display loop.
class Warper {
 public:
  /// `dims` must match the volume the frames were rendered from (the
  /// orthographic pixel mapping depends on the volume extent).
  explicit Warper(field::Dims dims) : dims_(dims) {}

  void set_frame(DepthFrame frame) { frame_ = std::move(frame); }
  bool has_frame() const noexcept { return frame_.step >= 0; }
  const DepthFrame& frame() const noexcept { return frame_; }

  /// Reproject the held frame into `target`'s view. Requires has_frame().
  WarpResult warp(const Camera& target) const;

 private:
  field::Dims dims_{};
  DepthFrame frame_;
};

}  // namespace tvviz::render
