// Transfer functions: map scalar values in [0, 1] to color and opacity.
// Piecewise-linear over control points, the classic volume-rendering design.
#pragma once

#include <vector>

#include "render/image.hpp"

namespace tvviz::render {

class TransferFunction {
 public:
  struct ControlPoint {
    double value = 0.0;  ///< Scalar position in [0, 1].
    double r = 0.0, g = 0.0, b = 0.0;
    double alpha = 0.0;  ///< Opacity per unit of (reference) sample distance.
  };

  /// Control points must be sorted by `value`; endpoints are clamped.
  explicit TransferFunction(std::vector<ControlPoint> points);

  /// Non-premultiplied color + opacity at scalar `v`.
  ControlPoint sample(double v) const noexcept;

  const std::vector<ControlPoint>& points() const noexcept { return points_; }

  /// "Hot body" map for the jet dataset: transparent below a threshold, then
  /// blue -> orange -> white with rising opacity. Sparse-looking images.
  static TransferFunction fire(double threshold = 0.30);

  /// High-coverage map for the vortex dataset: opacity from low values up,
  /// cool-to-warm colors. Produces dense images (worse compression).
  static TransferFunction dense_cool_warm(double threshold = 0.10);

  /// Grey-blue map highlighting shock shells and the bubble for the mixing
  /// dataset.
  static TransferFunction shock(double threshold = 0.18);

 private:
  std::vector<ControlPoint> points_;
};

}  // namespace tvviz::render
