// Transfer functions: map scalar values in [0, 1] to color and opacity.
// Piecewise-linear over control points, the classic volume-rendering design.
#pragma once

#include <vector>

#include "render/image.hpp"

namespace tvviz::render {

class TransferFunction {
 public:
  struct ControlPoint {
    double value = 0.0;  ///< Scalar position in [0, 1].
    double r = 0.0, g = 0.0, b = 0.0;
    double alpha = 0.0;  ///< Opacity per unit of (reference) sample distance.
  };

  /// Resolution of the precomputed lookup table behind sample_lut().
  static constexpr int kLutSize = 1024;

  /// Control points must be sorted by `value`; endpoints are clamped.
  /// Builds the LUT once, so editing a transfer function means
  /// constructing a new one — which is how the control paths already work.
  explicit TransferFunction(std::vector<ControlPoint> points);

  /// Non-premultiplied color + opacity at scalar `v`. Exact piecewise-linear
  /// evaluation over the control points (binary search per call) — the
  /// reference the LUT is checked against in exactness tests.
  ControlPoint sample(double v) const noexcept;

  /// LUT evaluation of sample(): linear interpolation between kLutSize
  /// precomputed entries. This is what the ray-march hot loop uses; it can
  /// differ from sample() only inside the 1/(kLutSize-1)-wide cell around a
  /// control point, and is exactly 0 wherever all covering entries are 0.
  ControlPoint sample_lut(double v) const noexcept;

  /// Upper bound of sample_lut(v).alpha over v in [lo, hi] (max over the
  /// covering LUT entries). Space-leaping classifies blocks with THIS, so a
  /// skipped block is one where the marcher's own lookup is identically
  /// zero — the leap stays bit-identical.
  double max_alpha_lut(double lo, double hi) const noexcept;

  const std::vector<ControlPoint>& points() const noexcept { return points_; }

  /// "Hot body" map for the jet dataset: transparent below a threshold, then
  /// blue -> orange -> white with rising opacity. Sparse-looking images.
  static TransferFunction fire(double threshold = 0.30);

  /// High-coverage map for the vortex dataset: opacity from low values up,
  /// cool-to-warm colors. Produces dense images (worse compression).
  static TransferFunction dense_cool_warm(double threshold = 0.10);

  /// Grey-blue map highlighting shock shells and the bubble for the mixing
  /// dataset.
  static TransferFunction shock(double threshold = 0.18);

 private:
  std::vector<ControlPoint> points_;
  std::vector<ControlPoint> lut_;  ///< kLutSize samples over [0, 1].
};

}  // namespace tvviz::render
