#include "render/ibr.hpp"

#include <cmath>
#include <stdexcept>

namespace tvviz::render {

namespace {
constexpr double kTau = 6.283185307179586;
}

ViewSet ViewSet::capture(const field::VolumeF& volume,
                         const TransferFunction& tf, int views, int size,
                         double elevation, double zoom,
                         const RayCaster& caster) {
  if (views < 2) throw std::invalid_argument("ViewSet: need >= 2 views");
  ViewSet set;
  set.size_ = size;
  set.elevation_ = elevation;
  set.zoom_ = zoom;
  set.images_.reserve(static_cast<std::size_t>(views));
  Subvolume sub = Subvolume::whole(volume);
  sub.attach_skipper(tf);
  for (int v = 0; v < views; ++v) {
    const double azimuth = kTau * v / views;
    const Camera camera(size, size, azimuth, elevation, zoom);
    const PartialImage part = caster.render(sub, volume.dims(), camera, tf);
    Image frame(size, size);
    part.splat_to(frame);
    set.images_.push_back(std::move(frame));
  }
  return set;
}

double ViewSet::azimuth_of(int index) const {
  return kTau * index / view_count();
}

Image ViewSet::reconstruct(double azimuth) const {
  const int n = view_count();
  const double spacing = kTau / n;
  double a = std::fmod(azimuth, kTau);
  if (a < 0) a += kTau;
  // Bracket the azimuth by its two angular neighbours and weight by the
  // angular distance to each. Written in angle space (not index space) so
  // the wrap segment [azimuth_of(n-1), tau) — which exists for every n and
  // is the only segment whose upper neighbour sits across the 2*pi seam —
  // visibly blends by the same rule as the interior segments.
  const int lo = std::min(static_cast<int>(a / spacing), n - 1);
  const int hi = (lo + 1) % n;
  double delta = a - azimuth_of(lo);
  if (delta < 0) delta += kTau;  // roundoff across the seam
  const double w = std::min(delta / spacing, 1.0);

  const Image& left = images_[static_cast<std::size_t>(lo)];
  const Image& right = images_[static_cast<std::size_t>(hi)];
  Image out(size_, size_);
  for (int y = 0; y < size_; ++y)
    for (int x = 0; x < size_; ++x) {
      const auto* pl = left.pixel(x, y);
      const auto* pr = right.pixel(x, y);
      std::uint8_t rgba[4];
      for (int c = 0; c < 4; ++c)
        rgba[c] = static_cast<std::uint8_t>((1.0 - w) * pl[c] + w * pr[c] + 0.5);
      out.set(x, y, rgba[0], rgba[1], rgba[2], rgba[3]);
    }
  return out;
}

util::Bytes ViewSet::serialize(const codec::ImageCodec& codec) const {
  util::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(view_count()));
  out.u32(static_cast<std::uint32_t>(size_));
  out.f64(elevation_);
  out.f64(zoom_);
  out.str(codec.name());
  for (const auto& img : images_) {
    const auto packed = codec.encode(img);
    out.varint(packed.size());
    out.raw(packed);
  }
  return out.take();
}

ViewSet ViewSet::deserialize(std::span<const std::uint8_t> data,
                             const codec::ImageCodec& codec) {
  util::ByteReader in(data);
  ViewSet set;
  const int views = static_cast<int>(in.u32());
  set.size_ = static_cast<int>(in.u32());
  set.elevation_ = in.f64();
  set.zoom_ = in.f64();
  const std::string codec_name = in.str();
  if (codec_name != codec.name())
    throw std::runtime_error("ViewSet: encoded with codec " + codec_name);
  set.images_.reserve(static_cast<std::size_t>(views));
  for (int v = 0; v < views; ++v) {
    const std::size_t len = in.varint();
    set.images_.push_back(codec.decode(in.raw(len)));
  }
  return set;
}

std::size_t ViewSet::wire_bytes(const codec::ImageCodec& codec) const {
  return serialize(codec).size();
}

}  // namespace tvviz::render
