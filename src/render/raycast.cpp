#include "render/raycast.hpp"

#include <algorithm>
#include <cmath>

namespace tvviz::render {

namespace {
/// Screen-space bounding box (pixel rect) of a voxel box under `camera`.
/// Returns false if the box projects outside the frame entirely.
bool screen_bounds(const field::Box& box, const field::Dims& dims,
                   const Camera& camera, int& px0, int& py0, int& px1,
                   int& py1) {
  const double he = camera.half_extent(dims);
  const util::Vec3 c = camera.center(dims);
  const util::Vec3 right = camera.right_dir();
  const util::Vec3 up = camera.up_dir();
  double umin = 1e300, umax = -1e300, vmin = 1e300, vmax = -1e300;
  for (int corner = 0; corner < 8; ++corner) {
    const util::Vec3 p{
        static_cast<double>((corner & 1) ? box.hi[0] - 1 : box.lo[0]),
        static_cast<double>((corner & 2) ? box.hi[1] - 1 : box.lo[1]),
        static_cast<double>((corner & 4) ? box.hi[2] - 1 : box.lo[2])};
    const util::Vec3 d = p - c;
    const double u = d.dot(right);
    const double v = d.dot(up);
    umin = std::min(umin, u);
    umax = std::max(umax, u);
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  // Invert the pixel mapping of Camera::ray_for.
  const auto to_px = [&](double u) {
    return (u / he + 1.0) * 0.5 * camera.width() - 0.5;
  };
  const auto to_py = [&](double v) {
    return (1.0 - v / he) * 0.5 * camera.height() - 0.5;
  };
  px0 = std::max(0, static_cast<int>(std::floor(to_px(umin))) - 1);
  px1 = std::min(camera.width(), static_cast<int>(std::ceil(to_px(umax))) + 2);
  py0 = std::max(0, static_cast<int>(std::floor(to_py(vmax))) - 1);
  py1 = std::min(camera.height(), static_cast<int>(std::ceil(to_py(vmin))) + 2);
  return px0 < px1 && py0 < py1;
}
}  // namespace

Rgba RayCaster::march(const util::Ray& ray, double t0, double t1,
                      const Subvolume& sub, const TransferFunction& tf) const {
  Rgba acc;  // premultiplied, front-to-back
  const double step = options_.step;
  const util::Vec3 light = options_.light_dir.normalized();
  // Half-open [t0, t1): a sample landing exactly on a shared subvolume plane
  // belongs to the far box, so parallel renders tile the serial result.
  for (double t = t0; t < t1; t += step) {
    const util::Vec3 p = ray.at(t);
    if (sub.skipper) {
      const util::Vec3 local{p.x - sub.storage_box.lo[0],
                             p.y - sub.storage_box.lo[1],
                             p.z - sub.storage_box.lo[2]};
      if (sub.skipper->invisible_at(local.x, local.y, local.z)) {
        // Leap to this block's exit, then snap back onto the global sample
        // grid: every skipped sample classifies to zero opacity, so the
        // image is bit-identical with or without leaping.
        const double t_exit =
            sub.skipper->block_exit(local, ray.direction, t);
        const double snapped = std::ceil(t_exit / step) * step;
        t = std::max(snapped, t + step) - step;  // loop adds one step
        continue;
      }
    }
    const double value = sub.sample_global(p.x, p.y, p.z);
    ++samples_;
    // LUT lookup: the per-sample binary search over control points is the
    // hot loop's dominant scalar cost; space-leap classification uses the
    // same LUT (max_alpha_lut), so leaping stays bit-identical.
    const auto cp = tf.sample_lut(value);
    if (cp.alpha <= 0.0) continue;
    // Opacity correction: control-point alpha is per unit sample distance.
    const double alpha = 1.0 - std::pow(1.0 - cp.alpha, step);
    double r = cp.r, g = cp.g, b = cp.b;
    if (options_.shading) {
      const util::Vec3 grad = sub.gradient_global(p.x, p.y, p.z);
      const double len = grad.length();
      if (len > 1e-8) {
        const util::Vec3 n = grad / len;
        const double ndl = std::abs(n.dot(light));
        const util::Vec3 h = (light - ray.direction).normalized();
        const double ndh = std::abs(n.dot(h));
        const double lum = options_.ambient + options_.diffuse * ndl;
        const double spec =
            options_.specular * std::pow(ndh, options_.specular_exp);
        r = util::clamp01(r * lum + spec);
        g = util::clamp01(g * lum + spec);
        b = util::clamp01(b * lum + spec);
      } else {
        const double lum = options_.ambient + 0.5 * options_.diffuse;
        r *= lum;
        g *= lum;
        b *= lum;
      }
    }
    const double w = (1.0 - acc.a) * alpha;
    acc.r += w * r;
    acc.g += w * g;
    acc.b += w * b;
    acc.a += w;
    // Opacity-weighted view depth (the 2.5D plane the warping viewer
    // reprojects). For the orthographic camera p.dot(view_dir) is simply
    // origin.dot(dir) + t — no per-sample dot product needed.
    acc.z += w * (ray.origin.dot(ray.direction) + t);
    if (acc.a >= options_.early_termination) break;
  }
  return acc;
}

PartialImage RayCaster::render(const Subvolume& sub,
                               const field::Dims& global_dims,
                               const Camera& camera,
                               const TransferFunction& tf) const {
  samples_ = 0;
  int px0, py0, px1, py1;
  if (!screen_bounds(sub.render_box, global_dims, camera, px0, py0, px1, py1)) {
    PartialImage empty(0, 0, 0, 0);
    empty.set_depth(1e300);
    return empty;
  }
  PartialImage out(px0, py0, px1 - px0, py1 - py0);
  const util::Vec3 box_center{
      (sub.render_box.lo[0] + sub.render_box.hi[0] - 1) * 0.5,
      (sub.render_box.lo[1] + sub.render_box.hi[1] - 1) * 0.5,
      (sub.render_box.lo[2] + sub.render_box.hi[2] - 1) * 0.5};
  out.set_depth(camera.depth_of(box_center));

  // Sample-domain box: a subvolume owns samples in [lo, hi) along each axis
  // where a neighbour continues, and [lo, hi-1] at the global border.
  // intersect_box treats hi-1 as the far bound, so extend interior faces.
  field::Box domain = sub.render_box;
  const int extent[3] = {global_dims.nx, global_dims.ny, global_dims.nz};
  for (int axis = 0; axis < 3; ++axis)
    if (domain.hi[axis] < extent[axis]) ++domain.hi[axis];

  for (int py = py0; py < py1; ++py) {
    for (int px = px0; px < px1; ++px) {
      const util::Ray ray = camera.ray_for(px, py, global_dims);
      double t0, t1;
      if (!intersect_box(ray, domain, t0, t1)) continue;
      t0 = std::max(t0, 0.0);
      if (t0 > t1) continue;
      // Snap the first sample to a global step grid so adjacent subvolumes
      // sample the same points and parallel == serial compositing holds.
      const double snapped = std::ceil(t0 / options_.step) * options_.step;
      out.at(px - px0, py - py0) = march(ray, snapped, t1, sub, tf);
    }
  }
  return out;
}

Image RayCaster::render_full(const field::VolumeF& volume, const Camera& camera,
                             const TransferFunction& tf,
                             bool space_leaping) const {
  Subvolume sub = Subvolume::whole(volume);
  if (space_leaping) sub.attach_skipper(tf);
  const PartialImage partial = render(sub, volume.dims(), camera, tf);
  Image frame(camera.width(), camera.height());
  partial.splat_to(frame);
  return frame;
}

}  // namespace tvviz::render
