#include "render/image.hpp"

#include <cmath>
#include <fstream>
#include <limits>

namespace tvviz::render {

void Image::write_ppm(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Image: cannot open " + path.string());
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x) {
      const auto* p = pixel(x, y);
      out.put(static_cast<char>(p[0]));
      out.put(static_cast<char>(p[1]));
      out.put(static_cast<char>(p[2]));
    }
  if (!out) throw std::runtime_error("Image: write failed " + path.string());
}

Image Image::read_ppm(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Image: cannot open " + path.string());
  // Header tokens separated by whitespace; '#' starts a comment line.
  const auto next_token = [&in, &path]() -> std::string {
    std::string token;
    for (;;) {
      const int c = in.get();
      if (c == EOF)
        throw std::runtime_error("Image: truncated PPM header " + path.string());
      if (c == '#') {
        while (in.good() && in.get() != '\n') {
        }
        continue;
      }
      if (std::isspace(c)) {
        if (!token.empty()) return token;
        continue;
      }
      token.push_back(static_cast<char>(c));
    }
  };
  if (next_token() != "P6")
    throw std::runtime_error("Image: not a binary PPM: " + path.string());
  const int width = std::stoi(next_token());
  const int height = std::stoi(next_token());
  const int maxval = std::stoi(next_token());
  if (width <= 0 || height <= 0 || maxval != 255)
    throw std::runtime_error("Image: unsupported PPM geometry " + path.string());
  // Exactly one whitespace byte separates the header from the raster; the
  // token reader has already consumed it.
  Image img(width, height);
  std::vector<char> row(static_cast<std::size_t>(width) * 3);
  for (int y = 0; y < height; ++y) {
    in.read(row.data(), static_cast<std::streamsize>(row.size()));
    if (!in) throw std::runtime_error("Image: truncated PPM " + path.string());
    for (int x = 0; x < width; ++x)
      img.set(x, y, static_cast<std::uint8_t>(row[x * 3]),
              static_cast<std::uint8_t>(row[x * 3 + 1]),
              static_cast<std::uint8_t>(row[x * 3 + 2]), 255);
  }
  return img;
}

util::Bytes PartialImage::serialize() const {
  util::ByteWriter w(pixels_.size() * 20 + 32);
  w.u32(static_cast<std::uint32_t>(x0_));
  w.u32(static_cast<std::uint32_t>(y0_));
  w.u32(static_cast<std::uint32_t>(width_));
  w.u32(static_cast<std::uint32_t>(height_));
  w.f64(depth_);
  // f32 per channel keeps exchange volume realistic for the network model.
  for (const Rgba& p : pixels_) {
    w.f32(static_cast<float>(p.r));
    w.f32(static_cast<float>(p.g));
    w.f32(static_cast<float>(p.b));
    w.f32(static_cast<float>(p.a));
    w.f32(static_cast<float>(p.z));
  }
  return w.take();
}

PartialImage PartialImage::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  const int x0 = static_cast<int>(r.u32());
  const int y0 = static_cast<int>(r.u32());
  const int w = static_cast<int>(r.u32());
  const int h = static_cast<int>(r.u32());
  PartialImage img(x0, y0, w, h);
  img.set_depth(r.f64());
  for (Rgba& p : img.pixels_) {
    p.r = r.f32();
    p.g = r.f32();
    p.b = r.f32();
    p.a = r.f32();
    p.z = r.f32();
  }
  return img;
}

PartialImage PartialImage::crop_rows(int row_begin, int row_end) const {
  if (row_begin < 0 || row_end > height_ || row_begin > row_end)
    throw std::out_of_range("PartialImage::crop_rows");
  PartialImage out(x0_, y0_ + row_begin, width_, row_end - row_begin);
  out.set_depth(depth_);
  for (int y = row_begin; y < row_end; ++y)
    for (int x = 0; x < width_; ++x) out.at(x, y - row_begin) = at(x, y);
  return out;
}

void PartialImage::splat_to(Image& frame) const {
  for (int y = 0; y < height_; ++y) {
    const int fy = y0_ + y;
    if (fy < 0 || fy >= frame.height()) continue;
    for (int x = 0; x < width_; ++x) {
      const int fx = x0_ + x;
      if (fx < 0 || fx >= frame.width()) continue;
      const Rgba& p = at(x, y);
      const auto q = [](double v) {
        const double c = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
        return static_cast<std::uint8_t>(c * 255.0 + 0.5);
      };
      frame.set(fx, fy, q(p.r), q(p.g), q(p.b), q(p.a));
    }
  }
}

Image upscale(const Image& src, int factor) {
  if (factor < 1) throw std::invalid_argument("upscale: factor must be >= 1");
  Image out(src.width() * factor, src.height() * factor);
  for (int y = 0; y < out.height(); ++y)
    for (int x = 0; x < out.width(); ++x) {
      const auto* p = src.pixel(x / factor, y / factor);
      out.set(x, y, p[0], p[1], p[2], p[3]);
    }
  return out;
}

Image resize_bilinear(const Image& src, int width, int height) {
  if (width <= 0 || height <= 0)
    throw std::invalid_argument("resize_bilinear: bad size");
  Image out(width, height);
  if (src.width() == 0 || src.height() == 0) return out;
  const double sx = static_cast<double>(src.width()) / width;
  const double sy = static_cast<double>(src.height()) / height;
  for (int y = 0; y < height; ++y) {
    const double fy = std::min((y + 0.5) * sy - 0.5,
                               static_cast<double>(src.height() - 1));
    const int y0 = std::max(0, static_cast<int>(fy));
    const int y1 = std::min(src.height() - 1, y0 + 1);
    const double wy = std::max(0.0, fy - y0);
    for (int x = 0; x < width; ++x) {
      const double fx = std::min((x + 0.5) * sx - 0.5,
                                 static_cast<double>(src.width() - 1));
      const int x0 = std::max(0, static_cast<int>(fx));
      const int x1 = std::min(src.width() - 1, x0 + 1);
      const double wx = std::max(0.0, fx - x0);
      const auto* p00 = src.pixel(x0, y0);
      const auto* p10 = src.pixel(x1, y0);
      const auto* p01 = src.pixel(x0, y1);
      const auto* p11 = src.pixel(x1, y1);
      std::uint8_t rgba[4];
      for (int ch = 0; ch < 4; ++ch) {
        const double v = (1 - wy) * ((1 - wx) * p00[ch] + wx * p10[ch]) +
                         wy * ((1 - wx) * p01[ch] + wx * p11[ch]);
        rgba[ch] = static_cast<std::uint8_t>(v + 0.5);
      }
      out.set(x, y, rgba[0], rgba[1], rgba[2], rgba[3]);
    }
  }
  return out;
}

double psnr(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height())
    throw std::invalid_argument("psnr: size mismatch");
  const auto pa = a.bytes();
  const auto pb = b.bytes();
  double mse = 0.0;
  std::size_t samples = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (i % 4 == 3) continue;  // alpha is not transported
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    mse += d * d;
    ++samples;
  }
  if (samples == 0) return std::numeric_limits<double>::infinity();
  mse /= static_cast<double>(samples);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace tvviz::render
