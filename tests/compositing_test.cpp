// Tests for sort-last compositing: the sequential reference, direct-send,
// and binary-swap over the vmp runtime (parameterized over rank counts,
// including non-powers of two).
#include <gtest/gtest.h>

#include <mutex>

#include "compositing/binary_swap.hpp"
#include "compositing/over.hpp"
#include "util/rng.hpp"
#include "vmp/communicator.hpp"

namespace tvviz {
namespace {

using compositing::binary_swap;
using compositing::composite_reference;
using compositing::direct_send;
using compositing::gather_frame;
using render::Image;
using render::PartialImage;
using render::Rgba;

/// Deterministic pseudo-random partial image for `rank`: random footprint,
/// random semi-transparent pixels, depth = rank with a shuffled offset.
PartialImage random_partial(int rank, int frame_w, int frame_h,
                            std::uint64_t seed) {
  util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(rank));
  const int w = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(frame_w)));
  const int h = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(frame_h)));
  const int x0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(frame_w - w + 1)));
  const int y0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(frame_h - h + 1)));
  PartialImage p(x0, y0, w, h);
  p.set_depth(rng.uniform(-10.0, 10.0));
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const double a = rng.uniform(0.0, 0.8);
      p.at(x, y) = Rgba{a * rng.uniform(), a * rng.uniform(), a * rng.uniform(), a};
    }
  return p;
}

double max_channel_diff(const Image& a, const Image& b) {
  EXPECT_EQ(a.width(), b.width());
  EXPECT_EQ(a.height(), b.height());
  double worst = 0.0;
  const auto pa = a.bytes(), pb = b.bytes();
  for (std::size_t i = 0; i < pa.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(pa[i]) - pb[i]));
  return worst;
}

// ----------------------------------------------------------- reference ----

TEST(CompositeReference, DepthOrderIndependentOfInputOrder) {
  PartialImage front(0, 0, 2, 2), back(0, 0, 2, 2);
  front.set_depth(-1.0);
  back.set_depth(1.0);
  front.at(0, 0) = Rgba{1, 0, 0, 1};  // opaque red in front
  back.at(0, 0) = Rgba{0, 0, 1, 1};   // opaque blue behind
  const Image ab = composite_reference({front, back}, 2, 2);
  const Image ba = composite_reference({back, front}, 2, 2);
  EXPECT_EQ(ab.pixel(0, 0)[0], 255);
  EXPECT_EQ(ab.pixel(0, 0)[2], 0);
  EXPECT_EQ(max_channel_diff(ab, ba), 0.0);
}

TEST(CompositeReference, SemiTransparentBlend) {
  PartialImage front(0, 0, 1, 1), back(0, 0, 1, 1);
  front.set_depth(0.0);
  back.set_depth(1.0);
  front.at(0, 0) = Rgba{0.5, 0, 0, 0.5};  // premultiplied half-red
  back.at(0, 0) = Rgba{0, 1, 0, 1};
  const Image out = composite_reference({front, back}, 1, 1);
  EXPECT_EQ(out.pixel(0, 0)[0], 128);
  EXPECT_EQ(out.pixel(0, 0)[1], 128);
}

TEST(CompositeReference, OffsetsRespected) {
  PartialImage p(2, 1, 1, 1);
  p.set_depth(0);
  p.at(0, 0) = Rgba{1, 1, 1, 1};
  const Image out = composite_reference({p}, 4, 4);
  EXPECT_EQ(out.pixel(2, 1)[0], 255);
  EXPECT_EQ(out.pixel(0, 0)[0], 0);
}

TEST(CompositeReference, ClipsOutOfFramePartials) {
  PartialImage p(-2, -2, 8, 8);
  p.set_depth(0);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) p.at(x, y) = Rgba{1, 1, 1, 1};
  const Image out = composite_reference({p}, 4, 4);
  EXPECT_EQ(out.pixel(3, 3)[0], 255);  // covered portion
}

// --------------------------------------------------------- parallel ----

class ParallelCompositing : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCompositing, DirectSendMatchesReference) {
  const int ranks = GetParam();
  constexpr int kW = 24, kH = 20;

  std::vector<PartialImage> partials;
  for (int r = 0; r < ranks; ++r) partials.push_back(random_partial(r, kW, kH, 1));
  const Image expected = composite_reference(partials, kW, kH);

  Image actual;
  vmp::Cluster::run(ranks, [&](vmp::Communicator& comm) {
    const Image img = direct_send(
        comm, partials[static_cast<std::size_t>(comm.rank())], kW, kH);
    if (comm.rank() == 0) actual = img;
  });
  EXPECT_EQ(max_channel_diff(expected, actual), 0.0) << "ranks=" << ranks;
}

/// Binary-swap requires depths monotone in rank (slab decomposition); run
/// the suite in both ascending and descending depth order.
class BinarySwapParam
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BinarySwapParam, MatchesReference) {
  const auto [ranks, ascending] = GetParam();
  constexpr int kW = 24, kH = 20;

  std::vector<PartialImage> partials;
  for (int r = 0; r < ranks; ++r) {
    PartialImage p = random_partial(r, kW, kH, 2);
    p.set_depth(ascending ? r : -r);  // monotone in rank
    partials.push_back(std::move(p));
  }
  const Image expected = composite_reference(partials, kW, kH);

  Image actual;
  vmp::Cluster::run(ranks, [&](vmp::Communicator& comm) {
    const auto slice = binary_swap(
        comm, partials[static_cast<std::size_t>(comm.rank())], kW, kH);
    const Image img = gather_frame(comm, slice, kW, kH);
    if (comm.rank() == 0) actual = img;
  });
  EXPECT_LE(max_channel_diff(expected, actual), 1.0)
      << "ranks=" << ranks << " ascending=" << ascending;
}

INSTANTIATE_TEST_SUITE_P(
    RankCounts, BinarySwapParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Bool()));

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelCompositing,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BinarySwap, SlicesPartitionTheFrame) {
  constexpr int kRanks = 4, kW = 16, kH = 16;
  std::vector<int> rows_covered(kH, 0);
  std::mutex mtx;
  std::vector<PartialImage> partials;
  for (int r = 0; r < kRanks; ++r) {
    PartialImage p = random_partial(r, kW, kH, 3);
    p.set_depth(r);
    partials.push_back(std::move(p));
  }
  vmp::Cluster::run(kRanks, [&](vmp::Communicator& comm) {
    const auto slice = binary_swap(
        comm, partials[static_cast<std::size_t>(comm.rank())], kW, kH);
    std::lock_guard lock(mtx);
    for (int y = 0; y < slice.image.height(); ++y)
      ++rows_covered[static_cast<std::size_t>(slice.row0 + y)];
  });
  for (int y = 0; y < kH; ++y) EXPECT_EQ(rows_covered[static_cast<std::size_t>(y)], 1);
}

TEST(BinarySwap, EmptyPartialsComposeToBlack) {
  constexpr int kW = 8, kH = 8;
  Image actual;
  vmp::Cluster::run(4, [&](vmp::Communicator& comm) {
    PartialImage empty(0, 0, 0, 0);
    empty.set_depth(comm.rank());
    const auto slice = binary_swap(comm, empty, kW, kH);
    const Image img = gather_frame(comm, slice, kW, kH);
    if (comm.rank() == 0) actual = img;
  });
  for (int y = 0; y < kH; ++y)
    for (int x = 0; x < kW; ++x) EXPECT_EQ(actual.pixel(x, y)[3], 0);
}

TEST(BinarySwap, DeterministicAcrossRuns) {
  constexpr int kRanks = 6, kW = 12, kH = 12;
  std::vector<PartialImage> partials;
  for (int r = 0; r < kRanks; ++r) {
    PartialImage p = random_partial(r, kW, kH, 4);
    p.set_depth(kRanks - r);  // descending
    partials.push_back(std::move(p));
  }
  Image first, second;
  for (Image* out : {&first, &second}) {
    vmp::Cluster::run(kRanks, [&](vmp::Communicator& comm) {
      const auto slice = binary_swap(
          comm, partials[static_cast<std::size_t>(comm.rank())], kW, kH);
      const Image img = gather_frame(comm, slice, kW, kH);
      if (comm.rank() == 0) *out = img;
    });
  }
  EXPECT_EQ(max_channel_diff(first, second), 0.0);
}

}  // namespace
}  // namespace tvviz
