// Robustness suite: corrupted or truncated streams fed to every decoder
// must either decode to *something* or throw a std::exception — never
// crash, hang, or read out of bounds. Exercised with deterministic
// pseudo-random truncations and byte flips of valid streams.
#include <gtest/gtest.h>

#include "codec/bwt.hpp"
#include "codec/byte_codec.hpp"
#include "codec/framediff.hpp"
#include "codec/image_codec.hpp"
#include "codec/lz.hpp"
#include "codec/motion.hpp"
#include "compositing/collective_compress.hpp"
#include "field/generators.hpp"
#include "net/protocol.hpp"
#include "render/raycast.hpp"
#include "util/rng.hpp"

namespace tvviz {
namespace {

using util::Bytes;

render::Image sample_frame() {
  static const render::Image frame = [] {
    const auto desc = field::scaled(field::turbulent_jet_desc(), 4, 2);
    render::RayCaster caster;
    return caster.render_full(field::generate(desc, 1),
                              render::Camera(64, 64),
                              render::TransferFunction::fire());
  }();
  return frame;
}

/// Apply `flips` random byte corruptions.
Bytes corrupt(Bytes data, util::Rng& rng, int flips) {
  if (data.empty()) return data;
  for (int i = 0; i < flips; ++i) {
    const auto pos = rng.below(data.size());
    data[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  }
  return data;
}

/// Truncate to a random prefix.
Bytes truncate(const Bytes& data, util::Rng& rng) {
  return Bytes(data.begin(),
               data.begin() + static_cast<std::ptrdiff_t>(
                                  rng.below(data.size() + 1)));
}

// ---------------------------------------------------------- byte codecs ----

class ByteCodecRobustness : public ::testing::TestWithParam<const char*> {
 public:
  static std::shared_ptr<const codec::ByteCodec> make(const std::string& n) {
    if (n == "rle") return std::make_shared<codec::RleCodec>();
    if (n == "lzo") return std::make_shared<codec::LzCodec>();
    return std::make_shared<codec::BwtCodec>(4096);
  }
};

TEST_P(ByteCodecRobustness, SurvivesCorruptionAndTruncation) {
  const auto codec = make(GetParam());
  util::Rng rng(2024);
  Bytes payload(5000);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng() & 0x3F);
  const Bytes valid = codec->encode(payload);

  for (int trial = 0; trial < 200; ++trial) {
    const Bytes bad = trial % 2 == 0 ? corrupt(valid, rng, 1 + trial % 7)
                                     : truncate(valid, rng);
    try {
      const Bytes out = codec->decode(bad);
      // Allowed: garbage output of plausible size (no way to detect every
      // corruption without checksums).
      EXPECT_LT(out.size(), payload.size() * 64 + 1024);
    } catch (const std::exception&) {
      // Also allowed: clean failure.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, ByteCodecRobustness,
                         ::testing::Values("rle", "lzo", "bzip"));

// --------------------------------------------------------- image codecs ----

class ImageCodecRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(ImageCodecRobustness, SurvivesCorruptionAndTruncation) {
  const auto codec = codec::make_image_codec(GetParam(), 75);
  const auto valid = codec->encode(sample_frame());
  util::Rng rng(77);
  for (int trial = 0; trial < 150; ++trial) {
    const Bytes bad = trial % 2 == 0 ? corrupt(valid, rng, 1 + trial % 5)
                                     : truncate(valid, rng);
    try {
      const render::Image out = codec->decode(bad);
      EXPECT_LE(out.width(), 1 << 16);
      EXPECT_LE(out.height(), 1 << 16);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, ImageCodecRobustness,
                         ::testing::Values("raw", "rle", "lzo", "bzip", "jpeg",
                                           "jpeg+lzo", "jpeg+bzip"));

TEST(JpegRobustness, FastDecodeSurvivesCorruption) {
  const codec::JpegCodec jpeg(75);
  const auto valid = jpeg.encode(sample_frame());
  util::Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const Bytes bad = corrupt(valid, rng, 2);
    for (int scale : {2, 4, 8}) {
      try {
        (void)jpeg.decode_fast(bad, scale);
      } catch (const std::exception&) {
      }
    }
  }
}

// ----------------------------------------------------- stateful decoders ----

TEST(FrameDiffRobustness, SurvivesCorruptStreams) {
  auto inner = std::make_shared<codec::LzCodec>();
  codec::FrameDiffEncoder enc(inner);
  const auto key = enc.encode_frame(sample_frame());
  const auto delta = enc.encode_frame(sample_frame());
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    codec::FrameDiffDecoder dec(inner);
    try {
      (void)dec.decode_frame(corrupt(key, rng, 1 + trial % 4));
      (void)dec.decode_frame(corrupt(delta, rng, 1 + trial % 4));
    } catch (const std::exception&) {
    }
  }
}

TEST(MotionRobustness, SurvivesCorruptStreams) {
  codec::MotionCodecOptions opt;
  opt.gop = 4;
  codec::MotionEncoder enc(opt);
  const auto i_frame = enc.encode_frame(sample_frame());
  const auto p_frame = enc.encode_frame(sample_frame());
  util::Rng rng(5);
  for (int trial = 0; trial < 80; ++trial) {
    codec::MotionDecoder dec(opt);
    try {
      (void)dec.decode_frame(trial % 2 ? corrupt(i_frame, rng, 2)
                                       : truncate(i_frame, rng));
      (void)dec.decode_frame(trial % 2 ? corrupt(p_frame, rng, 2)
                                       : truncate(p_frame, rng));
    } catch (const std::exception&) {
    }
  }
}

TEST(CollectiveRobustness, SurvivesCorruptStreams) {
  util::Bytes wire;
  vmp::Cluster::run(2, [&](vmp::Communicator& comm) {
    render::Image strip(64, 32);
    const render::Image frame = sample_frame();
    for (int y = 0; y < 32; ++y)
      for (int x = 0; x < 64; ++x) {
        const auto* p = frame.pixel(x, comm.rank() * 32 + y);
        strip.set(x, y, p[0], p[1], p[2], p[3]);
      }
    auto encoded = compositing::collective_jpeg_encode(
        comm, strip, comm.rank() * 32, 64, 64, 75);
    if (comm.rank() == 0) wire = std::move(encoded);
  });
  util::Rng rng(6);
  for (int trial = 0; trial < 80; ++trial) {
    try {
      (void)compositing::collective_jpeg_decode(
          trial % 2 ? corrupt(wire, rng, 2) : truncate(wire, rng));
    } catch (const std::exception&) {
    }
  }
}

// ---------------------------------------------------- serialized structs ----

TEST(PartialImageRobustness, TruncatedStreamsThrow) {
  render::PartialImage p(1, 2, 8, 8);
  const auto valid = p.serialize();
  for (std::size_t cut = 0; cut < valid.size(); cut += 13) {
    const Bytes bad(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)render::PartialImage::deserialize(bad), std::exception);
  }
}

TEST(ControlEventRobustness, TruncatedStreamsThrow) {
  net::ControlEvent e;
  e.kind = net::ControlKind::kSetColorMap;
  e.name = "fire";
  const auto valid = e.serialize();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes bad(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)net::ControlEvent::deserialize(bad), std::exception);
  }
}

}  // namespace
}  // namespace tvviz
