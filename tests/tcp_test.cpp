// Tests for the real-socket transport: framing, the daemon served over
// TCP, multi-client relaying, and the control backchannel — the deployable
// form of the §4.1 framework.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <thread>

#include <cstdlib>

#include "codec/image_codec.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "field/generators.hpp"
#include "net/errors.hpp"
#include "net/event_loop.hpp"
#include "net/tcp.hpp"
#include "obs/counters.hpp"
#include "render/image.hpp"
#include "util/rng.hpp"

namespace tvviz {
namespace {

using net::ControlEvent;
using net::ControlKind;
using net::MsgType;
using net::NetMessage;
using net::TcpDaemonServer;
using net::TcpDisplayLink;
using net::TcpRendererLink;

TEST(Protocol, MessageSerializationRoundTrip) {
  NetMessage msg;
  msg.type = MsgType::kSubImage;
  msg.frame_index = 42;
  msg.piece = 3;
  msg.piece_count = 8;
  msg.codec = "jpeg+lzo";
  msg.payload = {9, 8, 7, 6};
  const auto wire = net::serialize_message(msg);
  const NetMessage out = net::deserialize_message(wire);
  EXPECT_EQ(out.type, MsgType::kSubImage);
  EXPECT_EQ(out.frame_index, 42);
  EXPECT_EQ(out.piece, 3);
  EXPECT_EQ(out.piece_count, 8);
  EXPECT_EQ(out.codec, "jpeg+lzo");
  EXPECT_EQ(out.payload, (util::Bytes{9, 8, 7, 6}));
}

TEST(Tcp, FramesFlowRendererToDisplay) {
  TcpDaemonServer server;
  TcpDisplayLink display(server.port());
  TcpRendererLink renderer(server.port());
  // Give the server a moment to register the display connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  for (int i = 0; i < 3; ++i) {
    NetMessage msg;
    msg.type = MsgType::kFrame;
    msg.frame_index = i;
    msg.codec = "raw";
    msg.payload = util::Bytes{static_cast<std::uint8_t>(i), 2, 3};
    renderer.send(msg);
  }
  for (int i = 0; i < 3; ++i) {
    const auto got = display.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame_index, i);
    EXPECT_EQ(got->payload[0], i);
  }
  server.shutdown();
}

TEST(Tcp, LargePayloadIntegrity) {
  TcpDaemonServer server;
  TcpDisplayLink display(server.port());
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  util::Rng rng(7);
  NetMessage msg;
  msg.type = MsgType::kFrame;
  util::Bytes big(3 << 20);  // 3 MB: spans many TCP segments
  for (auto& b : big) b = static_cast<std::uint8_t>(rng());
  const util::Bytes sent = big;
  msg.payload = std::move(big);
  renderer.send(msg);
  const auto got = display.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, sent);
  server.shutdown();
}

TEST(Tcp, ControlEventsFlowBack) {
  TcpDaemonServer server;
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  TcpDisplayLink display(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ControlEvent e;
  e.kind = ControlKind::kSetColorMap;
  e.name = "dense";
  display.send_control(e);

  std::optional<ControlEvent> got;
  for (int i = 0; i < 300 && !got; ++i) {
    got = renderer.poll_control();
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, ControlKind::kSetColorMap);
  EXPECT_EQ(got->name, "dense");
  server.shutdown();
}

TEST(Tcp, MultipleDisplaysEachReceive) {
  TcpDaemonServer server;
  TcpDisplayLink d1(server.port());
  TcpDisplayLink d2(server.port());
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = 7;
  renderer.send(msg);
  const auto g1 = d1.next();
  const auto g2 = d2.next();
  ASSERT_TRUE(g1 && g2);
  EXPECT_EQ(g1->frame_index, 7);
  EXPECT_EQ(g2->frame_index, 7);
  server.shutdown();
}

TEST(Tcp, CompressedFrameRoundTripOverSockets) {
  // The full §4.1 path for real: render -> JPEG+LZO -> socket -> daemon ->
  // socket -> decode.
  render::Image frame(48, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x)
      frame.set(x, y, static_cast<std::uint8_t>(x * 5),
                static_cast<std::uint8_t>(y * 5), 100);
  const auto codec = codec::make_image_codec("jpeg+lzo", 85);

  TcpDaemonServer server;
  TcpDisplayLink display(server.port());
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.codec = "jpeg+lzo";
  msg.payload = codec->encode(frame);
  renderer.send(msg);

  const auto got = display.next();
  ASSERT_TRUE(got.has_value());
  const render::Image out = codec->decode(got->payload);
  EXPECT_GT(render::psnr(frame, out), 30.0);
  server.shutdown();
}

TEST(Tcp, ServerShutdownUnblocksClients) {
  auto server = std::make_unique<TcpDaemonServer>();
  TcpDisplayLink display(server->port());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::optional<NetMessage> got = NetMessage{};
  std::thread waiter([&] { got = display.next(); });
  server->shutdown();
  waiter.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Tcp, ConnectToClosedPortThrows) {
  int dead_port;
  {
    TcpDaemonServer server;
    dead_port = server.port();
  }
  EXPECT_THROW(TcpDisplayLink link(dead_port), std::runtime_error);
}

TEST(Tcp, RecvErrorThrowsInsteadOfFakingClose) {
  // Regression: recv() failures (here ENOTSOCK on a plain file descriptor)
  // were folded into "orderly close", so a broken transport looked like a
  // clean end-of-stream. Real errors must surface as exceptions.
  const int fd = ::open("/dev/null", O_RDWR);
  ASSERT_GE(fd, 0);
  net::TcpConnection conn(fd);  // takes ownership of fd
  EXPECT_THROW(conn.recv_message(), std::runtime_error);
}

TEST(Tcp, SendErrorThrowsDescriptively) {
  const int fd = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(fd, 0);
  net::TcpConnection conn(fd);
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.payload = util::Bytes(128, 1);
  try {
    conn.send_message(msg);
    FAIL() << "send_message on a read-only non-socket fd must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("send"), std::string::npos);
  }
}

TEST(Tcp, MalformedHandshakeDoesNotKillServer) {
  // A client that speaks garbage on connect must be dropped without taking
  // the accept loop (and with it every later client) down.
  TcpDaemonServer server;
  {
    auto bad = net::TcpConnection::connect_local(server.port());
    const std::uint8_t junk[8] = {4, 0, 0, 0, 0xEE, 0xFF, 0x01, 0x02};
    ASSERT_EQ(::send(bad->fd(), junk, sizeof junk, 0),
              static_cast<ssize_t>(sizeof junk));
  }  // closes the bad connection
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // The server must still serve a well-behaved pair.
  TcpDisplayLink display(server.port());
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = 11;
  renderer.send(msg);
  const auto got = display.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 11);
  server.shutdown();
}

TEST(Tcp, UnknownProtocolVersionGetsDescriptiveError) {
  // An endpoint from the future must be told why it is refused — a kError
  // frame naming the version range — not just see a dead socket.
  TcpDaemonServer server;
  auto conn = net::TcpConnection::connect_local(server.port());
  net::HelloInfo info;
  info.version = 7;
  info.role = "display";
  conn->send_message(net::make_hello(info));
  const auto reply = conn->recv_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kError);
  const std::string text = net::error_text(*reply);
  EXPECT_NE(text.find("unsupported protocol version 7"), std::string::npos)
      << text;
  server.shutdown();
}

TEST(Tcp, UnknownRoleGetsDescriptiveError) {
  TcpDaemonServer server;
  auto conn = net::TcpConnection::connect_local(server.port());
  net::HelloInfo info;
  info.role = "espresso-machine";
  conn->send_message(net::make_hello(info));
  const auto reply = conn->recv_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kError);
  EXPECT_NE(net::error_text(*reply).find("unknown endpoint role"),
            std::string::npos);
  server.shutdown();
}

TEST(Tcp, HelloFuzzDoesNotKillServer) {
  // Throw random framed bytes and random hello capability payloads at the
  // handshake: every one must be refused or dropped connection-locally,
  // and a well-behaved pair must still be served afterwards.
  TcpDaemonServer server;
  util::Rng rng(20260805);
  for (int i = 0; i < 40; ++i) {
    auto bad = net::TcpConnection::connect_local(server.port());
    const std::size_t len = rng() % 64;
    util::Bytes body(len);
    for (auto& b : body) b = static_cast<std::uint8_t>(rng());
    const std::uint8_t header[4] = {static_cast<std::uint8_t>(len), 0, 0, 0};
    ::send(bad->fd(), header, 4, MSG_NOSIGNAL);
    if (len) ::send(bad->fd(), body.data(), len, MSG_NOSIGNAL);
  }
  for (int i = 0; i < 20; ++i) {
    // Structurally valid kHello frames with garbage capability payloads:
    // exercise HelloInfo::deserialize's truncation/value handling.
    auto bad = net::TcpConnection::connect_local(server.port());
    NetMessage msg;
    msg.type = MsgType::kHello;
    msg.codec = "display";
    util::Bytes garbage(rng() % 24);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    msg.payload = std::move(garbage);
    try {
      bad->send_message(msg);
    } catch (const std::exception&) {
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpDisplayLink display(server.port());
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  NetMessage msg;
  msg.type = MsgType::kFrame;
  msg.frame_index = 23;
  renderer.send(msg);
  const auto got = display.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame_index, 23);
  server.shutdown();
}

TEST(Tcp, SessionOverRealSockets) {
  // The flagship path with use_tcp: every frame and control event crosses
  // localhost TCP. Results must match the in-process transport exactly for
  // a lossless codec.
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 4);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height = 40;
  cfg.codec = "lzo";
  cfg.keep_frames = true;
  const auto local = core::run_session(cfg);
  cfg.use_tcp = true;
  const auto tcp = core::run_session(cfg);
  ASSERT_EQ(local.displayed.size(), tcp.displayed.size());
  for (std::size_t i = 0; i < local.displayed.size(); ++i)
    EXPECT_TRUE(std::isinf(render::psnr(local.displayed[i], tcp.displayed[i])));
  EXPECT_EQ(local.wire_bytes, tcp.wire_bytes);
}

TEST(Tcp, SendMessageIssuesOneSendSyscall) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::TcpConnection sender(fds[0]);
  net::TcpConnection receiver(fds[1]);

  util::Bytes body(32 * 1024);
  for (std::size_t i = 0; i < body.size(); ++i)
    body[i] = static_cast<std::uint8_t>(i * 31);
  NetMessage msg;
  msg.type = MsgType::kSubImage;
  msg.frame_index = 5;
  msg.codec = "raw";
  msg.payload = std::move(body);

  auto& syscalls = obs::counter("net.tcp.send_syscalls");
  const auto before = syscalls.value();
  sender.send_message(msg);
  // Length prefix + header + 32 KiB payload fit the socket buffer, so the
  // whole scatter-gather frame must go down in a single sendmsg().
  EXPECT_EQ(syscalls.value() - before, 1u);

  const auto got = receiver.recv_message();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg.payload);
}

TEST(Tcp, RecvMessageNeverCopiesThePayload) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::TcpConnection sender(fds[0]);
  net::TcpConnection receiver(fds[1]);

  util::Bytes body(64 * 1024);
  for (std::size_t i = 0; i < body.size(); ++i)
    body[i] = static_cast<std::uint8_t>(i);
  NetMessage msg;
  msg.type = MsgType::kSubImage;
  msg.codec = "raw";
  msg.payload = std::move(body);
  sender.send_message(msg);

  auto& copies = obs::counter("util.shared_bytes.copy_bytes");
  const auto before = copies.value();
  const auto got = receiver.recv_message();
  ASSERT_TRUE(got.has_value());
  // The payload is a view into the pooled receive buffer, not a copy.
  EXPECT_EQ(copies.value(), before);
  EXPECT_EQ(got->payload, msg.payload);
}

TEST(Tcp, SessionControlEventsOverSockets) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 8);
  cfg.processors = 2;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 24;
  cfg.codec = "raw";
  cfg.use_tcp = true;
  cfg.on_frame = [](int step, const render::Image&) {
    std::vector<net::ControlEvent> events;
    if (step == 1) {
      net::ControlEvent e;
      e.kind = net::ControlKind::kSetCodec;
      e.name = "jpeg";
      events.push_back(e);
    }
    return events;
  };
  const auto result = core::run_session(cfg);
  EXPECT_EQ(result.frames.size(), 8u);
  EXPECT_GT(result.control_events_applied, 0);
}

// ------------------------------------------------- wire-desync regressions --

TEST(Tcp, PartialLengthPrefixIsAWireErrorNotCleanEof) {
  // Regression: a peer dying inside the 4-byte length prefix used to be
  // folded into "orderly close", so a mid-frame disconnect looked like a
  // clean end-of-stream and the half-received frame vanished silently.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::TcpConnection conn(sv[0]);
  static obs::Counter& partial = obs::counter("net.wire.partial_prefix");
  const auto before = partial.value();
  const std::uint8_t half[2] = {0x10, 0x00};
  ASSERT_EQ(::send(sv[1], half, sizeof half, 0), 2);
  ::close(sv[1]);
  EXPECT_THROW(conn.recv_message(), net::WireError);
  EXPECT_EQ(partial.value(), before + 1);
}

TEST(Tcp, PartialFrameBodyIsAWireError) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::TcpConnection conn(sv[0]);
  static obs::Counter& partial = obs::counter("net.wire.partial_frame");
  const auto before = partial.value();
  // A prefix promising a 100-byte body, 10 bytes of it, then death.
  std::uint8_t wire[14] = {100, 0, 0, 0};
  ASSERT_EQ(::send(sv[1], wire, sizeof wire, 0),
            static_cast<ssize_t>(sizeof wire));
  ::close(sv[1]);
  EXPECT_THROW(conn.recv_message(), net::WireError);
  EXPECT_EQ(partial.value(), before + 1);
}

// ------------------------------------------------------------ seeded chaos --

TEST(TcpChaos, LatencyChaosDeliversEveryFrameIntact) {
  // Latency-only chaos (the CI chaos job re-runs this under several
  // TVVIZ_FAULT_SEED values): every send is delayed and receives may stall,
  // but no byte is ever lost — so the whole daemon pipeline must still
  // deliver every frame bit-identical, just late.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::latency_chaos(seed, /*rate=*/1.0, /*max_ms=*/2.0));

  TcpDaemonServer server;
  TcpDisplayLink display(server.port());
  TcpRendererLink renderer(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  util::Rng payload_rng(seed);
  std::vector<util::Bytes> sent;
  for (int i = 0; i < 5; ++i) {
    NetMessage msg;
    msg.type = MsgType::kFrame;
    msg.frame_index = i;
    msg.codec = "raw";
    util::Bytes body(512);
    for (auto& b : body) b = static_cast<std::uint8_t>(payload_rng());
    sent.push_back(body);
    msg.payload = std::move(body);
    renderer.send(msg);
  }
  for (int i = 0; i < 5; ++i) {
    const auto got = display.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame_index, i);
    EXPECT_EQ(util::Bytes(got->payload.begin(), got->payload.end()), sent[i]);
  }
  // rate=1.0 guarantees the plan actually fired on every send.
  EXPECT_GE(scoped.injector().events().size(), 10u);
  server.shutdown();
}

// ------------------------------------------------------------ event loop ---

/// EventLoop running on its own thread, stopped and joined on scope exit.
struct LoopFixture {
  std::unique_ptr<net::EventLoop> loop = net::EventLoop::make_epoll();
  std::thread thread{[this] { loop->run(); }};
  ~LoopFixture() {
    loop->stop();
    thread.join();
  }
};

/// Spin until `done` or the deadline; returns whether `done` held.
template <typename Pred>
bool eventually(Pred done, double timeout_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(EventLoop, ReadinessIsOneShotUntilRearmed) {
  LoopFixture fx;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> fired{0};
  fx.loop->add(fds[0], net::kEventRead,
               [&](std::uint32_t) { fired.fetch_add(1); });

  char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  EXPECT_TRUE(eventually([&] { return fired.load() == 1; }));

  // One-shot: the byte is still unread, but without a rearm the callback
  // must not fire again (this is what serializes the hub's read chain).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 1);

  fx.loop->rearm(fds[0], net::kEventRead);
  EXPECT_TRUE(eventually([&] { return fired.load() == 2; }));
  fx.loop->remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, RemoveStopsDispatchEvenWithDataPending) {
  LoopFixture fx;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> fired{0};
  fx.loop->add(fds[0], net::kEventRead,
               [&](std::uint32_t) { fired.fetch_add(1); });
  fx.loop->remove(fds[0]);
  char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, PostRunsOnLoopThreadAndTimersFireInOrder) {
  LoopFixture fx;
  std::atomic<bool> posted{false};
  fx.loop->post([&] { posted.store(true); });
  EXPECT_TRUE(eventually([&] { return posted.load(); }));

  // post_after: the 5 ms timer must not run before the posted marker that
  // precedes it, and both must run without any fd activity (wakeup path).
  std::atomic<int> order{0};
  std::atomic<int> timer_saw{-1};
  fx.loop->post([&] { order.store(1); });
  fx.loop->post_after(5.0, [&] { timer_saw.store(order.load()); });
  EXPECT_TRUE(eventually([&] { return timer_saw.load() != -1; }));
  EXPECT_EQ(timer_saw.load(), 1);
}

TEST(EventLoop, AcceptErrorClassifier) {
  // Transient conditions retry; EMFILE-class exhaustion retries *with*
  // backoff; anything else (a closed listener above all) stops the loop.
  for (const int err : {EINTR, ECONNABORTED, EAGAIN, EMFILE, ENFILE})
    EXPECT_TRUE(net::accept_should_retry(err)) << err;
  for (const int err : {EBADF, EINVAL, ENOTSOCK})
    EXPECT_FALSE(net::accept_should_retry(err)) << err;
  for (const int err : {EMFILE, ENFILE, ENOBUFS})
    EXPECT_TRUE(net::accept_error_needs_backoff(err)) << err;
  for (const int err : {EINTR, ECONNABORTED})
    EXPECT_FALSE(net::accept_error_needs_backoff(err)) << err;
}

}  // namespace
}  // namespace tvviz
