// Tests for §4.1 collective parallel compression: ranks share Huffman
// statistics and entropy-code their strips with whole-frame-optimal tables.
#include <gtest/gtest.h>

#include "codec/image_codec.hpp"
#include "compositing/collective_compress.hpp"
#include "core/session.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "vmp/communicator.hpp"

namespace tvviz {
namespace {

using compositing::collective_jpeg_decode;
using compositing::collective_jpeg_encode;
using render::Image;

Image test_frame(int size) {
  const auto desc = field::scaled(field::turbulent_jet_desc(), 3, 4);
  render::RayCaster caster;
  return caster.render_full(field::generate(desc, 2),
                            render::Camera(size, size),
                            render::TransferFunction::fire(), true);
}

/// Split `frame` into `parts` strips and collectively encode over a vmp
/// cluster; returns the root's encoded frame.
util::Bytes encode_with(const Image& frame, int parts, int quality = 75) {
  util::Bytes wire;
  vmp::Cluster::run(parts, [&](vmp::Communicator& comm) {
    const int h = frame.height();
    const int base = h / parts, extra = h % parts;
    int y0 = 0;
    for (int r = 0; r < comm.rank(); ++r) y0 += base + (r < extra ? 1 : 0);
    const int sh = base + (comm.rank() < extra ? 1 : 0);
    Image strip(frame.width(), sh);
    for (int y = 0; y < sh; ++y)
      for (int x = 0; x < frame.width(); ++x) {
        const auto* p = frame.pixel(x, y0 + y);
        strip.set(x, y, p[0], p[1], p[2], p[3]);
      }
    auto encoded = collective_jpeg_encode(comm, strip, y0, frame.width(),
                                          frame.height(), quality);
    if (comm.rank() == 0) wire = std::move(encoded);
  });
  return wire;
}

TEST(CollectiveJpeg, RoundTripQuality) {
  const Image frame = test_frame(96);
  const auto wire = encode_with(frame, 4, 85);
  ASSERT_FALSE(wire.empty());
  const Image out = collective_jpeg_decode(wire);
  EXPECT_EQ(out.width(), 96);
  EXPECT_EQ(out.height(), 96);
  EXPECT_GT(render::psnr(frame, out), 28.0);
}

class CollectiveJpegRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveJpegRanks, AnyGroupSizeDecodes) {
  const int ranks = GetParam();
  const Image frame = test_frame(64);
  const auto wire = encode_with(frame, ranks);
  const Image out = collective_jpeg_decode(wire);
  EXPECT_GT(render::psnr(frame, out), 26.0) << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveJpegRanks,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(CollectiveJpeg, RatioNearWholeFrameBeatsIndependentPieces) {
  // The §4.1 claim: collective compression "would give the best
  // compression results". Shared tables must land near the assembled
  // whole-frame encoder and beat independently-compressed pieces.
  const Image frame = test_frame(128);
  constexpr int kParts = 8;

  const auto collective = encode_with(frame, kParts);

  const auto jpeg = codec::make_image_codec("jpeg", 75);
  const std::size_t whole = jpeg->encode(frame).size();
  std::size_t independent = 0;
  const int strip_h = frame.height() / kParts;
  for (int piece = 0; piece < kParts; ++piece) {
    Image strip(frame.width(), strip_h);
    for (int y = 0; y < strip_h; ++y)
      for (int x = 0; x < frame.width(); ++x) {
        const auto* p = frame.pixel(x, piece * strip_h + y);
        strip.set(x, y, p[0], p[1], p[2], p[3]);
      }
    independent += jpeg->encode(strip).size();
  }
  EXPECT_LT(collective.size(), independent);
  EXPECT_LT(static_cast<double>(collective.size()),
            1.35 * static_cast<double>(whole));
}

TEST(CollectiveJpeg, EmptyStripsHandled) {
  // Rank 1 contributes nothing (e.g. a folded binary-swap rank).
  Image frame(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      frame.set(x, y, static_cast<std::uint8_t>(x * 8), 0,
                static_cast<std::uint8_t>(y * 8));
  util::Bytes wire;
  vmp::Cluster::run(3, [&](vmp::Communicator& comm) {
    Image strip(0, 0);
    int y0 = 0;
    if (comm.rank() == 0) {
      strip = Image(32, 16);
      for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 32; ++x) {
          const auto* p = frame.pixel(x, y);
          strip.set(x, y, p[0], p[1], p[2], p[3]);
        }
    } else if (comm.rank() == 2) {
      y0 = 16;
      strip = Image(32, 16);
      for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 32; ++x) {
          const auto* p = frame.pixel(x, 16 + y);
          strip.set(x, y, p[0], p[1], p[2], p[3]);
        }
    }
    auto encoded = collective_jpeg_encode(comm, strip, y0, 32, 32, 90);
    if (comm.rank() == 0) wire = std::move(encoded);
  });
  const Image out = collective_jpeg_decode(wire);
  EXPECT_GT(render::psnr(frame, out), 25.0);
}

TEST(CollectiveJpeg, AllEmptyFrameDecodesBlack) {
  util::Bytes wire;
  vmp::Cluster::run(2, [&](vmp::Communicator& comm) {
    auto encoded = collective_jpeg_encode(comm, Image(0, 0), 0, 16, 16, 75);
    if (comm.rank() == 0) wire = std::move(encoded);
  });
  const Image out = collective_jpeg_decode(wire);
  EXPECT_EQ(out.width(), 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) EXPECT_EQ(out.pixel(x, y)[3], 0);
}

TEST(CollectiveJpeg, BadMagicThrows) {
  const util::Bytes garbage = {9, 9, 9, 9, 9, 9, 9, 9};
  EXPECT_THROW(collective_jpeg_decode(garbage), std::runtime_error);
}

TEST(CollectiveSession, EndToEndThroughDaemon) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 5, 4);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height = 64;
  cfg.compression = core::SessionConfig::Compression::kCollective;
  cfg.keep_frames = true;
  const auto result = core::run_session(cfg);
  EXPECT_EQ(result.displayed.size(), 4u);
  EXPECT_GT(result.wire_bytes, 0u);
  EXPECT_LT(result.wire_bytes, result.raw_bytes / 5);

  // Must visually match the assembled-compression path.
  core::SessionConfig assembled = cfg;
  assembled.compression = core::SessionConfig::Compression::kAssembled;
  assembled.codec = "jpeg";
  const auto reference = core::run_session(assembled);
  for (std::size_t i = 0; i < result.displayed.size(); ++i)
    EXPECT_GT(render::psnr(reference.displayed[i], result.displayed[i]), 25.0);
}

}  // namespace
}  // namespace tvviz
