// Tests for the differential volume store (§2.1 temporal encoding) and the
// adaptive compression controller (§4.1 "change the compression method").
#include <gtest/gtest.h>

#include <filesystem>

#include "core/adaptive.hpp"
#include "core/session.hpp"
#include "field/delta_store.hpp"
#include "field/generators.hpp"
#include "field/store.hpp"

namespace tvviz {
namespace {

using field::DeltaVolumeStore;
using field::Dims;
using field::VolumeF;

class DeltaStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tvviz_delta_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DeltaStoreTest, SequentialRoundTripIsLossless) {
  DeltaVolumeStore store(dir_, 4);
  const auto desc = field::scaled(field::turbulent_jet_desc(), 6, 10);
  for (int s = 0; s < desc.steps; ++s) store.write(s, field::generate(desc, s));
  // Fresh store object: no write-side cache to lean on.
  DeltaVolumeStore reader(dir_, 4);
  for (int s = 0; s < desc.steps; ++s) {
    const VolumeF expect = field::generate(desc, s);
    const VolumeF got = reader.read(s);
    ASSERT_EQ(got.dims(), expect.dims());
    for (int z = 0; z < got.dims().nz; z += 3)
      for (int y = 0; y < got.dims().ny; y += 3)
        for (int x = 0; x < got.dims().nx; x += 3)
          ASSERT_EQ(got.at(x, y, z), expect.at(x, y, z)) << s;
  }
}

TEST_F(DeltaStoreTest, RandomAccessThroughKeyFrames) {
  DeltaVolumeStore store(dir_, 3);
  const auto desc = field::scaled(field::turbulent_vortex_desc(), 8, 8);
  for (int s = 0; s < desc.steps; ++s) store.write(s, field::generate(desc, s));
  DeltaVolumeStore reader(dir_, 3);
  for (const int s : {7, 0, 5, 2, 7, 3}) {  // arbitrary order
    const VolumeF expect = field::generate(desc, s);
    const VolumeF got = reader.read(s);
    ASSERT_EQ(got.at(4, 4, 4), expect.at(4, 4, 4)) << s;
    ASSERT_EQ(got.at(1, 2, 3), expect.at(1, 2, 3)) << s;
  }
}

TEST_F(DeltaStoreTest, FloatDeltasSaveSpaceOnCoherentData) {
  DeltaVolumeStore store(dir_, 16);
  const auto desc = field::scaled(field::turbulent_jet_desc(), 4, 8);
  const auto [raw, stored] = store.materialize(desc);
  EXPECT_LT(stored, (raw * 7) / 10);  // bit-exact floats: moderate savings
  EXPECT_EQ(store.stored_bytes(desc.steps), stored);
}

TEST_F(DeltaStoreTest, QuantizedDeltasReachTheNinetyPercentRegime) {
  // §2.1 (Shen & Johnson): storage reduced by ~90% — achieved with the
  // visually-lossless 8-bit precision mode.
  DeltaVolumeStore store(dir_, 16, 5,
                         DeltaVolumeStore::Precision::kQuantized8);
  const auto desc = field::scaled(field::turbulent_jet_desc(), 4, 8);
  const auto [raw, stored] = store.materialize(desc);
  EXPECT_LT(stored, raw / 6);
}

TEST_F(DeltaStoreTest, QuantizedRoundTripWithinHalfStep) {
  DeltaVolumeStore store(dir_, 4, 5,
                         DeltaVolumeStore::Precision::kQuantized8);
  const auto desc = field::scaled(field::turbulent_jet_desc(), 8, 6);
  for (int s = 0; s < desc.steps; ++s) store.write(s, field::generate(desc, s));
  DeltaVolumeStore reader(dir_, 4, 5,
                          DeltaVolumeStore::Precision::kQuantized8);
  for (int s = 0; s < desc.steps; ++s) {
    const VolumeF expect = field::generate(desc, s);
    const VolumeF got = reader.read(s);
    for (int z = 0; z < got.dims().nz; z += 2)
      for (int y = 0; y < got.dims().ny; y += 2)
        for (int x = 0; x < got.dims().nx; x += 2)
          ASSERT_NEAR(got.at(x, y, z), expect.at(x, y, z), 0.5 / 255.0);
  }
}

TEST_F(DeltaStoreTest, PrecisionMismatchDetected) {
  DeltaVolumeStore writer(dir_, 4, 5,
                          DeltaVolumeStore::Precision::kQuantized8);
  writer.write(0, VolumeF(Dims{8, 8, 8}, 0.5f));
  DeltaVolumeStore reader(dir_, 4);  // float reader on quantized data
  EXPECT_THROW(reader.read(0), std::runtime_error);
}

TEST_F(DeltaStoreTest, OutOfOrderWriteBecomesKeyFrame) {
  DeltaVolumeStore store(dir_, 100);
  VolumeF a(Dims{8, 8, 8}, 0.25f), b(Dims{8, 8, 8}, 0.75f);
  store.write(0, a);
  store.write(5, b);  // no predecessor -> key
  DeltaVolumeStore reader(dir_, 100);
  EXPECT_EQ(reader.read(0).at(1, 1, 1), 0.25f);
  // Step 5's segment starts at key 0; steps 1..4 are missing, but 5 itself
  // is a key, so the chain stops there... the reader walks from the aligned
  // key; missing intermediate steps must fail loudly.
  EXPECT_THROW(reader.read(5), std::runtime_error);
  // Unless the chain is complete:
  for (int s = 1; s <= 4; ++s) store.write(s, a);
  store.write(5, b);
  DeltaVolumeStore reader2(dir_, 100);
  EXPECT_EQ(reader2.read(5).at(2, 2, 2), 0.75f);
}

TEST_F(DeltaStoreTest, MissingStepThrows) {
  DeltaVolumeStore store(dir_, 4);
  EXPECT_THROW(store.read(0), std::runtime_error);
  EXPECT_THROW(store.read(-1), std::out_of_range);
  EXPECT_FALSE(store.has(3));
}

TEST_F(DeltaStoreTest, InvalidKeyIntervalThrows) {
  EXPECT_THROW(DeltaVolumeStore(dir_, 0), std::invalid_argument);
}

// ------------------------------------------------------------- adaptive ----

TEST(AdaptiveCodec, EscalatesUnderPressure) {
  core::AdaptiveCodecController ctl(0.1, {"raw", "lzo", "jpeg"}, 0);
  EXPECT_EQ(ctl.current(), "raw");
  EXPECT_TRUE(ctl.on_frame(0.5).empty());   // one bad frame: hold
  const auto events = ctl.on_frame(0.5);    // second: escalate
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, net::ControlKind::kSetCodec);
  EXPECT_EQ(events[0].name, "lzo");
  EXPECT_EQ(ctl.current(), "lzo");
  (void)ctl.on_frame(0.5);
  const auto more = ctl.on_frame(0.5);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].name, "jpeg");
  // At the top of the ladder: stays put.
  (void)ctl.on_frame(0.5);
  EXPECT_TRUE(ctl.on_frame(0.5).empty());
  EXPECT_EQ(ctl.switches(), 2);
}

TEST(AdaptiveCodec, RelaxesWithHeadroom) {
  core::AdaptiveCodecController ctl(0.1, {"raw", "jpeg"}, 1);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ctl.on_frame(0.01).empty());
  const auto events = ctl.on_frame(0.01);  // fourth fast frame: relax
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "raw");
}

TEST(AdaptiveCodec, HysteresisPreventsFlapping) {
  core::AdaptiveCodecController ctl(0.1, {"raw", "jpeg"}, 0);
  // Alternating slow/fast frames never build a streak.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(ctl.on_frame(i % 2 ? 0.2 : 0.07).empty()) << i;
  }
  EXPECT_EQ(ctl.switches(), 0);
}

TEST(AdaptiveCodec, RejectsBadConfig) {
  EXPECT_THROW(core::AdaptiveCodecController(0.1, {}, 0),
               std::invalid_argument);
  EXPECT_THROW(core::AdaptiveCodecController(0.1, {"raw"}, 5),
               std::invalid_argument);
  EXPECT_THROW(core::AdaptiveCodecController(-1.0), std::invalid_argument);
}

TEST(AdaptiveCodec, DrivesARealSession) {
  // Wire the controller into the session's on_frame hook with a target no
  // real frame can meet: it must escalate codec at least once, and the
  // renderer must apply the events.
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 10);
  cfg.processors = 2;
  cfg.groups = 1;
  cfg.image_width = cfg.image_height = 48;
  cfg.codec = "raw";
  auto ctl = std::make_shared<core::AdaptiveCodecController>(
      1e-9, std::vector<std::string>{"raw", "lzo", "jpeg+lzo"}, 0);
  cfg.on_frame = [ctl](int, const render::Image&) {
    return ctl->on_frame(1.0);  // report hopelessly over budget
  };
  const auto result = core::run_session(cfg);
  EXPECT_GT(ctl->switches(), 0);
  EXPECT_GT(result.control_events_applied, 0);
  // Escalation to JPEG mid-run must show up as real compression.
  EXPECT_LT(result.wire_bytes, result.raw_bytes);
}

}  // namespace
}  // namespace tvviz
