// Unit tests for src/util: PRNG, statistics, byte/bit serialization, flag
// parsing and 3D math.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/shared_bytes.hpp"
#include "util/stats.hpp"
#include "util/vecmath.hpp"

namespace tvviz {
namespace {

using util::BitReader;
using util::BitWriter;
using util::ByteReader;
using util::Bytes;
using util::BufferPool;
using util::ByteWriter;
using util::Rng;
using util::SharedBytes;

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(13);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= v == -2;
    hi_seen |= v == 2;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(17);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, BasicMoments) {
  util::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50), 25.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(util::percentile({}, 50), 0.0);
}

// -------------------------------------------------------------- bytes ----

TEST(ByteIo, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(3.5f);
  w.f64(-2.25);
  w.str("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, VarintRoundTripBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                                  (1ull << 32), UINT64_MAX};
  for (auto v : values) w.varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
}

TEST(ByteIo, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  (void)r.u8();
  (void)r.u8();
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(ByteIo, RawSpanRoundTrip) {
  ByteWriter w;
  const Bytes payload = {1, 2, 3, 4, 5};
  w.varint(payload.size());
  w.raw(payload);
  ByteReader r(w.bytes());
  const auto n = r.varint();
  const auto s = r.raw(n);
  EXPECT_EQ(Bytes(s.begin(), s.end()), payload);
}

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true,
                          false, true, true, true};
  for (bool b : pattern) w.bit(b);
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  for (bool b : pattern) EXPECT_EQ(r.bit(), b);
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.bits(0x5, 3);
  w.bits(0xABC, 12);
  w.bits(1, 1);
  w.bits(0xFFFF, 16);
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.bits(3), 0x5u);
  EXPECT_EQ(r.bits(12), 0xABCu);
  EXPECT_EQ(r.bits(1), 1u);
  EXPECT_EQ(r.bits(16), 0xFFFFu);
}

TEST(BitIo, RandomRoundTrip) {
  Rng rng(33);
  std::vector<std::pair<std::uint32_t, int>> fields;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int count = 1 + static_cast<int>(rng.below(24));
    const auto value = static_cast<std::uint32_t>(rng()) &
                       ((count == 32) ? 0xFFFFFFFFu : ((1u << count) - 1));
    fields.emplace_back(value, count);
    w.bits(value, count);
  }
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [value, count] : fields) EXPECT_EQ(r.bits(count), value);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.bit(true);
  const Bytes bytes = w.finish();  // padded to one byte
  BitReader r(bytes);
  (void)r.bits(8);
  EXPECT_THROW(r.bit(), std::out_of_range);
}

// -------------------------------------------------------------- flags ----

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3",  "--beta", "7", "--gamma",
                        "pos1", "--flag"};
  util::Flags flags(7, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_int("beta", 0), 7);
  // --gamma consumes "pos1"? No: "pos1" does not start with --, so it is
  // taken as gamma's value.
  EXPECT_EQ(flags.get("gamma", ""), "pos1");
  EXPECT_TRUE(flags.get_bool("flag", false));
}

TEST(Flags, FallbacksAndTypes) {
  const char* argv[] = {"prog", "--x=2.5", "--b=true"};
  util::Flags flags(3, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_EQ(flags.get("missing2", "dflt"), "dflt");
}

TEST(Flags, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  util::Flags flags(3, argv);
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ------------------------------------------------------------ vecmath ----

TEST(VecMath, DotAndCross) {
  const util::Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  const auto c = x.cross(y);
  EXPECT_DOUBLE_EQ(c.x, z.x);
  EXPECT_DOUBLE_EQ(c.y, z.y);
  EXPECT_DOUBLE_EQ(c.z, z.z);
}

TEST(VecMath, NormalizedLength) {
  const util::Vec3 v{3, 4, 12};
  EXPECT_DOUBLE_EQ(v.length(), 13.0);
  EXPECT_NEAR(v.normalized().length(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(util::Vec3{}.normalized().length(), 0.0);
}

TEST(VecMath, MatrixTranslateAndScalePoints) {
  const auto m = util::Mat4::translate({1, 2, 3}) *
                 util::Mat4::scale({2, 2, 2});
  const auto p = m.point({1, 1, 1});
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
  EXPECT_DOUBLE_EQ(p.z, 5.0);
  // Directions ignore translation.
  const auto d = m.dir({1, 0, 0});
  EXPECT_DOUBLE_EQ(d.x, 2.0);
  EXPECT_DOUBLE_EQ(d.y, 0.0);
}

TEST(VecMath, RotationPreservesLength) {
  const auto m = util::Mat4::rotate_y(0.7) * util::Mat4::rotate_x(-0.3);
  const util::Vec3 v{1, 2, 3};
  EXPECT_NEAR(m.dir(v).length(), v.length(), 1e-12);
}

TEST(VecMath, RayAt) {
  const util::Ray r{{1, 0, 0}, {0, 2, 0}};
  const auto p = r.at(1.5);
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 3.0);
}

TEST(VecMath, Clamp01) {
  EXPECT_DOUBLE_EQ(util::clamp01(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(util::clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(util::clamp01(2.0), 1.0);
}


// -------------------------------------------------------- shared bytes ----

TEST(SharedBytes, AdoptingAVectorDoesNotCopyTheBytes) {
  Bytes src{1, 2, 3, 4};
  const std::uint8_t* raw = src.data();
  const auto copies_before = obs::counter("util.shared_bytes.copies").value();
  const SharedBytes shared(std::move(src));
  EXPECT_EQ(shared.data(), raw);  // same allocation, just new ownership
  EXPECT_EQ(shared.size(), 4u);
  EXPECT_EQ(obs::counter("util.shared_bytes.copies").value(), copies_before);
}

TEST(SharedBytes, HandleCopiesAliasOneAllocation) {
  const SharedBytes a(Bytes{10, 20, 30});
  const SharedBytes b = a;  // NOLINT(performance-unnecessary-copy-...)
  EXPECT_EQ(a.data(), b.data());
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.use_count(), 2);
}

TEST(SharedBytes, ViewAliasesAndKeepsStorageAlive) {
  SharedBytes whole(Bytes{0, 1, 2, 3, 4, 5, 6, 7});
  SharedBytes tail = whole.view(5, 3);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], 5);
  EXPECT_EQ(tail.data(), whole.data() + 5);
  EXPECT_TRUE(tail.shares_storage_with(whole));
  whole = {};  // dropping the original handle must not free the buffer
  EXPECT_EQ(tail[2], 7);
  EXPECT_EQ(tail.use_count(), 1);
}

TEST(SharedBytes, ViewPastEndThrows) {
  const SharedBytes b(Bytes{1, 2, 3});
  EXPECT_THROW((void)b.view(1, 3), std::out_of_range);
  EXPECT_THROW((void)b.view(4, 0), std::out_of_range);
  EXPECT_NO_THROW((void)b.view(3, 0));
  EXPECT_NO_THROW((void)b.view(0, 3));
}

TEST(SharedBytes, BorrowedCopiesAreCounted) {
  const Bytes src{1, 2, 3, 4, 5};
  const auto copies_before = obs::counter("util.shared_bytes.copies").value();
  const auto bytes_before = obs::counter("util.shared_bytes.copy_bytes").value();
  const SharedBytes copied(src);  // lvalue: must deep-copy, and count it
  EXPECT_NE(copied.data(), src.data());
  EXPECT_EQ(copied, src);
  EXPECT_EQ(obs::counter("util.shared_bytes.copies").value(), copies_before + 1);
  EXPECT_EQ(obs::counter("util.shared_bytes.copy_bytes").value(),
            bytes_before + 5);
}

TEST(SharedBytes, EmptyHandlesHoldNoStorage) {
  const SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(SharedBytes(Bytes{}).use_count(), 0);
  EXPECT_EQ(empty, SharedBytes{});
}

// --------------------------------------------------------- buffer pool ----

TEST(BufferPool, RoundTripReusesTheAllocation) {
  BufferPool pool;
  Bytes first = pool.acquire(1000);
  const std::uint8_t* raw = first.data();
  EXPECT_EQ(first.size(), 1000u);
  { const SharedBytes held = SharedBytes::adopt_pooled(std::move(first), pool); }
  EXPECT_EQ(pool.pooled_buffers(), 1u);
  Bytes again = pool.acquire(900);  // same power-of-two bucket
  EXPECT_EQ(again.data(), raw);
  EXPECT_EQ(again.size(), 900u);
  EXPECT_EQ(pool.pooled_buffers(), 0u);
  pool.release(std::move(again));
}

TEST(BufferPool, HitAndMissCountersTrackReuse) {
  BufferPool pool;
  const auto hits0 = obs::counter("util.pool.hits").value();
  const auto misses0 = obs::counter("util.pool.misses").value();
  pool.release(pool.acquire(4096));  // miss, then banked
  Bytes b = pool.acquire(4096);      // hit
  EXPECT_EQ(obs::counter("util.pool.hits").value(), hits0 + 1);
  EXPECT_EQ(obs::counter("util.pool.misses").value(), misses0 + 1);
  pool.release(std::move(b));
}

TEST(BufferPool, OversizeRequestsBypassTheFreeList) {
  BufferPool::Config cfg;
  cfg.max_buffer_bytes = 1024;
  BufferPool pool(cfg);
  Bytes big = pool.acquire(4096);
  EXPECT_EQ(big.size(), 4096u);
  pool.release(std::move(big));
  EXPECT_EQ(pool.pooled_buffers(), 0u);  // never banked
  EXPECT_EQ(pool.pooled_bytes(), 0u);
}

TEST(BufferPool, FullBucketsFreeInsteadOfGrowing) {
  BufferPool::Config cfg;
  cfg.max_buffers_per_bucket = 2;
  BufferPool pool(cfg);
  std::vector<Bytes> out;
  for (int i = 0; i < 4; ++i) out.push_back(pool.acquire(512));
  for (auto& b : out) pool.release(std::move(b));
  EXPECT_EQ(pool.pooled_buffers(), 2u);
}

TEST(BufferPool, PooledSharedBytesReturnOnLastReferenceOnly) {
  BufferPool pool;
  SharedBytes a = SharedBytes::adopt_pooled(pool.acquire(256), pool);
  SharedBytes view = a.view(10, 100);
  a = {};
  EXPECT_EQ(pool.pooled_buffers(), 0u);  // the view still pins the buffer
  EXPECT_EQ(view.size(), 100u);
  view = {};
  EXPECT_EQ(pool.pooled_buffers(), 1u);  // last reference filed it back
}

TEST(BufferPool, ConcurrentCheckoutKeepsBuffersDistinct) {
  // Hammer one pool from several threads; every thread writes a tag through
  // its whole buffer and verifies it after a rescheduling point. Overlapping
  // handouts or double-banked buffers would corrupt the tags. Run under
  // TSan via tools/verify_tsan.sh.
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const auto tag = static_cast<std::uint8_t>(tid + 1);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t n = 64 + static_cast<std::size_t>(tid) * 700 +
                              static_cast<std::size_t>(round % 3) * 150;
        Bytes buf = pool.acquire(n);
        std::fill(buf.begin(), buf.end(), tag);
        std::this_thread::yield();
        SharedBytes held = SharedBytes::adopt_pooled(std::move(buf), pool);
        for (std::size_t i = 0; i < held.size(); ++i)
          if (held[i] != tag) {
            corrupt.fetch_add(1);
            break;
          }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(corrupt.load(), 0);
}

TEST(ByteWriter, BackingBufferConstructorReusesCapacity) {
  Bytes backing;
  backing.reserve(1 << 12);
  const std::uint8_t* raw = backing.data();
  ByteWriter w(std::move(backing));
  for (int i = 0; i < 1 << 10; ++i) w.u32(static_cast<std::uint32_t>(i));
  const Bytes out = w.take();
  EXPECT_EQ(out.data(), raw);  // never outgrew the reserved capacity
  EXPECT_EQ(out.size(), std::size_t{4} << 10);
}

TEST(VarintSize, MatchesEncodedLengthAtBoundaries) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 42, ~std::uint64_t{0}}) {
    ByteWriter w;
    w.varint(v);
    EXPECT_EQ(util::varint_size(v), w.size()) << v;
  }
}

}  // namespace
}  // namespace tvviz
