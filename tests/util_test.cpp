// Unit tests for src/util: PRNG, statistics, byte/bit serialization, flag
// parsing and 3D math.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/vecmath.hpp"

namespace tvviz {
namespace {

using util::BitReader;
using util::BitWriter;
using util::ByteReader;
using util::Bytes;
using util::ByteWriter;
using util::Rng;

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(13);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= v == -2;
    hi_seen |= v == 2;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(17);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, BasicMoments) {
  util::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50), 25.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(util::percentile({}, 50), 0.0);
}

// -------------------------------------------------------------- bytes ----

TEST(ByteIo, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(3.5f);
  w.f64(-2.25);
  w.str("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, VarintRoundTripBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                                  (1ull << 32), UINT64_MAX};
  for (auto v : values) w.varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
}

TEST(ByteIo, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  (void)r.u8();
  (void)r.u8();
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(ByteIo, RawSpanRoundTrip) {
  ByteWriter w;
  const Bytes payload = {1, 2, 3, 4, 5};
  w.varint(payload.size());
  w.raw(payload);
  ByteReader r(w.bytes());
  const auto n = r.varint();
  const auto s = r.raw(n);
  EXPECT_EQ(Bytes(s.begin(), s.end()), payload);
}

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true,
                          false, true, true, true};
  for (bool b : pattern) w.bit(b);
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  for (bool b : pattern) EXPECT_EQ(r.bit(), b);
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.bits(0x5, 3);
  w.bits(0xABC, 12);
  w.bits(1, 1);
  w.bits(0xFFFF, 16);
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.bits(3), 0x5u);
  EXPECT_EQ(r.bits(12), 0xABCu);
  EXPECT_EQ(r.bits(1), 1u);
  EXPECT_EQ(r.bits(16), 0xFFFFu);
}

TEST(BitIo, RandomRoundTrip) {
  Rng rng(33);
  std::vector<std::pair<std::uint32_t, int>> fields;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int count = 1 + static_cast<int>(rng.below(24));
    const auto value = static_cast<std::uint32_t>(rng()) &
                       ((count == 32) ? 0xFFFFFFFFu : ((1u << count) - 1));
    fields.emplace_back(value, count);
    w.bits(value, count);
  }
  const Bytes bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [value, count] : fields) EXPECT_EQ(r.bits(count), value);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.bit(true);
  const Bytes bytes = w.finish();  // padded to one byte
  BitReader r(bytes);
  (void)r.bits(8);
  EXPECT_THROW(r.bit(), std::out_of_range);
}

// -------------------------------------------------------------- flags ----

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3",  "--beta", "7", "--gamma",
                        "pos1", "--flag"};
  util::Flags flags(7, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_int("beta", 0), 7);
  // --gamma consumes "pos1"? No: "pos1" does not start with --, so it is
  // taken as gamma's value.
  EXPECT_EQ(flags.get("gamma", ""), "pos1");
  EXPECT_TRUE(flags.get_bool("flag", false));
}

TEST(Flags, FallbacksAndTypes) {
  const char* argv[] = {"prog", "--x=2.5", "--b=true"};
  util::Flags flags(3, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_EQ(flags.get("missing2", "dflt"), "dflt");
}

TEST(Flags, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  util::Flags flags(3, argv);
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ------------------------------------------------------------ vecmath ----

TEST(VecMath, DotAndCross) {
  const util::Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  const auto c = x.cross(y);
  EXPECT_DOUBLE_EQ(c.x, z.x);
  EXPECT_DOUBLE_EQ(c.y, z.y);
  EXPECT_DOUBLE_EQ(c.z, z.z);
}

TEST(VecMath, NormalizedLength) {
  const util::Vec3 v{3, 4, 12};
  EXPECT_DOUBLE_EQ(v.length(), 13.0);
  EXPECT_NEAR(v.normalized().length(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(util::Vec3{}.normalized().length(), 0.0);
}

TEST(VecMath, MatrixTranslateAndScalePoints) {
  const auto m = util::Mat4::translate({1, 2, 3}) *
                 util::Mat4::scale({2, 2, 2});
  const auto p = m.point({1, 1, 1});
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
  EXPECT_DOUBLE_EQ(p.z, 5.0);
  // Directions ignore translation.
  const auto d = m.dir({1, 0, 0});
  EXPECT_DOUBLE_EQ(d.x, 2.0);
  EXPECT_DOUBLE_EQ(d.y, 0.0);
}

TEST(VecMath, RotationPreservesLength) {
  const auto m = util::Mat4::rotate_y(0.7) * util::Mat4::rotate_x(-0.3);
  const util::Vec3 v{1, 2, 3};
  EXPECT_NEAR(m.dir(v).length(), v.length(), 1e-12);
}

TEST(VecMath, RayAt) {
  const util::Ray r{{1, 0, 0}, {0, 2, 0}};
  const auto p = r.at(1.5);
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 3.0);
}

TEST(VecMath, Clamp01) {
  EXPECT_DOUBLE_EQ(util::clamp01(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(util::clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(util::clamp01(2.0), 1.0);
}

}  // namespace
}  // namespace tvviz
