// Tests for the observability layer: counter/gauge registry semantics and
// concurrency, span recording across threads, and the Chrome trace_event
// exporter fed by a real pipeline-simulator run.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipesim.hpp"
#include "field/generators.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace tvviz {
namespace {

// ------------------------------------------------------------- counters ----

TEST(Counters, RegistryReturnsSameInstanceForSameName) {
  obs::Counter& a = obs::counter("obs_test.same_instance");
  obs::Counter& b = obs::counter("obs_test.same_instance");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = obs::gauge("obs_test.same_gauge");
  obs::Gauge& g2 = obs::gauge("obs_test.same_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Counters, ConcurrentIncrementsAreExact) {
  obs::Counter& c = obs::counter("obs_test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Counters, GaugeTracksLevelAndHighWater) {
  obs::Gauge& g = obs::gauge("obs_test.gauge");
  g.reset();
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 12);
  g.update_max(7);  // below the mark: no change
  EXPECT_EQ(g.high_water(), 12);
  g.update_max(20);
  EXPECT_EQ(g.high_water(), 20);
  EXPECT_EQ(g.value(), 3);
}

TEST(Counters, ConcurrentGaugeHighWaterIsMaximum) {
  obs::Gauge& g = obs::gauge("obs_test.gauge_race");
  g.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 20000; ++i)
        g.update_max(t * 20000 + i);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.high_water(), 7 * 20000 + 19999);
}

TEST(Counters, SnapshotIsSortedAndJsonWellFormed) {
  obs::counter("obs_test.snap_a").add(2);
  obs::gauge("obs_test.snap_b").set(4);
  const auto samples = obs::counters_snapshot();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  std::ostringstream out;
  obs::write_counters_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.snap_a\": 2"), std::string::npos);
}

// ---------------------------------------------------------------- spans ----

/// Events recorded on the lane with `name`, if any.
std::vector<obs::TraceEvent> events_of(const std::string& name) {
  for (const auto& lane : obs::snapshot_trace())
    if (lane.name == name) return lane.events;
  return {};
}

TEST(Trace, DisabledTracingRecordsNothing) {
  obs::enable_tracing(false);
  obs::clear_trace();
  obs::set_thread_lane("obs_test disabled");
  { TVVIZ_SPAN("should-not-appear", 1, 2); }
  EXPECT_TRUE(events_of("obs_test disabled").empty());
}

TEST(Trace, NestedSpansAcrossThreadsLandInTheirLanes) {
  obs::enable_tracing(true);
  obs::clear_trace();
  std::thread a([] {
    obs::set_thread_lane("obs_test lane a");
    TVVIZ_SPAN("outer", 0, 0);
    { TVVIZ_SPAN("inner", 0, 0); }
  });
  std::thread b([] {
    obs::set_thread_lane("obs_test lane b");
    TVVIZ_SPAN("other", 1, 0);
  });
  a.join();
  b.join();
  obs::enable_tracing(false);

  const auto lane_a = events_of("obs_test lane a");
  const auto lane_b = events_of("obs_test lane b");
  ASSERT_EQ(lane_a.size(), 2u);
  ASSERT_EQ(lane_b.size(), 1u);
  // RAII order: the inner span ends (and is recorded) first, and nests
  // inside the outer one's interval.
  EXPECT_STREQ(lane_a[0].name, "inner");
  EXPECT_STREQ(lane_a[1].name, "outer");
  EXPECT_LE(lane_a[1].start_s, lane_a[0].start_s);
  EXPECT_GE(lane_a[1].end_s, lane_a[0].end_s);
  EXPECT_STREQ(lane_b[0].name, "other");
}

TEST(Trace, ExplicitTimesRecordedVerbatim) {
  obs::enable_tracing(true);
  obs::clear_trace();
  const int lane = obs::lane_id("obs_test explicit");
  obs::record_span(lane, "virtual", 1.5, 2.25, 7, 3);
  obs::enable_tracing(false);
  const auto events = events_of("obs_test explicit");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].start_s, 1.5);
  EXPECT_DOUBLE_EQ(events[0].end_s, 2.25);
  EXPECT_EQ(events[0].step, 7);
  EXPECT_EQ(events[0].group, 3);
}

// ------------------------------------------------------ trace_event JSON ----

/// Minimal JSON validity checker (objects, arrays, strings, numbers,
/// true/false/null) — enough to prove the exporter emits well-formed JSON
/// without depending on an external parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, PipesimRunExportsAllSixStagesAsValidChromeTrace) {
  // Golden check for the exporter: a small simulator run must produce
  // well-formed trace_event JSON containing a span for every pipeline
  // stage and a lane (thread_name metadata) per group plus WAN and client.
  obs::enable_tracing(true);
  obs::clear_trace();
  core::PipelineConfig cfg;
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 8, 4);
  cfg.steps_limit = 4;
  cfg.image_width = cfg.image_height = 64;
  cfg.costs = core::StageCosts::rwcp_paper();
  cfg.codec = core::CodecProfile::paper("jpeg+lzo");
  const auto result = core::simulate_pipeline(cfg);
  obs::enable_tracing(false);
  ASSERT_EQ(result.frames.size(), 4u);

  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* stage :
       {"input", "render", "composite", "compress", "send", "display"})
    EXPECT_NE(json.find("\"name\":\"" + std::string(stage) + "\""),
              std::string::npos)
        << "missing stage span: " << stage;
  for (const char* lane :
       {"sim group 0", "sim group 1", "sim wan", "sim client"})
    EXPECT_NE(json.find(lane), std::string::npos)
        << "missing lane: " << lane;
  // Lane names ride on thread_name metadata records.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, RingBufferOverflowCountsDrops) {
  obs::enable_tracing(true);
  obs::clear_trace();
  const int lane = obs::lane_id("obs_test overflow");
  // Capacity is 1<<16 events per lane; write past it.
  for (int i = 0; i < (1 << 16) + 500; ++i)
    obs::record_span(lane, "x", i * 1e-6, i * 1e-6 + 1e-7);
  obs::enable_tracing(false);
  for (const auto& snap : obs::snapshot_trace()) {
    if (snap.name != "obs_test overflow") continue;
    EXPECT_EQ(snap.events.size(), static_cast<std::size_t>(1) << 16);
    EXPECT_EQ(snap.dropped, 500u);
    return;
  }
  FAIL() << "overflow lane not found";
}

}  // namespace
}  // namespace tvviz
