// Tests for the compression substrate: byte codecs (RLE / LZ / BWT),
// Huffman coding, the JPEG-style image codec, codec chaining, frame
// differencing, the shared TilePool, and the SIMD kernel dispatch (parity
// suites assert that every ISA tier and strip count produces bit-identical
// results). Property-style roundtrips run as parameterized suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <span>
#include <thread>

#include "codec/bwt.hpp"
#include "codec/byte_codec.hpp"
#include "codec/depth_plane.hpp"
#include "codec/framediff.hpp"
#include "codec/huffman.hpp"
#include "codec/image_codec.hpp"
#include "codec/jpeg.hpp"
#include "codec/lz.hpp"
#include "codec/tile_pool.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace tvviz {
namespace {

// Force a real worker pool even on single-core CI runners, so the tiled
// paths genuinely run multi-threaded under these tests. Must happen before
// the first TilePool::global() touch; a namespace-scope initializer runs
// long before any test body.
const int kForcedWorkers = [] {
  ::setenv("TVVIZ_CODEC_WORKERS", "4", /*overwrite=*/0);
  return 4;
}();

using codec::BwtCodec;
using codec::ByteCodec;
using codec::HuffmanCode;
using codec::JpegCodec;
using codec::LzCodec;
using codec::RawCodec;
using codec::RleCodec;
using render::Image;
using util::Bytes;

Bytes pattern_bytes(std::size_t n, int kind) {
  Bytes out(n);
  util::Rng rng(kind * 977 + 13);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0: out[i] = 0; break;                                    // zeros
      case 1: out[i] = static_cast<std::uint8_t>(i & 0xff); break;  // ramp
      case 2: out[i] = static_cast<std::uint8_t>(rng()); break;     // noise
      case 3:  // text-like repetition
        out[i] = static_cast<std::uint8_t>("the quick brown fox "[i % 20]);
        break;
      case 4:  // long runs with occasional breaks
        out[i] = static_cast<std::uint8_t>((i / 300) & 0xff);
        break;
      default:  // sparse image-like: mostly zero with bursts
        out[i] = (i % 97 < 5) ? static_cast<std::uint8_t>(rng()) : 0;
        break;
    }
  }
  return out;
}

// ------------------------------------------------- byte codec roundtrips ----

struct ByteCodecCase {
  std::string name;
  std::shared_ptr<const ByteCodec> codec;
};

class ByteCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 public:
  static std::shared_ptr<const ByteCodec> make(int which) {
    switch (which) {
      case 0: return std::make_shared<RawCodec>();
      case 1: return std::make_shared<RleCodec>();
      case 2: return std::make_shared<LzCodec>(1);
      case 3: return std::make_shared<LzCodec>(5);
      case 4: return std::make_shared<LzCodec>(9);
      case 5: return std::make_shared<BwtCodec>(1024);
      default: return std::make_shared<BwtCodec>(64 * 1024);
    }
  }
};

TEST_P(ByteCodecRoundTrip, DecodeInvertsEncode) {
  const auto [which, kind, size] = GetParam();
  const auto codec = make(which);
  const Bytes input = pattern_bytes(static_cast<std::size_t>(size), kind);
  const Bytes packed = codec->encode(input);
  const Bytes out = codec->decode(packed);
  EXPECT_EQ(out, input) << codec->name() << " kind=" << kind
                        << " size=" << size;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsPatternsSizes, ByteCodecRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2, 100, 4093, 70000)));

TEST(ByteCodecs, CompressibleDataShrinks) {
  const Bytes zeros = pattern_bytes(50000, 0);
  EXPECT_LT(RleCodec().encode(zeros).size(), zeros.size() / 50);
  EXPECT_LT(LzCodec().encode(zeros).size(), zeros.size() / 50);
  EXPECT_LT(BwtCodec().encode(zeros).size(), zeros.size() / 50);
}

TEST(ByteCodecs, BwtBeatsLzOnStatisticallyRedundantData) {
  // The paper's placement: BZIP compresses better than LZO (Table 1);
  // block-sorting + entropy coding exploits statistical redundancy that
  // LZ77 match-finding cannot (few literal repeats, low byte entropy).
  util::Rng rng(99);
  Bytes data(60000);
  for (auto& b : data) b = static_cast<std::uint8_t>((rng() & 0x07) * 13);
  EXPECT_LT(BwtCodec().encode(data).size(), LzCodec().encode(data).size());
}

TEST(ByteCodecs, HigherLzLevelCompressesBetter) {
  const Bytes data = pattern_bytes(60000, 5);
  const auto fast = LzCodec(1).encode(data);
  const auto tight = LzCodec(9).encode(data);
  EXPECT_LE(tight.size(), fast.size());
}

TEST(ByteCodecs, CorruptStreamsThrow) {
  const Bytes data = pattern_bytes(1000, 3);
  auto packed = LzCodec().encode(data);
  packed.resize(packed.size() / 2);  // truncate
  EXPECT_THROW(LzCodec().decode(packed), std::exception);

  auto bwt_packed = BwtCodec().encode(data);
  bwt_packed.resize(bwt_packed.size() / 2);
  EXPECT_THROW(BwtCodec().decode(bwt_packed), std::exception);

  const Bytes reserved = {128};
  EXPECT_THROW(RleCodec().decode(reserved), std::runtime_error);
}

TEST(ByteCodecs, LzRejectsBadLevel) {
  EXPECT_THROW(LzCodec(0), std::invalid_argument);
  EXPECT_THROW(LzCodec(10), std::invalid_argument);
}

// --------------------------------------------------------------- bwt ----

TEST(Bwt, KnownExample) {
  // Classic "banana" rotation-sort example.
  const Bytes input = {'b', 'a', 'n', 'a', 'n', 'a'};
  std::uint32_t primary = 0;
  const Bytes last = codec::bwt_forward(input, primary);
  EXPECT_EQ(last, (Bytes{'n', 'n', 'b', 'a', 'a', 'a'}));
  EXPECT_EQ(codec::bwt_inverse(last, primary), input);
}

TEST(Bwt, EmptyAndSingle) {
  std::uint32_t primary = 9;
  EXPECT_TRUE(codec::bwt_forward({}, primary).empty());
  const Bytes one = {'x'};
  const Bytes last = codec::bwt_forward(one, primary);
  EXPECT_EQ(codec::bwt_inverse(last, primary), one);
}

TEST(Bwt, InverseRejectsBadPrimary) {
  const Bytes last = {'a', 'b'};
  EXPECT_THROW(codec::bwt_inverse(last, 5), std::runtime_error);
}

TEST(Mtf, RoundTripAndFrontLoading) {
  const Bytes input = {'a', 'a', 'a', 'b', 'b', 'a'};
  const auto mtf = codec::mtf_forward(input);
  // Repeated symbols become zeros.
  EXPECT_EQ(mtf[1], 0);
  EXPECT_EQ(mtf[2], 0);
  EXPECT_EQ(mtf[4], 0);
  EXPECT_EQ(codec::mtf_inverse(mtf), std::vector<std::uint8_t>(input.begin(), input.end()));
}

// ------------------------------------------------------------- huffman ----

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freqs = {1000, 200, 50, 10, 1, 0, 3};
  const auto code = HuffmanCode::from_frequencies(freqs);
  util::BitWriter w;
  const int symbols[] = {0, 1, 0, 2, 6, 0, 4, 3, 0, 1};
  for (int s : symbols) code.encode(w, s);
  const auto bytes = w.finish();
  util::BitReader r(bytes);
  for (int s : symbols) EXPECT_EQ(code.decode(r), s);
}

TEST(Huffman, ShorterCodesForFrequentSymbols) {
  std::vector<std::uint64_t> freqs = {1000000, 1, 1, 1};
  const auto code = HuffmanCode::from_frequencies(freqs);
  EXPECT_LT(code.lengths()[0], code.lengths()[3]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs = {0, 42, 0};
  const auto code = HuffmanCode::from_frequencies(freqs);
  util::BitWriter w;
  code.encode(w, 1);
  const auto bytes = w.finish();
  util::BitReader r(bytes);
  EXPECT_EQ(code.decode(r), 1);
}

TEST(Huffman, LengthsSerializeRoundTrip) {
  std::vector<std::uint64_t> freqs(300, 0);
  freqs[5] = 100;
  freqs[100] = 50;
  freqs[299] = 1;
  const auto code = HuffmanCode::from_frequencies(freqs);
  util::ByteWriter w;
  code.write_lengths(w);
  util::ByteReader r(w.bytes());
  const auto restored = HuffmanCode::read_lengths(r);
  EXPECT_EQ(restored.lengths(), code.lengths());
}

TEST(Huffman, DepthLimitedUnderManySymbols) {
  // Fibonacci-like frequencies force deep trees; lengths must stay capped.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const auto next = a + b;
    a = b;
    b = next;
  }
  const auto code = HuffmanCode::from_frequencies(freqs);
  for (auto len : code.lengths()) EXPECT_LE(len, HuffmanCode::kMaxBits);
  // Still decodable.
  util::BitWriter w;
  for (int s = 0; s < 40; ++s) code.encode(w, s);
  const auto bytes = w.finish();
  util::BitReader r(bytes);
  for (int s = 0; s < 40; ++s) EXPECT_EQ(code.decode(r), s);
}

TEST(Huffman, AllZeroFrequenciesThrow) {
  std::vector<std::uint64_t> freqs(8, 0);
  EXPECT_THROW(HuffmanCode::from_frequencies(freqs), std::invalid_argument);
}

TEST(Huffman, ExpectedBitsMatchesEntropyOrder) {
  std::vector<std::uint64_t> uniform(16, 100);
  const auto code = HuffmanCode::from_frequencies(uniform);
  EXPECT_NEAR(code.expected_bits(uniform), 4.0, 1e-9);
}

// ---------------------------------------------------------------- jpeg ----

Image test_frame(int size, const char* kind = "jet") {
  auto desc = std::string(kind) == "jet"
                  ? field::scaled(field::turbulent_jet_desc(), 4, 2)
                  : field::scaled(field::turbulent_vortex_desc(), 4, 2);
  const auto vol = field::generate(desc, 1);
  render::RayCaster caster;
  const auto tf = std::string(kind) == "jet"
                      ? render::TransferFunction::fire()
                      : render::TransferFunction::dense_cool_warm();
  return caster.render_full(vol, render::Camera(size, size), tf);
}

TEST(Jpeg, RoundTripQuality) {
  const Image frame = test_frame(128);
  const JpegCodec codec(85);
  const auto packed = codec.encode(frame);
  const Image out = codec.decode(packed);
  EXPECT_EQ(out.width(), 128);
  EXPECT_EQ(out.height(), 128);
  EXPECT_GT(render::psnr(frame, out), 30.0);
  // And it actually compresses hard (paper: 96%+ reduction).
  EXPECT_LT(packed.size(), static_cast<std::size_t>(128 * 128 * 3) / 10);
}

TEST(Jpeg, QualityKnobTradesSizeForFidelity) {
  const Image frame = test_frame(96);
  const auto lo = JpegCodec(20).encode(frame);
  const auto hi = JpegCodec(90).encode(frame);
  EXPECT_LT(lo.size(), hi.size());
  const double psnr_lo = render::psnr(frame, JpegCodec(20).decode(lo));
  const double psnr_hi = render::psnr(frame, JpegCodec(90).decode(hi));
  EXPECT_LT(psnr_lo, psnr_hi);
}

TEST(Jpeg, OddSizesAndTinyImages) {
  for (const auto& [w, h] : {std::pair{1, 1}, {7, 5}, {17, 9}, {8, 8}}) {
    Image img(w, h);
    util::Rng rng(w * 100 + h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        img.set(x, y, static_cast<std::uint8_t>(rng()),
                static_cast<std::uint8_t>(rng()),
                static_cast<std::uint8_t>(rng()));
    const JpegCodec codec(75);
    const Image out = codec.decode(codec.encode(img));
    EXPECT_EQ(out.width(), w);
    EXPECT_EQ(out.height(), h);
  }
}

TEST(Jpeg, FlatImageNearlyExact) {
  Image img(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) img.set(x, y, 120, 60, 200);
  const JpegCodec codec(90);
  const Image out = codec.decode(codec.encode(img));
  EXPECT_GT(render::psnr(img, out), 38.0);
}

TEST(Jpeg, SubsamplingShrinksOutput) {
  const Image frame = test_frame(96, "vortex");
  const auto sub = JpegCodec(80, true).encode(frame);
  const auto full = JpegCodec(80, false).encode(frame);
  EXPECT_LT(sub.size(), full.size());
}

TEST(Jpeg, RejectsBadQualityAndMagic) {
  EXPECT_THROW(JpegCodec(0), std::invalid_argument);
  EXPECT_THROW(JpegCodec(101), std::invalid_argument);
  const Bytes garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  EXPECT_THROW(JpegCodec(75).decode(garbage), std::exception);
}

// --------------------------------------------------------- image codecs ----

class ImageCodecCase : public ::testing::TestWithParam<const char*> {};

TEST_P(ImageCodecCase, RoundTripShapeAndQuality) {
  const auto codec = codec::make_image_codec(GetParam(), 85);
  const Image frame = test_frame(96);
  const auto packed = codec->encode(frame);
  const Image out = codec->decode(packed);
  EXPECT_EQ(out.width(), frame.width());
  EXPECT_EQ(out.height(), frame.height());
  if (codec->lossless()) {
    // RGB must match exactly (alpha is reconstructed as opaque).
    for (int y = 0; y < frame.height(); y += 7)
      for (int x = 0; x < frame.width(); x += 7) {
        EXPECT_EQ(out.pixel(x, y)[0], frame.pixel(x, y)[0]);
        EXPECT_EQ(out.pixel(x, y)[1], frame.pixel(x, y)[1]);
        EXPECT_EQ(out.pixel(x, y)[2], frame.pixel(x, y)[2]);
      }
  } else {
    EXPECT_GT(render::psnr(frame, out), 28.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNames, ImageCodecCase,
                         ::testing::Values("raw", "rle", "lzo", "bzip", "jpeg",
                                           "jpeg+lzo", "jpeg+bzip"));

TEST(ImageCodecs, UnknownNameThrows) {
  EXPECT_THROW(codec::make_image_codec("mpeg"), std::invalid_argument);
}

TEST(ImageCodecs, Table1SizeOrdering) {
  // Raw >> LZO > BZIP >> JPEG, and chaining LZO/BZIP after JPEG shrinks it
  // further — the orderings Table 1 reports for the jet frames.
  const Image frame = test_frame(128);
  const auto size_of = [&](const char* name) {
    return codec::make_image_codec(name, 75)->encode(frame).size();
  };
  const auto raw = size_of("raw");
  const auto lzo = size_of("lzo");
  const auto bzip = size_of("bzip");
  const auto jpeg = size_of("jpeg");
  const auto jpeg_lzo = size_of("jpeg+lzo");
  EXPECT_LT(lzo, raw);
  EXPECT_LT(bzip, lzo);
  EXPECT_LT(jpeg, bzip);
  EXPECT_LT(jpeg_lzo, jpeg);
  // Paper: overall compression 96% and up at 256^2; check the 128^2 frame
  // is already past 90%.
  EXPECT_LT(static_cast<double>(jpeg_lzo) / static_cast<double>(raw), 0.10);
}

TEST(ImageCodecs, ChainNamesCompose) {
  const auto c = codec::make_image_codec("jpeg+bzip", 60);
  EXPECT_EQ(c->name(), "jpeg+bzip");
  EXPECT_FALSE(c->lossless());
  EXPECT_EQ(codec::make_image_codec("lzo")->lossless(), true);
}

TEST(ImageCodecs, Table1NamesListed) {
  const auto& names = codec::table1_codec_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "raw");
  EXPECT_EQ(names.back(), "jpeg+bzip");
}

// ----------------------------------------------------------- framediff ----

TEST(FrameDiff, SequenceRoundTripLossless) {
  auto inner = std::make_shared<LzCodec>();
  codec::FrameDiffEncoder enc(inner);
  codec::FrameDiffDecoder dec(inner);
  auto desc = field::scaled(field::turbulent_jet_desc(), 6, 5);
  render::RayCaster caster;
  for (int step = 0; step < 5; ++step) {
    const Image frame = caster.render_full(field::generate(desc, step),
                                           render::Camera(64, 64),
                                           render::TransferFunction::fire());
    const auto packed = enc.encode_frame(frame);
    const Image out = dec.decode_frame(packed);
    for (int y = 0; y < 64; y += 9)
      for (int x = 0; x < 64; x += 9) {
        EXPECT_EQ(out.pixel(x, y)[0], frame.pixel(x, y)[0]);
        EXPECT_EQ(out.pixel(x, y)[2], frame.pixel(x, y)[2]);
      }
  }
}

TEST(FrameDiff, DeltasSmallerThanKeyFramesForCoherentAnimation) {
  auto inner = std::make_shared<LzCodec>();
  codec::FrameDiffEncoder enc(inner);
  auto desc = field::scaled(field::turbulent_jet_desc(), 6, 60);
  render::RayCaster caster;
  // Adjacent time steps — §7.1: temporal coherence makes deltas cheap.
  const Image f0 = caster.render_full(field::generate(desc, 30),
                                      render::Camera(64, 64),
                                      render::TransferFunction::fire());
  const Image f1 = caster.render_full(field::generate(desc, 31),
                                      render::Camera(64, 64),
                                      render::TransferFunction::fire());
  const auto key = enc.encode_frame(f0);
  const auto delta = enc.encode_frame(f1);
  EXPECT_LT(delta.size(), key.size());
}

TEST(FrameDiff, ResizeForcesKeyFrame) {
  auto inner = std::make_shared<RleCodec>();
  codec::FrameDiffEncoder enc(inner);
  codec::FrameDiffDecoder dec(inner);
  Image small(8, 8), big(16, 16);
  small.set(1, 1, 50, 60, 70);
  big.set(2, 2, 80, 90, 100);
  (void)dec.decode_frame(enc.encode_frame(small));
  const Image out = dec.decode_frame(enc.encode_frame(big));
  EXPECT_EQ(out.width(), 16);
  EXPECT_EQ(out.pixel(2, 2)[0], 80);
}

TEST(FrameDiff, DeltaWithoutKeyThrows) {
  auto inner = std::make_shared<RleCodec>();
  codec::FrameDiffEncoder enc(inner);
  Image img(8, 8);
  (void)enc.encode_frame(img);           // key
  const auto delta = enc.encode_frame(img);  // delta
  codec::FrameDiffDecoder fresh(inner);
  EXPECT_THROW(fresh.decode_frame(delta), std::runtime_error);
}

TEST(FrameDiff, ResetForcesNewKey) {
  auto inner = std::make_shared<RleCodec>();
  codec::FrameDiffEncoder enc(inner);
  Image img(8, 8);
  (void)enc.encode_frame(img);
  enc.reset();
  const auto packed = enc.encode_frame(img);
  codec::FrameDiffDecoder dec(inner);
  EXPECT_NO_THROW(dec.decode_frame(packed));  // decodable without history
}

// ------------------------------------------------------------ tile pool ----

TEST(TilePool, RunsEveryJobExactlyOnce) {
  codec::TilePool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TilePool, ZeroAndSingleJobShapes) {
  codec::TilePool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  int calls = 0;
  pool.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(TilePool, PropagatesFirstException) {
  codec::TilePool pool(4);
  EXPECT_THROW(pool.run(64,
                        [](std::size_t i) {
                          if (i % 7 == 3) throw std::runtime_error("job boom");
                        }),
               std::runtime_error);
}

TEST(TilePool, ConcurrentTopLevelRunsComplete) {
  codec::TilePool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round)
        pool.run(25, [&](std::size_t) { total.fetch_add(1); });
    });
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 4 * 10 * 25);
}

TEST(TilePool, SerialFallbackWithOneWorker) {
  codec::TilePool pool(1);
  std::vector<int> order;
  pool.run(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// ----------------------------------------------------- simd kernel parity ----

namespace simd = util::simd;

std::vector<simd::Isa> testable_isas() {
  // force_isa clamps to what the host supports; keep only tiers that
  // actually engage when forced.
  std::vector<simd::Isa> engaged;
  for (auto isa : {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2,
                   simd::Isa::kNeon}) {
    simd::ScopedIsa scoped(isa);
    if (simd::active_isa() == isa) engaged.push_back(isa);
  }
  return engaged;
}

TEST(SimdDispatch, ForceIsaClampsAndRestores) {
  const auto before = simd::active_isa();
  {
    simd::ScopedIsa scalar(simd::Isa::kScalar);
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  }
  EXPECT_EQ(simd::active_isa(), before);
  // A tier above what the host supports clamps rather than crashing.
  const auto prev = simd::force_isa(simd::Isa::kAvx2);
  EXPECT_LE(static_cast<int>(simd::active_isa()),
            static_cast<int>(simd::best_available_isa()));
  simd::force_isa(prev);
}

TEST(SimdKernels, AllTiersMatchScalarBitForBit) {
  util::Rng rng(321);
  // Inputs shaped like real codec data: level-shifted samples, RGBA pixels,
  // byte streams with runs.
  float block[64], quant[64];
  for (auto& v : block) v = static_cast<float>(rng.uniform() * 255.0 - 128.0);
  for (auto& q : quant) q = static_cast<float>(1 + (rng() % 120));
  std::vector<std::uint8_t> rgba(8 * 4 * 33);
  for (auto& b : rgba) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> bytes_a(300), bytes_b(300);
  for (std::size_t i = 0; i < bytes_a.size(); ++i) {
    bytes_a[i] = static_cast<std::uint8_t>(rng() % 7);
    bytes_b[i] = i < 180 ? bytes_a[i] : static_cast<std::uint8_t>(rng());
  }
  std::vector<float> fa(301), fb(301);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    fa[i] = static_cast<float>(rng.uniform() * 100.0 - 50.0);
    fb[i] = static_cast<float>(rng.uniform() * 100.0 - 50.0);
  }
  const std::size_t kPairs = 37;  // odd: exercises the vector tail
  std::vector<float> row0(2 * kPairs), row1(2 * kPairs);
  for (std::size_t i = 0; i < row0.size(); ++i) {
    row0[i] = static_cast<float>(rng.uniform() * 255.0 - 128.0);
    row1[i] = static_cast<float>(rng.uniform() * 255.0 - 128.0);
  }
  std::int32_t sparse[64] = {};
  for (int i = 0; i < 64; ++i)
    if (rng() % 3 == 0) sparse[i] = static_cast<std::int32_t>(rng() % 200) - 100;
  const std::size_t npx = rgba.size() / 4;

  // Scalar reference results.
  float ref_dct[64];
  std::int32_t ref_q[64];
  std::vector<float> ref_y(npx), ref_cb(npx), ref_cr(npx);
  std::size_t ref_match;
  std::vector<std::uint8_t> ref_add(bytes_a.size()), ref_sub(bytes_a.size());
  std::vector<float> ref_addf(fa.size()), ref_subf(fa.size());
  std::vector<float> ref_avg(kPairs);
  std::uint64_t ref_mask;
  double ref_sad;
  {
    simd::ScopedIsa scoped(simd::Isa::kScalar);
    simd::fdct8x8(block, ref_dct);
    simd::quantize64(block, quant, ref_q);
    simd::rgb_to_ycbcr(rgba.data(), npx, ref_y.data(), ref_cb.data(),
                       ref_cr.data());
    ref_match = simd::match_length(bytes_a.data(), bytes_b.data(),
                                   bytes_a.size());
    simd::add_u8(ref_add.data(), bytes_a.data(), bytes_b.data(),
                 bytes_a.size());
    simd::sub_u8(ref_sub.data(), bytes_a.data(), bytes_b.data(),
                 bytes_a.size());
    simd::add_f32(ref_addf.data(), fa.data(), fb.data(), fa.size());
    simd::sub_f32(ref_subf.data(), fa.data(), fb.data(), fa.size());
    simd::avg2x2(row0.data(), row1.data(), kPairs, ref_avg.data());
    ref_mask = simd::nonzero_mask64(sparse);
    ref_sad = simd::sad_f32(fa.data(), fb.data(), fa.size());
  }

  for (const auto isa : testable_isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    simd::ScopedIsa scoped(isa);
    float dct[64];
    std::int32_t q[64];
    simd::fdct8x8(block, dct);
    simd::quantize64(block, quant, q);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(dct[i], ref_dct[i]) << "fdct lane " << i;
      EXPECT_EQ(q[i], ref_q[i]) << "quant lane " << i;
    }
    std::vector<float> y(npx), cb(npx), cr(npx);
    simd::rgb_to_ycbcr(rgba.data(), npx, y.data(), cb.data(), cr.data());
    EXPECT_EQ(y, ref_y);
    EXPECT_EQ(cb, ref_cb);
    EXPECT_EQ(cr, ref_cr);
    EXPECT_EQ(simd::match_length(bytes_a.data(), bytes_b.data(),
                                 bytes_a.size()),
              ref_match);
    std::vector<std::uint8_t> add(bytes_a.size()), sub(bytes_a.size());
    simd::add_u8(add.data(), bytes_a.data(), bytes_b.data(), bytes_a.size());
    simd::sub_u8(sub.data(), bytes_a.data(), bytes_b.data(), bytes_a.size());
    EXPECT_EQ(add, ref_add);
    EXPECT_EQ(sub, ref_sub);
    std::vector<float> addf(fa.size()), subf(fa.size());
    simd::add_f32(addf.data(), fa.data(), fb.data(), fa.size());
    simd::sub_f32(subf.data(), fa.data(), fb.data(), fa.size());
    EXPECT_EQ(addf, ref_addf);
    EXPECT_EQ(subf, ref_subf);
    std::vector<float> avg(kPairs);
    simd::avg2x2(row0.data(), row1.data(), kPairs, avg.data());
    EXPECT_EQ(avg, ref_avg);
    EXPECT_EQ(simd::nonzero_mask64(sparse), ref_mask);
    EXPECT_EQ(simd::sad_f32(fa.data(), fb.data(), fa.size()), ref_sad);
  }
}

// ------------------------------------------- differential parity suites ----
//
// The contract the SIMD/tiled engine must keep: for a fixed strip/block
// configuration, every ISA tier emits the byte-identical stream; and any
// strip count decodes to the bit-identical image.

TEST(SimdParity, JpegBitstreamIdenticalAcrossIsaTiers) {
  for (const int size : {128, 96}) {
    const Image frame = test_frame(size);
    for (const int strips : {1, 3}) {
      const JpegCodec codec(80, true, strips);
      Bytes scalar_stream, simd_stream;
      {
        simd::ScopedIsa scoped(simd::Isa::kScalar);
        scalar_stream = codec.encode(frame);
      }
      {
        simd::ScopedIsa scoped(simd::best_available_isa());
        simd_stream = codec.encode(frame);
      }
      EXPECT_EQ(scalar_stream, simd_stream)
          << "size " << size << " strips " << strips;
    }
  }
}

TEST(SimdParity, LzBitstreamIdenticalAcrossIsaTiers) {
  for (const int kind : {1, 3, 4}) {
    const Bytes payload = pattern_bytes(40000, kind);
    const LzCodec codec(6, 3);
    Bytes scalar_stream, simd_stream;
    {
      simd::ScopedIsa scoped(simd::Isa::kScalar);
      scalar_stream = codec.encode(payload);
    }
    {
      simd::ScopedIsa scoped(simd::best_available_isa());
      simd_stream = codec.encode(payload);
    }
    EXPECT_EQ(scalar_stream, simd_stream) << "pattern " << kind;
    EXPECT_EQ(codec.decode(simd_stream), payload);
  }
}

TEST(SimdParity, FrameDiffBitstreamIdenticalAcrossIsaTiers) {
  const Image a = test_frame(96);
  const Image b = test_frame(96, "vortex");
  const auto encode_pair = [&](simd::Isa isa) {
    simd::ScopedIsa scoped(isa);
    codec::FrameDiffEncoder enc(std::make_shared<LzCodec>(5, 2));
    Bytes all = enc.encode_frame(a);
    const Bytes delta = enc.encode_frame(b);
    all.insert(all.end(), delta.begin(), delta.end());
    return all;
  };
  EXPECT_EQ(encode_pair(simd::Isa::kScalar),
            encode_pair(simd::best_available_isa()));
}

TEST(SimdParity, JpegStripCountsDecodeBitIdentically) {
  for (const int size : {128, 75, 53}) {
    const Image frame = test_frame(size);
    const JpegCodec one(80, true, 1);
    const Image base = one.decode(one.encode(frame));
    for (const int strips : {2, 3, 8}) {
      const JpegCodec tiled(80, true, strips);
      const Image out = tiled.decode(tiled.encode(frame));
      EXPECT_EQ(out, base) << "size " << size << " strips " << strips;
    }
  }
}

TEST(SimdParity, JpegAutoStripsMatchesExplicit) {
  const Image frame = test_frame(96);
  const JpegCodec auto_strips(80, true, 0);
  const JpegCodec one(80, true, 1);
  const Image a = auto_strips.decode(auto_strips.encode(frame));
  const Image b = one.decode(one.encode(frame));
  EXPECT_EQ(a, b);
}

// ------------------------------------------------- strip engine specifics ----

TEST(JpegEngine, EncodeSharedMatchesEncode) {
  const Image frame = test_frame(96);
  const JpegCodec codec(80, true, 3);
  util::BufferPool pool;
  const auto shared = codec.encode_shared(frame, pool);
  const auto plain = codec.encode(frame);
  ASSERT_EQ(shared.size(), plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), shared.span().begin()));
}

TEST(JpegEngine, ReferenceEncoderInterchangeable) {
  const Image frame = test_frame(128);
  const JpegCodec codec(80);
  const Bytes ref_stream = codec.encode_reference(frame);
  const Image out = codec.decode(ref_stream);
  EXPECT_EQ(out.width(), frame.width());
  EXPECT_EQ(out.height(), frame.height());
  EXPECT_GT(render::psnr(frame, out), 30.0);
  // The engine and the reference agree to normal lossy-codec tolerance
  // (different DCT arithmetic, same algorithm).
  const Image engine_out = codec.decode(codec.encode(frame));
  EXPECT_GT(render::psnr(engine_out, out), 40.0);
}

TEST(JpegEngine, DecodeFastWorksOnStripedStreams) {
  const Image frame = test_frame(128);
  const JpegCodec codec(80, true, 4);
  const auto packed = codec.encode(frame);
  for (const int scale : {2, 4, 8}) {
    const Image small = codec.decode_fast(packed, scale);
    EXPECT_EQ(small.width(), (frame.width() + scale - 1) / scale);
    EXPECT_EQ(small.height(), (frame.height() + scale - 1) / scale);
  }
}

TEST(JpegEngine, RejectsCorruptStripLayouts) {
  const Image frame = test_frame(64);
  const JpegCodec codec(80, true, 2);
  Bytes packed = codec.encode(frame);
  // Strip count lives right after the Huffman tables; easier to corrupt the
  // strip y0 (first strip must start at row 0). Find it: magic(4) w(4) h(4)
  // quality(1) subsample(1) qtables(256) + huffman lengths + count(4); the
  // first strip header is the 4 bytes after the count. Flip the last strip
  // byte instead: truncating the stream must throw, not crash.
  EXPECT_THROW(codec.decode(std::span<const std::uint8_t>(packed.data(),
                                                          packed.size() - 7)),
               std::exception);
  Bytes zeroed = packed;
  std::fill(zeroed.begin() + 4, zeroed.begin() + 12, 0xee);  // absurd w/h
  EXPECT_THROW(codec.decode(zeroed), std::exception);
}

// ------------------------------------------------------- lz decoder paths ----

TEST(Lz, OverlappingRunReplicationStaysByteExact) {
  // Period-1 and period-3 repetitions force matches whose offset is smaller
  // than their length — the overlap path the decoder must copy byte-wise.
  Bytes runs(5000, 'A');
  Bytes period3;
  for (int i = 0; i < 4000; ++i)
    period3.push_back(static_cast<std::uint8_t>("xyz"[i % 3]));
  for (const Bytes& payload : {runs, period3}) {
    for (const int level : {1, 5, 9}) {
      const LzCodec codec(level);
      const Bytes packed = codec.encode(payload);
      EXPECT_LT(packed.size(), payload.size() / 8);  // runs must compress
      EXPECT_EQ(codec.decode(packed), payload);
    }
  }
}

TEST(Lz, BlockedStreamsDecodeWithPlainDecoder) {
  const Bytes payload = pattern_bytes(300000, 3);
  const LzCodec serial(5, 1);
  for (const int blocks : {2, 3, 7}) {
    const LzCodec blocked(5, blocks);
    const Bytes packed = blocked.encode(payload);
    // Any LzCodec instance decodes any block layout.
    EXPECT_EQ(serial.decode(packed), payload);
  }
  EXPECT_THROW(LzCodec(5, -1), std::invalid_argument);
}

// ------------------------------------------------------------- chaos ----

// Run under TSan in CI: many threads encode/decode through every tiled
// codec simultaneously, hammering the shared TilePool from concurrent
// top-level runs while results stay deterministic.
// ------------------------------------------------------- depth plane ----

/// A smooth depth surface with a background margin — the shape a real
/// opacity-weighted termination plane has.
render::DepthImage smooth_depth(int w, int h) {
  render::DepthImage depth(w, h);
  for (int y = 2; y < h - 2; ++y)
    for (int x = 2; x < w - 2; ++x)
      depth.set(x, y,
                40.0f + 0.3f * x + 0.2f * y +
                    5.0f * std::sin(x * 0.2f) * std::cos(y * 0.15f));
  return depth;
}

TEST(DepthPlane, RoundtripStaysWithinQuantizationBound) {
  const auto depth = smooth_depth(48, 32);
  const auto encoded = codec::encode_depth_plane(depth);
  const auto back = codec::decode_depth_plane(encoded);
  ASSERT_EQ(back.width(), depth.width());
  ASSERT_EQ(back.height(), depth.height());
  const double bound = codec::depth_plane_max_error(depth) + 1e-4;
  for (int y = 0; y < depth.height(); ++y)
    for (int x = 0; x < depth.width(); ++x) {
      const float a = depth.at(x, y), b = back.at(x, y);
      if (a == render::DepthImage::kEmpty) {
        EXPECT_EQ(b, render::DepthImage::kEmpty) << x << "," << y;
      } else {
        EXPECT_NEAR(a, b, bound) << x << "," << y;
      }
    }
}

TEST(DepthPlane, SmoothPlanesCompressWellUnderRowDelta) {
  // A planar depth field: successive rows differ by a constant, so the
  // row-delta pass leaves LZ an almost perfectly repetitive stream.
  render::DepthImage depth(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      depth.set(x, y, static_cast<float>(40.0 + 0.3 * x + 0.2 * y));
  const auto encoded = codec::encode_depth_plane(depth);
  // Raw u16 plane is w*h*2 bytes; the delta stream should beat it
  // comfortably (and crush the 4-byte float form).
  EXPECT_LT(encoded.size(), 64u * 64u * 2u / 2u);
  // The wavy plane still has to beat raw u16, just less dramatically.
  const auto wavy = codec::encode_depth_plane(smooth_depth(64, 64));
  EXPECT_LT(wavy.size(), 64u * 64u * 2u);
}

TEST(DepthPlane, AllBackgroundRoundtrips) {
  const render::DepthImage depth(16, 8);  // every pixel kEmpty
  EXPECT_EQ(codec::depth_plane_max_error(depth), 0.0);
  const auto back = codec::decode_depth_plane(codec::encode_depth_plane(depth));
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 16; ++x)
      EXPECT_EQ(back.at(x, y), render::DepthImage::kEmpty);
}

TEST(DepthPlane, ConstantPlaneIsExact) {
  render::DepthImage depth(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) depth.set(x, y, 123.25f);
  const auto back = codec::decode_depth_plane(codec::encode_depth_plane(depth));
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) EXPECT_EQ(back.at(x, y), 123.25f);
}

TEST(DepthPlane, TruncatedAndCorruptStreamsFailLoudly) {
  const auto encoded = codec::encode_depth_plane(smooth_depth(24, 24));
  EXPECT_THROW(
      codec::decode_depth_plane(std::span(encoded).subspan(0, 10)),
      std::runtime_error);
  auto bad_magic = encoded;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(codec::decode_depth_plane(bad_magic), std::runtime_error);
}

TEST(DepthPlane, EncodeIsIsaIndependent) {
  // The row-delta filter runs through the dispatched SIMD kernels; every
  // ISA tier must produce the identical byte stream.
  const auto depth = smooth_depth(40, 24);
  util::Bytes reference;
  {
    util::simd::ScopedIsa scalar(util::simd::Isa::kScalar);
    reference = codec::encode_depth_plane(depth);
  }
  const auto native = codec::encode_depth_plane(depth);
  EXPECT_EQ(native, reference);
  const auto back = codec::decode_depth_plane(native);
  EXPECT_EQ(back.at(10, 10), codec::decode_depth_plane(reference).at(10, 10));
}

TEST(CodecChaos, ConcurrentTiledEncodesStayDeterministic) {
  const Image frame = test_frame(96);
  const Bytes payload = pattern_bytes(150000, 4);
  const JpegCodec jpeg(80, true, 3);
  const LzCodec lz(5, 3);
  const BwtCodec bwt(1 << 14);
  const Bytes jpeg_expected = jpeg.encode(frame);
  const Bytes lz_expected = lz.encode(payload);
  const Bytes bwt_expected = bwt.encode(payload);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t)
    threads.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round) {
        switch ((t + round) % 3) {
          case 0:
            if (jpeg.encode(frame) != jpeg_expected) mismatches.fetch_add(1);
            break;
          case 1:
            if (lz.encode(payload) != lz_expected) mismatches.fetch_add(1);
            break;
          default:
            if (bwt.encode(payload) != bwt_expected) mismatches.fetch_add(1);
            break;
        }
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(jpeg.decode(jpeg_expected).width(), 96);
  EXPECT_EQ(lz.decode(lz_expected), payload);
  EXPECT_EQ(bwt.decode(bwt_expected), payload);
}

}  // namespace
}  // namespace tvviz
