// Tests for the compression substrate: byte codecs (RLE / LZ / BWT),
// Huffman coding, the JPEG-style image codec, codec chaining, and frame
// differencing. Property-style roundtrips run as parameterized suites.
#include <gtest/gtest.h>

#include <memory>

#include "codec/bwt.hpp"
#include "codec/byte_codec.hpp"
#include "codec/framediff.hpp"
#include "codec/huffman.hpp"
#include "codec/image_codec.hpp"
#include "codec/jpeg.hpp"
#include "codec/lz.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/rng.hpp"

namespace tvviz {
namespace {

using codec::BwtCodec;
using codec::ByteCodec;
using codec::HuffmanCode;
using codec::JpegCodec;
using codec::LzCodec;
using codec::RawCodec;
using codec::RleCodec;
using render::Image;
using util::Bytes;

Bytes pattern_bytes(std::size_t n, int kind) {
  Bytes out(n);
  util::Rng rng(kind * 977 + 13);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0: out[i] = 0; break;                                    // zeros
      case 1: out[i] = static_cast<std::uint8_t>(i & 0xff); break;  // ramp
      case 2: out[i] = static_cast<std::uint8_t>(rng()); break;     // noise
      case 3:  // text-like repetition
        out[i] = static_cast<std::uint8_t>("the quick brown fox "[i % 20]);
        break;
      case 4:  // long runs with occasional breaks
        out[i] = static_cast<std::uint8_t>((i / 300) & 0xff);
        break;
      default:  // sparse image-like: mostly zero with bursts
        out[i] = (i % 97 < 5) ? static_cast<std::uint8_t>(rng()) : 0;
        break;
    }
  }
  return out;
}

// ------------------------------------------------- byte codec roundtrips ----

struct ByteCodecCase {
  std::string name;
  std::shared_ptr<const ByteCodec> codec;
};

class ByteCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 public:
  static std::shared_ptr<const ByteCodec> make(int which) {
    switch (which) {
      case 0: return std::make_shared<RawCodec>();
      case 1: return std::make_shared<RleCodec>();
      case 2: return std::make_shared<LzCodec>(1);
      case 3: return std::make_shared<LzCodec>(5);
      case 4: return std::make_shared<LzCodec>(9);
      case 5: return std::make_shared<BwtCodec>(1024);
      default: return std::make_shared<BwtCodec>(64 * 1024);
    }
  }
};

TEST_P(ByteCodecRoundTrip, DecodeInvertsEncode) {
  const auto [which, kind, size] = GetParam();
  const auto codec = make(which);
  const Bytes input = pattern_bytes(static_cast<std::size_t>(size), kind);
  const Bytes packed = codec->encode(input);
  const Bytes out = codec->decode(packed);
  EXPECT_EQ(out, input) << codec->name() << " kind=" << kind
                        << " size=" << size;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsPatternsSizes, ByteCodecRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2, 100, 4093, 70000)));

TEST(ByteCodecs, CompressibleDataShrinks) {
  const Bytes zeros = pattern_bytes(50000, 0);
  EXPECT_LT(RleCodec().encode(zeros).size(), zeros.size() / 50);
  EXPECT_LT(LzCodec().encode(zeros).size(), zeros.size() / 50);
  EXPECT_LT(BwtCodec().encode(zeros).size(), zeros.size() / 50);
}

TEST(ByteCodecs, BwtBeatsLzOnStatisticallyRedundantData) {
  // The paper's placement: BZIP compresses better than LZO (Table 1);
  // block-sorting + entropy coding exploits statistical redundancy that
  // LZ77 match-finding cannot (few literal repeats, low byte entropy).
  util::Rng rng(99);
  Bytes data(60000);
  for (auto& b : data) b = static_cast<std::uint8_t>((rng() & 0x07) * 13);
  EXPECT_LT(BwtCodec().encode(data).size(), LzCodec().encode(data).size());
}

TEST(ByteCodecs, HigherLzLevelCompressesBetter) {
  const Bytes data = pattern_bytes(60000, 5);
  const auto fast = LzCodec(1).encode(data);
  const auto tight = LzCodec(9).encode(data);
  EXPECT_LE(tight.size(), fast.size());
}

TEST(ByteCodecs, CorruptStreamsThrow) {
  const Bytes data = pattern_bytes(1000, 3);
  auto packed = LzCodec().encode(data);
  packed.resize(packed.size() / 2);  // truncate
  EXPECT_THROW(LzCodec().decode(packed), std::exception);

  auto bwt_packed = BwtCodec().encode(data);
  bwt_packed.resize(bwt_packed.size() / 2);
  EXPECT_THROW(BwtCodec().decode(bwt_packed), std::exception);

  const Bytes reserved = {128};
  EXPECT_THROW(RleCodec().decode(reserved), std::runtime_error);
}

TEST(ByteCodecs, LzRejectsBadLevel) {
  EXPECT_THROW(LzCodec(0), std::invalid_argument);
  EXPECT_THROW(LzCodec(10), std::invalid_argument);
}

// --------------------------------------------------------------- bwt ----

TEST(Bwt, KnownExample) {
  // Classic "banana" rotation-sort example.
  const Bytes input = {'b', 'a', 'n', 'a', 'n', 'a'};
  std::uint32_t primary = 0;
  const Bytes last = codec::bwt_forward(input, primary);
  EXPECT_EQ(last, (Bytes{'n', 'n', 'b', 'a', 'a', 'a'}));
  EXPECT_EQ(codec::bwt_inverse(last, primary), input);
}

TEST(Bwt, EmptyAndSingle) {
  std::uint32_t primary = 9;
  EXPECT_TRUE(codec::bwt_forward({}, primary).empty());
  const Bytes one = {'x'};
  const Bytes last = codec::bwt_forward(one, primary);
  EXPECT_EQ(codec::bwt_inverse(last, primary), one);
}

TEST(Bwt, InverseRejectsBadPrimary) {
  const Bytes last = {'a', 'b'};
  EXPECT_THROW(codec::bwt_inverse(last, 5), std::runtime_error);
}

TEST(Mtf, RoundTripAndFrontLoading) {
  const Bytes input = {'a', 'a', 'a', 'b', 'b', 'a'};
  const auto mtf = codec::mtf_forward(input);
  // Repeated symbols become zeros.
  EXPECT_EQ(mtf[1], 0);
  EXPECT_EQ(mtf[2], 0);
  EXPECT_EQ(mtf[4], 0);
  EXPECT_EQ(codec::mtf_inverse(mtf), std::vector<std::uint8_t>(input.begin(), input.end()));
}

// ------------------------------------------------------------- huffman ----

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freqs = {1000, 200, 50, 10, 1, 0, 3};
  const auto code = HuffmanCode::from_frequencies(freqs);
  util::BitWriter w;
  const int symbols[] = {0, 1, 0, 2, 6, 0, 4, 3, 0, 1};
  for (int s : symbols) code.encode(w, s);
  const auto bytes = w.finish();
  util::BitReader r(bytes);
  for (int s : symbols) EXPECT_EQ(code.decode(r), s);
}

TEST(Huffman, ShorterCodesForFrequentSymbols) {
  std::vector<std::uint64_t> freqs = {1000000, 1, 1, 1};
  const auto code = HuffmanCode::from_frequencies(freqs);
  EXPECT_LT(code.lengths()[0], code.lengths()[3]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs = {0, 42, 0};
  const auto code = HuffmanCode::from_frequencies(freqs);
  util::BitWriter w;
  code.encode(w, 1);
  const auto bytes = w.finish();
  util::BitReader r(bytes);
  EXPECT_EQ(code.decode(r), 1);
}

TEST(Huffman, LengthsSerializeRoundTrip) {
  std::vector<std::uint64_t> freqs(300, 0);
  freqs[5] = 100;
  freqs[100] = 50;
  freqs[299] = 1;
  const auto code = HuffmanCode::from_frequencies(freqs);
  util::ByteWriter w;
  code.write_lengths(w);
  util::ByteReader r(w.bytes());
  const auto restored = HuffmanCode::read_lengths(r);
  EXPECT_EQ(restored.lengths(), code.lengths());
}

TEST(Huffman, DepthLimitedUnderManySymbols) {
  // Fibonacci-like frequencies force deep trees; lengths must stay capped.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const auto next = a + b;
    a = b;
    b = next;
  }
  const auto code = HuffmanCode::from_frequencies(freqs);
  for (auto len : code.lengths()) EXPECT_LE(len, HuffmanCode::kMaxBits);
  // Still decodable.
  util::BitWriter w;
  for (int s = 0; s < 40; ++s) code.encode(w, s);
  const auto bytes = w.finish();
  util::BitReader r(bytes);
  for (int s = 0; s < 40; ++s) EXPECT_EQ(code.decode(r), s);
}

TEST(Huffman, AllZeroFrequenciesThrow) {
  std::vector<std::uint64_t> freqs(8, 0);
  EXPECT_THROW(HuffmanCode::from_frequencies(freqs), std::invalid_argument);
}

TEST(Huffman, ExpectedBitsMatchesEntropyOrder) {
  std::vector<std::uint64_t> uniform(16, 100);
  const auto code = HuffmanCode::from_frequencies(uniform);
  EXPECT_NEAR(code.expected_bits(uniform), 4.0, 1e-9);
}

// ---------------------------------------------------------------- jpeg ----

Image test_frame(int size, const char* kind = "jet") {
  auto desc = std::string(kind) == "jet"
                  ? field::scaled(field::turbulent_jet_desc(), 4, 2)
                  : field::scaled(field::turbulent_vortex_desc(), 4, 2);
  const auto vol = field::generate(desc, 1);
  render::RayCaster caster;
  const auto tf = std::string(kind) == "jet"
                      ? render::TransferFunction::fire()
                      : render::TransferFunction::dense_cool_warm();
  return caster.render_full(vol, render::Camera(size, size), tf);
}

TEST(Jpeg, RoundTripQuality) {
  const Image frame = test_frame(128);
  const JpegCodec codec(85);
  const auto packed = codec.encode(frame);
  const Image out = codec.decode(packed);
  EXPECT_EQ(out.width(), 128);
  EXPECT_EQ(out.height(), 128);
  EXPECT_GT(render::psnr(frame, out), 30.0);
  // And it actually compresses hard (paper: 96%+ reduction).
  EXPECT_LT(packed.size(), static_cast<std::size_t>(128 * 128 * 3) / 10);
}

TEST(Jpeg, QualityKnobTradesSizeForFidelity) {
  const Image frame = test_frame(96);
  const auto lo = JpegCodec(20).encode(frame);
  const auto hi = JpegCodec(90).encode(frame);
  EXPECT_LT(lo.size(), hi.size());
  const double psnr_lo = render::psnr(frame, JpegCodec(20).decode(lo));
  const double psnr_hi = render::psnr(frame, JpegCodec(90).decode(hi));
  EXPECT_LT(psnr_lo, psnr_hi);
}

TEST(Jpeg, OddSizesAndTinyImages) {
  for (const auto& [w, h] : {std::pair{1, 1}, {7, 5}, {17, 9}, {8, 8}}) {
    Image img(w, h);
    util::Rng rng(w * 100 + h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        img.set(x, y, static_cast<std::uint8_t>(rng()),
                static_cast<std::uint8_t>(rng()),
                static_cast<std::uint8_t>(rng()));
    const JpegCodec codec(75);
    const Image out = codec.decode(codec.encode(img));
    EXPECT_EQ(out.width(), w);
    EXPECT_EQ(out.height(), h);
  }
}

TEST(Jpeg, FlatImageNearlyExact) {
  Image img(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) img.set(x, y, 120, 60, 200);
  const JpegCodec codec(90);
  const Image out = codec.decode(codec.encode(img));
  EXPECT_GT(render::psnr(img, out), 38.0);
}

TEST(Jpeg, SubsamplingShrinksOutput) {
  const Image frame = test_frame(96, "vortex");
  const auto sub = JpegCodec(80, true).encode(frame);
  const auto full = JpegCodec(80, false).encode(frame);
  EXPECT_LT(sub.size(), full.size());
}

TEST(Jpeg, RejectsBadQualityAndMagic) {
  EXPECT_THROW(JpegCodec(0), std::invalid_argument);
  EXPECT_THROW(JpegCodec(101), std::invalid_argument);
  const Bytes garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  EXPECT_THROW(JpegCodec(75).decode(garbage), std::exception);
}

// --------------------------------------------------------- image codecs ----

class ImageCodecCase : public ::testing::TestWithParam<const char*> {};

TEST_P(ImageCodecCase, RoundTripShapeAndQuality) {
  const auto codec = codec::make_image_codec(GetParam(), 85);
  const Image frame = test_frame(96);
  const auto packed = codec->encode(frame);
  const Image out = codec->decode(packed);
  EXPECT_EQ(out.width(), frame.width());
  EXPECT_EQ(out.height(), frame.height());
  if (codec->lossless()) {
    // RGB must match exactly (alpha is reconstructed as opaque).
    for (int y = 0; y < frame.height(); y += 7)
      for (int x = 0; x < frame.width(); x += 7) {
        EXPECT_EQ(out.pixel(x, y)[0], frame.pixel(x, y)[0]);
        EXPECT_EQ(out.pixel(x, y)[1], frame.pixel(x, y)[1]);
        EXPECT_EQ(out.pixel(x, y)[2], frame.pixel(x, y)[2]);
      }
  } else {
    EXPECT_GT(render::psnr(frame, out), 28.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNames, ImageCodecCase,
                         ::testing::Values("raw", "rle", "lzo", "bzip", "jpeg",
                                           "jpeg+lzo", "jpeg+bzip"));

TEST(ImageCodecs, UnknownNameThrows) {
  EXPECT_THROW(codec::make_image_codec("mpeg"), std::invalid_argument);
}

TEST(ImageCodecs, Table1SizeOrdering) {
  // Raw >> LZO > BZIP >> JPEG, and chaining LZO/BZIP after JPEG shrinks it
  // further — the orderings Table 1 reports for the jet frames.
  const Image frame = test_frame(128);
  const auto size_of = [&](const char* name) {
    return codec::make_image_codec(name, 75)->encode(frame).size();
  };
  const auto raw = size_of("raw");
  const auto lzo = size_of("lzo");
  const auto bzip = size_of("bzip");
  const auto jpeg = size_of("jpeg");
  const auto jpeg_lzo = size_of("jpeg+lzo");
  EXPECT_LT(lzo, raw);
  EXPECT_LT(bzip, lzo);
  EXPECT_LT(jpeg, bzip);
  EXPECT_LT(jpeg_lzo, jpeg);
  // Paper: overall compression 96% and up at 256^2; check the 128^2 frame
  // is already past 90%.
  EXPECT_LT(static_cast<double>(jpeg_lzo) / static_cast<double>(raw), 0.10);
}

TEST(ImageCodecs, ChainNamesCompose) {
  const auto c = codec::make_image_codec("jpeg+bzip", 60);
  EXPECT_EQ(c->name(), "jpeg+bzip");
  EXPECT_FALSE(c->lossless());
  EXPECT_EQ(codec::make_image_codec("lzo")->lossless(), true);
}

TEST(ImageCodecs, Table1NamesListed) {
  const auto& names = codec::table1_codec_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "raw");
  EXPECT_EQ(names.back(), "jpeg+bzip");
}

// ----------------------------------------------------------- framediff ----

TEST(FrameDiff, SequenceRoundTripLossless) {
  auto inner = std::make_shared<LzCodec>();
  codec::FrameDiffEncoder enc(inner);
  codec::FrameDiffDecoder dec(inner);
  auto desc = field::scaled(field::turbulent_jet_desc(), 6, 5);
  render::RayCaster caster;
  for (int step = 0; step < 5; ++step) {
    const Image frame = caster.render_full(field::generate(desc, step),
                                           render::Camera(64, 64),
                                           render::TransferFunction::fire());
    const auto packed = enc.encode_frame(frame);
    const Image out = dec.decode_frame(packed);
    for (int y = 0; y < 64; y += 9)
      for (int x = 0; x < 64; x += 9) {
        EXPECT_EQ(out.pixel(x, y)[0], frame.pixel(x, y)[0]);
        EXPECT_EQ(out.pixel(x, y)[2], frame.pixel(x, y)[2]);
      }
  }
}

TEST(FrameDiff, DeltasSmallerThanKeyFramesForCoherentAnimation) {
  auto inner = std::make_shared<LzCodec>();
  codec::FrameDiffEncoder enc(inner);
  auto desc = field::scaled(field::turbulent_jet_desc(), 6, 60);
  render::RayCaster caster;
  // Adjacent time steps — §7.1: temporal coherence makes deltas cheap.
  const Image f0 = caster.render_full(field::generate(desc, 30),
                                      render::Camera(64, 64),
                                      render::TransferFunction::fire());
  const Image f1 = caster.render_full(field::generate(desc, 31),
                                      render::Camera(64, 64),
                                      render::TransferFunction::fire());
  const auto key = enc.encode_frame(f0);
  const auto delta = enc.encode_frame(f1);
  EXPECT_LT(delta.size(), key.size());
}

TEST(FrameDiff, ResizeForcesKeyFrame) {
  auto inner = std::make_shared<RleCodec>();
  codec::FrameDiffEncoder enc(inner);
  codec::FrameDiffDecoder dec(inner);
  Image small(8, 8), big(16, 16);
  small.set(1, 1, 50, 60, 70);
  big.set(2, 2, 80, 90, 100);
  (void)dec.decode_frame(enc.encode_frame(small));
  const Image out = dec.decode_frame(enc.encode_frame(big));
  EXPECT_EQ(out.width(), 16);
  EXPECT_EQ(out.pixel(2, 2)[0], 80);
}

TEST(FrameDiff, DeltaWithoutKeyThrows) {
  auto inner = std::make_shared<RleCodec>();
  codec::FrameDiffEncoder enc(inner);
  Image img(8, 8);
  (void)enc.encode_frame(img);           // key
  const auto delta = enc.encode_frame(img);  // delta
  codec::FrameDiffDecoder fresh(inner);
  EXPECT_THROW(fresh.decode_frame(delta), std::runtime_error);
}

TEST(FrameDiff, ResetForcesNewKey) {
  auto inner = std::make_shared<RleCodec>();
  codec::FrameDiffEncoder enc(inner);
  Image img(8, 8);
  (void)enc.encode_frame(img);
  enc.reset();
  const auto packed = enc.encode_frame(img);
  codec::FrameDiffDecoder dec(inner);
  EXPECT_NO_THROW(dec.decode_frame(packed));  // decodable without history
}

}  // namespace
}  // namespace tvviz
