// Stress and edge-case suite: message storms through the vmp runtime,
// repeated collective storms across sub-communicators, daemon churn, and
// degenerate geometry through the render/compositing stack.
#include <gtest/gtest.h>

#include <numeric>

#include "compositing/binary_swap.hpp"
#include "compositing/over.hpp"
#include "net/daemon.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/rng.hpp"
#include "vmp/communicator.hpp"

namespace tvviz {
namespace {

TEST(VmpStress, InterleavedTagStorm) {
  // Every rank fires messages with randomized tags at random peers, then
  // each receives exactly what was addressed to it, by tag. Exercises
  // out-of-order mailbox matching under load.
  constexpr int kRanks = 6;
  constexpr int kPerRank = 300;
  vmp::Cluster::run(kRanks, [](vmp::Communicator& comm) {
    util::Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    // Deterministic plan shared by all ranks: sends[src][i] = (dst, tag).
    std::vector<std::array<int, 2>> my_sends;
    std::vector<int> expected_by_tag(8, 0);
    for (int src = 0; src < kRanks; ++src) {
      util::Rng plan(42 + static_cast<std::uint64_t>(src));
      for (int i = 0; i < kPerRank; ++i) {
        const int dst = static_cast<int>(plan.below(kRanks));
        const int tag = static_cast<int>(plan.below(8));
        if (src == comm.rank()) my_sends.push_back({dst, tag});
        if (dst == comm.rank()) ++expected_by_tag[static_cast<std::size_t>(tag)];
      }
    }
    for (const auto& [dst, tag] : my_sends)
      comm.send(dst, tag, util::Bytes{static_cast<std::uint8_t>(tag)});
    // Drain per tag (arbitrary order across tags).
    for (int tag = 7; tag >= 0; --tag)
      for (int i = 0; i < expected_by_tag[static_cast<std::size_t>(tag)]; ++i) {
        const auto msg = comm.recv(vmp::kAnySource, tag);
        ASSERT_EQ(msg.payload[0], tag);
      }
    comm.barrier();
  });
}

TEST(VmpStress, RepeatedSplitsAndCollectives) {
  // Derive fresh sub-communicators in a loop; traffic must never leak
  // between generations or sibling groups.
  vmp::Cluster::run(8, [](vmp::Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      vmp::Communicator sub = comm.split((comm.rank() + round) % 3);
      const auto sum = sub.allreduce({1.0}, vmp::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum[0], sub.size());
      const auto rank_sum = sub.allreduce(
          {static_cast<double>(comm.rank())}, vmp::ReduceOp::kSum);
      // Verify against a direct computation of the group's members.
      double expect = 0.0;
      for (int r = 0; r < 8; ++r)
        if ((r + round) % 3 == (comm.rank() + round) % 3) expect += r;
      EXPECT_DOUBLE_EQ(rank_sum[0], expect) << round;
    }
  });
}

TEST(VmpStress, ManySmallBarriers) {
  std::atomic<int> counter{0};
  vmp::Cluster::run(5, [&](vmp::Communicator& comm) {
    for (int i = 0; i < 200; ++i) {
      if (comm.rank() == 0) counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(counter.load(), i + 1);
      comm.barrier();
    }
  });
}

TEST(DaemonStress, ManyFramesThroughBoundedBuffer) {
  net::DisplayDaemon daemon(/*display_buffer_frames=*/4);
  auto renderer = daemon.connect_renderer();
  auto display = daemon.connect_display();
  constexpr int kFrames = 500;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      net::NetMessage msg;
      msg.type = net::MsgType::kFrame;
      msg.frame_index = i;
      msg.payload = util::Bytes(128, static_cast<std::uint8_t>(i));
      renderer->send(std::move(msg));
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    const auto msg = display->next();
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->frame_index, i);  // FIFO through the bounded buffer
  }
  producer.join();
  EXPECT_EQ(daemon.frames_relayed(), static_cast<std::uint64_t>(kFrames));
}

TEST(RenderEdge, DegenerateGeometry) {
  render::RayCaster caster;
  const auto tf = render::TransferFunction::fire();
  // 1-voxel-thick volumes along each axis.
  for (const auto dims : {field::Dims{1, 16, 16}, field::Dims{16, 1, 16},
                          field::Dims{16, 16, 1}, field::Dims{1, 1, 1}}) {
    field::VolumeF vol(dims, 0.9f);
    const auto img = caster.render_full(vol, render::Camera(24, 24), tf);
    EXPECT_EQ(img.width(), 24);
  }
  // 1x1 output image.
  field::VolumeF vol(field::Dims{8, 8, 8}, 0.9f);
  const auto tiny = caster.render_full(vol, render::Camera(1, 1), tf);
  EXPECT_EQ(tiny.width(), 1);
}

TEST(RenderEdge, ExtremeCameraAngles) {
  field::VolumeF vol(field::Dims{12, 12, 12}, 0.8f);
  const auto tf = render::TransferFunction::fire();
  render::RayCaster caster;
  // Straight down the axes (zero components in the direction vector) and
  // near-degenerate elevations.
  for (const double az : {0.0, 1.5707963, 3.14159265})
    for (const double el : {0.0, 1.5707, -1.5707}) {
      const auto img =
          caster.render_full(vol, render::Camera(16, 16, az, el), tf);
      int lit = 0;
      for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x) lit += img.pixel(x, y)[3] > 0 ? 1 : 0;
      EXPECT_GT(lit, 0) << az << " " << el;
    }
}

TEST(CompositingEdge, SingleRankAndEmptyFrames) {
  vmp::Cluster::run(1, [](vmp::Communicator& comm) {
    render::PartialImage p(2, 2, 3, 3);
    p.set_depth(0);
    p.at(1, 1) = render::Rgba{1, 0, 0, 1};
    const auto slice = compositing::binary_swap(comm, p, 8, 8);
    const auto frame = compositing::gather_frame(comm, slice, 8, 8);
    EXPECT_EQ(frame.pixel(3, 3)[0], 255);
    // Zero-size frame is legal and empty.
    const auto zero = compositing::direct_send(
        comm, render::PartialImage(0, 0, 0, 0), 0, 0);
    EXPECT_EQ(zero.width(), 0);
  });
}

}  // namespace
}  // namespace tvviz
