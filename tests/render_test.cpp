// Tests for the rendering substrate: images, transfer functions, camera
// geometry, the ray caster (including parallel==serial subvolume tiling),
// and the shear-warp baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>

#include "codec/depth_plane.hpp"
#include "compositing/over.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "field/decompose.hpp"
#include "field/generators.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/raycast.hpp"
#include "render/shearwarp.hpp"
#include "render/transfer.hpp"
#include "render/warp.hpp"

namespace tvviz {
namespace {

using field::Box;
using field::Dims;
using field::VolumeF;
using render::Camera;
using render::Image;
using render::PartialImage;
using render::RayCaster;
using render::RenderOptions;
using render::Rgba;
using render::Subvolume;
using render::TransferFunction;

// --------------------------------------------------------------- image ----

TEST(Image, SetAndGetPixels) {
  Image img(4, 3);
  img.set(2, 1, 10, 20, 30, 40);
  const auto* p = img.pixel(2, 1);
  EXPECT_EQ(p[0], 10);
  EXPECT_EQ(p[1], 20);
  EXPECT_EQ(p[2], 30);
  EXPECT_EQ(p[3], 40);
  EXPECT_EQ(img.byte_size(), 48u);
}

TEST(Image, PsnrIdenticalIsInfinite) {
  Image a(8, 8), b(8, 8);
  a.set(1, 1, 100, 100, 100);
  b.set(1, 1, 100, 100, 100);
  EXPECT_TRUE(std::isinf(render::psnr(a, b)));
}

TEST(Image, PsnrDropsWithError) {
  Image a(8, 8), b(8, 8), c(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      a.set(x, y, 128, 128, 128);
      b.set(x, y, 130, 130, 130);  // small error
      c.set(x, y, 200, 200, 200);  // large error
    }
  EXPECT_GT(render::psnr(a, b), render::psnr(a, c));
  EXPECT_THROW(render::psnr(a, Image(4, 4)), std::invalid_argument);
}

TEST(Image, PpmRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "tvviz_test.ppm";
  Image img(3, 2);
  img.set(0, 0, 255, 0, 0);
  img.set(2, 1, 10, 20, 30);
  img.write_ppm(path);
  const Image back = Image::read_ppm(path);
  EXPECT_EQ(back.width(), 3);
  EXPECT_EQ(back.height(), 2);
  EXPECT_EQ(back.pixel(0, 0)[0], 255);
  EXPECT_EQ(back.pixel(2, 1)[2], 30);
  EXPECT_EQ(back.pixel(2, 1)[3], 255);  // alpha reconstructed opaque
  std::filesystem::remove(path);
}

TEST(Image, ReadPpmRejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "tvviz_bad.ppm";
  {
    std::ofstream out(path, std::ios::binary);
    out << "P3\n2 2\n255\n";  // ASCII PPM: unsupported
  }
  EXPECT_THROW(Image::read_ppm(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "P6\n# truncated raster\n4 4\n255\nxx";
  }
  EXPECT_THROW(Image::read_ppm(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(Image::read_ppm(path), std::runtime_error);  // missing file
}

TEST(PartialImage, SerializeRoundTrip) {
  PartialImage p(3, 5, 4, 2);
  p.set_depth(-7.25);
  p.at(1, 1) = Rgba{0.25, 0.5, 0.75, 1.0};
  const auto bytes = p.serialize();
  const PartialImage q = PartialImage::deserialize(bytes);
  EXPECT_EQ(q.x0(), 3);
  EXPECT_EQ(q.y0(), 5);
  EXPECT_EQ(q.width(), 4);
  EXPECT_EQ(q.height(), 2);
  EXPECT_DOUBLE_EQ(q.depth(), -7.25);
  EXPECT_NEAR(q.at(1, 1).g, 0.5, 1e-6);
}

TEST(PartialImage, CropRowsKeepsOffsets) {
  PartialImage p(2, 10, 3, 6);
  for (int y = 0; y < 6; ++y) p.at(0, y).r = y;
  const PartialImage c = p.crop_rows(2, 5);
  EXPECT_EQ(c.y0(), 12);
  EXPECT_EQ(c.height(), 3);
  EXPECT_DOUBLE_EQ(c.at(0, 0).r, 2.0);
  EXPECT_THROW(p.crop_rows(-1, 3), std::out_of_range);
  EXPECT_THROW(p.crop_rows(0, 7), std::out_of_range);
}

TEST(PartialImage, SplatClampsAndQuantizes) {
  PartialImage p(-1, -1, 3, 3);
  p.at(1, 1) = Rgba{2.0, 0.5, -1.0, 1.0};  // out-of-range channels
  Image frame(2, 2);
  p.splat_to(frame);
  const auto* px = frame.pixel(0, 0);
  EXPECT_EQ(px[0], 255);
  EXPECT_EQ(px[1], 128);
  EXPECT_EQ(px[2], 0);
}

TEST(Rgba, OverOperatorComposites) {
  const Rgba opaque_red{1, 0, 0, 1};
  const Rgba blue{0, 0, 0.5, 0.5};
  const Rgba out = opaque_red.over(blue);
  EXPECT_DOUBLE_EQ(out.r, 1.0);
  EXPECT_DOUBLE_EQ(out.b, 0.0);  // fully hidden
  const Rgba half = blue.over(opaque_red);
  EXPECT_DOUBLE_EQ(half.a, 1.0);
  EXPECT_DOUBLE_EQ(half.r, 0.5);
}

// ------------------------------------------------------------ transfer ----

TEST(TransferFunction, InterpolatesBetweenControlPoints) {
  TransferFunction tf({{0.0, 0, 0, 0, 0.0}, {1.0, 1, 0.5, 0, 1.0}});
  const auto mid = tf.sample(0.5);
  EXPECT_NEAR(mid.r, 0.5, 1e-12);
  EXPECT_NEAR(mid.g, 0.25, 1e-12);
  EXPECT_NEAR(mid.alpha, 0.5, 1e-12);
}

TEST(TransferFunction, ClampsOutsideRange) {
  TransferFunction tf({{0.2, 1, 1, 1, 0.1}, {0.8, 0, 0, 0, 0.9}});
  EXPECT_NEAR(tf.sample(0.0).alpha, 0.1, 1e-12);
  EXPECT_NEAR(tf.sample(1.0).alpha, 0.9, 1e-12);
}

TEST(TransferFunction, RejectsBadInput) {
  EXPECT_THROW(TransferFunction({{0.0, 0, 0, 0, 0}}), std::invalid_argument);
  EXPECT_THROW(TransferFunction({{0.5, 0, 0, 0, 0}, {0.2, 0, 0, 0, 0}}),
               std::invalid_argument);
}

TEST(TransferFunction, PresetsTransparentBelowThreshold) {
  for (const auto& tf : {TransferFunction::fire(),
                         TransferFunction::dense_cool_warm(),
                         TransferFunction::shock()}) {
    EXPECT_DOUBLE_EQ(tf.sample(0.0).alpha, 0.0);
    EXPECT_GT(tf.sample(0.95).alpha, 0.1);
  }
}

TEST(TransferFunction, DensePresetOpaqueEarlier) {
  // The vortex map must classify low values visible where fire does not —
  // that is what drives the coverage difference in §6.
  const auto fire = TransferFunction::fire();
  const auto dense = TransferFunction::dense_cool_warm();
  EXPECT_GT(dense.sample(0.2).alpha, fire.sample(0.2).alpha);
}

// -------------------------------------------------------------- camera ----

TEST(Camera, BasisIsOrthonormal) {
  const Camera cam(64, 64, 0.8, 0.4);
  const auto d = cam.view_dir(), r = cam.right_dir(), u = cam.up_dir();
  EXPECT_NEAR(d.length(), 1.0, 1e-12);
  EXPECT_NEAR(r.length(), 1.0, 1e-12);
  EXPECT_NEAR(u.length(), 1.0, 1e-12);
  EXPECT_NEAR(d.dot(r), 0.0, 1e-12);
  EXPECT_NEAR(d.dot(u), 0.0, 1e-12);
  EXPECT_NEAR(r.dot(u), 0.0, 1e-12);
}

TEST(Camera, CenterRayHitsVolumeCenter) {
  const Dims dims{32, 32, 32};
  const Camera cam(64, 64, 0.3, 0.2);
  const auto ray = cam.ray_for(32, 32, dims);  // image center (approx)
  const auto c = cam.center(dims);
  const auto to_c = c - ray.origin;
  const auto closest = ray.origin + ray.direction * to_c.dot(ray.direction);
  EXPECT_LT((closest - c).length(), 1.5);
}

TEST(Camera, RaysAreParallel) {
  const Dims dims{16, 16, 16};
  const Camera cam(32, 32, 1.1, -0.4);
  const auto a = cam.ray_for(0, 0, dims);
  const auto b = cam.ray_for(31, 31, dims);
  EXPECT_NEAR((a.direction - b.direction).length(), 0.0, 1e-12);
}

TEST(IntersectBox, HitsAndMisses) {
  const Box box{{0, 0, 0}, {10, 10, 10}};
  double t0, t1;
  // Straight through the middle along +x.
  EXPECT_TRUE(render::intersect_box({{-5, 4, 4}, {1, 0, 0}}, box, t0, t1));
  EXPECT_NEAR(t0, 5.0, 1e-9);
  EXPECT_NEAR(t1, 14.0, 1e-9);  // sample domain ends at hi-1 = 9
  // Parallel ray outside the slab misses.
  EXPECT_FALSE(render::intersect_box({{-5, 20, 4}, {1, 0, 0}}, box, t0, t1));
  // Diagonal hit.
  EXPECT_TRUE(render::intersect_box({{-1, -1, -1}, {1, 1, 1}}, box, t0, t1));
}

// ------------------------------------------------------------ raycast ----

VolumeF uniform_volume(float value, int n = 16) {
  VolumeF v(Dims{n, n, n}, value);
  return v;
}

TEST(RayCaster, TransparentVolumeYieldsEmptyImage) {
  RayCaster caster;
  const auto tf = TransferFunction::fire();  // 0 alpha below threshold
  const Image img = caster.render_full(uniform_volume(0.05f), Camera(32, 32),
                                       tf);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(img.pixel(x, y)[0], 0);
      EXPECT_EQ(img.pixel(x, y)[3], 0);
    }
}

TEST(RayCaster, DenseVolumeSaturatesCenterAlpha) {
  RenderOptions opt;
  opt.shading = false;
  RayCaster caster(opt);
  TransferFunction tf({{0.0, 1, 1, 1, 0.5}, {1.0, 1, 1, 1, 0.5}});
  const Image img =
      caster.render_full(uniform_volume(0.9f, 24), Camera(33, 33), tf);
  // Center pixel passes through ~24 voxels at alpha 0.5/unit: opaque.
  EXPECT_GT(img.pixel(16, 16)[3], 250);
}

TEST(RayCaster, EarlyTerminationReducesWork) {
  TransferFunction tf({{0.0, 1, 1, 1, 0.9}, {1.0, 1, 1, 1, 0.9}});
  RenderOptions early;
  early.shading = false;
  RenderOptions full = early;
  full.early_termination = 2.0;  // never terminate

  RayCaster a(early), b(full);
  const VolumeF vol = uniform_volume(0.9f, 24);
  const Camera cam(33, 33);
  (void)a.render(Subvolume::whole(vol), vol.dims(), cam, tf);
  const auto samples_early = a.last_sample_count();
  (void)b.render(Subvolume::whole(vol), vol.dims(), cam, tf);
  const auto samples_full = b.last_sample_count();
  EXPECT_LT(samples_early, samples_full / 2);
}

TEST(RayCaster, ShadingChangesPixels) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  RenderOptions with;
  RenderOptions without;
  without.shading = false;
  const Camera cam(48, 48);
  const auto tf = TransferFunction::fire();
  const Image a = RayCaster(with).render_full(vol, cam, tf);
  const Image b = RayCaster(without).render_full(vol, cam, tf);
  EXPECT_LT(render::psnr(a, b), 60.0);  // visibly different
}

TEST(RayCaster, PartialImageCoversSubvolumeFootprint) {
  auto desc = field::scaled(field::turbulent_vortex_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 0);
  const Camera cam(64, 64);
  RayCaster caster;
  const auto part = caster.render(Subvolume::whole(vol), vol.dims(), cam,
                                  TransferFunction::dense_cool_warm());
  EXPECT_GT(part.width(), 0);
  EXPECT_GT(part.height(), 0);
  EXPECT_LE(part.width(), 64);
  EXPECT_LE(part.height(), 64);
}

/// Parallel == serial: subvolume renders composited in depth order must
/// reproduce the single-node render (shading off, ghost layer 1, early
/// termination off — sample-grid snapping + half-open boundary ownership
/// make the tiling exact up to float roundoff).
class RayCastTiling
    : public ::testing::TestWithParam<std::tuple<int, bool, double>> {};

TEST_P(RayCastTiling, SubvolumesTileExactly) {
  const int parts = std::get<0>(GetParam());
  const bool slabs = std::get<1>(GetParam());
  const double azimuth = std::get<2>(GetParam());

  auto desc = field::scaled(field::turbulent_jet_desc(), 6, 2);
  const VolumeF whole = field::generate(desc, 1);
  const Dims dims = whole.dims();
  const Camera cam(56, 56, azimuth, 0.3);
  const auto tf = TransferFunction::fire();

  RenderOptions opt;
  opt.shading = false;          // border gradients would need ghost=2
  opt.early_termination = 2.0;  // keep compositing algebra exact

  RayCaster caster(opt);
  const PartialImage reference =
      caster.render(Subvolume::whole(whole), dims, cam, tf);
  Image ref_img(56, 56);
  reference.splat_to(ref_img);

  // Alternate among slab, block, and work-weighted slab decompositions:
  // the tiling identity must hold for all of them.
  std::vector<field::Box> boxes;
  if (slabs) {
    boxes = field::decompose_slabs(dims, parts);
  } else if (parts % 2 == 0) {
    boxes = field::decompose_blocks(dims, parts);
  } else {
    std::vector<double> weights(static_cast<std::size_t>(dims.nz));
    for (int k = 0; k < dims.nz; ++k)
      weights[static_cast<std::size_t>(k)] = 1.0 + (k % 5);
    boxes = field::decompose_slabs_weighted(dims, parts, 2, weights);
  }
  std::vector<PartialImage> partials;
  for (const auto& box : boxes) {
    Subvolume sub;
    sub.storage_box = field::with_ghost(box, dims, 1);
    sub.data = field::generate_box(desc, 1, sub.storage_box);
    sub.render_box = box;
    partials.push_back(caster.render(sub, dims, cam, tf));
  }
  const Image composed = compositing::composite_reference(partials, 56, 56);
  EXPECT_GT(render::psnr(ref_img, composed), 45.0)
      << "parts=" << parts << " slabs=" << slabs << " az=" << azimuth;
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, RayCastTiling,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(true, false),
                       ::testing::Values(0.6, 2.2)));

// ----------------------------------------------------------- shearwarp ----

TEST(ClassifiedVolume, CoverageAndSpans) {
  VolumeF v(Dims{8, 8, 8}, 0.0f);
  for (int x = 2; x < 6; ++x) v.at(x, 4, 4) = 0.9f;
  TransferFunction tf({{0.0, 0, 0, 0, 0.0},
                       {0.5, 0, 0, 0, 0.0},
                       {0.9, 1, 1, 1, 0.8},
                       {1.0, 1, 1, 1, 0.8}});
  render::ClassifiedVolume cv(v, tf);
  EXPECT_NEAR(cv.opacity_coverage(), 4.0 / 512.0, 1e-9);
  // Scanline along x at (y=4, z=4) has exactly one span [2, 6).
  const auto& line = cv.spans(0, 4, 4);
  ASSERT_EQ(line.size(), 1u);
  EXPECT_EQ(line[0], std::make_pair(2, 6));
  // Empty scanline.
  EXPECT_TRUE(cv.spans(0, 0, 0).empty());
  EXPECT_GT(cv.encoded_bytes(), 512u * 16);
}

TEST(ShearWarp, MatchesRayCastingRoughly) {
  auto desc = field::scaled(field::turbulent_vortex_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const Camera cam(48, 48, 0.4, 0.25);
  const auto tf = TransferFunction::dense_cool_warm();

  render::ShearWarpRenderer sw;
  const auto classified = sw.preprocess(vol, tf);
  const Image sw_img = sw.render(classified, cam);

  RenderOptions opt;
  opt.shading = false;  // shear-warp implementation is unshaded
  const Image rc_img = RayCaster(opt).render_full(vol, cam, tf);

  // §6: shear-warp trades quality for speed (2D filtering); expect rough
  // but clearly-correlated agreement.
  EXPECT_GT(render::psnr(rc_img, sw_img), 15.0);
}

TEST(ShearWarp, WorksFromEveryPrincipalAxis) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 0);
  render::ShearWarpRenderer sw;
  const auto classified = sw.preprocess(vol, TransferFunction::fire());
  // Azimuths/elevations picking each axis as principal.
  const double views[][2] = {{0.0, 0.1},   // -z principal
                             {1.57, 0.1},  // -x principal
                             {0.3, 1.4}};  // -y principal
  for (const auto& v : views) {
    const Image img = sw.render(classified, Camera(40, 40, v[0], v[1]));
    int nonzero = 0;
    for (int y = 0; y < 40; ++y)
      for (int x = 0; x < 40; ++x) nonzero += img.pixel(x, y)[3] > 8 ? 1 : 0;
    EXPECT_GT(nonzero, 10) << "az=" << v[0] << " el=" << v[1];
  }
}

TEST(ShearWarp, PreprocessingIsPerTimeStep) {
  // The §6 argument: the classification encodes the volume AND transfer
  // function; a new time step invalidates it. Different steps must produce
  // different classifications.
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 4);
  render::ShearWarpRenderer sw;
  const auto tf = TransferFunction::fire();
  const auto c0 = sw.preprocess(field::generate(desc, 0), tf);
  const auto c3 = sw.preprocess(field::generate(desc, 3), tf);
  EXPECT_NE(c0.opacity_coverage(), c3.opacity_coverage());
}

// ------------------------------------------------- depth + warping ----

TEST(DepthChannel, OverComposesDepthLikeColor) {
  const Rgba front{0.2, 0.1, 0.0, 0.5, 10.0};
  const Rgba back{0.0, 0.3, 0.1, 0.4, 24.0};
  const Rgba out = front.over(back);
  EXPECT_DOUBLE_EQ(out.z, 10.0 + 0.5 * 24.0);
  EXPECT_DOUBLE_EQ(out.a, 0.5 + 0.5 * 0.4);
}

TEST(DepthChannel, PartialImageSerializePreservesZ) {
  PartialImage img(0, 0, 3, 2);
  img.at(1, 1) = Rgba{0.1, 0.2, 0.3, 0.4, 55.5};
  const auto back = PartialImage::deserialize(img.serialize());
  EXPECT_NEAR(back.at(1, 1).z, 55.5, 1e-3);
  EXPECT_NEAR(back.at(1, 1).a, 0.4, 1e-6);
}

TEST(DepthChannel, RayCasterDepthsLieInsideTheVolume) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const Camera cam(32, 32, 0.7, 0.3);
  const auto tf = TransferFunction::fire();
  const PartialImage part =
      RayCaster().render(Subvolume::whole(vol), vol.dims(), cam, tf);
  // The mean termination depth of any hit ray can be at most the bounding
  // sphere's radius away from the volume-center depth.
  const double center_depth = cam.depth_of(cam.center(vol.dims()));
  const double radius = cam.half_extent(vol.dims());
  int hits = 0;
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      const Rgba& p = part.at(x, y);
      if (p.a < 0.05) continue;
      ++hits;
      EXPECT_NEAR(p.z / p.a, center_depth, radius + 1.0);
    }
  EXPECT_GT(hits, 0);
}

/// Render the volume at `azimuth` and package it as the 2.5D frame the
/// warping viewer would have received.
render::DepthFrame depth_frame_at(const VolumeF& vol,
                                  const TransferFunction& tf, double azimuth,
                                  int size, int step = 0) {
  const Camera cam(size, size, azimuth, 0.3);
  const PartialImage part =
      RayCaster().render(Subvolume::whole(vol), vol.dims(), cam, tf);
  render::DepthFrame frame;
  frame.color = Image(size, size);
  part.splat_to(frame.color);
  // The partial covers only the projected bounding box; expand it to the
  // full frame before extracting depth so color and depth sizes agree.
  render::PartialImage full(0, 0, size, size);
  for (int y = 0; y < part.height(); ++y)
    for (int x = 0; x < part.width(); ++x)
      full.at(part.x0() + x, part.y0() + y) = part.at(x, y);
  frame.depth = render::extract_depth(full);
  frame.camera = cam;
  frame.step = step;
  return frame;
}

TEST(Warper, IdentityWarpIsExact) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const auto tf = TransferFunction::fire();
  render::Warper warper(vol.dims());
  warper.set_frame(depth_frame_at(vol, tf, 0.7, 48));
  const auto result = warper.warp(warper.frame().camera);
  EXPECT_EQ(result.hole_ratio, 0.0);
  EXPECT_EQ(result.stale_deg, 0.0);
  EXPECT_EQ(result.unfilled, 0u);
  // Every source pixel splats back onto itself; colors are untouched.
  EXPECT_TRUE(std::isinf(render::psnr(result.image, warper.frame().color)));
}

TEST(Warper, SmallRotationStaysWithinGoldenBounds) {
  // The ISSUE's acceptance bar: at +-10 degrees of staleness the warp must
  // keep its reprojection-hole ratio under 15% and still resemble the true
  // render of the target view.
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const auto tf = TransferFunction::fire();
  constexpr double kTenDeg = 10.0 * 3.14159265358979 / 180.0;
  for (const double sign : {+1.0, -1.0}) {
    render::Warper warper(vol.dims());
    warper.set_frame(depth_frame_at(vol, tf, 0.7, 48));
    const double target_az = 0.7 + sign * kTenDeg;
    const auto result = warper.warp(Camera(48, 48, target_az, 0.3));
    EXPECT_NEAR(result.stale_deg, 10.0, 0.1);
    EXPECT_LE(result.hole_ratio, 0.15) << "sign " << sign;
    const auto truth = depth_frame_at(vol, tf, target_az, 48);
    EXPECT_GE(render::psnr(result.image, truth.color), 14.0)
        << "sign " << sign;
    EXPECT_GT(result.direct, 100u);
  }
}

TEST(Warper, HoleRatioGrowsWithStaleness) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const auto tf = TransferFunction::fire();
  render::Warper warper(vol.dims());
  warper.set_frame(depth_frame_at(vol, tf, 0.7, 48));
  const auto near = warper.warp(Camera(48, 48, 0.7 + 0.02, 0.3));
  const auto far = warper.warp(Camera(48, 48, 0.7 + 0.5, 0.3));
  EXPECT_LE(near.hole_ratio, far.hole_ratio);
  EXPECT_GT(far.stale_deg, near.stale_deg);
}

TEST(Warper, StalenessIsWrapAware) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const auto tf = TransferFunction::fire();
  render::Warper warper(vol.dims());
  constexpr double kTau = 6.283185307179586;
  warper.set_frame(depth_frame_at(vol, tf, 0.05, 32));
  const auto result = warper.warp(Camera(32, 32, kTau - 0.05, 0.3));
  // 0.1 rad across the seam, not ~2*pi.
  EXPECT_NEAR(result.stale_deg, 0.1 * 360.0 / kTau, 0.2);
}

TEST(Warper, RequiresAFrame) {
  render::Warper warper(Dims{8, 8, 8});
  EXPECT_FALSE(warper.has_frame());
  EXPECT_THROW(warper.warp(Camera(8, 8)), std::logic_error);
}

// ------------------------------------------------------- warp chaos ----
// Chaos-matrix entries (CI runs these under TSan/sanitizers with several
// TVVIZ_FAULT_SEED values; the nightly workflow adds derived seeds and
// extended iterations).

TEST(WarpChaos, StaleWarpSurvivesLatencyChaos) {
  // A full warping session over real sockets with seeded latency chaos on
  // every connection: frames arrive late and bunched, the warper works off
  // stale 2.5D frames the whole time, and the run must still deliver every
  // step with bounded reprojection holes.
  std::uint64_t seed = 20260807;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fault::ScopedFaultPlan chaos(fault::FaultPlan::latency_chaos(seed));
  auto cfg = core::trans_pacific_orbit_preset();
  cfg.dataset.steps = 4;
  const auto result = core::run_session(cfg);
  EXPECT_EQ(result.frames.size(), 4u);
  EXPECT_EQ(result.warp_frames, 3);
  EXPECT_LE(result.warp_mean_hole_ratio, 0.15);
  // Nightly artifact hook: dump the injector's canonical event log so a
  // failing seed can be replayed byte-for-byte locally.
  if (const char* log_path = std::getenv("TVVIZ_FAULT_LOG")) {
    std::ofstream out(log_path, std::ios::app);
    out << "seed=" << seed << "\n" << chaos.injector().event_log();
  }
}

TEST(WarpChaos, CorruptDepthPlanesNeverCrashTheDecoder) {
  // Seeded byte corruption over the depth-plane stream: every mutation must
  // either decode to a well-formed plane or throw std::runtime_error —
  // never crash or read out of bounds (the ASan/UBSan jobs watch this).
  std::uint64_t seed = 20260807;
  if (const char* env = std::getenv("TVVIZ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  auto desc = field::scaled(field::turbulent_jet_desc(), 8, 2);
  const VolumeF vol = field::generate(desc, 1);
  const auto frame = depth_frame_at(vol, TransferFunction::fire(), 0.7, 32);
  const auto encoded = codec::encode_depth_plane(frame.depth);
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 64; ++trial) {
    auto corrupt = encoded;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f)
      corrupt[rng() % corrupt.size()] ^= static_cast<std::uint8_t>(rng());
    try {
      const auto plane = codec::decode_depth_plane(corrupt);
      EXPECT_GE(plane.width(), 0);
    } catch (const std::runtime_error&) {
      // Loud, typed failure is the contract.
    }
  }
}

}  // namespace
}  // namespace tvviz
