// Tests for the volume substrate: volumes, decomposition, procedural
// dataset generators, the on-disk store, and histograms.
#include <gtest/gtest.h>

#include <filesystem>

#include "field/decompose.hpp"
#include "field/generators.hpp"
#include "field/histogram.hpp"
#include "field/noise.hpp"
#include "field/store.hpp"
#include "field/volume.hpp"

namespace tvviz {
namespace {

using field::Box;
using field::DatasetDesc;
using field::DatasetKind;
using field::Dims;
using field::VolumeF;

// -------------------------------------------------------------- volume ----

TEST(Volume, IndexingAndDims) {
  VolumeF v(Dims{3, 4, 5}, 0.5f);
  EXPECT_EQ(v.voxels(), 60u);
  EXPECT_EQ(v.bytes(), 240u);
  v.at(2, 3, 4) = 1.0f;
  EXPECT_FLOAT_EQ(v.at(2, 3, 4), 1.0f);
  EXPECT_FLOAT_EQ(v.at(0, 0, 0), 0.5f);
}

TEST(Volume, ClampedAccessAtBorders) {
  VolumeF v(Dims{2, 2, 2});
  v.at(1, 1, 1) = 3.0f;
  EXPECT_FLOAT_EQ(v.clamped(5, 5, 5), 3.0f);
  EXPECT_FLOAT_EQ(v.clamped(-1, -1, -1), v.at(0, 0, 0));
}

TEST(Volume, TrilinearSampleInterpolates) {
  VolumeF v(Dims{2, 2, 2});
  v.at(1, 0, 0) = 1.0f;  // gradient along x
  EXPECT_NEAR(v.sample(0.5, 0.0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(v.sample(0.25, 0.0, 0.0), 0.25, 1e-12);
  // Exact at voxel centers.
  EXPECT_NEAR(v.sample(1.0, 0.0, 0.0), 1.0, 1e-12);
}

TEST(Volume, GradientPointsUphill) {
  VolumeF v(Dims{5, 5, 5});
  v.fill_from([](int x, int, int) { return static_cast<float>(x) * 0.1f; });
  const auto g = v.gradient(2, 2, 2);
  EXPECT_NEAR(g.x, 0.2, 1e-6);  // central difference of 0.1/voxel over 2
  EXPECT_NEAR(g.y, 0.0, 1e-6);
  EXPECT_NEAR(g.z, 0.0, 1e-6);
}

TEST(Volume, ExtractSubBox) {
  VolumeF v(Dims{4, 4, 4});
  v.fill_from([](int x, int y, int z) {
    return static_cast<float>(x + 10 * y + 100 * z);
  });
  const Box box{{1, 2, 0}, {3, 4, 2}};
  const VolumeF sub = v.extract(box);
  EXPECT_EQ(sub.dims(), (Dims{2, 2, 2}));
  EXPECT_FLOAT_EQ(sub.at(0, 0, 0), v.at(1, 2, 0));
  EXPECT_FLOAT_EQ(sub.at(1, 1, 1), v.at(2, 3, 1));
}

TEST(Volume, StatsAndCoverage) {
  VolumeF v(Dims{10, 1, 1});
  for (int x = 0; x < 10; ++x) v.at(x, 0, 0) = static_cast<float>(x) / 10.0f;
  EXPECT_FLOAT_EQ(v.min_value(), 0.0f);
  EXPECT_FLOAT_EQ(v.max_value(), 0.9f);
  EXPECT_NEAR(v.mean_value(), 0.45, 1e-6);
  EXPECT_NEAR(v.coverage(0.5f), 0.4, 1e-12);  // 0.6..0.9
}

// ----------------------------------------------------------- decompose ----

TEST(Decompose, Split1dBalanced) {
  const auto parts = field::split_1d(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], std::make_pair(0, 4));
  EXPECT_EQ(parts[1], std::make_pair(4, 7));
  EXPECT_EQ(parts[2], std::make_pair(7, 10));
}

class DecomposeParam : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeParam, SlabsTileTheVolume) {
  const int parts = GetParam();
  const Dims dims{16, 20, 24};
  const auto boxes = field::decompose_slabs(dims, parts, 2);
  ASSERT_EQ(static_cast<int>(boxes.size()), parts);
  std::size_t total = 0;
  for (const auto& b : boxes) total += b.voxels();
  EXPECT_EQ(total, dims.voxels());
  // Disjoint: consecutive slabs share boundaries exactly.
  for (std::size_t i = 1; i < boxes.size(); ++i)
    EXPECT_EQ(boxes[i].lo[2], boxes[i - 1].hi[2]);
}

TEST_P(DecomposeParam, BlocksTileTheVolume) {
  const int parts = GetParam();
  const Dims dims{16, 20, 24};
  const auto boxes = field::decompose_blocks(dims, parts);
  ASSERT_EQ(static_cast<int>(boxes.size()), parts);
  std::size_t total = 0;
  for (const auto& b : boxes) total += b.voxels();
  EXPECT_EQ(total, dims.voxels());
  // Every voxel belongs to exactly one box (checked on a lattice sample).
  for (int z = 0; z < dims.nz; z += 3)
    for (int y = 0; y < dims.ny; y += 3)
      for (int x = 0; x < dims.nx; x += 3) {
        int owners = 0;
        for (const auto& b : boxes) owners += b.contains(x, y, z) ? 1 : 0;
        EXPECT_EQ(owners, 1) << x << "," << y << "," << z;
      }
}

TEST_P(DecomposeParam, BlocksReasonablyBalanced) {
  const int parts = GetParam();
  const Dims dims{32, 32, 32};
  const auto boxes = field::decompose_blocks(dims, parts);
  std::size_t min_v = SIZE_MAX, max_v = 0;
  for (const auto& b : boxes) {
    min_v = std::min(min_v, b.voxels());
    max_v = std::max(max_v, b.voxels());
  }
  EXPECT_LE(static_cast<double>(max_v) / static_cast<double>(min_v), 2.01);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, DecomposeParam,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Decompose, WithGhostClipsAtBorders) {
  const Dims dims{10, 10, 10};
  const Box inner{{2, 2, 2}, {5, 5, 5}};
  const Box g = field::with_ghost(inner, dims, 2);
  EXPECT_EQ(g.lo[0], 0);
  EXPECT_EQ(g.hi[0], 7);
  const Box edge{{0, 0, 8}, {10, 10, 10}};
  const Box ge = field::with_ghost(edge, dims, 1);
  EXPECT_EQ(ge.lo[2], 7);
  EXPECT_EQ(ge.hi[2], 10);
}

TEST(Decompose, InvalidArgumentsThrow) {
  EXPECT_THROW(field::decompose_slabs(Dims{4, 4, 4}, 0), std::invalid_argument);
  EXPECT_THROW(field::decompose_slabs(Dims{4, 4, 4}, 2, 5),
               std::invalid_argument);
  EXPECT_THROW(field::decompose_blocks(Dims{2, 2, 2}, 100),
               std::invalid_argument);
}

// -------------------------------------------------------------- noise ----

TEST(Noise, DeterministicAndInRange) {
  for (int i = 0; i < 100; ++i) {
    const double a = field::value_noise(i * 0.37, i * 0.11, i * 0.73, 7);
    const double b = field::value_noise(i * 0.37, i * 0.11, i * 0.73, 7);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Noise, SeedChangesField) {
  int diff = 0;
  for (int i = 0; i < 50; ++i) {
    const double a = field::fbm(i * 0.21, 0.5, 0.9, 4, 1);
    const double b = field::fbm(i * 0.21, 0.5, 0.9, 4, 2);
    diff += std::abs(a - b) > 1e-9 ? 1 : 0;
  }
  EXPECT_GT(diff, 40);
}

TEST(Noise, SmoothAtLatticePoints) {
  // Value noise at integer coordinates equals the lattice hash.
  EXPECT_NEAR(field::value_noise(3.0, 4.0, 5.0, 11),
              field::lattice_hash(3, 4, 5, 11), 1e-12);
}

// ---------------------------------------------------------- generators ----

class GeneratorParam : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorParam, ValuesNormalizedAndDeterministic) {
  DatasetDesc desc;
  desc.kind = GetParam();
  desc.dims = Dims{16, 16, 16};
  desc.steps = 4;
  const VolumeF a = field::generate(desc, 2);
  const VolumeF b = field::generate(desc, 2);
  EXPECT_EQ(a.dims(), desc.dims);
  for (int z = 0; z < 16; z += 5)
    for (int y = 0; y < 16; y += 5)
      for (int x = 0; x < 16; x += 5) {
        EXPECT_EQ(a.at(x, y, z), b.at(x, y, z));
        EXPECT_GE(a.at(x, y, z), 0.0f);
        EXPECT_LE(a.at(x, y, z), 1.0f);
      }
}

TEST_P(GeneratorParam, TimeEvolves) {
  DatasetDesc desc;
  desc.kind = GetParam();
  desc.dims = Dims{12, 12, 12};
  desc.steps = 10;
  const VolumeF a = field::generate(desc, 0);
  const VolumeF b = field::generate(desc, 9);
  double diff = 0.0;
  for (int z = 0; z < 12; ++z)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        diff += std::abs(a.at(x, y, z) - b.at(x, y, z));
  EXPECT_GT(diff / a.voxels(), 0.005);
}

TEST_P(GeneratorParam, BoxGenerationMatchesWhole) {
  DatasetDesc desc;
  desc.kind = GetParam();
  desc.dims = Dims{14, 10, 12};
  desc.steps = 3;
  const VolumeF whole = field::generate(desc, 1);
  const Box box{{3, 2, 4}, {9, 8, 10}};
  const VolumeF part = field::generate_box(desc, 1, box);
  for (int z = box.lo[2]; z < box.hi[2]; ++z)
    for (int y = box.lo[1]; y < box.hi[1]; ++y)
      for (int x = box.lo[0]; x < box.hi[0]; ++x)
        EXPECT_EQ(part.at(x - box.lo[0], y - box.lo[1], z - box.lo[2]),
                  whole.at(x, y, z));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorParam,
                         ::testing::Values(DatasetKind::kTurbulentJet,
                                           DatasetKind::kTurbulentVortex,
                                           DatasetKind::kShockMixing));

TEST(Generators, PresetsMatchPaperShapes) {
  const auto jet = field::turbulent_jet_desc();
  EXPECT_EQ(jet.dims, (Dims{129, 129, 104}));
  EXPECT_EQ(jet.steps, 150);
  const auto vortex = field::turbulent_vortex_desc();
  EXPECT_EQ(vortex.dims, (Dims{128, 128, 128}));
  EXPECT_EQ(vortex.steps, 100);
  const auto mixing = field::shock_mixing_desc();
  EXPECT_EQ(mixing.dims, (Dims{640, 256, 256}));
  EXPECT_EQ(mixing.steps, 265);
  // The mixing dataset is ~16x the data points of the small sets (§6).
  EXPECT_GT(static_cast<double>(mixing.dims.voxels()) /
                static_cast<double>(vortex.dims.voxels()),
            15.0);
}

TEST(Generators, VortexDenserThanJet) {
  // §6: vortex frames have more pixel coverage than jet frames, so the
  // volume itself must be denser above the visibility threshold.
  auto jet = field::scaled(field::turbulent_jet_desc(), 4, 4);
  auto vortex = field::scaled(field::turbulent_vortex_desc(), 4, 4);
  const double jet_cov = field::generate(jet, 2).coverage(0.3f);
  const double vortex_cov = field::generate(vortex, 2).coverage(0.3f);
  EXPECT_GT(vortex_cov, 2.0 * jet_cov);
}

TEST(Generators, ScaledShrinksButKeepsSteps) {
  const auto s = field::scaled(field::shock_mixing_desc(), 4, 20);
  EXPECT_EQ(s.dims, (Dims{160, 64, 64}));
  EXPECT_EQ(s.steps, 20);
  EXPECT_THROW(field::scaled(s, 0, 1), std::invalid_argument);
}

TEST(Generators, StepOutOfRangeThrows) {
  const auto desc = field::scaled(field::turbulent_jet_desc(), 8, 4);
  EXPECT_THROW(field::generate(desc, 4), std::out_of_range);
  EXPECT_THROW(field::generate(desc, -1), std::out_of_range);
}

// --------------------------------------------------------------- store ----

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tvviz_store_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(StoreTest, WriteReadRoundTrip) {
  field::VolumeStore store(dir_);
  VolumeF v(Dims{6, 5, 4});
  v.fill_from([](int x, int y, int z) {
    return static_cast<float>(x) + 0.5f * y - 0.25f * z;
  });
  store.write(3, v);
  EXPECT_TRUE(store.has(3));
  EXPECT_FALSE(store.has(2));
  const VolumeF r = store.read(3);
  EXPECT_EQ(r.dims(), v.dims());
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 6; ++x) EXPECT_EQ(r.at(x, y, z), v.at(x, y, z));
}

TEST_F(StoreTest, ReadBoxMatchesFullRead) {
  field::VolumeStore store(dir_);
  DatasetDesc desc;
  desc.dims = Dims{12, 10, 8};
  desc.steps = 2;
  store.write(0, field::generate(desc, 0));
  const VolumeF whole = store.read(0);
  const Box box{{2, 3, 1}, {9, 7, 6}};
  const VolumeF part = store.read_box(0, box);
  EXPECT_EQ(part.dims(), box.dims());
  for (int z = 0; z < part.dims().nz; ++z)
    for (int y = 0; y < part.dims().ny; ++y)
      for (int x = 0; x < part.dims().nx; ++x)
        EXPECT_EQ(part.at(x, y, z),
                  whole.at(x + box.lo[0], y + box.lo[1], z + box.lo[2]));
}

TEST_F(StoreTest, MaterializeWritesAllSteps) {
  field::VolumeStore store(dir_);
  DatasetDesc desc;
  desc.dims = Dims{8, 8, 8};
  desc.steps = 5;
  const std::size_t bytes = store.materialize(desc);
  EXPECT_GT(bytes, 5u * 8 * 8 * 8 * 4);
  for (int s = 0; s < 5; ++s) EXPECT_TRUE(store.has(s));
}

TEST_F(StoreTest, MissingStepThrows) {
  field::VolumeStore store(dir_);
  EXPECT_THROW(store.read(9), std::runtime_error);
}

TEST_F(StoreTest, BoxOutsideVolumeThrows) {
  field::VolumeStore store(dir_);
  store.write(0, VolumeF(Dims{4, 4, 4}));
  EXPECT_THROW(store.read_box(0, Box{{0, 0, 0}, {5, 4, 4}}), std::out_of_range);
}

TEST(DiskModel, ReadTimeIsAffine) {
  const field::DiskModel disk{0.01, 100e6};
  EXPECT_NEAR(disk.read_seconds(0), 0.01, 1e-12);
  EXPECT_NEAR(disk.read_seconds(100'000'000), 1.01, 1e-9);
}

// ----------------------------------------------------------- histogram ----

TEST(Histogram, QuantilesAndFractions) {
  field::Histogram h(10);
  VolumeF v(Dims{10, 10, 1});
  v.fill_from([](int x, int, int) { return static_cast<float>(x) / 10.0f; });
  h.accumulate(v);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.fraction_above(0.5), 0.5, 0.05);
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.1);
  EXPECT_NEAR(h.fraction_above(0.0), 1.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRangeValues) {
  field::Histogram h(4);
  VolumeF v(Dims{2, 1, 1});
  v.at(0, 0, 0) = -1.0f;
  v.at(1, 0, 0) = 2.0f;
  h.accumulate(v);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

}  // namespace
}  // namespace tvviz
