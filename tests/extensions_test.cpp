// Tests for the §4.2 / §7.1 extension features: min-max block summaries,
// space leaping, JPEG fast decoding, and image rescaling helpers.
#include <gtest/gtest.h>

#include <filesystem>

#include "codec/jpeg.hpp"
#include "core/pipesim.hpp"
#include "core/session.hpp"
#include "field/generators.hpp"
#include "field/minmax.hpp"
#include "field/striped.hpp"
#include "render/raycast.hpp"
#include "render/spaceskip.hpp"
#include "render/transfer.hpp"
#include "util/rng.hpp"

namespace tvviz {
namespace {

using field::Dims;
using field::MinMaxGrid;
using field::VolumeF;
using render::BlockVisibility;
using render::Camera;
using render::Image;
using render::RayCaster;
using render::Subvolume;
using render::TransferFunction;

// -------------------------------------------------------------- minmax ----

TEST(MinMaxGrid, RangesBoundBlockValues) {
  VolumeF v(Dims{20, 20, 20});
  util::Rng rng(3);
  v.fill_from([&](int, int, int) { return static_cast<float>(rng.uniform()); });
  const MinMaxGrid grid(v, 8);
  EXPECT_EQ(grid.grid_dims(), (Dims{3, 3, 3}));
  for (int z = 0; z < 20; ++z)
    for (int y = 0; y < 20; ++y)
      for (int x = 0; x < 20; ++x) {
        const auto [lo, hi] = grid.range_at(x, y, z);
        EXPECT_LE(lo, v.at(x, y, z));
        EXPECT_GE(hi, v.at(x, y, z));
      }
}

TEST(MinMaxGrid, BorderVoxelsIncluded) {
  // A hot voxel just outside a block must widen that block's range, so
  // trilinear samples interpolating across the boundary stay bounded.
  VolumeF v(Dims{16, 16, 16}, 0.0f);
  v.at(8, 4, 4) = 1.0f;  // first voxel of block (1,0,0)
  const MinMaxGrid grid(v, 8);
  EXPECT_FLOAT_EQ(grid.range(0, 0, 0).second, 1.0f);  // borders into block 0
  EXPECT_FLOAT_EQ(grid.range(1, 0, 0).second, 1.0f);
}

TEST(MinMaxGrid, RejectsTinyBlocks) {
  VolumeF v(Dims{4, 4, 4});
  EXPECT_THROW(MinMaxGrid(v, 1), std::invalid_argument);
}

// ------------------------------------------------------------ spaceskip ----

TEST(MaxAlphaInRange, ChecksInteriorControlPoints) {
  // Alpha spikes at 0.5; range endpoints are transparent.
  TransferFunction tf({{0.0, 0, 0, 0, 0.0},
                       {0.4, 0, 0, 0, 0.0},
                       {0.5, 1, 1, 1, 0.9},
                       {0.6, 0, 0, 0, 0.0},
                       {1.0, 0, 0, 0, 0.0}});
  EXPECT_DOUBLE_EQ(render::max_alpha_in_range(tf, 0.0, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(render::max_alpha_in_range(tf, 0.45, 0.55), 0.9);
  EXPECT_DOUBLE_EQ(render::max_alpha_in_range(tf, 0.7, 1.0), 0.0);
}

TEST(BlockVisibility, MarksEmptyBlocksInvisible) {
  VolumeF v(Dims{24, 24, 24}, 0.05f);  // below the fire threshold
  for (int z = 10; z < 14; ++z)
    for (int y = 10; y < 14; ++y)
      for (int x = 10; x < 14; ++x) v.at(x, y, z) = 0.9f;
  const BlockVisibility vis(v, TransferFunction::fire(), 8);
  EXPECT_TRUE(vis.invisible_at(2, 2, 2));
  EXPECT_FALSE(vis.invisible_at(12, 12, 12));
  EXPECT_LT(vis.visible_fraction(), 0.5);
  EXPECT_GT(vis.visible_fraction(), 0.0);
}

TEST(BlockVisibility, BlockExitAdvancesPastFace) {
  VolumeF v(Dims{16, 16, 16});
  const BlockVisibility vis(v, TransferFunction::fire(), 8);
  // Ray along +x from x=2 inside block [0,8): exit at x=8 -> dt = 6.
  const double t_exit = vis.block_exit({2, 3, 3}, {1, 0, 0}, 10.0);
  EXPECT_NEAR(t_exit, 16.0, 1e-3);
  // Diagonal direction exits at the nearest face.
  const double t_diag = vis.block_exit({2, 7.5, 3}, {0, 1, 0}, 0.0);
  EXPECT_NEAR(t_diag, 0.5, 1e-3);
}

TEST(SpaceLeaping, ImageIsBitIdentical) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 4, 2);
  const VolumeF vol = field::generate(desc, 1);
  const Camera cam(72, 72, 0.7, 0.3);
  const auto tf = TransferFunction::fire();
  RayCaster caster;
  const Image plain = caster.render_full(vol, cam, tf, false);
  const Image leaping = caster.render_full(vol, cam, tf, true);
  EXPECT_EQ(plain, leaping);  // skipped samples contribute exactly zero
}

TEST(SpaceLeaping, ReducesSampleCountOnSparseData) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 3, 2);
  const VolumeF vol = field::generate(desc, 1);
  const Camera cam(96, 96);
  const auto tf = TransferFunction::fire();
  RayCaster caster;

  Subvolume plain = Subvolume::whole(vol);
  (void)caster.render(plain, vol.dims(), cam, tf);
  const auto samples_plain = caster.last_sample_count();

  Subvolume leaping = Subvolume::whole(vol);
  leaping.attach_skipper(tf);
  (void)caster.render(leaping, vol.dims(), cam, tf);
  const auto samples_leaping = caster.last_sample_count();

  // The jet covers ~10% of the domain; leaping must cut samples hard.
  EXPECT_LT(samples_leaping, samples_plain / 2);
}

TEST(SpaceLeaping, SessionProducesSameFrames) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 3);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height = 40;
  cfg.codec = "raw";
  cfg.keep_frames = true;
  cfg.space_leaping = false;
  const auto plain = core::run_session(cfg);
  cfg.space_leaping = true;
  const auto leaping = core::run_session(cfg);
  ASSERT_EQ(plain.displayed.size(), leaping.displayed.size());
  for (std::size_t i = 0; i < plain.displayed.size(); ++i)
    EXPECT_TRUE(std::isinf(render::psnr(plain.displayed[i],
                                        leaping.displayed[i])));
}

// ------------------------------------------------------------ fast jpeg ----

Image textured_image(int w, int h) {
  Image img(w, h);
  util::Rng rng(42);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const double s = 0.5 + 0.5 * std::sin(x * 0.2) * std::cos(y * 0.15);
      img.set(x, y, static_cast<std::uint8_t>(40 + 180 * s),
              static_cast<std::uint8_t>(90 * s),
              static_cast<std::uint8_t>(200 - 150 * s));
    }
  return img;
}

TEST(JpegFastDecode, ScaleOneMatchesFullDecode) {
  const Image img = textured_image(64, 48);
  const codec::JpegCodec jpeg(80);
  const auto packed = jpeg.encode(img);
  EXPECT_EQ(jpeg.decode(packed), jpeg.decode_fast(packed, 1));
}

class JpegFastDecodeScale : public ::testing::TestWithParam<int> {};

TEST_P(JpegFastDecodeScale, ProducesReducedResolutionApproximation) {
  const int scale = GetParam();
  const Image img = textured_image(64, 64);
  const codec::JpegCodec jpeg(85);
  const auto packed = jpeg.encode(img);
  const Image small = jpeg.decode_fast(packed, scale);
  EXPECT_EQ(small.width(), 64 / scale);
  EXPECT_EQ(small.height(), 64 / scale);
  // Upscaled back, it must approximate the original (coarse but correct).
  const Image restored = render::upscale(small, scale);
  EXPECT_GT(render::psnr(img, restored), 12.0) << "scale=" << scale;
  // DC/low-frequency content preserved: mean brightness close.
  double mean_orig = 0.0, mean_fast = 0.0;
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      mean_orig += img.pixel(x, y)[0];
      mean_fast += restored.pixel(x, y)[0];
    }
  EXPECT_NEAR(mean_fast / mean_orig, 1.0, 0.1) << "scale=" << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, JpegFastDecodeScale,
                         ::testing::Values(2, 4, 8));

TEST(JpegFastDecode, QualityOrderedByScale) {
  const Image img = textured_image(96, 96);
  const codec::JpegCodec jpeg(85);
  const auto packed = jpeg.encode(img);
  const double p2 = render::psnr(img, render::upscale(jpeg.decode_fast(packed, 2), 2));
  const double p4 = render::psnr(img, render::upscale(jpeg.decode_fast(packed, 4), 4));
  const double p8 = render::psnr(img, render::upscale(jpeg.decode_fast(packed, 8), 8));
  EXPECT_GT(p2, p4);
  EXPECT_GT(p4, p8);
}

TEST(JpegFastDecode, RejectsBadScale) {
  const codec::JpegCodec jpeg(75);
  const auto packed = jpeg.encode(textured_image(16, 16));
  EXPECT_THROW(jpeg.decode_fast(packed, 3), std::invalid_argument);
  EXPECT_THROW(jpeg.decode_fast(packed, 16), std::invalid_argument);
}

// ------------------------------------------------------------- rescale ----

TEST(Upscale, NearestNeighbourReplicates) {
  Image img(2, 2);
  img.set(0, 0, 10, 20, 30);
  img.set(1, 1, 200, 210, 220);
  const Image big = render::upscale(img, 3);
  EXPECT_EQ(big.width(), 6);
  EXPECT_EQ(big.pixel(1, 1)[0], 10);   // from src (0,0)
  EXPECT_EQ(big.pixel(2, 2)[0], 10);   // rows/cols 0-2 replicate src (0,0)
  EXPECT_EQ(big.pixel(4, 4)[0], 200);  // from src (1,1)
  EXPECT_THROW(render::upscale(img, 0), std::invalid_argument);
}

TEST(ResizeBilinear, InterpolatesSmoothly) {
  Image img(2, 1);
  img.set(0, 0, 0, 0, 0, 255);
  img.set(1, 0, 100, 100, 100, 255);
  const Image wide = render::resize_bilinear(img, 4, 1);
  EXPECT_EQ(wide.width(), 4);
  // Monotone ramp.
  EXPECT_LE(wide.pixel(0, 0)[0], wide.pixel(1, 0)[0]);
  EXPECT_LE(wide.pixel(1, 0)[0], wide.pixel(2, 0)[0]);
  EXPECT_LE(wide.pixel(2, 0)[0], wide.pixel(3, 0)[0]);
  EXPECT_THROW(render::resize_bilinear(img, 0, 4), std::invalid_argument);
}

TEST(ResizeBilinear, IdentityWhenSameSize) {
  const Image img = textured_image(16, 12);
  const Image same = render::resize_bilinear(img, 16, 12);
  EXPECT_GT(render::psnr(img, same), 45.0);
}

// ----------------------------------------------------- parallel I/O (§7.1) ----

class StripedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tvviz_striped_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(StripedStoreTest, RoundTripMatchesPlainStore) {
  field::DatasetDesc desc;
  desc.dims = Dims{12, 10, 21};  // nz not a multiple of the slab height
  desc.steps = 2;
  const VolumeF original = field::generate(desc, 1);

  field::StripedVolumeStore striped(dir_, 3, 4);
  striped.write(1, original);
  EXPECT_TRUE(striped.has(1));
  EXPECT_FALSE(striped.has(0));
  const VolumeF back = striped.read(1);
  ASSERT_EQ(back.dims(), original.dims());
  for (int z = 0; z < 21; ++z)
    for (int y = 0; y < 10; ++y)
      for (int x = 0; x < 12; ++x)
        EXPECT_EQ(back.at(x, y, z), original.at(x, y, z)) << x << y << z;
}

TEST_F(StripedStoreTest, ReadBoxTouchesOnlyCoveredSlabs) {
  field::DatasetDesc desc;
  desc.dims = Dims{8, 8, 32};
  desc.steps = 1;
  const VolumeF original = field::generate(desc, 0);
  field::StripedVolumeStore striped(dir_, 4, 8);
  striped.write(0, original);

  const field::Box box{{1, 2, 9}, {7, 8, 23}};  // spans slab units 1 and 2
  const VolumeF part = striped.read_box(0, box);
  ASSERT_EQ(part.dims(), box.dims());
  for (int z = 0; z < part.dims().nz; ++z)
    for (int y = 0; y < part.dims().ny; ++y)
      for (int x = 0; x < part.dims().nx; ++x)
        EXPECT_EQ(part.at(x, y, z),
                  original.at(x + 1, y + 2, z + 9));
}

TEST_F(StripedStoreTest, StripeAssignmentRoundRobin) {
  field::StripedVolumeStore striped(dir_, 3, 8);
  EXPECT_EQ(striped.stripe_of(0), 0);
  EXPECT_EQ(striped.stripe_of(7), 0);
  EXPECT_EQ(striped.stripe_of(8), 1);
  EXPECT_EQ(striped.stripe_of(16), 2);
  EXPECT_EQ(striped.stripe_of(24), 0);
}

TEST_F(StripedStoreTest, InvalidArgumentsThrow) {
  EXPECT_THROW(field::StripedVolumeStore(dir_, 0), std::invalid_argument);
  field::StripedVolumeStore striped(dir_, 2);
  EXPECT_THROW(striped.read(5), std::runtime_error);
  striped.write(0, VolumeF(Dims{4, 4, 4}));
  EXPECT_THROW(striped.read_box(0, field::Box{{0, 0, 0}, {5, 4, 4}}),
               std::out_of_range);
}

TEST_F(StripedStoreTest, SessionThroughStripedStoreMatchesGenerated) {
  core::SessionConfig cfg;
  cfg.dataset = field::scaled(field::turbulent_jet_desc(), 6, 2);
  cfg.processors = 4;
  cfg.groups = 2;
  cfg.image_width = cfg.image_height = 40;
  cfg.codec = "raw";
  cfg.keep_frames = true;

  field::StripedVolumeStore striped(dir_, 3, 4);
  striped.materialize(cfg.dataset);

  const auto generated = core::run_session(cfg);
  cfg.store_dir = dir_;
  cfg.io_stripes = 3;
  const auto from_disk = core::run_session(cfg);
  ASSERT_EQ(generated.displayed.size(), from_disk.displayed.size());
  for (std::size_t i = 0; i < generated.displayed.size(); ++i)
    EXPECT_TRUE(std::isinf(
        render::psnr(generated.displayed[i], from_disk.displayed[i])));
}

TEST(ParallelIoModel, MoreServersNeverSlower) {
  core::PipelineConfig cfg;
  cfg.processors = 32;
  cfg.groups = 16;  // input-bound operating point
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 64;
  cfg.costs = core::StageCosts::rwcp_paper();
  double prev = 1e300;
  for (int servers : {1, 2, 4, 8}) {
    cfg.io_servers = servers;
    const auto r = core::simulate_pipeline(cfg);
    EXPECT_LE(r.metrics.overall_time, prev + 1e-9) << servers;
    prev = r.metrics.overall_time;
  }
}

TEST(ParallelIoModel, RelievesInputBoundPipelines) {
  core::PipelineConfig cfg;
  cfg.processors = 32;
  cfg.groups = 16;
  cfg.dataset = field::turbulent_jet_desc();
  cfg.steps_limit = 64;
  cfg.costs = core::StageCosts::rwcp_paper();
  cfg.io_servers = 1;
  const auto seq = core::simulate_pipeline(cfg);
  cfg.io_servers = 8;
  const auto par = core::simulate_pipeline(cfg);
  EXPECT_LT(par.metrics.overall_time, 0.75 * seq.metrics.overall_time);
  EXPECT_LT(par.breakdown.input, seq.breakdown.input);
}

}  // namespace
}  // namespace tvviz
