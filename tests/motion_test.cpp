// Tests for the MPEG-style motion-compensated codec (§4.2's rejected
// alternative, implemented to quantify the rejection).
#include <gtest/gtest.h>

#include "codec/image_codec.hpp"
#include "codec/motion.hpp"
#include "field/generators.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/simd.hpp"

namespace tvviz {
namespace {

using codec::MotionCodecOptions;
using codec::MotionDecoder;
using codec::MotionEncoder;
using render::Image;

/// Consecutive frames of the jet animation at its native cadence.
std::vector<Image> animation(int frames, int size, double spin = 0.0) {
  auto desc = field::scaled(field::turbulent_jet_desc(), 3, 150);
  render::RayCaster caster;
  const auto tf = render::TransferFunction::fire();
  std::vector<Image> out;
  for (int s = 60; s < 60 + frames; ++s) {
    const render::Camera cam(size, size, 0.6 + spin * (s - 60), 0.35);
    out.push_back(caster.render_full(field::generate(desc, s), cam, tf, true));
  }
  return out;
}

TEST(MotionCodec, RoundTripQualityAcrossGop) {
  const auto frames = animation(6, 96);
  MotionCodecOptions opt;
  opt.quality = 85;
  opt.gop = 4;  // mid-sequence I-frame
  MotionEncoder enc(opt);
  MotionDecoder dec(opt);
  for (const auto& frame : frames) {
    const auto packed = enc.encode_frame(frame);
    const Image out = dec.decode_frame(packed);
    EXPECT_GT(render::psnr(frame, out), 28.0);
  }
}

TEST(MotionCodec, PFramesSmallerThanIFrames) {
  const auto frames = animation(5, 96);
  MotionCodecOptions opt;
  opt.gop = 100;  // one I-frame, rest P
  MotionEncoder enc(opt);
  const auto i_size = enc.encode_frame(frames[0]).size();
  for (std::size_t k = 1; k < frames.size(); ++k)
    EXPECT_LT(enc.encode_frame(frames[k]).size(), i_size) << k;
}

TEST(MotionCodec, GopForcesPeriodicIFrames) {
  const auto frames = animation(7, 64);
  MotionCodecOptions opt;
  opt.gop = 3;
  MotionEncoder enc(opt);
  std::vector<std::uint8_t> kinds;
  for (const auto& frame : frames)
    kinds.push_back(enc.encode_frame(frame).front());  // first byte = type
  EXPECT_EQ(kinds[0], 0);  // I
  EXPECT_EQ(kinds[1], 1);  // P
  EXPECT_EQ(kinds[2], 1);  // P
  EXPECT_EQ(kinds[3], 0);  // I (gop = 3)
  EXPECT_EQ(kinds[6], 0);
}

TEST(MotionCodec, NoDriftOverLongPRuns) {
  // Encoder reconstructs its own output as the reference, so quality must
  // not decay across a long run of P-frames.
  const auto frames = animation(8, 64);
  MotionCodecOptions opt;
  opt.quality = 85;
  opt.gop = 100;
  MotionEncoder enc(opt);
  MotionDecoder dec(opt);
  double first_p = 0.0, last_p = 0.0;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const Image out = dec.decode_frame(enc.encode_frame(frames[k]));
    const double q = render::psnr(frames[k], out);
    if (k == 1) first_p = q;
    if (k == frames.size() - 1) last_p = q;
  }
  EXPECT_GT(last_p, first_p - 6.0);  // bounded, not collapsing
  EXPECT_GT(last_p, 25.0);
}

TEST(MotionCodec, MotionCompensationBeatsPlainDifferencing) {
  // A pure camera pan over a frozen time step: the content translates
  // across the screen, which motion vectors capture and plain differencing
  // cannot.
  auto desc = field::scaled(field::turbulent_jet_desc(), 3, 150);
  const auto vol = field::generate(desc, 75);
  render::RayCaster caster;
  const auto tf = render::TransferFunction::fire();
  std::vector<Image> frames;
  for (int k = 0; k < 4; ++k)
    frames.push_back(caster.render_full(
        vol, render::Camera(128, 128, 0.6 + 0.08 * k, 0.35), tf, true));

  MotionCodecOptions with_motion;
  with_motion.gop = 100;
  with_motion.search_range = 10;
  MotionCodecOptions no_motion = with_motion;
  no_motion.search_range = 0;  // degenerate: plain frame differencing
  MotionEncoder a(with_motion), b(no_motion);
  std::size_t bits_motion = 0, bits_plain = 0;
  for (const auto& frame : frames) {
    bits_motion += a.encode_frame(frame).size();
    bits_plain += b.encode_frame(frame).size();
  }
  EXPECT_LT(bits_motion, bits_plain);
}

TEST(MotionCodec, SizeChangeForcesIFrame) {
  MotionEncoder enc;
  Image small(32, 32), big(64, 64);
  EXPECT_EQ(enc.encode_frame(small).front(), 0);
  EXPECT_EQ(enc.encode_frame(small).front(), 1);
  EXPECT_EQ(enc.encode_frame(big).front(), 0);  // resize -> I
}

TEST(MotionCodec, ResetForcesIFrame) {
  MotionEncoder enc;
  Image img(32, 32);
  (void)enc.encode_frame(img);
  EXPECT_EQ(enc.encode_frame(img).front(), 1);
  enc.reset();
  EXPECT_EQ(enc.encode_frame(img).front(), 0);
}

TEST(MotionCodec, PFrameWithoutReferenceThrows) {
  MotionEncoder enc;
  Image img(32, 32);
  (void)enc.encode_frame(img);               // I
  const auto p = enc.encode_frame(img);      // P
  MotionDecoder fresh;
  EXPECT_THROW(fresh.decode_frame(p), std::runtime_error);
}

TEST(MotionCodec, RejectsBadOptions) {
  MotionCodecOptions opt;
  opt.macroblock = 12;
  EXPECT_THROW(MotionEncoder{opt}, std::invalid_argument);
  opt = {};
  opt.gop = 0;
  EXPECT_THROW(MotionEncoder{opt}, std::invalid_argument);
  opt = {};
  opt.search_range = 200;
  EXPECT_THROW(MotionEncoder{opt}, std::invalid_argument);
}

TEST(MotionCodec, BitstreamIdenticalAcrossIsaTiers) {
  // The vectorized SAD search and quantizer must produce the byte-identical
  // stream the scalar kernels do — motion vectors, residuals, everything.
  const auto frames = animation(3, 96, 0.05);
  MotionCodecOptions opt;
  opt.gop = 100;
  opt.search_range = 6;
  const auto encode_all = [&](util::simd::Isa isa) {
    util::simd::ScopedIsa scoped(isa);
    MotionEncoder enc(opt);
    util::Bytes all;
    for (const auto& frame : frames) {
      const auto packed = enc.encode_frame(frame);
      all.insert(all.end(), packed.begin(), packed.end());
    }
    return all;
  };
  EXPECT_EQ(encode_all(util::simd::Isa::kScalar),
            encode_all(util::simd::best_available_isa()));
}

TEST(MotionCodec, BeatsIndependentJpegOnCoherentAnimation) {
  // The reason MPEG compresses video well — and the §4.2 counterweight:
  // the bits saved cost a motion search per macroblock per frame.
  const auto frames = animation(6, 96);
  MotionCodecOptions opt;
  opt.gop = 6;
  MotionEncoder enc(opt);
  const auto jpeg = codec::make_image_codec("jpeg", 75);
  std::size_t motion_bytes = 0, jpeg_bytes = 0;
  for (const auto& frame : frames) {
    motion_bytes += enc.encode_frame(frame).size();
    jpeg_bytes += jpeg->encode(frame).size();
  }
  EXPECT_LT(motion_bytes, jpeg_bytes);
}

}  // namespace
}  // namespace tvviz
